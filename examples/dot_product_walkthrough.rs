//! The paper's Section 4 walkthrough: the matmult inner loop (`dot` /
//! `sub2`) shown at each compilation stage — Lambda (Figure 2), Bform
//! before optimization (Figure 3), Bform after optimization (Figure 4,
//! where the bounds checks are gone), and the final assembly
//! (Figures 6–7).
//!
//! ```sh
//! cargo run --example dot_product_walkthrough
//! ```

use til::{Compiler, Options};

fn main() {
    let src = r#"
        val bound = 64
        val A = Array2.array (bound, bound, 0)
        val B = Array2.array (bound, bound, 0)
        fun dot (i, j) =
          let fun go (cnt, sum) =
                if cnt < bound
                then go (cnt + 1, sum + sub2 (A, i, cnt) * sub2 (B, cnt, j))
                else sum
          in go (0, 0) end
        val _ = print (Int.toString (dot (1, 2)))
    "#;
    let (exe, dumps) = Compiler::new(Options::til())
        .compile_with_dumps(src)
        .expect("compile");
    let section = |t: &str| println!("\n===== {t} =====");
    section("Bform before optimization (paper Figure 3; `go` is the dot loop)");
    print_around(&dumps.bform, "go_", 40);
    section("Bform after optimization (paper Figure 4: no bounds checks, no calls)");
    print_around(&dumps.bform_optimized, "go_", 48);
    section("Assembly for the loop (paper Figures 6-7)");
    let out = exe.run(1_000_000_000).expect("run");
    // Show a slice of the listing around the hottest block.
    let asm: Vec<&str> = dumps.assembly.lines().collect();
    let n = asm.len();
    for l in &asm[n.saturating_sub(400)..n.min(n.saturating_sub(400) + 60)] {
        println!("{l}");
    }
    section("Result");
    println!("dot (1, 2) = {}", out.output);
    println!(
        "executed {} instructions, allocated {} bytes",
        out.stats.time(),
        out.stats.allocated_bytes
    );
}

fn print_around(dump: &str, needle: &str, lines: usize) {
    if let Some(pos) = dump.lines().position(|l| l.contains(needle)) {
        for l in dump.lines().skip(pos.saturating_sub(2)).take(lines) {
            println!("{l}");
        }
    } else {
        for l in dump.lines().take(lines) {
            println!("{l}");
        }
    }
}
