//! Quickstart: compile and run a small SML program with TIL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use til::{Compiler, Options};

fn main() {
    let src = r#"
        fun fib 0 = 0
          | fib 1 = 1
          | fib n = fib (n - 1) + fib (n - 2)
        val _ = print "fib 20 = "
        val _ = print (Int.toString (fib 20))
        val _ = print "\n"
    "#;
    let exe = Compiler::new(Options::til()).compile(src).expect("compile");
    let out = exe.run(1_000_000_000).expect("run");
    print!("{}", out.output);
    println!(
        "({} instructions, {} bytes allocated, {} collections)",
        out.stats.time(),
        out.stats.allocated_bytes,
        out.stats.gc_count
    );
}
