//! Intensional polymorphism (paper Section 2.1): a polymorphic array
//! function compiled once works over int, float, and pointer arrays —
//! when the optimizer is prevented from specializing it, the generated
//! code carries run-time types and `typecase`; with full optimization
//! every polymorphic function is eliminated (Section 5.1).
//!
//! ```sh
//! cargo run --example intensional_polymorphism
//! ```

use til::{Compiler, Options};

const SRC: &str = r#"
    fun swap (a, i, j) =
      let val t = Array.sub (a, i)
      in Array.update (a, i, Array.sub (a, j)); Array.update (a, j, t) end
    val ia = Array.array (4, 0)
    val _ = Array.update (ia, 0, 7)
    val fa = Array.array (4, 1.5)
    val _ = Array.update (fa, 3, 4.5)
    val sa = Array.array (4, "x")
    val _ = Array.update (sa, 0, "y")
    val _ = swap (ia, 0, 3)
    val _ = swap (fa, 0, 3)
    val _ = swap (sa, 0, 3)
    val _ = print (Int.toString (Array.sub (ia, 3)))
    val _ = print " "
    val _ = print (Real.toString (Array.sub (fa, 0)))
    val _ = print " "
    val _ = print (Array.sub (sa, 3))
    val _ = print "\n"
"#;

fn main() {
    // Full optimization: the paper's whole-program result.
    let exe = Compiler::new(Options::til()).compile(SRC).expect("compile");
    let stats = exe.info.opt_stats.clone().unwrap();
    let out = exe.run(1_000_000_000).expect("run");
    println!("output: {}", out.output.trim());
    println!(
        "fully optimized: {} polymorphic functions, {} typecases remain (paper: all eliminated)",
        stats.remaining_polymorphic, stats.remaining_typecases
    );

    // Suppress specialization + inlining: the run-time type analysis
    // must do the work — same answers, types passed at run time.
    let mut opts = Options::til();
    opts.opt.specialize = false;
    opts.opt.inline = false;
    opts.opt.flatten = false;
    let exe2 = Compiler::new(opts).compile(SRC).expect("compile");
    let stats2 = exe2.info.opt_stats.clone().unwrap();
    let out2 = exe2.run(1_000_000_000).expect("run");
    assert_eq!(out.output, out2.output);
    println!(
        "unspecialized:   {} polymorphic functions, {} typecases remain — \
         same output via run-time type analysis",
        stats2.remaining_polymorphic, stats2.remaining_typecases
    );
    println!(
        "cost of intensional polymorphism here: {} vs {} instructions",
        out2.stats.time(),
        out.stats.time()
    );
}
