//! The paper's headline comparison on one benchmark: compile the
//! matmult kernel as TIL and as the baseline (universal-representation)
//! compiler and compare the Section 5 metrics.
//!
//! ```sh
//! cargo run --release --example til_vs_baseline
//! ```

use til::{Compiler, Options};

fn main() {
    let src = include_str!("../crates/bench/sml/matmult.sml");
    let til = Compiler::new(Options::til()).compile(src).expect("til");
    let base = Compiler::new(Options::baseline()).compile(src).expect("baseline");
    let t = til.run(4_000_000_000).expect("run til");
    let b = base.run(4_000_000_000).expect("run baseline");
    assert_eq!(t.output, b.output, "modes must agree");
    println!("matmult, output {}", t.output.trim());
    println!("{:<26} {:>14} {:>14} {:>8}", "metric", "TIL", "baseline", "ratio");
    let row = |name: &str, a: u64, b: u64| {
        println!(
            "{:<26} {:>14} {:>14} {:>8.3}",
            name,
            a,
            b,
            a as f64 / b.max(1) as f64
        );
    };
    row("execution time (instrs)", t.stats.time(), b.stats.time());
    row("heap allocation (bytes)", t.stats.allocated_bytes, b.stats.allocated_bytes);
    row(
        "executable size (bytes)",
        til.info.executable_bytes as u64,
        base.info.executable_bytes as u64,
    );
    row("collections", t.stats.gc_count, b.stats.gc_count);
    println!(
        "(paper: time 0.14, allocation 0.0013 for matmult vs SML/NJ)"
    );
}
