//! Nearly tag-free garbage collection (paper Section 2.3): a program
//! that allocates far more than a semispace while holding live,
//! pointer-rich data. In TIL mode the collector finds roots through
//! compile-time tables (registers + stack frames, liveness-filtered);
//! in baseline mode everything is low-bit tagged and the stack is
//! scanned exhaustively. Both reclaim everything unreachable.
//!
//! ```sh
//! cargo run --example tagfree_gc
//! ```

use til::{Compiler, Options};

const SRC: &str = r#"
    datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
    fun insert (Leaf, x) = Node (Leaf, x, Leaf)
      | insert (Node (l, y, r), x) =
          if x < y then Node (insert (l, x), y, r)
          else Node (l, y, insert (r, x))
    fun size Leaf = 0 | size (Node (l, _, r)) = 1 + size l + size r
    fun build (0, t) = t | build (n, t) = build (n - 1, insert (t, (n * 7919) mod 1000))
    (* The live tree survives collections driven by this garbage loop. *)
    fun churn (0, x) = x | churn (k, x) = churn (k - 1, build (60, Leaf))
    val live = build (400, Leaf)
    val _ = churn (3000, Leaf)
    val _ = print (Int.toString (size live))
    val _ = print "\n"
"#;

fn main() {
    for (name, opts) in [("TIL (nearly tag-free)", Options::til()), ("baseline (tagged)", Options::baseline())] {
        let mut o = opts;
        o.link.semi_bytes = 1 << 20; // small semispaces force many GCs
        let exe = Compiler::new(o).compile(SRC).expect("compile");
        let out = exe.run(10_000_000_000).expect("run");
        println!(
            "{name}: output={} collections={} copied={} words allocated={} bytes",
            out.output.trim(),
            out.stats.gc_count,
            out.stats.gc_copied_words,
            out.stats.allocated_bytes
        );
    }
}
