//! Regression tests for the observability layer: pass-attributed
//! verify forensics, per-pass optimizer stats, phase tracing, the
//! exit-time memory-accounting fix, and the runtime layer (execution
//! profiles, GC pause spans, type-indexed heap censuses, Chrome trace
//! export).

use til::{Compiler, Options};

/// Both paper configurations, verification on — every regression test
/// here runs under both (the two compilers share one semantics and
/// one diagnostic discipline).
fn both_modes() -> [Options; 2] {
    let mut til = Options::til();
    til.verify = true;
    let mut base = Options::baseline();
    base.verify = true;
    [til, base]
}

// --- Root cause: `Executable::run` computed the final live heap into
// a discarded local, so `max_live_words` stayed at its last
// collection-time sample. A program whose high-water is its final
// live set (e.g. it allocates once and never collects) reported ~0
// for the paper's Table 4 metric.

#[test]
fn final_live_heap_counts_toward_memory_high_water() {
    // Builds a ~1000-element list and holds it to the end. Small
    // enough that no collection runs — so before the fix,
    // max_live_words was never sampled.
    let src = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
               val xs = build (1000, nil)
               val _ = print (Int.toString (length xs))";
    for opts in both_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run(1_000_000_000).expect("run");
        assert_eq!(out.output, "1000");
        assert_eq!(out.stats.gc_count, 0, "test premise: no collection ran");
        assert!(
            out.stats.final_heap_words >= 1000,
            "final resident heap must cover the 1000-cons list, got {}",
            out.stats.final_heap_words
        );
        assert!(
            out.stats.max_live_words >= out.stats.final_heap_words,
            "exit-time heap must fold into the high-water mark: max {} < final {}",
            out.stats.max_live_words,
            out.stats.final_heap_words
        );
    }
}

#[test]
fn memory_high_water_still_reflects_collections() {
    // Churn enough garbage to force collections: the high-water mark
    // must come from collection-time samples, not only from exit.
    let src = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
               fun churn 0 = 0 | churn k = (length (build (2000, nil)) ; churn (k - 1))
               val _ = print (Int.toString (churn 500))";
    for opts in both_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run(2_000_000_000).expect("run");
        assert_eq!(out.output, "0");
        assert!(out.stats.gc_count > 0, "test premise: collections ran");
        assert!(
            out.stats.max_live_words >= out.stats.final_heap_words,
            "high-water mark can never be below the exit-time heap"
        );
    }
}

// --- The pass-attributed verify forensics: a type-breaking pass must
// be *named* in the diagnostic, with before/after IR dumps.

#[test]
fn broken_pass_is_named_in_verify_diagnostic() {
    // `minimize-fix` is scheduled in both TIL and baseline modes.
    let _guard = til_opt::fault::break_pass("minimize-fix");
    for opts in both_modes() {
        let err = match Compiler::new(opts).compile("val _ = print (Int.toString (1 + 2))") {
            Err(d) => d,
            Ok(_) => panic!("injected breakage must fail verification"),
        };
        assert_eq!(err.level, til_common::Level::Ice);
        assert!(
            err.message.contains("pass `minimize-fix` broke typing"),
            "diagnostic must name the offending pass: {}",
            err.message
        );
        assert!(
            err.message.contains("IR dumps"),
            "diagnostic must point at the before/after IR dumps: {}",
            err.message
        );
        // The dumps referenced by the diagnostic must exist and hold
        // pretty-printed Bform.
        let mut found = 0;
        for word in err.message.split([' ', ';']) {
            if word.contains("til-verify-") {
                let path = word.trim_end_matches(['/', ',']);
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("dump {path} unreadable: {e}"));
                assert!(!text.trim().is_empty(), "dump {path} is empty");
                found += 1;
            }
        }
        assert_eq!(found, 2, "expected before and after dumps: {}", err.message);
    }
}

#[test]
fn unbroken_compile_verifies_clean() {
    // The same programs compile fine when nothing is injected — the
    // forensics only fire on real type breakage.
    for opts in both_modes() {
        let exe = Compiler::new(opts)
            .compile("val _ = print (Int.toString (1 + 2))")
            .expect("verified compile");
        assert_eq!(exe.run(1_000_000_000).unwrap().output, "3");
    }
}

// --- Per-pass optimizer stats and phase-level compile info.

#[test]
fn optimizer_reports_per_pass_stats() {
    let src = "fun f x = x + 1
               fun g x = f (f x)
               val _ = print (Int.toString (g 40))";
    for opts in both_modes() {
        let exe = Compiler::new(opts.clone()).compile(src).expect("compile");
        let stats = exe.info.opt_stats.clone().expect("opt stats");
        assert!(!stats.pass_stats.is_empty(), "per-pass stats recorded");
        let total_runs: usize = stats.pass_stats.iter().map(|p| p.runs).sum();
        assert_eq!(
            total_runs, stats.passes,
            "pass aggregate runs must account for every scheduled pass"
        );
        let reduce = stats
            .pass_stats
            .iter()
            .find(|p| p.name == "simplify-reduce")
            .expect("reduction pass always runs");
        assert!(reduce.runs >= 1);
        assert!(
            reduce.nodes_eliminated > 0,
            "reduction must shrink the prelude-laden program"
        );
    }
}

#[test]
fn compile_info_reports_phases_and_trace_events() {
    let exe = Compiler::new(Options::til())
        .compile("val _ = print (Int.toString 7)")
        .expect("compile");
    let names: Vec<&str> = exe.info.phases.iter().map(|p| p.name).collect();
    for expected in ["parse", "elaborate", "to-lmli", "to-bform", "optimize", "backend"] {
        assert!(names.contains(&expected), "missing phase {expected}: {names:?}");
    }
    assert!(exe.info.total_seconds() > 0.0);
    assert!(exe.info.phase_seconds("optimize") > 0.0);
    // The optimize phase carries an IR node count and a (negative)
    // delta: optimization must shrink the prelude-laden program.
    let optimize = exe.info.phases.iter().find(|p| p.name == "optimize").unwrap();
    assert!(optimize.ir_nodes.unwrap() > 0);
    assert!(optimize.ir_delta.unwrap() < 0);
    // The structured trace includes nested per-pass events.
    assert!(exe
        .info
        .events
        .iter()
        .any(|e| e.name == "simplify-reduce" && e.depth > 0));
    assert!(exe.info.events.iter().any(|e| e.name == "backend"));
}

#[test]
fn backend_trace_has_per_function_spans() {
    // The per-function backend stages (RTL lowering, verification,
    // GC-table checks, emission) each record one span per function —
    // merged in deterministic function order regardless of the worker
    // count (workers buffer locally; no interleaving).
    let src = "fun f x = x + 1
               val _ = print (Int.toString (f 41))";
    let mut opts = Options::til();
    opts.jobs = Some(4);
    let exe = Compiler::new(opts).compile(src).expect("compile");
    for prefix in ["lower ", "verify ", "gc-check ", "emit "] {
        assert!(
            exe.info.events.iter().any(|e| e.name.starts_with(prefix)),
            "missing per-function `{prefix}*` spans in the trace"
        );
    }
    // The emission spans carry per-function instruction counts.
    assert!(exe
        .info
        .events
        .iter()
        .any(|e| e.name.starts_with("emit ")
            && e.counters.iter().any(|(k, v)| *k == "instrs" && *v > 0)));
    // Deterministic merge: two compiles at different worker counts
    // record the identical event-name sequence.
    let mut opts1 = Options::til();
    opts1.jobs = Some(1);
    let exe1 = Compiler::new(opts1).compile(src).expect("compile");
    let names = |e: &til::CompileInfo| e.events.iter().map(|x| x.name.clone()).collect::<Vec<_>>();
    assert_eq!(names(&exe.info), names(&exe1.info));
}

#[test]
fn machine_code_verifier_is_an_attributed_phase() {
    // The machine-code verifier runs over the *linked* image as its
    // own attributed pipeline phase, with one trace span per verified
    // function — so a verification failure (and its cost) can be read
    // straight off the compile trace. (Recursive helper so the
    // optimizer cannot inline it away: the linked image keeps at
    // least two functions.)
    let src = "fun count (0, acc) = acc | count (n, acc) = count (n - 1, acc + 1)
               val _ = print (Int.toString (count (42, 0)))";
    let mut opts = Options::til();
    opts.jobs = Some(4);
    let exe = Compiler::new(opts).compile(src).expect("compile");
    let mcv = exe
        .info
        .phases
        .iter()
        .find(|p| p.name == "mc-verify")
        .expect("mc-verify phase missing from compile info");
    assert!(mcv.seconds >= 0.0);
    assert!(
        exe.info.events.iter().any(|e| e.name == "mc-verify"),
        "mc-verify has no trace event"
    );
    let fun_spans = exe
        .info
        .events
        .iter()
        .filter(|e| e.name.starts_with("mc-verify ") && e.depth > 0)
        .count();
    assert!(
        fun_spans >= 2,
        "expected per-function mc-verify spans (main + count), got {fun_spans}"
    );
    // Verification off: the phase (and its spans) must vanish
    // entirely — the verifier costs nothing when disabled.
    let mut off = Options::til();
    off.verify = false;
    let exe_off = Compiler::new(off).compile(src).expect("compile");
    assert!(
        exe_off.info.phases.iter().all(|p| p.name != "mc-verify")
            && exe_off.info.events.iter().all(|e| !e.name.starts_with("mc-verify")),
        "mc-verify phase present with verification disabled"
    );
}

// --- The runtime observability layer: per-function execution
// profiles, GC pause spans, type-indexed heap censuses, and the
// Chrome trace export. Everything is a pure function of the
// deterministic instruction stream, and profiling must never perturb
// the run it observes.

/// Allocation churn that forces collections under a small semispace
/// while holding a list across them.
const CHURN_SRC: &str = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
     fun churn 0 = 0 | churn k = (length (build (2000, nil)) ; churn (k - 1))
     val keep = build (500, nil)
     val _ = print (Int.toString (churn 200 + length keep))";

fn small_heap_modes() -> [Options; 2] {
    let mut modes = both_modes();
    for m in &mut modes {
        m.link.semi_bytes = 256 << 10;
    }
    modes
}

#[test]
fn profiling_leaves_stats_and_output_unchanged() {
    for opts in small_heap_modes() {
        let exe = Compiler::new(opts).compile(CHURN_SRC).expect("compile");
        let off = exe.run_with(2_000_000_000, false).expect("unprofiled run");
        let on = exe.run_with(2_000_000_000, true).expect("profiled run");
        assert_eq!(off.output, on.output, "profiling changed program output");
        assert_eq!(off.stats, on.stats, "profiling changed Stats");
        assert!(off.profile.is_none() && on.profile.is_some());
    }
}

#[test]
fn gc_pause_spans_present_iff_collections_ran() {
    for opts in small_heap_modes() {
        // A quiet program: no collections, so no pause spans — but the
        // exit census still samples the resident heap.
        let exe = Compiler::new(opts.clone())
            .compile("val _ = print (Int.toString (1 + 2))")
            .expect("compile");
        let out = exe.run_with(1_000_000_000, true).expect("run");
        let p = out.profile.expect("profile");
        assert_eq!(out.stats.gc_count, 0, "test premise: no collection");
        assert!(p.pauses.is_empty(), "pause spans without a collection");
        assert!(p.censuses.iter().any(|c| c.when == til::CensusWhen::Exit));

        // The churner: exactly one pause span per collection, in
        // timeline order, each costed like the collector charges.
        let exe = Compiler::new(opts).compile(CHURN_SRC).expect("compile");
        let out = exe.run_with(2_000_000_000, true).expect("run");
        let p = out.profile.expect("profile");
        assert!(out.stats.gc_count > 0, "test premise: collections ran");
        assert_eq!(p.pauses.len() as u64, out.stats.gc_count);
        for w in p.pauses.windows(2) {
            assert!(w[0].at_instr <= w[1].at_instr, "pauses out of order");
        }
        for g in &p.pauses {
            assert_eq!(
                g.pause_cost,
                200 + 3 * g.copied_words,
                "pause cost must match the collector's charge"
            );
        }
        let total_pause: u64 = p.pauses.iter().map(|g| g.pause_cost).sum();
        assert!(total_pause <= out.stats.rt_cost, "pauses exceed runtime cost");
    }
}

#[test]
fn census_totals_match_the_live_heap_at_every_sample() {
    for opts in small_heap_modes() {
        let tagged = opts.mode == til::Mode::Baseline;
        let exe = Compiler::new(opts).compile(CHURN_SRC).expect("compile");
        let out = exe.run_with(2_000_000_000, true).expect("run");
        let p = out.profile.expect("profile");
        assert!(out.stats.gc_count > 0, "test premise: collections ran");
        for (i, g) in p.pauses.iter().enumerate() {
            let c = p
                .censuses
                .iter()
                .find(|c| c.after_gc() == Some(i as u64))
                .unwrap_or_else(|| panic!("collection {i} has no census"));
            assert_eq!(
                c.classes.total_words(),
                g.live_words,
                "census {i} ({tagged}) must sum to that collection's surviving words",
                tagged = if tagged { "tagged" } else { "tag-free" },
            );
        }
        let exit = p
            .censuses
            .iter()
            .find(|c| c.when == til::CensusWhen::Exit)
            .expect("exit census");
        assert_eq!(exit.classes.total_words(), out.stats.final_heap_words);
        let census_max = p.censuses.iter().map(|c| c.classes.total_words()).max().unwrap();
        assert_eq!(census_max, out.stats.max_live_words);
        // The program's live data is cons cells. Nearly tag-free mode
        // resolves them to records (headers + companion reps); the
        // tagged baseline's uniform tagging cannot, so they land in
        // `unknown` — that gap is the census-level measure of what
        // intensional polymorphism buys.
        if tagged {
            assert!(exit.classes.unknown_words > 0, "tagged records are unresolvable");
        } else {
            assert!(exit.classes.record_words > 0, "cons cells classify as records");
        }
    }
}

#[test]
fn function_and_opcode_attribution_is_exhaustive() {
    for opts in small_heap_modes() {
        let exe = Compiler::new(opts).compile(CHURN_SRC).expect("compile");
        let out = exe.run_with(2_000_000_000, true).expect("run");
        let p = out.profile.expect("profile");
        let fn_instrs: u64 = p.functions.iter().map(|f| f.instrs).sum();
        assert_eq!(fn_instrs, out.stats.instrs, "every retired instruction attributed");
        let op_instrs: u64 = p.opcodes.iter().map(|(_, n)| n).sum();
        assert_eq!(op_instrs, out.stats.instrs, "opcode histogram covers every retire");
        let fn_alloc: u64 = p.functions.iter().map(|f| f.alloc_bytes).sum();
        assert_eq!(
            fn_alloc, out.stats.allocated_bytes,
            "every allocated byte attributed to a function"
        );
        // The ranking helper is ordered and bounded.
        let top = p.top_functions(3);
        assert!(top.len() <= 3);
        for w in top.windows(2) {
            assert!(w[0].instrs >= w[1].instrs);
        }
        assert!(top[0].instrs > 0);
    }
}

#[test]
fn incremental_collection_slices_within_budget_and_matches_stop_the_world() {
    // The same program under both collection-scheduling modes: program
    // results and Stats must be identical, and the incremental leg
    // must decompose each collection into budget-bounded slices whose
    // costs sum to the stop-the-world pause.
    let budget = 1_000;
    let mut stw = Options::til();
    stw.link.semi_bytes = 256 << 10;
    let mut inc = stw.clone();
    inc.gc_mode = til::CollectMode::Incremental { budget };

    let exe_stw = Compiler::new(stw).compile(CHURN_SRC).expect("compile");
    let exe_inc = Compiler::new(inc).compile(CHURN_SRC).expect("compile");
    let out_stw = exe_stw.run_with(2_000_000_000, true).expect("stw run");
    let out_inc = exe_inc.run_with(2_000_000_000, true).expect("incremental run");
    assert_eq!(out_stw.output, out_inc.output, "mode changed program output");
    assert_eq!(out_stw.stats, out_inc.stats, "mode changed Stats");
    assert!(out_stw.stats.gc_count > 0, "test premise: collections ran");

    let ps = out_stw.profile.expect("stw profile");
    let pi = out_inc.profile.expect("incremental profile");
    assert_eq!(ps.pauses.len() as u64, out_stw.stats.gc_count);
    assert_eq!(
        pi.cycle_slices().len() as u64,
        out_inc.stats.gc_count,
        "one slice group per collection cycle"
    );
    assert!(
        pi.pauses.len() as u64 > out_inc.stats.gc_count,
        "the tight budget must actually slice some collection"
    );
    for (i, g) in pi.pauses.iter().enumerate() {
        assert!(
            g.pause_cost <= budget,
            "slice {i} cost {} exceeds the budget {budget}",
            g.pause_cost
        );
    }
    assert!(pi.max_pause() <= budget);
    assert!(
        pi.max_pause() < ps.max_pause(),
        "incremental max pause {} not below stop-the-world's {}",
        pi.max_pause(),
        ps.max_pause()
    );
    // Slice costs of cycle `c` sum to stop-the-world's pause `c`, and
    // the cycle census (keyed by cycle, riding on the last slice)
    // still matches that collection's surviving words.
    for (c, stw_pause) in ps.pauses.iter().enumerate() {
        let cycle_cost: u64 = pi
            .pauses
            .iter()
            .filter(|q| q.cycle == c as u64)
            .map(|q| q.pause_cost)
            .sum();
        assert_eq!(cycle_cost, stw_pause.pause_cost, "cycle {c} cost decomposition");
        let census = pi
            .censuses
            .iter()
            .find(|x| x.after_gc() == Some(c as u64))
            .unwrap_or_else(|| panic!("cycle {c} has no census"));
        assert_eq!(census.classes.total_words(), stw_pause.live_words);
    }
}

#[test]
fn zero_gc_profiled_runs_record_a_midrun_census() {
    // A program that allocates but never collects used to be invisible
    // to the census between startup and exit. The periodic check now
    // takes one mid-run sample, marked with its own provenance.
    let src = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
               val xs = build (1000, nil)
               val _ = print (Int.toString (length xs))";
    for opts in both_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run_with(1_000_000_000, true).expect("run");
        assert_eq!(out.stats.gc_count, 0, "test premise: no collection ran");
        let p = out.profile.expect("profile");
        let mids: Vec<_> = p
            .censuses
            .iter()
            .filter(|c| matches!(c.when, til::CensusWhen::MidRun { .. }))
            .collect();
        assert_eq!(mids.len(), 1, "exactly one mid-run census in a zero-GC run");
        let til::CensusWhen::MidRun { at_instr, seq } = mids[0].when else {
            unreachable!()
        };
        assert!(at_instr > 0 && at_instr < out.stats.instrs);
        assert_eq!(seq, 0, "the single default sample is sequence 0");
        assert!(mids[0].classes.total_words() > 0, "mid-run census saw no heap");
        assert!(
            p.censuses.iter().any(|c| c.when == til::CensusWhen::Exit),
            "exit census still present"
        );
        // An unprofiled run of the same image reports identical Stats:
        // the sample is an observer, never a mutation.
        let off = exe.run_with(1_000_000_000, false).expect("unprofiled run");
        assert_eq!(off.stats, out.stats);
    }
}

#[test]
fn runtime_string_allocation_lands_in_the_rt_bucket() {
    // `Int.toString` allocates its result inside the `RtCall`; the
    // HP-delta attribution used to mischarge those bytes to whichever
    // interpreted function the pc happened to be in. They now land in
    // a distinct `(rt)` bucket — and attribution stays exhaustive.
    let src = "fun go 0 = 0 | go n = (print (Int.toString n) ; go (n - 1))
               val _ = go 50";
    for opts in both_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run_with(1_000_000_000, true).expect("run");
        let p = out.profile.expect("profile");
        let rt = p
            .functions
            .iter()
            .find(|f| f.name == "(rt)")
            .expect("runtime allocation bucket missing");
        assert!(rt.alloc_bytes > 0, "string services allocated nothing?");
        assert_eq!(rt.instrs, 0, "the rt bucket never retires instructions");
        let fn_alloc: u64 = p.functions.iter().map(|f| f.alloc_bytes).sum();
        assert_eq!(
            fn_alloc, out.stats.allocated_bytes,
            "attribution must stay exhaustive with the rt bucket"
        );
    }
}

#[test]
fn string_heavy_programs_populate_the_string_census_row() {
    // A generated string-heavy program ([`til_bench::gen`]'s Strings
    // class): long-lived strings survive the collections its churn
    // forces under a small semispace, so TIL-mode censuses must
    // classify a non-empty `string` row — at pause time (strings
    // survived a copy) and at exit — and the runtime string services
    // (`^`, `Int.toString`, ...) must land their allocation in the
    // `(rt)` bucket.
    let g = til_bench::gen::generate_class(1, til_bench::gen::Class::Strings);
    let mut opts = Options::til();
    opts.verify = true;
    opts.link.semi_bytes = 64 << 10;
    let exe = Compiler::new(opts).compile(&g.source).expect("compile");
    let out = exe.run_with(2_000_000_000, true).expect("run");
    assert!(out.stats.gc_count > 0, "test premise: collections ran");
    let p = out.profile.expect("profile");
    let exit = p
        .censuses
        .iter()
        .find(|c| c.when == til::CensusWhen::Exit)
        .expect("exit census");
    assert!(
        exit.classes.string_words > 0,
        "exit census has an empty string row on a string-heavy program"
    );
    let pause_strings = p
        .censuses
        .iter()
        .filter(|c| c.after_gc().is_some())
        .map(|c| c.classes.string_words)
        .max()
        .expect("pause-time census");
    assert!(
        pause_strings > 0,
        "no pause-time census saw a surviving string"
    );
    let rt = p
        .functions
        .iter()
        .find(|f| f.name == "(rt)")
        .expect("runtime allocation bucket missing");
    assert!(rt.alloc_bytes > 0, "string services allocated nothing");
}

#[test]
fn exception_allocation_is_visible_to_profiler_and_census() {
    // Exception-packet construction used to be invisible: the packet's
    // bytes were charged to whichever function the pc was in, and the
    // census filed packets under `record` (or `unknown` in the tagged
    // baseline). Packets now carry a header marker — the profiler
    // charges them to the runtime `(rt)` bucket like the other runtime
    // services, and the census gets a distinct `exn` row, in both rep
    // modes. The program raises (and recovers) 300 payload-carrying
    // exceptions (one 3-word packet each), holds 60 packets live to
    // exit as first-class values, and churns enough to collect with
    // the stash live.
    let src = "exception Bail of int
               fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
               fun mk (0, acc) = acc | mk (n, acc) = mk (n - 1, Bail n :: acc)
               fun count (xs, a) = case xs of nil => a | _ :: r => count (r, a + 1)
               fun churn (0, acc) = acc
                 | churn (n, acc) = churn (n - 1, acc + length (build (400, nil)))
               fun boom (0, k) = raise Bail k | boom (n, k) = boom (n - 1, k) + 1
               fun spin (0, acc) = acc
                 | spin (n, acc) = spin (n - 1, acc + ((boom (3, n)) handle Bail k => k))
               val stash = mk (60, nil)
               val chk = spin (300, 0) + churn (50, 0)
               val _ = print (Int.toString (chk + count (stash, 0)))";
    for opts in small_heap_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run_with(2_000_000_000, true).expect("run");
        assert!(out.stats.gc_count > 0, "test premise: collections ran");
        let p = out.profile.expect("profile");
        let rt = p
            .functions
            .iter()
            .find(|f| f.name == "(rt)")
            .expect("rt bucket missing on an exception-heavy run");
        assert!(
            rt.alloc_bytes >= 300 * 24,
            "packet construction under-charged to the rt bucket: {}",
            rt.alloc_bytes
        );
        let fn_alloc: u64 = p.functions.iter().map(|f| f.alloc_bytes).sum();
        assert_eq!(
            fn_alloc, out.stats.allocated_bytes,
            "attribution must stay exhaustive with exn packets re-bucketed"
        );
        let exit = p
            .censuses
            .iter()
            .find(|c| c.when == til::CensusWhen::Exit)
            .expect("exit census");
        assert!(
            exit.classes.exn_words >= 60 * 3,
            "exit census must classify the live packet stash: {} exn words",
            exit.classes.exn_words
        );
        let pause_exn = p
            .censuses
            .iter()
            .filter(|c| c.after_gc().is_some())
            .map(|c| c.classes.exn_words)
            .max()
            .expect("pause-time census");
        assert!(
            pause_exn > 0,
            "no pause-time census saw a surviving exception packet"
        );
    }
}

#[test]
fn recovered_traps_are_counted_per_function() {
    // `div 0` raises the hardware `Div` trap on exactly one iteration
    // (n = 3) and the handler recovers; the execution profile must
    // attribute exactly that one trap to the raising function, in
    // both rep modes, without perturbing Stats or output.
    let src = "fun walk (n, acc) =
                   if n <= 0 then acc
                   else walk (n - 1, acc + ((100 div (n - 3)) handle Div => ~1))
               val _ = print (Int.toString (walk (10, 0)))";
    for opts in both_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let off = exe.run_with(1_000_000_000, false).expect("unprofiled run");
        let out = exe.run_with(1_000_000_000, true).expect("profiled run");
        assert_eq!(out.output, "107", "raise-and-recover result wrong");
        assert_eq!(off.stats, out.stats, "profiling perturbed the trapping run");
        let p = out.profile.expect("profile");
        let traps: u64 = p.functions.iter().map(|f| f.traps).sum();
        assert_eq!(traps, 1, "exactly one recovered Div trap expected");
        let f = p.functions.iter().find(|f| f.traps > 0).expect("trapping fn");
        assert!(
            f.name.starts_with("walk"),
            "trap attributed to `{}`, not the raising function",
            f.name
        );
    }
}

#[test]
fn chrome_trace_export_round_trips() {
    let mut opts = Options::til();
    opts.link.semi_bytes = 256 << 10;
    let exe = Compiler::new(opts).compile(CHURN_SRC).expect("compile");
    let out = exe.run_with(2_000_000_000, true).expect("run");
    let profile = out.profile.as_ref().expect("profile");

    // Runtime spans on the instruction timeline, nested under `run`.
    let evs = profile.trace_events(&out.stats);
    assert!(evs.iter().any(|e| e.name == "gc-pause" && e.depth == 1));
    assert!(evs.iter().any(|e| e.name == "heap-census" && e.depth == 1));
    let run = evs.last().expect("events");
    assert_eq!((run.name.as_str(), run.depth), ("run", 0));
    assert_eq!(run.seconds, out.stats.time() as f64 * 1e-6);

    // The combined compile+runtime Chrome trace is well-formed JSON
    // with both tracks present.
    let json = til::chrome_trace_json(&exe.info, Some((&out.stats, profile))).pretty();
    til_common::json::validate(&json).expect("well-formed Chrome trace JSON");
    for needle in ["traceEvents", "thread_name", "gc-pause", "exit-census", "\"run\""] {
        assert!(json.contains(needle), "Chrome trace is missing {needle}");
    }
}

// --- Allocation-site heap profiling: HP-delta attribution keyed by
// allocation pc, with the collector reporting every copy so objects
// keep their site identity across semispace flips. The profiler is
// an observer: Stats and output are bit-identical with it on or off,
// under either collection-scheduling mode.

/// Two allocation sites with opposite lifetimes: `keep` builds a list
/// held to exit, `toss` builds lists discarded every churn iteration.
/// Sized so a 64 KB semispace forces collections while both the kept
/// list and one in-flight toss list fit.
const TWO_SITE_SRC: &str = "fun keep (0, acc) = acc | keep (n, acc) = keep (n - 1, n :: acc)
     fun toss (0, acc) = acc | toss (n, acc) = toss (n - 1, n :: acc)
     fun churn 0 = 0 | churn k = (length (toss (800, nil)) ; churn (k - 1))
     val kept = keep (500, nil)
     val _ = print (Int.toString (churn 300 + length kept))";

#[test]
fn site_profiler_is_transparent_across_gc_modes() {
    // Program output and every Stats counter must be bit-identical
    // with profiling on and off, under stop-the-world and incremental
    // scheduling, in both rep modes — the site profiler (HeapMap,
    // forwarding hook, flip purge) never perturbs the run it observes.
    let modes = [
        til::CollectMode::StopTheWorld,
        til::CollectMode::Incremental { budget: 1_000 },
    ];
    for opts in small_heap_modes() {
        let exe = Compiler::new(opts).compile(CHURN_SRC).expect("compile");
        let mut outputs = Vec::new();
        let mut stats = Vec::new();
        for gc in modes {
            let off = exe.run_with_gc_mode(2_000_000_000, false, gc).expect("unprofiled");
            let on = exe.run_with_gc_mode(2_000_000_000, true, gc).expect("profiled");
            assert_eq!(off.output, on.output, "profiling changed output under {gc:?}");
            assert_eq!(off.stats, on.stats, "profiling changed Stats under {gc:?}");
            assert!(off.profile.is_none() && on.profile.is_some());
            let p = on.profile.expect("profile");
            assert!(!p.sites.is_empty(), "churn produced no allocation sites");
            outputs.push(on.output);
            stats.push(on.stats);
        }
        assert_eq!(outputs[0], outputs[1], "GC mode changed output");
        assert_eq!(stats[0], stats[1], "GC mode changed Stats");
    }
}

#[test]
fn allocation_sites_separate_short_lived_from_live_to_exit() {
    // The survival table must distinguish the two lifetimes: `keep`'s
    // conses survive every collection and are resident at exit;
    // `toss`'s die young (at most the one collection that catches a
    // list mid-build), leaving at most the post-final-flip residue.
    for opts in small_heap_modes() {
        let exe = Compiler::new(opts).compile(TWO_SITE_SRC).expect("compile");
        let out = exe.run_with(2_000_000_000, true).expect("run");
        assert!(out.stats.gc_count > 1, "test premise: several collections ran");
        let p = out.profile.expect("profile");
        let sum = |pred: &dyn Fn(&til::SiteProfile) -> bool| {
            p.sites.iter().filter(|s| pred(s)).fold((0u64, 0u64, 0usize), |a, s| {
                (a.0 + s.alloc_words, a.1 + s.live_at_exit_words, a.2.max(s.survived_words.len()))
            })
        };
        let (keep_alloc, keep_exit, keep_depth) = sum(&|s| s.name.starts_with("keep"));
        let (toss_alloc, toss_exit, toss_depth) = sum(&|s| s.name.starts_with("toss"));
        assert!(keep_alloc > 0, "keep site missing from the table");
        assert!(toss_alloc > keep_alloc, "toss churns far more than keep allocates");
        // The whole kept list is resident at exit; of toss's churn at
        // most the residue since the last collection is (the exit
        // census scans the resident heap, which still holds objects
        // that died after the final flip).
        assert!(
            keep_exit * 2 >= keep_alloc,
            "the kept list must be resident at exit under its site: {keep_exit} of {keep_alloc}"
        );
        assert!(
            toss_exit * 20 < toss_alloc,
            "discarded toss lists cannot dominate exit residency: {toss_exit} of {toss_alloc}"
        );
        assert!(
            keep_depth >= out.stats.gc_count as usize,
            "the kept list must survive every collection: depth {keep_depth}, gc_count {}",
            out.stats.gc_count
        );
        assert!(
            toss_depth < keep_depth,
            "toss ({toss_depth}) must die younger than keep ({keep_depth})"
        );
    }
}

#[test]
fn forwarding_preserves_site_identity_under_pressure() {
    // A pressured 64 KB semispace: objects are copied many times, and
    // each copy must carry its site along. The per-site table is
    // byte-identical across collection modes (the copy stream is the
    // same under confined slicing), site exit residency accounts for
    // the whole resident heap, and every census's per-site breakdown
    // sums to its class totals.
    let mut opts = Options::til();
    opts.verify = true;
    opts.link.semi_bytes = 64 << 10;
    let exe = Compiler::new(opts).compile(TWO_SITE_SRC).expect("compile");
    let stw = exe
        .run_with_gc_mode(2_000_000_000, true, til::CollectMode::StopTheWorld)
        .expect("stw run");
    let inc = exe
        .run_with_gc_mode(2_000_000_000, true, til::CollectMode::Incremental { budget: 500 })
        .expect("incremental run");
    assert!(stw.stats.gc_count > 1, "test premise: several collections ran");
    assert_eq!(stw.output, inc.output);
    assert_eq!(stw.stats, inc.stats);
    let ps = stw.profile.expect("stw profile");
    let pi = inc.profile.expect("incremental profile");
    assert!(
        pi.pauses.len() as u64 > inc.stats.gc_count,
        "test premise: the tight budget actually sliced a collection"
    );
    assert_eq!(ps.sites, pi.sites, "forwarding under slices changed site statistics");
    for p in [&ps, &pi] {
        let exit_words: u64 = p.sites.iter().map(|s| s.live_at_exit_words).sum();
        assert_eq!(
            exit_words, stw.stats.final_heap_words,
            "site exit residency must account for the whole resident heap"
        );
        for c in &p.censuses {
            let by_site: u64 = c.sites.iter().map(|s| s.classes.total_words()).sum();
            assert_eq!(
                by_site,
                c.classes.total_words(),
                "census site breakdown must sum to its class totals"
            );
        }
        // The exit census and the survival table are two views of the
        // same HeapMap: per-site words must agree exactly.
        let exit = p
            .censuses
            .iter()
            .find(|c| c.when == til::CensusWhen::Exit)
            .expect("exit census");
        for s in &p.sites {
            let census_words = exit
                .sites
                .iter()
                .filter(|e| e.name == s.name)
                .map(|e| e.classes.total_words())
                .sum::<u64>();
            assert_eq!(
                census_words, s.live_at_exit_words,
                "site {} disagrees between exit census and survival table",
                s.name
            );
        }
        assert!(
            p.sites.iter().any(|s| s.survived_words.len() >= 2),
            "no site survived two collections — forwarding depth untested"
        );
    }
}

#[test]
fn census_cadence_knob_takes_periodic_samples() {
    // `Options::census_every` switches the single default mid-run
    // sample to a periodic cadence: samples carry increasing sequence
    // numbers, sit at least the cadence apart on the instruction
    // timeline, and stay observational (Stats identical to an
    // unprofiled run).
    let every = 3_000u64;
    let src = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
               fun loop (0, acc) = acc
                 | loop (k, acc) = loop (k - 1, acc + length (build (50, nil)))
               val _ = print (Int.toString (loop (200, 0)))";
    for mut opts in both_modes() {
        opts.census_every = Some(every);
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let on = exe.run_with(1_000_000_000, true).expect("profiled run");
        let off = exe.run_with(1_000_000_000, false).expect("unprofiled run");
        assert_eq!(off.stats, on.stats, "periodic censuses perturbed the run");
        let p = on.profile.expect("profile");
        let mids: Vec<_> = p
            .censuses
            .iter()
            .filter_map(|c| match c.when {
                til::CensusWhen::MidRun { at_instr, seq } => Some((at_instr, seq)),
                _ => None,
            })
            .collect();
        assert!(
            mids.len() >= 3,
            "cadence {every} over {} instrs took only {} samples",
            on.stats.instrs,
            mids.len()
        );
        for (i, &(_, seq)) in mids.iter().enumerate() {
            assert_eq!(seq, i as u64, "mid-run sequence numbers must be dense");
        }
        for w in mids.windows(2) {
            assert!(
                w[1].0 >= w[0].0 + every,
                "samples closer than the cadence: {} then {}",
                w[0].0,
                w[1].0
            );
        }
        assert!(
            p.censuses.iter().any(|c| c.when == til::CensusWhen::Exit),
            "exit census still present"
        );
    }
}
