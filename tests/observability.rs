//! Regression tests for the observability layer and the PR-1 bug
//! fixes: pass-attributed verify forensics, per-pass optimizer stats,
//! phase tracing, and the exit-time memory-accounting fix.

use til::{Compiler, Options};

/// Both paper configurations, verification on — every regression test
/// here runs under both (the two compilers share one semantics and
/// one diagnostic discipline).
fn both_modes() -> [Options; 2] {
    let mut til = Options::til();
    til.verify = true;
    let mut base = Options::baseline();
    base.verify = true;
    [til, base]
}

// --- Root cause: `Executable::run` computed the final live heap into
// a discarded local, so `max_live_words` stayed at its last
// collection-time sample. A program whose high-water is its final
// live set (e.g. it allocates once and never collects) reported ~0
// for the paper's Table 4 metric.

#[test]
fn final_live_heap_counts_toward_memory_high_water() {
    // Builds a ~1000-element list and holds it to the end. Small
    // enough that no collection runs — so before the fix,
    // max_live_words was never sampled.
    let src = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
               val xs = build (1000, nil)
               val _ = print (Int.toString (length xs))";
    for opts in both_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run(1_000_000_000).expect("run");
        assert_eq!(out.output, "1000");
        assert_eq!(out.stats.gc_count, 0, "test premise: no collection ran");
        assert!(
            out.stats.final_heap_words >= 1000,
            "final resident heap must cover the 1000-cons list, got {}",
            out.stats.final_heap_words
        );
        assert!(
            out.stats.max_live_words >= out.stats.final_heap_words,
            "exit-time heap must fold into the high-water mark: max {} < final {}",
            out.stats.max_live_words,
            out.stats.final_heap_words
        );
    }
}

#[test]
fn memory_high_water_still_reflects_collections() {
    // Churn enough garbage to force collections: the high-water mark
    // must come from collection-time samples, not only from exit.
    let src = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
               fun churn 0 = 0 | churn k = (length (build (2000, nil)) ; churn (k - 1))
               val _ = print (Int.toString (churn 500))";
    for opts in both_modes() {
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run(2_000_000_000).expect("run");
        assert_eq!(out.output, "0");
        assert!(out.stats.gc_count > 0, "test premise: collections ran");
        assert!(
            out.stats.max_live_words >= out.stats.final_heap_words,
            "high-water mark can never be below the exit-time heap"
        );
    }
}

// --- The pass-attributed verify forensics: a type-breaking pass must
// be *named* in the diagnostic, with before/after IR dumps.

#[test]
fn broken_pass_is_named_in_verify_diagnostic() {
    // `minimize-fix` is scheduled in both TIL and baseline modes.
    let _guard = til_opt::fault::break_pass("minimize-fix");
    for opts in both_modes() {
        let err = match Compiler::new(opts).compile("val _ = print (Int.toString (1 + 2))") {
            Err(d) => d,
            Ok(_) => panic!("injected breakage must fail verification"),
        };
        assert_eq!(err.level, til_common::Level::Ice);
        assert!(
            err.message.contains("pass `minimize-fix` broke typing"),
            "diagnostic must name the offending pass: {}",
            err.message
        );
        assert!(
            err.message.contains("IR dumps"),
            "diagnostic must point at the before/after IR dumps: {}",
            err.message
        );
        // The dumps referenced by the diagnostic must exist and hold
        // pretty-printed Bform.
        let mut found = 0;
        for word in err.message.split([' ', ';']) {
            if word.contains("til-verify-") {
                let path = word.trim_end_matches(['/', ',']);
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("dump {path} unreadable: {e}"));
                assert!(!text.trim().is_empty(), "dump {path} is empty");
                found += 1;
            }
        }
        assert_eq!(found, 2, "expected before and after dumps: {}", err.message);
    }
}

#[test]
fn unbroken_compile_verifies_clean() {
    // The same programs compile fine when nothing is injected — the
    // forensics only fire on real type breakage.
    for opts in both_modes() {
        let exe = Compiler::new(opts)
            .compile("val _ = print (Int.toString (1 + 2))")
            .expect("verified compile");
        assert_eq!(exe.run(1_000_000_000).unwrap().output, "3");
    }
}

// --- Per-pass optimizer stats and phase-level compile info.

#[test]
fn optimizer_reports_per_pass_stats() {
    let src = "fun f x = x + 1
               fun g x = f (f x)
               val _ = print (Int.toString (g 40))";
    for opts in both_modes() {
        let exe = Compiler::new(opts.clone()).compile(src).expect("compile");
        let stats = exe.info.opt_stats.clone().expect("opt stats");
        assert!(!stats.pass_stats.is_empty(), "per-pass stats recorded");
        let total_runs: usize = stats.pass_stats.iter().map(|p| p.runs).sum();
        assert_eq!(
            total_runs, stats.passes,
            "pass aggregate runs must account for every scheduled pass"
        );
        let reduce = stats
            .pass_stats
            .iter()
            .find(|p| p.name == "simplify-reduce")
            .expect("reduction pass always runs");
        assert!(reduce.runs >= 1);
        assert!(
            reduce.nodes_eliminated > 0,
            "reduction must shrink the prelude-laden program"
        );
    }
}

#[test]
fn compile_info_reports_phases_and_trace_events() {
    let exe = Compiler::new(Options::til())
        .compile("val _ = print (Int.toString 7)")
        .expect("compile");
    let names: Vec<&str> = exe.info.phases.iter().map(|p| p.name).collect();
    for expected in ["parse", "elaborate", "to-lmli", "to-bform", "optimize", "backend"] {
        assert!(names.contains(&expected), "missing phase {expected}: {names:?}");
    }
    assert!(exe.info.total_seconds() > 0.0);
    assert!(exe.info.phase_seconds("optimize") > 0.0);
    // The optimize phase carries an IR node count and a (negative)
    // delta: optimization must shrink the prelude-laden program.
    let optimize = exe.info.phases.iter().find(|p| p.name == "optimize").unwrap();
    assert!(optimize.ir_nodes.unwrap() > 0);
    assert!(optimize.ir_delta.unwrap() < 0);
    // The structured trace includes nested per-pass events.
    assert!(exe
        .info
        .events
        .iter()
        .any(|e| e.name == "simplify-reduce" && e.depth > 0));
    assert!(exe.info.events.iter().any(|e| e.name == "backend"));
}
