//! Determinism and prelude-cache guarantees of the staged pipeline.
//!
//! The compiler must be a pure function of (source, options): the
//! linked code, GC tables, and initial memory image must be
//! byte-identical whether the backend ran on one worker or eight, and
//! whether the prelude came from the per-compiler cache or was rebuilt
//! from scratch. Each test pins one cache level and varies the other
//! axes — the cache level itself changes variable-id interleavings, so
//! images are only comparable within a level.

use til::{Compiler, Options, PreludeCache};
use til_bench::gen::{generate_class, Class};

const SRC: &str = "datatype 'a tree = Lf | Nd of 'a tree * 'a * 'a tree
     fun insert (Lf, x) = Nd (Lf, x, Lf)
       | insert (Nd (a, y, b), x) =
           if x < y then Nd (insert (a, x), y, b) else Nd (a, y, insert (b, x))
     fun sum Lf = 0 | sum (Nd (a, x, b)) = sum a + x + sum b
     fun build (0, t) = t | build (n, t) = build (n - 1, insert (t, n * 7 mod 23))
     exception Stop of int
     fun guard n = if n > 100 then raise Stop n else n
     val total = (guard (sum (build (40, Lf)))) handle Stop n => n - 100
     val _ = print (Int.toString total)";

const EXPECTED: &str = "350";

/// One compile under the given cache level and worker count, from a
/// dedicated `Compiler` (cold) — returns the compiler so a second,
/// warm compile can reuse its cache.
fn opts(cache: PreludeCache, jobs: usize) -> Options {
    let mut o = Options::til();
    o.prelude_cache = cache;
    o.jobs = Some(jobs);
    o
}

/// The comparable fingerprint of a compile: linked code, GC tables,
/// and the initial memory image.
fn compile(c: &Compiler) -> (Vec<til_vm::isa::Instr>, til_runtime::GcTables, Vec<(u64, u64)>) {
    let exe = c.compile(SRC).expect("compile");
    assert_eq!(
        exe.run(2_000_000_000).expect("run").output,
        EXPECTED,
        "fixture output"
    );
    let l = exe.linked();
    (l.code.clone(), l.tables.clone(), l.image.clone())
}

/// FNV-1a over a canonical rendering of the linked unit: every code
/// instruction (assembly `Display`), the full GC tables (`Debug`), and
/// the initial memory image word by word. Any byte-level drift in the
/// emitted code, the tables, or the statics changes the hash.
fn image_hash(exe: &til::Executable) -> u64 {
    let l = exe.linked();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for ins in &l.code {
        eat(format!("{ins};").as_bytes());
    }
    // The tables hash in sorted-key order (they live in hash maps,
    // whose iteration order is not part of the image).
    let mut gc_points: Vec<_> = l.tables.gc_points.iter().collect();
    gc_points.sort_by_key(|(pc, _)| **pc);
    for (pc, gp) in gc_points {
        eat(format!("g{pc}:{gp:?};").as_bytes());
    }
    let mut call_sites: Vec<_> = l.tables.call_sites.iter().collect();
    call_sites.sort_by_key(|(pc, _)| **pc);
    for (pc, fi) in call_sites {
        eat(format!("c{pc}:{fi:?};").as_bytes());
    }
    let mut stops: Vec<_> = l.tables.stops.iter().collect();
    stops.sort();
    eat(format!("s{stops:?};{:?}", l.tables.globals).as_bytes());
    for (a, w) in &l.image {
        eat(&a.to_le_bytes());
        eat(&w.to_le_bytes());
    }
    h
}

/// The golden-image corpus: the fixture above plus one generated
/// program per differential class, with the committed hash of the
/// full-TIL linked image. One hash per program: the image is
/// byte-identical across every prelude-cache level and worker count
/// (the test asserts exactly that), and the hashes pin the backend's
/// observable output — any refactor of lowering, register allocation,
/// emission, or linking must either reproduce them byte for byte or
/// consciously re-pin them with a changelog entry explaining the
/// image change.
const GOLDEN_SEED: u64 = 3;
fn golden_corpus() -> Vec<(&'static str, String, u64)> {
    vec![
        ("fixture", SRC.to_string(), 0x272e_5529_0882_71be),
        (
            "mixed",
            generate_class(GOLDEN_SEED, Class::Mixed).source,
            0x1a1e_1e6c_c146_cc28,
        ),
        (
            "exceptions",
            generate_class(GOLDEN_SEED, Class::Exceptions).source,
            0xa918_cf8e_675f_c936,
        ),
        (
            "strings",
            generate_class(GOLDEN_SEED, Class::Strings).source,
            0xabed_6ca9_50c2_6e97,
        ),
    ]
}

#[test]
fn linked_image_matches_the_committed_golden_hash() {
    // Re-pin after an intentional image change with
    // `TIL_PIN_GOLDEN=1 cargo test --test determinism linked_image -- --nocapture`
    // and paste the printed constants.
    let pin = std::env::var("TIL_PIN_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    for (name, src, want) in golden_corpus() {
        for cache in [PreludeCache::Off, PreludeCache::Elab, PreludeCache::Lmli] {
            for jobs in [1usize, 8] {
                let exe = Compiler::new(opts(cache, jobs))
                    .compile(&src)
                    .expect("compile");
                if pin {
                    println!("golden {name} {cache:?} jobs={jobs}: {:#018x}", image_hash(&exe));
                    continue;
                }
                assert_eq!(
                    image_hash(&exe),
                    want,
                    "[{name}/{cache:?}/jobs={jobs}] linked image diverged from \
                     the committed golden hash (got {:#018x})",
                    image_hash(&exe)
                );
            }
        }
        if pin {
            continue;
        }
        // The collection-scheduling mode is a runtime knob: compiling
        // with the incremental scheduler must reproduce the same image.
        let mut inc = opts(PreludeCache::Elab, 1);
        inc.gc_mode = til::CollectMode::Incremental {
            budget: til::DEFAULT_PAUSE_BUDGET,
        };
        let exe = Compiler::new(inc).compile(&src).expect("compile");
        assert_eq!(
            image_hash(&exe),
            want,
            "[{name}] gc_mode leaked into the golden image"
        );
    }
}

#[test]
fn output_is_identical_across_jobs_and_cache_state() {
    for cache in [PreludeCache::Off, PreludeCache::Elab, PreludeCache::Lmli] {
        let reference = compile(&Compiler::new(opts(cache, 1)));
        for jobs in [1usize, 8] {
            let c = Compiler::new(opts(cache, jobs));
            let cold = compile(&c);
            let warm = compile(&c);
            assert_eq!(
                reference, cold,
                "{cache:?}/jobs={jobs}: cold compile diverges from the jobs=1 reference"
            );
            assert_eq!(
                reference, warm,
                "{cache:?}/jobs={jobs}: warm (cached-prelude) compile diverges"
            );
        }
    }
}

#[test]
fn gc_mode_changes_neither_the_image_nor_the_run() {
    // The collection-scheduling mode is a pure runtime knob: compiles
    // under both option values must produce byte-identical linked
    // images, and (profile off) the same image must run to identical
    // output and Stats under both modes — even when collections run.
    let churn = "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
                 fun churn 0 = 0 | churn k = (length (build (800, nil)) ; churn (k - 1))
                 val _ = print (Int.toString (churn 40))";
    let mut stw = opts(PreludeCache::Elab, 1);
    stw.link.semi_bytes = 64 << 10;
    let mut inc = stw.clone();
    inc.gc_mode = til::CollectMode::Incremental {
        budget: til::DEFAULT_PAUSE_BUDGET,
    };
    let exe_stw = Compiler::new(stw).compile(churn).expect("stw compile");
    let exe_inc = Compiler::new(inc).compile(churn).expect("incremental compile");
    let fp = |e: &til::Executable| {
        let l = e.linked();
        (l.code.clone(), l.tables.clone(), l.image.clone())
    };
    assert_eq!(
        fp(&exe_stw),
        fp(&exe_inc),
        "gc_mode leaked into the compiled image"
    );
    let out_stw = exe_stw.run_with(2_000_000_000, false).expect("stw run");
    let out_inc = exe_inc.run_with(2_000_000_000, false).expect("incremental run");
    assert!(out_stw.stats.gc_count > 0, "test premise: collections ran");
    assert_eq!(out_stw.output, out_inc.output, "gc_mode changed program output");
    assert_eq!(out_stw.stats, out_inc.stats, "gc_mode changed Stats");
    assert_eq!(out_stw.output, "0");
}

#[test]
fn elab_and_lmli_caches_agree_with_uncached_compiles() {
    // `Off` rebuilds the prelude every compile through the same split
    // path the caches snapshot, so all three levels must agree with
    // themselves across cold/warm — checked above — and `Off`/`Elab`
    // must agree with each other (identical construction order).
    let off = compile(&Compiler::new(opts(PreludeCache::Off, 1)));
    let elab = compile(&Compiler::new(opts(PreludeCache::Elab, 1)));
    assert_eq!(off, elab, "uncached and Elab-cached compiles diverge");
}

#[test]
fn warm_compile_skips_prelude_work() {
    let c = Compiler::new(opts(PreludeCache::Elab, 1));
    let cold = c.compile(SRC).expect("cold compile");
    let cold_phases: Vec<&str> = cold.info.phases.iter().map(|p| p.name).collect();
    assert!(
        cold_phases.contains(&"prelude-parse") && cold_phases.contains(&"prelude-elaborate"),
        "cold compile must build the prelude: {cold_phases:?}"
    );
    assert!(
        !cold.info.events.iter().any(|e| e.name == "prelude-cache-hit"),
        "cold compile must not report a cache hit"
    );

    let warm = c.compile(SRC).expect("warm compile");
    let warm_phases: Vec<&str> = warm.info.phases.iter().map(|p| p.name).collect();
    assert!(
        !warm_phases.iter().any(|p| p.starts_with("prelude-")),
        "warm compile must skip all prelude phases: {warm_phases:?}"
    );
    assert!(
        warm.info.events.iter().any(|e| e.name == "prelude-cache-hit"),
        "warm compile must report the cache hit"
    );
    // The user-visible pipeline still runs in full, verified.
    for required in ["parse", "elaborate", "to-lmli", "to-bform", "optimize",
                     "closure", "rtl-verify", "gc-check", "backend"] {
        assert!(
            warm_phases.contains(&required),
            "warm compile lost phase {required}: {warm_phases:?}"
        );
    }
}

#[test]
fn lmli_cache_makes_repeated_compiles_at_least_twice_as_fast() {
    // Same-process benchmark: repeated compiles against the Lmli-level
    // cache must beat cold compiles by at least 2× — the whole point
    // of splitting the compilation unit. A small program is the
    // scenario the cache targets (REPL turnarounds, test fixtures):
    // there the prelude front end dominates a cold compile, and the
    // cache plus the post-join prune removes nearly all of it
    // (measured ≈4×; the 2× bound leaves slack for noisy machines).
    // Minima over several runs keep scheduler noise out.
    let small = "val _ = print (Int.toString (6 * 7))";
    let o = opts(PreludeCache::Lmli, 1);
    let cold = (0..3)
        .map(|_| {
            let c = Compiler::new(o.clone());
            let t = std::time::Instant::now();
            c.compile(small).expect("cold compile");
            t.elapsed()
        })
        .min()
        .unwrap();
    let c = Compiler::new(o);
    c.compile(small).expect("cache-priming compile");
    let warm = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            c.compile(small).expect("warm compile");
            t.elapsed()
        })
        .min()
        .unwrap();
    assert!(
        warm * 2 <= cold,
        "cached compile not 2x faster: cold {cold:?}, warm {warm:?}"
    );
}
