//! Ablations of the paper's individual type-directed optimizations
//! (§3.2): each toggle must preserve semantics; the metrics move the
//! way the paper says.

use til::{Compiler, Options};

fn run(src: &str, opts: Options) -> (String, u64, u64) {
    let exe = Compiler::new(opts).compile(src).expect("compile");
    let out = exe.run(2_000_000_000).expect("run");
    (out.output, out.stats.time(), out.stats.allocated_bytes)
}

const FLOAT_LOOP: &str = "
    val a = Array.array (500, 0.0)
    fun fill i = if i >= 500 then () else (Array.update (a, i, real i * 0.25); fill (i + 1))
    val _ = fill 0
    fun total (i, acc) = if i >= 500 then acc else total (i + 1, acc + Array.sub (a, i))
    val _ = print (Real.toString (total (0, 0.0)))";

#[test]
fn float_boxing_is_load_bearing() {
    // The paper boxes floats in both compilers (§3.2), and the
    // typecase float arm's refinement assumes it; the compiler itself
    // must hold that invariant — the boxed configuration is the only
    // supported one and must keep float programs working under
    // verification.
    let mut o = Options::til();
    o.verify = true;
    assert!(o.lmli.box_floats, "boxing is the supported configuration");
    let (out, _, _) = run(FLOAT_LOOP, o);
    assert_eq!(out, "31187.5");
}

#[test]
fn array_specialization_ablation() {
    // Without specialization, float arrays hold boxed floats: far more
    // allocation, same answers.
    let mut unspec = Options::til();
    unspec.lmli.specialize_arrays = false;
    let (a, _, alloc_unspec) = run(FLOAT_LOOP, unspec);
    let (b, _, alloc_spec) = run(FLOAT_LOOP, Options::til());
    assert_eq!(a, b);
    assert!(
        alloc_unspec > alloc_spec,
        "boxed-element arrays must allocate more: {alloc_unspec} vs {alloc_spec}"
    );
}

#[test]
fn constructor_flattening_ablation() {
    let src = "
        fun build (0, acc) = acc | build (n, acc) = build (n - 1, (n, n * 2) :: acc)
        fun sum (nil, acc) = acc | sum ((a, b) :: rest, acc) = sum (rest, acc + a + b)
        val _ = print (Int.toString (sum (build (2000, nil), 0)))";
    let mut naive = Options::til();
    naive.lmli.flatten_cons = false;
    let (a, t_naive, alloc_naive) = run(src, naive);
    let (b, t_flat, alloc_flat) = run(src, Options::til());
    assert_eq!(a, b);
    // Flattened cons cells: fewer allocations and less time (the
    // paper's `cons` example).
    assert!(alloc_flat < alloc_naive, "{alloc_flat} vs {alloc_naive}");
    assert!(t_flat < t_naive, "{t_flat} vs {t_naive}");
}

#[test]
fn specialization_off_exercises_runtime_typecase() {
    let src = "
        fun nth (a, i) = Array.sub (a, i)
        val ia = Array.array (3, 7)
        val fa = Array.array (3, 2.5)
        val _ = print (Int.toString (nth (ia, 1)))
        val _ = print \" \"
        val _ = print (Real.toString (nth (fa, 2)))";
    let mut generic = Options::til();
    generic.opt.specialize = false;
    generic.opt.inline = false;
    generic.opt.flatten = false;
    let exe = Compiler::new(generic).compile(src).expect("compile");
    let stats = exe.info.opt_stats.clone().unwrap();
    assert!(
        stats.remaining_typecases > 0,
        "suppressing specialization must leave run-time type analysis"
    );
    assert_eq!(exe.run(1_000_000_000).unwrap().output, "7 2.5");
}
