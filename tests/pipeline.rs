//! Repository-level integration tests spanning every crate: the typed
//! pipeline's invariants, the collector under pressure, exception
//! semantics, and mode agreement.

use til::{Compiler, Mode, Options};

fn run(src: &str, opts: Options) -> String {
    let exe = Compiler::new(opts).compile(src).expect("compile");
    exe.run(2_000_000_000).expect("run").output
}

fn agree(src: &str) -> String {
    let a = run(src, Options::til());
    let b = run(src, Options::baseline());
    assert_eq!(a, b, "TIL and baseline must agree");
    a
}

#[test]
fn deep_tail_recursion_does_not_grow_the_stack() {
    // One million iterations: only tail calls survive regalloc, so the
    // stack must stay flat.
    let out = agree(
        "fun loop (0, acc) = acc | loop (n, acc) = loop (n - 1, acc + 1)
         val _ = print (Int.toString (loop (1000000, 0)))",
    );
    assert_eq!(out, "1000000");
}

#[test]
fn mutual_recursion_across_modes() {
    let out = agree(
        "fun even 0 = true | even n = odd (n - 1)
         and odd 0 = false | odd n = even (n - 1)
         val _ = print (if even 10000 then \"even\" else \"odd\")",
    );
    assert_eq!(out, "even");
}

#[test]
fn exceptions_unwind_through_many_frames() {
    let out = agree(
        "exception Deep of int
         fun dig 0 = raise Deep 42
           | dig n = 1 + dig (n - 1)
         val r = (dig 1000) handle Deep n => n
         val _ = print (Int.toString r)",
    );
    assert_eq!(out, "42");
}

#[test]
fn handlers_nest_and_reraise() {
    let out = agree(
        "exception A exception B
         fun f () = ((raise A) handle B => 1) handle A => 2
         val _ = print (Int.toString (f ()))",
    );
    assert_eq!(out, "2");
}

#[test]
fn gc_preserves_deep_structures() {
    let out = agree(
        "datatype t = L | N of t * int * t
         fun build 0 = L | build n = N (build (n - 1), n, build (n - 1))
         fun sum L = 0 | sum (N (a, x, b)) = sum a + x + sum b
         fun churn 0 = () | churn k = (build 8; churn (k - 1))
         val live = build 10
         val _ = churn 2000
         val _ = print (Int.toString (sum live))",
    );
    assert_eq!(out, "2036");
}

#[test]
fn overflow_is_detected() {
    // 10^18 is representable in both modes (TIL has 64-bit ints, the
    // baseline's tagged representation 63-bit — mirroring the paper's
    // 32- vs 31-bit difference); 10^19 overflows both.
    let out = agree(
        "val big = 1000000000000000000
         val r = (big * 10) handle Overflow => ~1
         val _ = print (Int.toString r)",
    );
    assert_eq!(out, "~1");
}

#[test]
fn polymorphic_equality_on_nested_structures() {
    let out = agree(
        "datatype 'a tree = Lf | Nd of 'a tree * 'a * 'a tree
         val a = Nd (Lf, [1, 2], Nd (Lf, [3], Lf))
         val b = Nd (Lf, [1, 2], Nd (Lf, [3], Lf))
         val c = Nd (Lf, [1, 2], Nd (Lf, [4], Lf))
         val _ = print (if a = b then \"eq\" else \"ne\")
         val _ = print (if a = c then \"eq\" else \"ne\")",
    );
    assert_eq!(out, "eqne");
}

#[test]
fn closures_returned_from_functions_survive_gc() {
    let out = agree(
        "fun adder n = fn x => x + n
         fun spin (0, f) = f | spin (k, f) = spin (k - 1, adder k)
         val keep = adder 100
         val _ = spin (50000, keep)
         val _ = print (Int.toString (keep 1))",
    );
    assert_eq!(out, "101");
}

#[test]
fn exception_payloads_cross_handlers_under_gc_pressure() {
    // First-class exception values end-to-end under heap pressure: a
    // string payload grown across the raising recursion, a list live
    // *only* into the handler, and enough churn inside the protected
    // region that collections run before the raise — so the payload,
    // the handler-live list, and the handler record itself all
    // survive copying. The 64 KB semispace forces several
    // collections per run in every mode.
    let src = "
        fun build (n, acc) = if n = 0 then acc else build (n - 1, n :: acc)
        fun sum (xs, a) = case xs of nil => a | x :: r => sum (r, a + x)
        exception Grown of string
        fun grow (n, s) =
            if n = 0 then raise Grown s
            else sum (build (n, nil), 0) + grow (n - 1, s ^ Int.toString n)
        fun shield n =
            let val keep = build (n, nil)
                val got = (grow (60, \"p\")) handle Grown s => size s + sum (keep, 0)
            in if n = 0 then got else got + shield (n - 1) end
        val _ = print (Int.toString (shield 2))
    ";
    // The payload is \"p\" ^ \"60\" ^ ... ^ \"1\" (112 chars); each of the
    // three shield levels adds sum (build (n, nil)) for n = 2, 1, 0:
    // 3 * 112 + (3 + 1 + 0) = 340.
    let mut outputs = Vec::new();
    for mut opts in [Options::o0(), Options::til(), Options::baseline()] {
        opts.link.semi_bytes = 64 << 10;
        let exe = Compiler::new(opts).compile(src).expect("compile");
        let out = exe.run(2_000_000_000).expect("run");
        assert!(out.stats.gc_count > 0, "test premise: collections ran");
        outputs.push(out.output);
    }
    for o in &outputs {
        assert_eq!(o, "340", "exception payload corrupted: {outputs:?}");
    }
}

#[test]
fn string_heavy_program() {
    let out = agree(
        "fun rep (0, s) = s | rep (n, s) = rep (n - 1, s ^ \"ab\")
         val s = rep (50, \"\")
         val _ = print (Int.toString (size s))
         val _ = print (str (String.sub (s, 99)))",
    );
    assert_eq!(out, "100b");
}

#[test]
fn verify_mode_checks_every_pass() {
    // With verify on (the default), a full compile exercises the
    // Lambda, Lmli, Bform (per-pass), and closure checkers.
    let mut opts = Options::til();
    opts.verify = true;
    assert_eq!(opts.mode, Mode::Til);
    let exe = Compiler::new(opts)
        .compile("val _ = print (Int.toString (length [1,2,3]))")
        .expect("verified compile");
    assert_eq!(exe.run(1_000_000_000).unwrap().output, "3");
}

#[test]
fn user_errors_are_reported_not_ice() {
    for bad in [
        "val x = 1 + \"two\"",
        "val x = undefined_thing",
        "fun f = 3",
        "val x = (1, 2",
    ] {
        match Compiler::new(Options::til()).compile(bad) {
            Err(d) => assert_eq!(
                d.level,
                til_common::Level::Error,
                "expected user error for {bad:?}, got {d}"
            ),
            Ok(_) => panic!("expected failure for {bad:?}"),
        }
    }
}
