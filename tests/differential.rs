//! Property-based differential testing: generated programs must
//! produce identical output under the TIL and baseline compilers —
//! two compilation strategies, one semantics.

use proptest::prelude::*;
use til::{Compiler, Options};

/// A tiny generator of well-typed integer expressions.
#[derive(Debug, Clone)]
enum E {
    Lit(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    If(Box<E>, Box<E>, Box<E>),
    LetPair(Box<E>, Box<E>),
}

fn gen_e() -> impl Strategy<Value = E> {
    let leaf = any::<i8>().prop_map(E::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| E::If(Box::new(a), Box::new(b), Box::new(c))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| E::LetPair(Box::new(a), Box::new(b))),
        ]
    })
}

fn sml(e: &E) -> String {
    match e {
        E::Lit(n) => {
            if *n < 0 {
                format!("~{}", -(*n as i64))
            } else {
                n.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", sml(a), sml(b)),
        E::Sub(a, b) => format!("({} - {})", sml(a), sml(b)),
        E::Mul(a, b) => format!("({} * {})", sml(a), sml(b)),
        E::If(c, t, f) => format!("(if {} > 0 then {} else {})", sml(c), sml(t), sml(f)),
        E::LetPair(a, b) => format!(
            "(let val p = ({}, {}) in #1 p + #2 p end)",
            sml(a),
            sml(b)
        ),
    }
}

/// Reference evaluator (i64, overflow impossible for depth-4 i8 trees).
fn eval(e: &E) -> i64 {
    match e {
        E::Lit(n) => *n as i64,
        E::Add(a, b) => eval(a) + eval(b),
        E::Sub(a, b) => eval(a) - eval(b),
        E::Mul(a, b) => eval(a) * eval(b),
        E::If(c, t, f) => {
            if eval(c) > 0 {
                eval(t)
            } else {
                eval(f)
            }
        }
        E::LetPair(a, b) => eval(a) + eval(b),
    }
}

fn fmt_sml_int(v: i64) -> String {
    if v < 0 {
        format!("~{}", -v)
    } else {
        v.to_string()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn generated_expressions_agree_with_reference(e in gen_e()) {
        let src = format!("val _ = print (Int.toString ({}))", sml(&e));
        let expected = fmt_sml_int(eval(&e));
        for opts in [Options::til(), Options::baseline()] {
            let exe = Compiler::new(opts).compile(&src).expect("compile");
            let out = exe.run(1_000_000_000).expect("run");
            prop_assert_eq!(&out.output, &expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn list_programs_agree(xs in proptest::collection::vec(-50i64..50, 0..12)) {
        let lits: Vec<String> = xs.iter().map(|n| if *n < 0 { format!("~{}", -n) } else { n.to_string() }).collect();
        let src = format!(
            "val xs = [{}]
             val doubled = map (fn x => x * 2) xs
             val total = foldl (fn (a, b) => a + b) 0 doubled
             val _ = print (Int.toString (total + length xs))",
            lits.join(", ")
        );
        let expected = fmt_sml_int(xs.iter().map(|x| x * 2).sum::<i64>() + xs.len() as i64);
        for opts in [Options::til(), Options::baseline()] {
            let exe = Compiler::new(opts).compile(&src).expect("compile");
            let out = exe.run(1_000_000_000).expect("run");
            prop_assert_eq!(&out.output, &expected);
        }
    }
}
