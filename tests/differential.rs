//! Differential testing over generated typed programs.
//!
//! [`til_bench::gen`] produces well-typed programs in four classes:
//! the broad `Mixed` feature sweep (recursion, currying, tuples,
//! polymorphic instantiation with typecase-specialized array access,
//! bounds-checked array reads, heap churn), the `Exceptions` class
//! (payload-carrying raise/handle across recursion and datatypes,
//! values live only into handlers, nested handlers with re-raises,
//! recovered traps, churn inside protected regions), the `Strings`
//! class (runtime string services, long-lived strings across
//! collections, string contents in the output), and the `Readers`
//! class (lexer-shaped index loops whose inner bodies are
//! bounds-checked `String.sub` reads over one long-lived input
//! string, including `Subscript`-recovered reads past both ends).
//! Every program
//! is compiled at O0 (the oracle), under full TIL optimization, under
//! every single-pass ablation ([`Options::ablations`]), and under the
//! baseline (tagged) compiler — all with verification on, so the
//! Bform per-pass typechecker, the closure-stage per-pass
//! typechecker, the RTL verifier, the GC-table cross-check, and the
//! machine-code verifier all run on every configuration of every
//! program, and every image also re-runs under incremental
//! collection. Outputs must agree exactly.
//!
//! The corpus is seeded deterministically; the deep (ignored)
//! variants read `TIL_DIFF_SEED` so CI can rotate the corpus per run
//! without making tier-1 flaky.

use til::{CollectMode, Compiler, LinkOptions, Options, DEFAULT_PAUSE_BUDGET};
use til_bench::gen::{generate_class, Class};

const SEED: u64 = 0x05ee_d711_0002;

/// A semispace small enough that the generated churn loop collects,
/// large enough for every live set the generator can produce.
fn small_heap(mut o: Options) -> Options {
    o.link = LinkOptions {
        semi_bytes: 64 << 10,
        ..LinkOptions::default()
    };
    o
}

/// Compiles and runs one configuration; returns (output, gc_count).
fn run_config(cfg: &str, opts: Options, seed: u64, src: &str) -> (String, u64) {
    let exe = Compiler::new(opts).compile(src).unwrap_or_else(|d| {
        panic!("seed {seed:#x} [{cfg}]: compile failed: {d}\n--- source ---\n{src}")
    });
    // Verification really ran at every stage: the driver records a
    // phase for the closure passes, the RTL verifier, and the GC-table
    // cross-check.
    let names: Vec<&str> = exe.info.phases.iter().map(|p| p.name).collect();
    for required in ["closure", "rtl-verify", "gc-check", "mc-verify"] {
        assert!(
            names.contains(&required),
            "seed {seed:#x} [{cfg}]: phase {required} did not run: {names:?}"
        );
    }
    let out = exe.run(2_000_000_000).unwrap_or_else(|e| {
        panic!("seed {seed:#x} [{cfg}]: run failed: {e}\n--- source ---\n{src}")
    });
    // Every configuration also runs under incremental collection
    // scheduling on the same compiled image: slicing the collector's
    // work must never change program results or machine counters.
    let inc = exe
        .run_with_gc_mode(
            2_000_000_000,
            false,
            CollectMode::Incremental {
                budget: DEFAULT_PAUSE_BUDGET,
            },
        )
        .unwrap_or_else(|e| {
            panic!("seed {seed:#x} [{cfg}/incremental]: run failed: {e}\n--- source ---\n{src}")
        });
    assert_eq!(
        inc.output, out.output,
        "seed {seed:#x} [{cfg}]: incremental collection changed program output\n--- source ---\n{src}"
    );
    assert_eq!(
        inc.stats, out.stats,
        "seed {seed:#x} [{cfg}]: incremental collection changed Stats\n--- source ---\n{src}"
    );
    (out.output, out.stats.gc_count)
}

/// Runs `cases` seeds of `class` starting at `base`: O0 oracle vs
/// full TIL, every ablation, and the baseline compiler. Returns total
/// collections observed across the corpus.
fn run_corpus_class(base: u64, cases: u64, class: Class) -> u64 {
    let mut total_gc = 0;
    for i in 0..cases {
        let g = generate_class(base.wrapping_add(i), class);
        let label = |cfg: &str| format!("{}/{cfg}", class.name());
        let (oracle, gc) = run_config(&label("o0"), small_heap(Options::o0()), g.seed, &g.source);
        total_gc += gc;
        assert!(
            !oracle.is_empty(),
            "seed {:#x}: program printed nothing\n{}",
            g.seed,
            g.source
        );
        let mut configs: Vec<(&'static str, Options)> =
            vec![("til", Options::til()), ("baseline", Options::baseline())];
        configs.extend(Options::ablations());
        for (cfg, opts) in configs {
            let (out, gc) = run_config(&label(cfg), small_heap(opts), g.seed, &g.source);
            total_gc += gc;
            assert_eq!(
                out, oracle,
                "seed {:#x}: [{}] diverges from the O0 oracle\n--- source ---\n{}",
                g.seed,
                label(cfg),
                g.source
            );
        }
    }
    total_gc
}

/// The original corpus runner: [`Class::Mixed`].
fn run_corpus(base: u64, cases: u64) -> u64 {
    run_corpus_class(base, cases, Class::Mixed)
}

#[test]
fn generated_programs_agree_across_optimization_levels() {
    let total_gc = run_corpus(SEED, 4);
    // The corpus must actually exercise the collector (nearly tag-free
    // and tagged both): a zero-GC run would silently stop testing the
    // GC tables the verifiers vouch for.
    assert!(
        total_gc >= 1,
        "corpus never triggered a collection; shrink the test semispace"
    );
}

#[test]
fn exception_programs_agree_across_optimization_levels() {
    // The raise/handle class: every config compiles handler-crossing
    // control flow with full verification (the per-pass typecheckers,
    // the RTL verifier, the GC-table cross-check, and mc-verify all
    // assert over handler edges), and the collector runs with
    // handlers installed.
    let total_gc = run_corpus_class(SEED, 2, Class::Exceptions);
    assert!(
        total_gc >= 1,
        "exception corpus never triggered a collection with a handler installed"
    );
}

#[test]
fn string_programs_agree_across_optimization_levels() {
    // The string-heavy class: runtime string services (RtCall
    // allocation) under every config, long-lived strings surviving
    // collections, and string *contents* in the compared output.
    let total_gc = run_corpus_class(SEED, 2, Class::Strings);
    assert!(
        total_gc >= 1,
        "string corpus never triggered a collection with live strings"
    );
}

#[test]
fn reader_programs_agree_across_optimization_levels() {
    // The lexer-shaped class: `String.sub`-heavy index loops over one
    // long-lived input string under every config, with the input held
    // live across the churn loop's collections and `Subscript`
    // recovery on reads past both ends of the string.
    let total_gc = run_corpus_class(SEED, 2, Class::Readers);
    assert!(
        total_gc >= 1,
        "reader corpus never triggered a collection with the input live"
    );
}

/// Minimized regression for the handler-crossing GC-liveness bug the
/// exception corpus flushed out: `keep` is live *only* into the
/// handler, and `boom` churns enough heap inside the protected region
/// to force many collections before raising. Liveness (and therefore
/// the call-site GC descriptors) used to add the handler edge only at
/// the `PushHandler` itself, so `keep` was considered dead across the
/// region's calls, omitted from the collector's root set, and left
/// dangling into from-space after the second collection — full TIL
/// mode printed garbage (e.g. 112) instead of 180. The shared
/// successor model (`til_rtl::analysis::successors`) now adds the
/// handler edge from every instruction in the protected region.
#[test]
fn values_live_only_into_a_handler_survive_collections() {
    const SRC: &str = "
        fun build (n, acc) = if n = 0 then acc else build (n - 1, n :: acc)
        fun sum (xs, a) = case xs of nil => a | x :: r => sum (r, a + x)
        fun boom n =
            if n = 0 then raise Fail \"deep\"
            else sum (build (n, nil), 0) + boom (n - 1)
        fun shield n =
            let val keep = build (9, nil)
                val got = (boom 400) handle Fail _ => sum (keep, 0)
            in if n = 0 then got else got + shield (n - 1) end
        val _ = print (Int.toString (shield 3))
    ";
    for (cfg, opts) in [
        ("o0", Options::o0()),
        ("til", Options::til()),
        ("baseline", Options::baseline()),
    ] {
        let (out, gc) = run_config(cfg, small_heap(opts), 0, SRC);
        assert_eq!(out, "180", "[{cfg}] handler-crossing liveness regressed");
        assert!(gc >= 2, "[{cfg}] premise: multiple collections inside the region");
    }
}

/// The deep-corpus base seed: `TIL_DIFF_SEED` (set by CI from the
/// workflow run number) rotates the corpus per run without making
/// tier-1 flaky.
fn deep_base() -> u64 {
    std::env::var("TIL_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|n| SEED.wrapping_add(n.wrapping_mul(0x9e37_79b9)))
        .unwrap_or(SEED)
}

/// The deep corpus CI runs with a rotated seed. Ignored by default so
/// tier-1 stays fast and deterministic.
#[test]
#[ignore = "deep corpus: run explicitly, optionally with TIL_DIFF_SEED=<n>"]
fn deep_generated_corpus_with_rotated_seed() {
    let total_gc = run_corpus(deep_base(), 16);
    assert!(total_gc >= 1);
}

/// The deep raise/handle corpus, rotated along with the mixed one
/// (CI's `differential-deep` job picks every ignored test up).
#[test]
#[ignore = "deep corpus: run explicitly, optionally with TIL_DIFF_SEED=<n>"]
fn deep_exception_corpus_with_rotated_seed() {
    let total_gc = run_corpus_class(deep_base(), 8, Class::Exceptions);
    assert!(total_gc >= 1);
}

/// The deep string-heavy corpus, rotated along with the mixed one.
#[test]
#[ignore = "deep corpus: run explicitly, optionally with TIL_DIFF_SEED=<n>"]
fn deep_string_corpus_with_rotated_seed() {
    let total_gc = run_corpus_class(deep_base(), 8, Class::Strings);
    assert!(total_gc >= 1);
}

/// The deep reader/lexer corpus, rotated along with the mixed one.
#[test]
#[ignore = "deep corpus: run explicitly, optionally with TIL_DIFF_SEED=<n>"]
fn deep_reader_corpus_with_rotated_seed() {
    let total_gc = run_corpus_class(deep_base(), 8, Class::Readers);
    assert!(total_gc >= 1);
}

/// Pairwise ablations: single-pass ablations can mask bugs that only
/// appear when two passes are *both* disabled (one pass cleaning up
/// after the other's absence). All C(7,2) = 21 pair configurations
/// exist ([`Options::ablation_pairs`]); compiling every program under
/// every pair is too slow even for the deep tier, so each program
/// gets a seeded sample — rotated by `TIL_DIFF_SEED` along with the
/// corpus, so CI covers different pairs each run while any single
/// failure stays reproducible from the printed seed. The programs
/// rotate through every generator class, so the pairwise sample also
/// covers raise/handle and string-heavy control flow.
#[test]
#[ignore = "deep corpus: run explicitly, optionally with TIL_DIFF_SEED=<n>"]
fn deep_pairwise_ablations_agree() {
    const PROGRAMS: u64 = 6;
    const PAIRS_PER_PROGRAM: usize = 6;
    let base = deep_base();
    let pairs = Options::ablation_pairs();
    let r = &mut til_bench::rng::Rng::new(base ^ 0x9a12_ab1a_7e55_0003);
    for i in 0..PROGRAMS {
        let class = Class::ALL[(i % Class::ALL.len() as u64) as usize];
        let g = generate_class(base.wrapping_add(i), class);
        let (oracle, _) = run_config(
            &format!("{}/o0", class.name()),
            small_heap(Options::o0()),
            g.seed,
            &g.source,
        );
        let mut remaining: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..PAIRS_PER_PROGRAM {
            let k = r.range(0, remaining.len() as i64) as usize;
            let (name, opts) = &pairs[remaining.swap_remove(k)];
            let label = format!("{}/{name}", class.name());
            let (out, _) = run_config(&label, small_heap(opts.clone()), g.seed, &g.source);
            assert_eq!(
                out, oracle,
                "seed {:#x}: pair ablation [{label}] diverges from the O0 oracle\n--- source ---\n{}",
                g.seed, g.source
            );
        }
    }
}
