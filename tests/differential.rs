//! Differential testing: generated programs must produce identical
//! output under the TIL and baseline compilers — two compilation
//! strategies, one semantics.
//!
//! The generator is a small deterministic PRNG (splitmix64) so the
//! suite needs no external crates and every run exercises the same
//! program corpus; bump `SEED` to rotate it.

use til::{Compiler, Options};

const SEED: u64 = 0x05ee_d711_0001;

/// splitmix64 — tiny deterministic PRNG for program generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

/// A tiny generator of well-typed integer expressions.
#[derive(Debug, Clone)]
enum E {
    Lit(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    If(Box<E>, Box<E>, Box<E>),
    LetPair(Box<E>, Box<E>),
}

fn gen_e(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 {
        return E::Lit(rng.range(-128, 128) as i8);
    }
    let d = depth - 1;
    match rng.range(0, 6) {
        0 => E::Lit(rng.range(-128, 128) as i8),
        1 => E::Add(Box::new(gen_e(rng, d)), Box::new(gen_e(rng, d))),
        2 => E::Sub(Box::new(gen_e(rng, d)), Box::new(gen_e(rng, d))),
        3 => E::Mul(Box::new(gen_e(rng, d)), Box::new(gen_e(rng, d))),
        4 => E::If(
            Box::new(gen_e(rng, d)),
            Box::new(gen_e(rng, d)),
            Box::new(gen_e(rng, d)),
        ),
        _ => E::LetPair(Box::new(gen_e(rng, d)), Box::new(gen_e(rng, d))),
    }
}

fn sml(e: &E) -> String {
    match e {
        E::Lit(n) => {
            if *n < 0 {
                format!("~{}", -(*n as i64))
            } else {
                n.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", sml(a), sml(b)),
        E::Sub(a, b) => format!("({} - {})", sml(a), sml(b)),
        E::Mul(a, b) => format!("({} * {})", sml(a), sml(b)),
        E::If(c, t, f) => format!("(if {} > 0 then {} else {})", sml(c), sml(t), sml(f)),
        E::LetPair(a, b) => format!(
            "(let val p = ({}, {}) in #1 p + #2 p end)",
            sml(a),
            sml(b)
        ),
    }
}

/// Reference evaluator (i64, overflow impossible for depth-4 i8 trees).
fn eval(e: &E) -> i64 {
    match e {
        E::Lit(n) => *n as i64,
        E::Add(a, b) => eval(a) + eval(b),
        E::Sub(a, b) => eval(a) - eval(b),
        E::Mul(a, b) => eval(a) * eval(b),
        E::If(c, t, f) => {
            if eval(c) > 0 {
                eval(t)
            } else {
                eval(f)
            }
        }
        E::LetPair(a, b) => eval(a) + eval(b),
    }
}

fn fmt_sml_int(v: i64) -> String {
    if v < 0 {
        format!("~{}", -v)
    } else {
        v.to_string()
    }
}

#[test]
fn generated_expressions_agree_with_reference() {
    let mut rng = Rng(SEED);
    for case in 0..12 {
        let e = gen_e(&mut rng, 4);
        let src = format!("val _ = print (Int.toString ({}))", sml(&e));
        let expected = fmt_sml_int(eval(&e));
        for opts in [Options::til(), Options::baseline()] {
            let exe = Compiler::new(opts).compile(&src).expect("compile");
            let out = exe.run(1_000_000_000).expect("run");
            assert_eq!(out.output, expected, "case {case}: {src}");
        }
    }
}

#[test]
fn list_programs_agree() {
    let mut rng = Rng(SEED ^ 0xa5a5);
    for case in 0..8 {
        let len = rng.range(0, 12);
        let xs: Vec<i64> = (0..len).map(|_| rng.range(-50, 50)).collect();
        let lits: Vec<String> = xs.iter().map(|n| fmt_sml_int(*n)).collect();
        let src = format!(
            "val xs = [{}]
             val doubled = map (fn x => x * 2) xs
             val total = foldl (fn (a, b) => a + b) 0 doubled
             val _ = print (Int.toString (total + length xs))",
            lits.join(", ")
        );
        let expected = fmt_sml_int(xs.iter().map(|x| x * 2).sum::<i64>() + xs.len() as i64);
        for opts in [Options::til(), Options::baseline()] {
            let exe = Compiler::new(opts).compile(&src).expect("compile");
            let out = exe.run(1_000_000_000).expect("run");
            assert_eq!(out.output, expected, "case {case}: {src}");
        }
    }
}
