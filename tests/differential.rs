//! Differential testing over generated typed programs.
//!
//! [`til_bench::gen`] produces well-typed programs covering recursion,
//! currying, tuples, polymorphic instantiation (typecase-specialized
//! array access at int/real/tuple element types), bounds-checked array
//! reads, and enough heap churn to force collections under the small
//! semispace used here. Every program is compiled at O0 (the oracle),
//! under full TIL optimization, under every single-pass ablation
//! ([`Options::ablations`]), and under the baseline (tagged) compiler —
//! all with verification on, so the Bform per-pass typechecker, the
//! closure-stage per-pass typechecker, the RTL verifier, and the
//! GC-table cross-check all run on every configuration of every
//! program. Outputs must agree exactly.
//!
//! The corpus is seeded deterministically; the deep (ignored) variant
//! reads `TIL_DIFF_SEED` so CI can rotate the corpus per run without
//! making tier-1 flaky.

use til::{CollectMode, Compiler, LinkOptions, Options, DEFAULT_PAUSE_BUDGET};
use til_bench::gen::generate;

const SEED: u64 = 0x05ee_d711_0002;

/// A semispace small enough that the generated churn loop collects,
/// large enough for every live set the generator can produce.
fn small_heap(mut o: Options) -> Options {
    o.link = LinkOptions {
        semi_bytes: 64 << 10,
        ..LinkOptions::default()
    };
    o
}

/// Compiles and runs one configuration; returns (output, gc_count).
fn run_config(cfg: &str, opts: Options, seed: u64, src: &str) -> (String, u64) {
    let exe = Compiler::new(opts).compile(src).unwrap_or_else(|d| {
        panic!("seed {seed:#x} [{cfg}]: compile failed: {d}\n--- source ---\n{src}")
    });
    // Verification really ran at every stage: the driver records a
    // phase for the closure passes, the RTL verifier, and the GC-table
    // cross-check.
    let names: Vec<&str> = exe.info.phases.iter().map(|p| p.name).collect();
    for required in ["closure", "rtl-verify", "gc-check", "mc-verify"] {
        assert!(
            names.contains(&required),
            "seed {seed:#x} [{cfg}]: phase {required} did not run: {names:?}"
        );
    }
    let out = exe.run(2_000_000_000).unwrap_or_else(|e| {
        panic!("seed {seed:#x} [{cfg}]: run failed: {e}\n--- source ---\n{src}")
    });
    // Every configuration also runs under incremental collection
    // scheduling on the same compiled image: slicing the collector's
    // work must never change program results or machine counters.
    let inc = exe
        .run_with_gc_mode(
            2_000_000_000,
            false,
            CollectMode::Incremental {
                budget: DEFAULT_PAUSE_BUDGET,
            },
        )
        .unwrap_or_else(|e| {
            panic!("seed {seed:#x} [{cfg}/incremental]: run failed: {e}\n--- source ---\n{src}")
        });
    assert_eq!(
        inc.output, out.output,
        "seed {seed:#x} [{cfg}]: incremental collection changed program output\n--- source ---\n{src}"
    );
    assert_eq!(
        inc.stats, out.stats,
        "seed {seed:#x} [{cfg}]: incremental collection changed Stats\n--- source ---\n{src}"
    );
    (out.output, out.stats.gc_count)
}

/// Runs `cases` seeds starting at `base`: O0 oracle vs full TIL, every
/// ablation, and the baseline compiler. Returns total collections
/// observed across the corpus.
fn run_corpus(base: u64, cases: u64) -> u64 {
    let mut total_gc = 0;
    for i in 0..cases {
        let g = generate(base.wrapping_add(i));
        let (oracle, gc) = run_config("o0", small_heap(Options::o0()), g.seed, &g.source);
        total_gc += gc;
        assert!(
            !oracle.is_empty(),
            "seed {:#x}: program printed nothing\n{}",
            g.seed,
            g.source
        );
        let mut configs: Vec<(&'static str, Options)> =
            vec![("til", Options::til()), ("baseline", Options::baseline())];
        configs.extend(Options::ablations());
        for (cfg, opts) in configs {
            let (out, gc) = run_config(cfg, small_heap(opts), g.seed, &g.source);
            total_gc += gc;
            assert_eq!(
                out, oracle,
                "seed {:#x}: [{cfg}] diverges from the O0 oracle\n--- source ---\n{}",
                g.seed, g.source
            );
        }
    }
    total_gc
}

#[test]
fn generated_programs_agree_across_optimization_levels() {
    let total_gc = run_corpus(SEED, 4);
    // The corpus must actually exercise the collector (nearly tag-free
    // and tagged both): a zero-GC run would silently stop testing the
    // GC tables the verifiers vouch for.
    assert!(
        total_gc >= 1,
        "corpus never triggered a collection; shrink the test semispace"
    );
}

/// The deep-corpus base seed: `TIL_DIFF_SEED` (set by CI from the
/// workflow run number) rotates the corpus per run without making
/// tier-1 flaky.
fn deep_base() -> u64 {
    std::env::var("TIL_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|n| SEED.wrapping_add(n.wrapping_mul(0x9e37_79b9)))
        .unwrap_or(SEED)
}

/// The deep corpus CI runs with a rotated seed. Ignored by default so
/// tier-1 stays fast and deterministic.
#[test]
#[ignore = "deep corpus: run explicitly, optionally with TIL_DIFF_SEED=<n>"]
fn deep_generated_corpus_with_rotated_seed() {
    let total_gc = run_corpus(deep_base(), 16);
    assert!(total_gc >= 1);
}

/// Pairwise ablations: single-pass ablations can mask bugs that only
/// appear when two passes are *both* disabled (one pass cleaning up
/// after the other's absence). All C(7,2) = 21 pair configurations
/// exist ([`Options::ablation_pairs`]); compiling every program under
/// every pair is too slow even for the deep tier, so each program
/// gets a seeded sample — rotated by `TIL_DIFF_SEED` along with the
/// corpus, so CI covers different pairs each run while any single
/// failure stays reproducible from the printed seed.
#[test]
#[ignore = "deep corpus: run explicitly, optionally with TIL_DIFF_SEED=<n>"]
fn deep_pairwise_ablations_agree() {
    const PROGRAMS: u64 = 4;
    const PAIRS_PER_PROGRAM: usize = 6;
    let base = deep_base();
    let pairs = Options::ablation_pairs();
    let r = &mut til_bench::rng::Rng::new(base ^ 0x9a12_ab1a_7e55_0003);
    for i in 0..PROGRAMS {
        let g = generate(base.wrapping_add(i));
        let (oracle, _) = run_config("o0", small_heap(Options::o0()), g.seed, &g.source);
        let mut remaining: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..PAIRS_PER_PROGRAM {
            let k = r.range(0, remaining.len() as i64) as usize;
            let (name, opts) = &pairs[remaining.swap_remove(k)];
            let (out, _) = run_config(name, small_heap(opts.clone()), g.seed, &g.source);
            assert_eq!(
                out, oracle,
                "seed {:#x}: pair ablation [{name}] diverges from the O0 oracle\n--- source ---\n{}",
                g.seed, g.source
            );
        }
    }
}
