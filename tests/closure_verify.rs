//! Fault injection against the closure-stage per-pass verifier.
//!
//! The closure stage re-typechecks the program after closure
//! conversion itself and after each closure-level optimization pass,
//! attributing any failure to the pass that ran last (same machinery
//! the Bform optimizer uses; see `tests/observability.rs` for the
//! Bform side). These tests arm `til_opt::fault::break_pass` for each
//! breakable closure-stage pass and assert that (a) compilation fails,
//! so a corrupted program can never reach the VM, and (b) the
//! diagnostic names the guilty pass and points at the IR dumps.
//!
//! The fault registry is process-global, so every case lives in this
//! one serial test function — integration-test files get their own
//! process, which keeps the armed state away from the rest of the
//! suite.

use til::{Compiler, Options};

const SRC: &str = r#"
fun add a b = a + b
val inc = add 1
val unused = (add 2 3, add 4 5)
val _ = print (Int.toString (inc 41))
"#;

/// Every breakable pass in the closure stage, in schedule order.
const CLOSURE_PASSES: &[&str] = &["closure-convert", "closure-prune", "closure-dead-code"];

fn compile(src: &str) -> Result<String, String> {
    match Compiler::new(Options::til()).compile(src) {
        Ok(exe) => Ok(exe.run(1_000_000_000).expect("run").output),
        Err(d) => Err(d.to_string()),
    }
}

#[test]
fn closure_stage_breakage_is_attributed_and_never_reaches_the_vm() {
    // Sanity: the program compiles and runs clean when nothing is armed.
    assert_eq!(compile(SRC).expect("clean compile"), "42");

    for &pass in CLOSURE_PASSES {
        let guard = til_opt::fault::break_pass(pass);
        let err = compile(SRC).expect_err("armed compile must fail, not reach the VM");
        let want = format!("pass `{pass}` broke typing");
        assert!(
            err.contains(&want),
            "diagnostic does not attribute {pass}: {err}"
        );
        assert!(
            err.contains("IR dumps"),
            "diagnostic for {pass} lacks IR dump paths: {err}"
        );
        drop(guard);
        // Disarmed again: the same source compiles and runs.
        assert_eq!(compile(SRC).expect("compile after disarm"), "42");
    }

    // The environment-variable arming path (what CI and command-line
    // reproduction use) hits the same attribution machinery.
    std::env::set_var("TIL_BREAK_PASS", "closure-prune");
    let err = compile(SRC).expect_err("env-armed compile must fail");
    std::env::remove_var("TIL_BREAK_PASS");
    assert!(
        err.contains("pass `closure-prune` broke typing"),
        "env-var arming not attributed: {err}"
    );

    // A name that matches no closure pass leaves the stage untouched
    // (Bform passes are exercised in tests/observability.rs).
    let guard = til_opt::fault::break_pass("no-such-closure-pass");
    assert_eq!(compile(SRC).expect("unknown pass name is inert"), "42");
    drop(guard);
}
