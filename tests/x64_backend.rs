//! The second backend target end-to-end: compiling with
//! [`til::Options::emit_asm`] produces textual x86-64 alongside the
//! (unchanged) VM image, the module passes structural validation and
//! the per-target mcv rules, and every safe point carries a stack map
//! derived from the same target-independent data as the VM's tables.

use til_backend::targets::x64::{validate, X64Op};
use til_backend::X64Module;

const PROGRAM: &str = r#"
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
exception Odd
fun check n = if n mod 2 = 0 then n else raise Odd
val guarded = (check 7) handle Odd => ~1
val xs = Array.array (16, 0)
fun fill i = if i < 16 then (Array.update (xs, i, i * i); fill (i + 1)) else ()
val _ = fill 0
val _ = print (Int.toString (fib 12))
val _ = print (Int.toString (Array.sub (xs, 7)))
val _ = print (Int.toString guarded)
"#;

fn compile_asm(opts: til::Options) -> (til::Executable, String) {
    let mut opts = opts;
    opts.emit_asm = true;
    let exe = til::Compiler::new(opts).compile(PROGRAM).expect("compile");
    let text = exe.asm().expect("emit_asm set but no module").text();
    (exe, text)
}

#[test]
fn emits_validated_assembly_with_stack_maps() {
    let (exe, text) = compile_asm(til::Options::til());
    let m: &X64Module = exe.asm().unwrap();
    validate(m).expect("structural validation");
    til_backend::mcv::x64::verify(m).expect("per-target mcv rules");
    assert!(!m.funs.is_empty());
    // Every call is a safe point with an in-range stack map, and each
    // map is rendered into the .rodata table section.
    let mut calls = 0;
    for f in &m.funs {
        for op in &f.ops {
            if let X64Op::Call { map, .. } = op {
                calls += 1;
                assert!(map.is_some_and(|k| k < f.maps.len()));
            }
        }
        for k in 0..f.maps.len() {
            assert!(
                text.contains(&format!(".Lsm_{}_{k}:", f.symbol)),
                "stack map table {k} of {} missing from the text",
                f.symbol
            );
        }
    }
    assert!(calls > 0, "the program should contain calls");
    assert!(text.contains("\t.text\n"));
    assert!(text.contains("til_rt_gc"));
}

#[test]
fn vm_image_and_output_are_unchanged_by_emit_asm() {
    let plain = til::Compiler::new(til::Options::til())
        .compile(PROGRAM)
        .expect("compile");
    let (with_asm, _) = compile_asm(til::Options::til());
    assert_eq!(
        plain.linked().code.len(),
        with_asm.linked().code.len(),
        "emit_asm must not perturb the VM image"
    );
    let out = with_asm.run(50_000_000).expect("run").output;
    assert_eq!(out, plain.run(50_000_000).expect("run").output);
}

#[test]
fn baseline_mode_also_emits_assembly() {
    let (exe, text) = compile_asm(til::Options::baseline());
    let m = exe.asm().unwrap();
    validate(m).expect("structural validation");
    til_backend::mcv::x64::verify(m).expect("per-target mcv rules");
    assert!(text.contains("\t.text\n"));
}
