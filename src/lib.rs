//! Umbrella crate: re-exports the TIL driver for the repository-level
//! examples and integration tests.

pub use til::*;
