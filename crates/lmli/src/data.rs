//! Datatype and exception representation environments for Lmli.
//!
//! The Lambda→Lmli conversion decides, once per datatype, how its
//! constructors are laid out (the paper's *constructor flattening*,
//! §3.2) and records the decision here for every later phase.

use crate::con::{CVar, Con};
use til_common::Symbol;
use til_lambda::env::{DataId, ExnId};

/// How a datatype's values are represented.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataRep {
    /// All constructors nullary: values are small untraced integers
    /// (the constructor's enum index).
    Enum,
    /// Exactly one value-carrying constructor: its values are untagged
    /// pointers to a flattened record of its fields (the paper's
    /// `cons` example); nullary constructors are small integers,
    /// distinguishable from pointers.
    Tagless,
    /// Two or more value-carrying constructors: carrying values are
    /// pointers to records whose field 0 is a small integer tag;
    /// nullary constructors are small integers.
    Tagged,
    /// The baseline (SML/NJ-style) representation: every value-carrying
    /// constructor is a two-field record `(tag, pointer-to-boxed-arg)`
    /// with the argument *not* flattened; nullary constructors are
    /// small integers.
    Boxed,
}

/// Lmli-level description of one datatype.
#[derive(Clone, Debug)]
pub struct MData {
    /// Source name (dumps only).
    pub name: Symbol,
    /// Constructor parameters referenced by the field types.
    pub params: Vec<CVar>,
    /// Chosen representation.
    pub rep: DataRep,
    /// Per constructor (in source tag order): `None` for nullary,
    /// `Some(fields)` for carrying with the given *flattened* field
    /// constructors (a single-element vector when the argument was not
    /// a record or flattening is off).
    pub cons: Vec<Option<Vec<Con>>>,
}

impl MData {
    /// True when every constructor is nullary.
    pub fn is_enum(&self) -> bool {
        matches!(self.rep, DataRep::Enum)
    }

    /// The small-integer value of nullary constructor `tag` (its index
    /// among the nullary constructors).
    pub fn enum_value(&self, tag: usize) -> i64 {
        debug_assert!(self.cons[tag].is_none());
        self.cons[..tag].iter().filter(|c| c.is_none()).count() as i64
    }

    /// The record-tag value of carrying constructor `tag` (its index
    /// among the carrying constructors).
    pub fn sum_tag(&self, tag: usize) -> i64 {
        debug_assert!(self.cons[tag].is_some());
        self.cons[..tag].iter().filter(|c| c.is_some()).count() as i64
    }

    /// Number of value-carrying constructors.
    pub fn num_carrying(&self) -> usize {
        self.cons.iter().filter(|c| c.is_some()).count()
    }

    /// Number of nullary constructors.
    pub fn num_nullary(&self) -> usize {
        self.cons.iter().filter(|c| c.is_none()).count()
    }

    /// Instantiates constructor `tag`'s field types at `cargs`.
    pub fn fields_at(&self, tag: usize, cargs: &[Con]) -> Option<Vec<Con>> {
        let fields = self.cons[tag].as_ref()?;
        let map = self
            .params
            .iter()
            .copied()
            .zip(cargs.iter().cloned())
            .collect();
        Some(fields.iter().map(|f| f.subst(&map)).collect())
    }

    /// Whether a `switch` on this datatype must first test
    /// pointer-vs-constant (it has both nullary and carrying
    /// constructors).
    pub fn needs_pointer_test(&self) -> bool {
        self.num_carrying() > 0 && self.num_nullary() > 0
    }
}

/// All datatype representations of a compilation unit.
#[derive(Clone, Debug, Default)]
pub struct MDataEnv {
    datas: Vec<MData>,
}

impl MDataEnv {
    /// An empty environment (filled by the Lambda→Lmli conversion).
    pub fn new() -> MDataEnv {
        MDataEnv::default()
    }

    /// Adds a datatype; ids must be pushed in `DataId` order.
    pub fn push(&mut self, data: MData) {
        self.datas.push(data);
    }

    /// Looks up a datatype's representation.
    pub fn get(&self, id: DataId) -> &MData {
        &self.datas[id.0 as usize]
    }

    /// Number of datatypes.
    pub fn len(&self) -> usize {
        self.datas.len()
    }

    /// True when no datatypes have been registered.
    pub fn is_empty(&self) -> bool {
        self.datas.is_empty()
    }

    /// True when the datatype is an all-nullary enum (used by
    /// [`crate::con::rep_class`]).
    pub fn is_enum(&self, id: DataId) -> bool {
        self.get(id).is_enum()
    }
}

/// Exception argument representations: per [`ExnId`], the translated
/// constructor of the carried value (if any).
#[derive(Clone, Debug, Default)]
pub struct MExnEnv {
    exns: Vec<(Symbol, Option<Con>)>,
}

impl MExnEnv {
    /// An empty environment.
    pub fn new() -> MExnEnv {
        MExnEnv::default()
    }

    /// Adds an exception; ids must be pushed in `ExnId` order.
    pub fn push(&mut self, name: Symbol, arg: Option<Con>) {
        self.exns.push((name, arg));
    }

    /// The carried-value constructor of `id`.
    pub fn arg(&self, id: ExnId) -> Option<&Con> {
        self.exns[id.0 as usize].1.as_ref()
    }

    /// The exception's source name.
    pub fn name(&self, id: ExnId) -> Symbol {
        self.exns[id.0 as usize].0
    }

    /// Number of exceptions.
    pub fn len(&self) -> usize {
        self.exns.len()
    }

    /// True when no exceptions are registered.
    pub fn is_empty(&self) -> bool {
        self.exns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_like() -> MData {
        // datatype 'a list = nil | :: of 'a * 'a list
        let a = CVar(0);
        MData {
            name: Symbol::intern("list"),
            params: vec![a],
            rep: DataRep::Tagless,
            cons: vec![
                None,
                Some(vec![Con::Var(a), Con::Data(DataId::LIST, vec![Con::Var(a)])]),
            ],
        }
    }

    #[test]
    fn enum_and_sum_indices() {
        let d = MData {
            name: Symbol::intern("t"),
            params: vec![],
            rep: DataRep::Tagged,
            cons: vec![None, Some(vec![Con::Int]), None, Some(vec![Con::Str])],
        };
        assert_eq!(d.enum_value(0), 0);
        assert_eq!(d.enum_value(2), 1);
        assert_eq!(d.sum_tag(1), 0);
        assert_eq!(d.sum_tag(3), 1);
        assert!(d.needs_pointer_test());
    }

    #[test]
    fn cons_cell_fields_instantiate() {
        let d = list_like();
        let fs = d.fields_at(1, &[Con::Int]).unwrap();
        assert_eq!(fs[0], Con::Int);
        assert_eq!(fs[1], Con::Data(DataId::LIST, vec![Con::Int]));
        assert!(d.fields_at(0, &[Con::Int]).is_none());
    }

    #[test]
    fn pure_enum_needs_no_pointer_test() {
        let d = MData {
            name: Symbol::intern("order"),
            params: vec![],
            rep: DataRep::Enum,
            cons: vec![None, None, None],
        };
        assert!(!d.needs_pointer_test());
        assert!(d.is_enum());
        assert_eq!(d.enum_value(2), 2);
    }
}
