//! Lmli pretty printer, in the style of the paper's Figure 2.

use crate::con::Con;
use crate::data::MDataEnv;
use crate::exp::{MExp, MProgram, MSwitch};
use til_common::pretty::Printer;
use til_common::Symbol;

/// Renders a whole program.
pub fn program(prog: &MProgram) -> String {
    let mut p = Printer::new();
    exp(&mut p, &prog.body, &prog.data);
    p.finish()
}

/// Renders one expression.
pub fn exp_to_string(e: &MExp, data: &MDataEnv) -> String {
    let mut p = Printer::new();
    exp(&mut p, e, data);
    p.finish()
}

fn con_str(c: &Con, data: &MDataEnv) -> String {
    let n = data.len();
    c.display(&move |id| {
        if (id.0 as usize) < n {
            Symbol::intern("data")
        } else {
            Symbol::intern("?")
        }
    })
}

fn exp(p: &mut Printer, e: &MExp, data: &MDataEnv) {
    match e {
        MExp::Var(v) => {
            p.word(v.to_string());
        }
        MExp::Int(n) => {
            p.word(n.to_string());
        }
        MExp::Float(r) => {
            p.word(format!("{r:?}"));
        }
        MExp::Str(s) => {
            p.word(format!("{s:?}"));
        }
        MExp::Fix { funs, body } => {
            p.line("let fix");
            p.indent();
            for f in funs {
                let cps = if f.cparams.is_empty() {
                    String::new()
                } else {
                    format!(
                        "\u{039b}{}. ",
                        f.cparams
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                };
                let ps = f
                    .params
                    .iter()
                    .map(|(v, _)| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                p.line(format!("{} = {cps}\u{03bb}{ps}.", f.var));
                p.indent();
                p.line("");
                exp(p, &f.body, data);
                p.dedent();
            }
            p.dedent();
            p.line("in ");
            exp(p, body, data);
            p.word(" end");
        }
        MExp::App { f, cargs, args } => {
            p.word("(");
            exp(p, f, data);
            if !cargs.is_empty() {
                let cs = cargs
                    .iter()
                    .map(|c| con_str(c, data))
                    .collect::<Vec<_>>()
                    .join(", ");
                p.word(format!(" [{cs}]"));
            }
            p.word(" {");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    p.word(", ");
                }
                exp(p, a, data);
            }
            p.word("})");
        }
        MExp::Let { var, rhs, body } => {
            p.line(format!("let {var} = "));
            exp(p, rhs, data);
            p.line("in ");
            exp(p, body, data);
            p.word(" end");
        }
        MExp::Record(fs) => {
            p.word("{");
            for (i, f) in fs.iter().enumerate() {
                if i > 0 {
                    p.word(", ");
                }
                exp(p, f, data);
            }
            p.word("}");
        }
        MExp::Select(i, e2) => {
            p.word(format!("(#{i} "));
            exp(p, e2, data);
            p.word(")");
        }
        MExp::Con {
            data: id,
            tag,
            args,
            ..
        } => {
            let name = data.get(*id).name;
            p.word(format!("{name}#{tag}"));
            if !args.is_empty() {
                p.word("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        p.word(", ");
                    }
                    exp(p, a, data);
                }
                p.word(")");
            }
        }
        MExp::ExnCon { exn, arg } => {
            p.word(format!("exn#{}", exn.0));
            if let Some(a) = arg {
                p.word("(");
                exp(p, a, data);
                p.word(")");
            }
        }
        MExp::Switch(sw) => switch(p, sw, data),
        MExp::Raise { exn, .. } => {
            p.word("raise ");
            exp(p, exn, data);
        }
        MExp::Handle { body, var, handler } => {
            p.word("(");
            exp(p, body, data);
            p.word(format!(" handle {var} => "));
            exp(p, handler, data);
            p.word(")");
        }
        MExp::Prim { prim, args, .. } => {
            p.word(format!("{prim}("));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    p.word(", ");
                }
                exp(p, a, data);
            }
            p.word(")");
        }
        MExp::Typecase {
            scrut,
            int,
            float,
            ptr,
            ..
        } => {
            p.word(format!("typecase {} of", con_str(scrut, data)));
            p.indent();
            p.line("int => ");
            exp(p, int, data);
            p.line("float => ");
            exp(p, float, data);
            p.line("ptr => ");
            exp(p, ptr, data);
            p.dedent();
        }
    }
}

fn switch(p: &mut Printer, sw: &MSwitch, data: &MDataEnv) {
    match sw {
        MSwitch::Int {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word("Switch_int ");
            exp(p, scrut, data);
            p.word(" of");
            p.indent();
            for (k, a) in arms {
                p.line(format!("{k} => "));
                exp(p, a, data);
            }
            p.line("_ => ");
            exp(p, default, data);
            p.dedent();
        }
        MSwitch::Data {
            scrut,
            data: id,
            arms,
            default,
            ..
        } => {
            p.word("Switch_data ");
            exp(p, scrut, data);
            p.word(" of");
            p.indent();
            for (tag, binders, a) in arms {
                let name = data.get(*id).name;
                let bs = binders
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                p.line(format!("{name}#{tag}({bs}) => "));
                exp(p, a, data);
            }
            if let Some(d) = default {
                p.line("_ => ");
                exp(p, d, data);
            }
            p.dedent();
        }
        MSwitch::Str {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word("Switch_str ");
            exp(p, scrut, data);
            p.word(" of");
            p.indent();
            for (k, a) in arms {
                p.line(format!("{k:?} => "));
                exp(p, a, data);
            }
            p.line("_ => ");
            exp(p, default, data);
            p.dedent();
        }
        MSwitch::Exn {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word("Switch_exn ");
            exp(p, scrut, data);
            p.word(" of");
            p.indent();
            for (id, binder, a) in arms {
                let b = binder.map(|v| format!("({v})")).unwrap_or_default();
                p.line(format!("exn#{}{b} => ", id.0));
                exp(p, a, data);
            }
            p.line("_ => ");
            exp(p, default, data);
            p.dedent();
        }
    }
}
