//! Lmli primitives: the representation-level operation set.
//!
//! Array and reference operations have been specialized into int /
//! float / pointer variants (the paper's §3.2 array specialization;
//! `'a ref` became a one-element array). Floats are manipulated
//! unboxed, with explicit [`MPrim::BoxFloat`]/[`MPrim::UnboxFloat`]
//! coercions that the optimizer's constant folding later cancels.

use crate::con::Con;
use std::fmt;

/// An Lmli primitive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MPrim {
    // Integer (and char) operations.
    /// `+` (raises `Overflow`).
    IAdd,
    /// `-` (raises `Overflow`).
    ISub,
    /// `*` (raises `Overflow`).
    IMul,
    /// `div` (raises `Div`).
    IDiv,
    /// `mod` (raises `Div`).
    IMod,
    /// Negation.
    INeg,
    /// Absolute value.
    IAbs,
    /// `<`.
    ILt,
    /// `<=`.
    ILe,
    /// `>`.
    IGt,
    /// `>=`.
    IGe,
    /// `=`.
    IEq,
    /// `<>`.
    INe,
    /// Bitwise and.
    AndB,
    /// Bitwise or.
    OrB,
    /// Bitwise xor.
    XorB,
    /// Bitwise not.
    NotB,
    /// Shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Range-checked char from int (raises `Chr`); chars are ints.
    Chr,

    // Unboxed float operations.
    /// Float `+`.
    FAdd,
    /// Float `-`.
    FSub,
    /// Float `*`.
    FMul,
    /// Float `/`.
    FDiv,
    /// Float negation.
    FNeg,
    /// Float absolute value.
    FAbs,
    /// Float `<`.
    FLt,
    /// Float `<=`.
    FLe,
    /// Float `>`.
    FGt,
    /// Float `>=`.
    FGe,
    /// Float `=`.
    FEq,
    /// Float `<>`.
    FNe,
    /// int → float.
    ItoF,
    /// floor : float → int (raises `Overflow`).
    Floor,
    /// trunc : float → int (raises `Overflow`).
    Trunc,
    /// sqrt (raises `Domain`).
    FSqrt,
    /// sin.
    FSin,
    /// cos.
    FCos,
    /// atan.
    FAtan,
    /// e^x.
    FExp,
    /// ln (raises `Domain`).
    FLn,
    /// Allocate a boxed float from an unboxed one.
    BoxFloat,
    /// Read the float out of a box.
    UnboxFloat,

    // Strings.
    /// Length in characters.
    StrSize,
    /// Character at index (raises `Subscript`).
    StrSub,
    /// Concatenation.
    StrConcat,
    /// One-character string from a char code.
    StrFromChar,
    /// Three-way comparison.
    StrCmp,
    /// String equality.
    SEq,
    /// Int rendering.
    IntToString,
    /// Float rendering (takes an unboxed float).
    FToString,
    /// Write a string to standard output.
    Print,

    // Specialized arrays (paper §3.2). Sub/update are **unchecked**;
    // the prelude's `Array.sub` wraps them in explicit bounds tests.
    /// New int array (raises `Size`).
    IANew,
    /// Unchecked int-array read.
    IASub,
    /// Unchecked int-array write.
    IAUpd,
    /// New float array, unboxed elements (raises `Size`).
    FANew,
    /// Unchecked float-array read (returns unboxed).
    FASub,
    /// Unchecked float-array write (takes unboxed).
    FAUpd,
    /// New pointer array (raises `Size`).
    PANew,
    /// Unchecked pointer-array read.
    PASub,
    /// Unchecked pointer-array write.
    PAUpd,
    /// Array length (any array representation).
    ALen,

    /// Tag-free polymorphic structural equality at the given
    /// constructor (one carg): specialized away when the constructor
    /// is ground enough, interpreted from the run-time type otherwise.
    PolyEq,
    /// Pointer identity (refs and arrays under `=`).
    PtrEq,
}

/// Primitive signature: `cparams` type parameters (referenced in
/// args/ret by the local convention `Con::Var(CVar(i))`), argument
/// constructors, result constructor.
#[derive(Clone, Debug)]
pub struct MPrimSig {
    /// Number of constructor parameters.
    pub cparams: usize,
    /// Argument constructors.
    pub args: Vec<Con>,
    /// Result constructor.
    pub ret: Con,
}

impl MPrim {
    /// The signature of the primitive.
    pub fn sig(&self) -> MPrimSig {
        use crate::con::CVar;
        use Con::*;
        use MPrim::*;
        let t0 = || Con::Var(CVar(0));
        let s = |args: Vec<Con>, ret: Con| MPrimSig {
            cparams: 0,
            args,
            ret,
        };
        let sp = |args: Vec<Con>, ret: Con| MPrimSig {
            cparams: 1,
            args,
            ret,
        };
        match self {
            IAdd | ISub | IMul | IDiv | IMod | AndB | OrB | XorB | Lsl | Lsr | Asr => {
                s(vec![Int, Int], Int)
            }
            INeg | IAbs | NotB | Chr => s(vec![Int], Int),
            ILt | ILe | IGt | IGe | IEq | INe => s(vec![Int, Int], Int),
            FAdd | FSub | FMul | FDiv => s(vec![Float, Float], Float),
            FNeg | FAbs | FSqrt | FSin | FCos | FAtan | FExp | FLn => s(vec![Float], Float),
            FLt | FLe | FGt | FGe | FEq | FNe => s(vec![Float, Float], Int),
            ItoF => s(vec![Int], Float),
            Floor | Trunc => s(vec![Float], Int),
            BoxFloat => s(vec![Float], Boxed),
            UnboxFloat => s(vec![Boxed], Float),
            StrSize => s(vec![Str], Int),
            StrSub => s(vec![Str, Int], Int),
            StrConcat => s(vec![Str, Str], Str),
            StrFromChar => s(vec![Int], Str),
            StrCmp => s(vec![Str, Str], Int),
            SEq => s(vec![Str, Str], Int),
            IntToString => s(vec![Int], Str),
            FToString => s(vec![Float], Str),
            Print => s(vec![Str], Con::unit()),
            IANew => s(vec![Int, Int], Array(Box::new(Int))),
            IASub => s(vec![Array(Box::new(Int)), Int], Int),
            IAUpd => s(vec![Array(Box::new(Int)), Int, Int], Con::unit()),
            FANew => s(vec![Int, Float], Array(Box::new(Float))),
            FASub => s(vec![Array(Box::new(Float)), Int], Float),
            FAUpd => s(vec![Array(Box::new(Float)), Int, Float], Con::unit()),
            // Pointer arrays hold any representation selected at run
            // time; they are typed at the element constructor.
            PANew => sp(vec![Int, t0()], Array(Box::new(t0()))),
            PASub => sp(vec![Array(Box::new(t0())), Int], t0()),
            PAUpd => sp(vec![Array(Box::new(t0())), Int, t0()], Con::unit()),
            ALen => sp(vec![Array(Box::new(t0()))], Int),
            PolyEq => sp(vec![t0(), t0()], Int),
            PtrEq => sp(vec![t0(), t0()], Int),
        }
    }

    /// No observable effect at all.
    pub fn is_pure(&self) -> bool {
        !self.only_raises() && !self.is_effectful()
    }

    /// Pure except possibly raising an exception (CSE-admissible,
    /// §3.3).
    pub fn only_raises(&self) -> bool {
        matches!(
            self,
            MPrim::IAdd
                | MPrim::ISub
                | MPrim::IMul
                | MPrim::IDiv
                | MPrim::IMod
                | MPrim::INeg
                | MPrim::IAbs
                | MPrim::Chr
                | MPrim::Floor
                | MPrim::Trunc
                | MPrim::FSqrt
                | MPrim::FLn
                | MPrim::StrSub
        )
    }

    /// Reads/writes the store or does I/O.
    pub fn is_effectful(&self) -> bool {
        matches!(
            self,
            MPrim::IANew
                | MPrim::IASub
                | MPrim::IAUpd
                | MPrim::FANew
                | MPrim::FASub
                | MPrim::FAUpd
                | MPrim::PANew
                | MPrim::PASub
                | MPrim::PAUpd
                | MPrim::Print
                | MPrim::BoxFloat // allocates; kept out of CSE only when identity matters — it never does, so treat as pure
        ) && !matches!(self, MPrim::BoxFloat)
    }

    /// Allocates heap storage (used by allocation statistics and the
    /// baseline/TIL comparisons).
    pub fn allocates(&self) -> bool {
        matches!(
            self,
            MPrim::BoxFloat
                | MPrim::IANew
                | MPrim::FANew
                | MPrim::PANew
                | MPrim::StrConcat
                | MPrim::StrFromChar
                | MPrim::IntToString
                | MPrim::FToString
        )
    }
}

impl fmt::Display for MPrim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MPrim::IAdd => "iadd",
            MPrim::ISub => "isub",
            MPrim::IMul => "imul",
            MPrim::IDiv => "idiv",
            MPrim::IMod => "imod",
            MPrim::INeg => "ineg",
            MPrim::IAbs => "iabs",
            MPrim::ILt => "plst_i",
            MPrim::ILe => "ple_i",
            MPrim::IGt => "pgt_i",
            MPrim::IGe => "pgte_i",
            MPrim::IEq => "peq_i",
            MPrim::INe => "pne_i",
            MPrim::AndB => "andb",
            MPrim::OrB => "orb",
            MPrim::XorB => "xorb",
            MPrim::NotB => "notb",
            MPrim::Lsl => "lsl",
            MPrim::Lsr => "lsr",
            MPrim::Asr => "asr",
            MPrim::Chr => "chr",
            MPrim::FAdd => "fadd",
            MPrim::FSub => "fsub",
            MPrim::FMul => "fmul",
            MPrim::FDiv => "fdiv",
            MPrim::FNeg => "fneg",
            MPrim::FAbs => "fabs",
            MPrim::FLt => "plst_f",
            MPrim::FLe => "ple_f",
            MPrim::FGt => "pgt_f",
            MPrim::FGe => "pgte_f",
            MPrim::FEq => "peq_f",
            MPrim::FNe => "pne_f",
            MPrim::ItoF => "itof",
            MPrim::Floor => "floor",
            MPrim::Trunc => "trunc",
            MPrim::FSqrt => "fsqrt",
            MPrim::FSin => "fsin",
            MPrim::FCos => "fcos",
            MPrim::FAtan => "fatan",
            MPrim::FExp => "fexp",
            MPrim::FLn => "fln",
            MPrim::BoxFloat => "box",
            MPrim::UnboxFloat => "unbox",
            MPrim::StrSize => "size",
            MPrim::StrSub => "strsub",
            MPrim::StrConcat => "concat",
            MPrim::StrFromChar => "str",
            MPrim::StrCmp => "strcmp",
            MPrim::SEq => "seq",
            MPrim::IntToString => "itos",
            MPrim::FToString => "ftos",
            MPrim::Print => "print",
            MPrim::IANew => "parray_ai",
            MPrim::IASub => "psub_ai",
            MPrim::IAUpd => "pupdate_ai",
            MPrim::FANew => "parray_af",
            MPrim::FASub => "psub_af",
            MPrim::FAUpd => "pupdate_af",
            MPrim::PANew => "parray_ap",
            MPrim::PASub => "psub_ap",
            MPrim::PAUpd => "pupdate_ap",
            MPrim::ALen => "length",
            MPrim::PolyEq => "polyeq",
            MPrim::PtrEq => "ptreq",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_ops_are_unboxed() {
        let sig = MPrim::FAdd.sig();
        assert_eq!(sig.args, vec![Con::Float, Con::Float]);
        assert_eq!(sig.ret, Con::Float);
    }

    #[test]
    fn comparisons_return_int_bools() {
        // At Lmli level booleans are the enum datatype, but primitive
        // comparisons produce raw 0/1 ints that a Switch consumes.
        assert_eq!(MPrim::ILt.sig().ret, Con::Int);
    }

    #[test]
    fn boxfloat_allocates_but_is_cse_safe() {
        assert!(MPrim::BoxFloat.allocates());
        assert!(MPrim::BoxFloat.is_pure());
    }

    #[test]
    fn array_ops_effects() {
        assert!(MPrim::IAUpd.is_effectful());
        assert!(MPrim::FASub.is_effectful());
        assert!(MPrim::ALen.is_pure());
    }
}
