//! Dead-binding pruning over Lmli.
//!
//! The staged pipeline joins the (cached) prelude skeleton with the
//! user fragment at the Lmli level, so every compile would otherwise
//! push the entire prelude — mostly bindings the program never touches
//! — through Bform conversion, typechecking, and optimization, only
//! for dead-code elimination to discard it near the end. This pass
//! removes provably dead, effect-free `Let` bindings and unreferenced
//! `Fix` functions right after the join, in one post-order sweep with
//! decremental use counts: dropping an inner binding can make an outer
//! one dead, and chains collapse in a single pass because bodies are
//! pruned before their binders are judged.
//!
//! Conservative by construction: only syntactic values (variables,
//! constants, records/constructors/selections of values, function
//! nests with value bodies) are removable, so evaluation order and
//! effects — raises, handlers, primitives, applications — are
//! untouched, and mutually recursive functions are only dropped when
//! the whole cycle is unreferenced from live code.

use crate::exp::{MExp, MProgram};
use std::collections::HashMap;
use til_common::Var;

/// Removes dead pure bindings from the program body. Returns how many
/// `Let` bindings and `Fix` functions were dropped.
pub fn prune_dead(p: &mut MProgram) -> usize {
    let mut counts: HashMap<Var, i64> = HashMap::new();
    add_counts(&mut p.body, &mut counts, 1);
    let mut removed = 0;
    prune(&mut p.body, &mut counts, &mut removed);
    removed
}

/// Adds `delta` to the use count of every variable occurrence in `e`
/// (used with -1 to retire the occurrences inside a dropped binding).
fn add_counts(e: &mut MExp, counts: &mut HashMap<Var, i64>, delta: i64) {
    if let MExp::Var(v) = e {
        *counts.entry(*v).or_insert(0) += delta;
    }
    e.for_each_child_mut(&mut |c| add_counts(c, counts, delta));
}

/// Is `e` a syntactic value (no effects, no divergence)?
fn is_pure(e: &MExp) -> bool {
    match e {
        MExp::Var(_) | MExp::Int(_) | MExp::Float(_) | MExp::Str(_) => true,
        MExp::Record(fs) => fs.iter().all(is_pure),
        MExp::Select(_, inner) => is_pure(inner),
        MExp::Con { args, .. } => args.iter().all(is_pure),
        MExp::ExnCon { arg, .. } => arg.as_deref().is_none_or(is_pure),
        // A fix expression evaluates to its body's value; the function
        // definitions themselves are inert.
        MExp::Fix { body, .. } => is_pure(body),
        MExp::Let { rhs, body, .. } => is_pure(rhs) && is_pure(body),
        _ => false,
    }
}

fn prune(e: &mut MExp, counts: &mut HashMap<Var, i64>, removed: &mut usize) {
    match e {
        MExp::Let { var, rhs, body } => {
            prune(body, counts, removed);
            if counts.get(var).copied().unwrap_or(0) == 0 && is_pure(rhs) {
                add_counts(rhs, counts, -1);
                *removed += 1;
                let body = std::mem::replace(body.as_mut(), MExp::Int(0));
                *e = body;
            } else {
                prune(rhs, counts, removed);
            }
        }
        MExp::Fix { funs, body } => {
            prune(body, counts, removed);
            for f in funs.iter_mut() {
                prune(&mut f.body, counts, removed);
            }
            // Dropping one function can orphan another (but a live
            // mutual cycle keeps every member's count positive, so
            // cycles are only removed wholesale via outer `Let`s).
            loop {
                let dead = funs
                    .iter()
                    .position(|f| counts.get(&f.var).copied().unwrap_or(0) == 0);
                match dead {
                    Some(i) => {
                        let mut f = funs.remove(i);
                        add_counts(&mut f.body, counts, -1);
                        *removed += 1;
                    }
                    None => break,
                }
            }
            if funs.is_empty() {
                let body = std::mem::replace(body.as_mut(), MExp::Int(0));
                *e = body;
            }
        }
        _ => e.for_each_child_mut(&mut |c| prune(c, counts, removed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;
    use crate::data::{MDataEnv, MExnEnv};

    fn var(n: u32) -> Var {
        Var::from_raw(n, None)
    }

    fn prog(body: MExp) -> MProgram {
        MProgram {
            data: MDataEnv::default(),
            exns: MExnEnv::default(),
            body,
            con: Con::Int,
        }
    }

    #[test]
    fn dead_let_chains_collapse_in_one_pass() {
        // let a = 1 in let b = (a, a) in 7  — both bindings dead, and
        // dropping b must retire its uses of a so a dies too.
        let body = MExp::Let {
            var: var(1),
            rhs: Box::new(MExp::Int(1)),
            body: Box::new(MExp::Let {
                var: var(2),
                rhs: Box::new(MExp::Record(vec![
                    MExp::Var(var(1)),
                    MExp::Var(var(1)),
                ])),
                body: Box::new(MExp::Int(7)),
            }),
        };
        let mut p = prog(body);
        assert_eq!(prune_dead(&mut p), 2);
        assert!(matches!(p.body, MExp::Int(7)));
    }

    #[test]
    fn impure_bindings_survive_even_when_unused() {
        let body = MExp::Let {
            var: var(1),
            rhs: Box::new(MExp::Raise {
                exn: Box::new(MExp::Int(0)),
                con: Con::Int,
            }),
            body: Box::new(MExp::Int(7)),
        };
        let mut p = prog(body);
        assert_eq!(prune_dead(&mut p), 0);
        assert!(matches!(p.body, MExp::Let { .. }));
    }

    #[test]
    fn used_bindings_survive() {
        let body = MExp::Let {
            var: var(1),
            rhs: Box::new(MExp::Int(3)),
            body: Box::new(MExp::Var(var(1))),
        };
        let mut p = prog(body);
        assert_eq!(prune_dead(&mut p), 0);
        assert!(matches!(p.body, MExp::Let { .. }));
    }
}
