//! **Lmli** (λML_i) — the intensionally polymorphic intermediate
//! language at the heart of TIL (paper §3.2, based on Harper &
//! Morrisett's intensional type analysis).
//!
//! Types are run-time values here: polymorphic functions take
//! constructor arguments, `typecase` branches on a constructor's
//! representation tag, and the `Typecase` *constructor* tracks that
//! branching at the type level. The Lambda→Lmli conversion
//! ([`from_lambda`]) performs the paper's type-directed optimizations
//! (argument flattening, constructor flattening, float boxing, array
//! specialization, polymorphic equality) — or none of them, in the
//! baseline universal-representation mode.

pub mod con;
pub mod data;
pub mod exp;
pub mod from_lambda;
pub mod prim;
pub mod print;
pub mod prune;
pub mod typecheck;

pub use con::{con_eq, rep_class, rep_tag, CVar, CVarSupply, Con, RepClass};
pub use data::{DataRep, MData, MDataEnv, MExnEnv};
pub use exp::{MExp, MFun, MProgram, MSwitch};
pub use from_lambda::{
    from_lambda, from_lambda_fragment, from_lambda_prelude, FragmentCx, LmliOptions,
};
pub use prim::{MPrim, MPrimSig};
pub use prune::prune_dead;
pub use typecheck::{
    typecheck_lmli, typecheck_lmli_fragment, typecheck_lmli_prelude, ConCtx, FragmentTcEnv,
    Refinement,
};
