//! The Lambda→Lmli conversion: "introduce intensional polymorphism,
//! choose data representations" (paper, Figure 1), fused with the
//! type-directed optimizations of §3.2:
//!
//! * **argument flattening** — functions whose domain is a small record
//!   take its components as multiple (register) arguments;
//! * **constructor flattening** — datatype constructor arguments that
//!   are records are flattened into the constructor cell, tags are
//!   dropped when one value-carrying constructor suffices;
//! * **float boxing** — `real` becomes a boxed float except inside
//!   float arrays; explicit box/unbox coercions surround primitives;
//! * **array specialization** — array operations split into int /
//!   float / pointer variants, selected by `typecase` when the element
//!   type is unknown;
//! * **polymorphic equality** — `=` becomes a primitive specialized by
//!   type, falling back to run-time type analysis.
//!
//! The baseline ("SML/NJ-like") mode turns all four off, producing the
//! universal boxed representation the paper compares against.

use crate::con::{rep_tag, Con, RepClass};
use crate::data::{DataRep, MData, MDataEnv, MExnEnv};
use crate::exp::{MExp, MFun, MProgram, MSwitch};
use crate::prim::MPrim;
use std::collections::HashMap;
use til_common::{Diagnostic, Result, Var, VarSupply};
use til_lambda::ty::{LTy, TyVar};
use til_lambda::{DataEnv, LExp, LProgram, LSwitch, Prim};

/// Representation-choice options (the paper's type-directed
/// optimizations, individually toggleable for the ablation benches).
#[derive(Clone, Copy, Debug)]
pub struct LmliOptions {
    /// Flatten small record arguments into multiple parameters.
    pub flatten_args: bool,
    /// Flatten constructor records; drop tags when possible.
    pub flatten_cons: bool,
    /// Box floats outside float arrays (§3.2; both TIL and SML/NJ do).
    /// Must stay `true` when the program can reach a run-time
    /// `typecase`: the float arm's refinement is `Boxed` by the
    /// paper's convention (`real` values travel boxed).
    pub box_floats: bool,
    /// Specialize arrays into int/float/pointer variants.
    pub specialize_arrays: bool,
    /// Largest record (fields) that will be flattened.
    pub max_flat: usize,
}

impl LmliOptions {
    /// The TIL configuration.
    pub fn til() -> LmliOptions {
        LmliOptions {
            flatten_args: true,
            flatten_cons: true,
            box_floats: true,
            specialize_arrays: true,
            max_flat: 9,
        }
    }

    /// The baseline (universal representation) configuration.
    pub fn baseline() -> LmliOptions {
        LmliOptions {
            flatten_args: false,
            flatten_cons: false,
            box_floats: true,
            specialize_arrays: false,
            max_flat: 0,
        }
    }
}

/// Converts a typed Lambda program into Lmli.
pub fn from_lambda(
    prog: &LProgram,
    opts: &LmliOptions,
    vs: &mut VarSupply,
) -> Result<MProgram> {
    let mdata = build_mdata(&prog.data_env, opts);
    let exns = build_mexns(prog, opts);
    let mut cx = Cx {
        denv: &prog.data_env,
        eenv: &prog.exn_env,
        opts,
        vs,
        mdata,
        env: HashMap::new(),
    };
    let (body, body_ty) = cx.exp(&prog.body)?;
    let con = cx.tcon(&body_ty);
    Ok(MProgram {
        data: cx.mdata,
        exns,
        body,
        con,
    })
}

/// The conversion environment accumulated while converting the prelude
/// skeleton — every prelude binding's type/thunk info, captured for
/// converting user fragments against a cached, already-converted
/// prelude. Opaque: only [`from_lambda_prelude`] produces one and only
/// [`from_lambda_fragment`] consumes it.
pub struct FragmentCx {
    env: HashMap<Var, VInfo>,
}

/// Converts the prelude skeleton (innermost body = the unit-typed free
/// variable `hole`) and captures the conversion environment. The
/// returned program's body still contains `MExp::Var(hole)`; splice a
/// converted user fragment into it with [`MExp::splice_var`].
pub fn from_lambda_prelude(
    prog: &LProgram,
    opts: &LmliOptions,
    vs: &mut VarSupply,
    hole: Var,
) -> Result<(MProgram, FragmentCx)> {
    let mdata = build_mdata(&prog.data_env, opts);
    let exns = build_mexns(prog, opts);
    let mut cx = Cx {
        denv: &prog.data_env,
        eenv: &prog.exn_env,
        opts,
        vs,
        mdata,
        env: HashMap::new(),
    };
    // The hole is a monomorphic unit-typed variable; converting
    // `Var(hole)` therefore yields `MExp::Var(hole)` unchanged.
    cx.bind(hole, vec![], LTy::unit(), false);
    let (body, body_ty) = cx.exp(&prog.body)?;
    let con = cx.tcon(&body_ty);
    let env = std::mem::take(&mut cx.env);
    Ok((
        MProgram {
            data: cx.mdata,
            exns,
            body,
            con,
        },
        FragmentCx { env },
    ))
}

/// Converts a user fragment under a captured prelude conversion
/// environment. `prog` carries the *joined* datatype/exception
/// environments (the prelude's ids are a stable prefix, so the
/// skeleton's references stay valid) and the fragment as its body.
pub fn from_lambda_fragment(
    prog: &LProgram,
    opts: &LmliOptions,
    vs: &mut VarSupply,
    fcx: &FragmentCx,
) -> Result<MProgram> {
    let mdata = build_mdata(&prog.data_env, opts);
    let exns = build_mexns(prog, opts);
    let mut cx = Cx {
        denv: &prog.data_env,
        eenv: &prog.exn_env,
        opts,
        vs,
        mdata,
        env: fcx.env.clone(),
    };
    let (body, body_ty) = cx.exp(&prog.body)?;
    let con = cx.tcon(&body_ty);
    Ok(MProgram {
        data: cx.mdata,
        exns,
        body,
        con,
    })
}

/// Translates the exception environment (shared by the whole-program
/// and split entry points).
fn build_mexns(prog: &LProgram, opts: &LmliOptions) -> MExnEnv {
    let mut exns = MExnEnv::new();
    for i in 0..prog.exn_env.len() {
        let info = prog.exn_env.get(til_lambda::ExnId(i as u32));
        let arg = info
            .arg
            .as_ref()
            .map(|t| tcon_with(t, &prog.data_env, opts));
        exns.push(info.name, arg);
    }
    exns
}

/// Chooses every datatype's representation.
fn build_mdata(denv: &DataEnv, opts: &LmliOptions) -> MDataEnv {
    let mut out = MDataEnv::new();
    for (_, info) in denv.iter() {
        let carrying = info.num_carrying();
        let rep = if carrying == 0 {
            DataRep::Enum
        } else if !opts.flatten_cons {
            DataRep::Boxed
        } else if carrying == 1 {
            DataRep::Tagless
        } else {
            DataRep::Tagged
        };
        let cons = info
            .cons
            .iter()
            .map(|c| {
                c.arg.as_ref().map(|arg| match arg {
                    LTy::Record(fs)
                        if opts.flatten_cons
                            && !fs.is_empty()
                            && fs.len() <= opts.max_flat =>
                    {
                        fs.iter().map(|(_, t)| tcon_with(t, denv, opts)).collect()
                    }
                    other => vec![tcon_with(other, denv, opts)],
                })
            })
            .collect();
        out.push(MData {
            name: info.name,
            params: info.params.clone(),
            rep,
            cons,
        });
    }
    out
}

/// The type translation (free function so `build_mdata` can use it).
fn tcon_with(t: &LTy, denv: &DataEnv, opts: &LmliOptions) -> Con {
    match t {
        LTy::Var(tv) => Con::Var(*tv),
        LTy::Uvar(_) => unreachable!("zonked before conversion"),
        LTy::Int | LTy::Char => Con::Int,
        LTy::Real => {
            if opts.box_floats {
                Con::Boxed
            } else {
                Con::Float
            }
        }
        LTy::Str => Con::Str,
        LTy::Exn => Con::Exn,
        LTy::Arrow(a, b) => Con::Arrow {
            cparams: vec![],
            params: flatten_dom(a, denv, opts),
            ret: Box::new(tcon_with(b, denv, opts)),
        },
        LTy::Record(fs) => {
            Con::Record(fs.iter().map(|(_, t)| tcon_with(t, denv, opts)).collect())
        }
        LTy::Data(id, args) => {
            if denv.get(*id).cons.iter().all(|c| c.arg.is_none()) {
                Con::Int
            } else {
                Con::Data(
                    *id,
                    args.iter().map(|a| tcon_with(a, denv, opts)).collect(),
                )
            }
        }
        LTy::Array(t) => {
            if opts.specialize_arrays {
                Con::SpecArray(Box::new(tcon_with(t, denv, opts)))
                    .normalize(&|id| denv.get(id).cons.iter().all(|c| c.arg.is_none()))
            } else {
                Con::Array(Box::new(tcon_with(t, denv, opts)))
            }
        }
        LTy::Ref(t) => Con::Array(Box::new(tcon_with(t, denv, opts))),
    }
}

/// Functions take exactly one parameter at conversion time; argument
/// flattening is performed by the optimizer's worker/wrapper pass so
/// that the flattened calling convention never leaks into positions
/// typed by a variable (see `til-opt`'s `flatten` module).
fn flatten_dom(t: &LTy, denv: &DataEnv, opts: &LmliOptions) -> Vec<Con> {
    vec![tcon_with(t, denv, opts)]
}

#[derive(Clone)]
struct VInfo {
    tyvars: Vec<TyVar>,
    ty: LTy,
    /// Bound as a 0-ary polymorphic thunk (polymorphic non-function
    /// value); every use must first apply it to its type arguments.
    thunk: bool,
}

struct Cx<'a> {
    denv: &'a DataEnv,
    eenv: &'a til_lambda::ExnEnv,
    opts: &'a LmliOptions,
    vs: &'a mut VarSupply,
    mdata: MDataEnv,
    env: HashMap<Var, VInfo>,
}

impl<'a> Cx<'a> {
    fn tcon(&self, t: &LTy) -> Con {
        tcon_with(t, self.denv, self.opts)
    }

    fn is_enum(&self, id: til_lambda::DataId) -> bool {
        self.mdata.get(id).is_enum()
    }

    fn lam_rep_tag(&self, t: &LTy) -> RepClass {
        let c = self.tcon(t);
        rep_tag(&c, &|id| self.is_enum(id))
    }

    fn bind(&mut self, v: Var, tyvars: Vec<TyVar>, ty: LTy, thunk: bool) {
        self.env.insert(v, VInfo { tyvars, ty, thunk });
    }

    fn box_exp(&self, e: MExp) -> MExp {
        if self.opts.box_floats {
            MExp::Prim {
                prim: MPrim::BoxFloat,
                cargs: vec![],
                args: vec![e],
            }
        } else {
            e
        }
    }

    fn unbox_exp(&self, e: MExp) -> MExp {
        if self.opts.box_floats {
            MExp::Prim {
                prim: MPrim::UnboxFloat,
                cargs: vec![],
                args: vec![e],
            }
        } else {
            e
        }
    }

    fn ice(msg: impl Into<String>) -> Diagnostic {
        Diagnostic::ice("to-lmli", msg)
    }

    /// Converts an expression, returning its Lambda type alongside.
    fn exp(&mut self, e: &LExp) -> Result<(MExp, LTy)> {
        match e {
            LExp::Var { var, tyargs } => {
                let info = self
                    .env
                    .get(var)
                    .cloned()
                    .ok_or_else(|| Self::ice(format!("unbound {var}")))?;
                let tyargs = if tyargs.is_empty() && !info.tyvars.is_empty() {
                    info.tyvars.iter().map(|tv| LTy::Var(*tv)).collect()
                } else {
                    tyargs.clone()
                };
                if tyargs.is_empty() {
                    return Ok((MExp::Var(*var), info.ty.clone()));
                }
                let map: HashMap<TyVar, LTy> = info
                    .tyvars
                    .iter()
                    .copied()
                    .zip(tyargs.iter().cloned())
                    .collect();
                let inst = info.ty.subst(&map);
                let cargs: Vec<Con> = tyargs.iter().map(|t| self.tcon(t)).collect();
                if info.thunk {
                    return Ok((
                        MExp::App {
                            f: Box::new(MExp::Var(*var)),
                            cargs,
                            args: vec![],
                        },
                        inst,
                    ));
                }
                // A polymorphic function used as a value: eta-expand so
                // the resulting closure is monomorphic.
                match &inst {
                    LTy::Arrow(dom, _cod) => {
                        let params: Vec<(Var, Con)> = flatten_dom(dom, self.denv, self.opts)
                            .into_iter()
                            .enumerate()
                            .map(|(i, c)| (self.vs.fresh_named(&format!("x{i}")), c))
                            .collect();
                        let g = self.vs.fresh_named("eta");
                        let ret = {
                            let LTy::Arrow(_, cod) = &inst else {
                                unreachable!()
                            };
                            self.tcon(cod)
                        };
                        let body = MExp::App {
                            f: Box::new(MExp::Var(*var)),
                            cargs,
                            args: params.iter().map(|(v, _)| MExp::Var(*v)).collect(),
                        };
                        Ok((
                            MExp::Fix {
                                funs: vec![MFun {
                                    var: g,
                                    cparams: vec![],
                                    params,
                                    ret,
                                    body,
                                }],
                                body: Box::new(MExp::Var(g)),
                            },
                            inst,
                        ))
                    }
                    _ => Ok((
                        MExp::App {
                            f: Box::new(MExp::Var(*var)),
                            cargs,
                            args: vec![],
                        },
                        inst,
                    )),
                }
            }
            LExp::Int(n) => Ok((MExp::Int(*n), LTy::Int)),
            LExp::Char(c) => Ok((MExp::Int(*c as i64), LTy::Char)),
            LExp::Real(r) => Ok((self.box_exp(MExp::Float(*r)), LTy::Real)),
            LExp::Str(s) => Ok((MExp::Str(s.clone()), LTy::Str)),
            LExp::Fn {
                param,
                param_ty,
                body,
            } => {
                let g = self.vs.fresh_named("anon");
                let (f, bt) = self.convert_function(*param, param_ty, body, g, &[])?;
                let fun_ty = LTy::Arrow(Box::new(param_ty.clone()), Box::new(bt));
                Ok((
                    MExp::Fix {
                        funs: vec![f],
                        body: Box::new(MExp::Var(g)),
                    },
                    fun_ty,
                ))
            }
            LExp::App(f, a) => self.app(f, a),
            LExp::Fix { tyvars, funs, body } => {
                // Bind all names first (monomorphic within bodies).
                for f in funs {
                    let fty = LTy::Arrow(Box::new(f.param_ty.clone()), Box::new(f.ret_ty.clone()));
                    self.bind(f.var, tyvars.clone(), fty, false);
                }
                let mut mfuns = Vec::new();
                for f in funs {
                    let (mf, _bt) =
                        self.convert_function(f.param, &f.param_ty, &f.body, f.var, tyvars)?;
                    mfuns.push(mf);
                }
                let (mb, bt) = self.exp(body)?;
                Ok((
                    MExp::Fix {
                        funs: mfuns,
                        body: Box::new(mb),
                    },
                    bt,
                ))
            }
            LExp::Let {
                var,
                tyvars,
                rhs,
                body,
            } => {
                if tyvars.is_empty() {
                    let (mr, rt) = self.exp(rhs)?;
                    self.bind(*var, vec![], rt, false);
                    let (mb, bt) = self.exp(body)?;
                    Ok((
                        MExp::Let {
                            var: *var,
                            rhs: Box::new(mr),
                            body: Box::new(mb),
                        },
                        bt,
                    ))
                } else {
                    // Polymorphic value: a 0-ary type-function.
                    let (mr, rt) = self.exp(rhs)?;
                    self.bind(*var, tyvars.clone(), rt.clone(), true);
                    let (mb, bt) = self.exp(body)?;
                    let ret = self.tcon(&rt);
                    Ok((
                        MExp::Fix {
                            funs: vec![MFun {
                                var: *var,
                                cparams: tyvars.clone(),
                                params: vec![],
                                ret,
                                body: mr,
                            }],
                            body: Box::new(mb),
                        },
                        bt,
                    ))
                }
            }
            LExp::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                let mut tys = Vec::with_capacity(fields.len());
                for (l, fe) in fields {
                    let (me, t) = self.exp(fe)?;
                    out.push(me);
                    tys.push((*l, t));
                }
                Ok((MExp::Record(out), LTy::Record(tys)))
            }
            LExp::Select { label, arg } => {
                let (ma, at) = self.exp(arg)?;
                let LTy::Record(fs) = &at else {
                    return Err(Self::ice("selection from non-record"));
                };
                let idx = fs
                    .iter()
                    .position(|(l, _)| l == label)
                    .ok_or_else(|| Self::ice(format!("missing label {label}")))?;
                let fty = fs[idx].1.clone();
                Ok((MExp::Select(idx, Box::new(ma)), fty))
            }
            LExp::Con {
                data,
                tyargs,
                tag,
                arg,
            } => self.con(*data, tyargs, *tag, arg.as_deref()),
            LExp::ExnCon { exn, arg } => {
                let ma = match arg {
                    Some(a) => Some(Box::new(self.exp(a)?.0)),
                    None => None,
                };
                Ok((MExp::ExnCon { exn: *exn, arg: ma }, LTy::Exn))
            }
            LExp::Switch(sw) => self.switch(sw),
            LExp::Raise { exn, ty } => {
                let (me, _) = self.exp(exn)?;
                Ok((
                    MExp::Raise {
                        exn: Box::new(me),
                        con: self.tcon(ty),
                    },
                    ty.clone(),
                ))
            }
            LExp::Handle {
                body,
                handler_var,
                handler,
            } => {
                let (mb, bt) = self.exp(body)?;
                self.bind(*handler_var, vec![], LTy::Exn, false);
                let (mh, _) = self.exp(handler)?;
                Ok((
                    MExp::Handle {
                        body: Box::new(mb),
                        var: *handler_var,
                        handler: Box::new(mh),
                    },
                    bt,
                ))
            }
            LExp::Prim { prim, tyargs, args } => self.prim(*prim, tyargs, args),
        }
    }

    /// Converts one Lambda function (used by both `Fn` and `Fix`):
    /// flattens the parameter record into multiple parameters and
    /// rebinds the original record variable in the body.
    fn convert_function(
        &mut self,
        param: Var,
        param_ty: &LTy,
        body: &LExp,
        name: Var,
        tyvars: &[TyVar],
    ) -> Result<(MFun, LTy)> {
        let params: Vec<(Var, Con)> = vec![(param, self.tcon(param_ty))];
        self.bind(param, vec![], param_ty.clone(), false);
        let (mb, bt) = self.exp(body)?;
        Ok((
            MFun {
                var: name,
                cparams: tyvars.to_vec(),
                params,
                ret: self.tcon(&bt),
                body: mb,
            },
            bt,
        ))
    }

    /// Converts `f a`, splatting flattened arguments.
    fn app(&mut self, f: &LExp, a: &LExp) -> Result<(MExp, LTy)> {
        // Resolve the callee without eta-expanding polymorphic vars.
        let (mf, fty, cargs) = match f {
            LExp::Var { var, tyargs } => {
                let info = self
                    .env
                    .get(var)
                    .cloned()
                    .ok_or_else(|| Self::ice(format!("unbound {var}")))?;
                let tyargs: Vec<LTy> = if tyargs.is_empty() && !info.tyvars.is_empty() {
                    info.tyvars.iter().map(|tv| LTy::Var(*tv)).collect()
                } else {
                    tyargs.clone()
                };
                let map: HashMap<TyVar, LTy> = info
                    .tyvars
                    .iter()
                    .copied()
                    .zip(tyargs.iter().cloned())
                    .collect();
                let inst = info.ty.subst(&map);
                let cargs: Vec<Con> = tyargs.iter().map(|t| self.tcon(t)).collect();
                if info.thunk {
                    // Force the thunk, then apply monomorphically.
                    (
                        MExp::App {
                            f: Box::new(MExp::Var(*var)),
                            cargs,
                            args: vec![],
                        },
                        inst,
                        vec![],
                    )
                } else {
                    (MExp::Var(*var), inst, cargs)
                }
            }
            other => {
                let (mf, ft) = self.exp(other)?;
                (mf, ft, vec![])
            }
        };
        let LTy::Arrow(dom, cod) = &fty else {
            return Err(Self::ice("application of non-arrow"));
        };
        let args = self.flatten_arg(dom, a)?;
        match args {
            FlatArgs::Direct(args) => Ok((
                MExp::App {
                    f: Box::new(mf),
                    cargs,
                    args,
                },
                (**cod).clone(),
            )),
        }
    }

    fn flatten_arg(&mut self, _dom: &LTy, a: &LExp) -> Result<FlatArgs> {
        let (ma, _) = self.exp(a)?;
        Ok(FlatArgs::Direct(vec![ma]))
    }

    /// Converts a constructor application.
    fn con(
        &mut self,
        data: til_lambda::DataId,
        tyargs: &[LTy],
        tag: usize,
        arg: Option<&LExp>,
    ) -> Result<(MExp, LTy)> {
        let dty = LTy::Data(data, tyargs.to_vec());
        let md = self.mdata.get(data).clone();
        if md.is_enum() {
            return Ok((MExp::Int(md.enum_value(tag)), dty));
        }
        let cargs: Vec<Con> = tyargs.iter().map(|t| self.tcon(t)).collect();
        match (&md.cons[tag], arg) {
            (None, None) => Ok((
                MExp::Con {
                    data,
                    cargs,
                    tag,
                    args: vec![],
                },
                dty,
            )),
            (Some(fields), Some(a)) => {
                let args = if fields.len() == 1 {
                    vec![self.exp(a)?.0]
                } else {
                    // Flattened: splat a record literal or select from
                    // a temporary.
                    match a {
                        LExp::Record(fs) if fs.len() == fields.len() => {
                            let mut out = Vec::with_capacity(fs.len());
                            for (_, fe) in fs {
                                out.push(self.exp(fe)?.0);
                            }
                            out
                        }
                        other => {
                            let (ma, _) = self.exp(other)?;
                            let tmp = self.vs.fresh_named("carg");
                            let sel = (0..fields.len())
                                .map(|i| MExp::Select(i, Box::new(MExp::Var(tmp))))
                                .collect();
                            return Ok((
                                MExp::Let {
                                    var: tmp,
                                    rhs: Box::new(ma),
                                    body: Box::new(MExp::Con {
                                        data,
                                        cargs,
                                        tag,
                                        args: sel,
                                    }),
                                },
                                dty,
                            ));
                        }
                    }
                };
                Ok((
                    MExp::Con {
                        data,
                        cargs,
                        tag,
                        args,
                    },
                    dty,
                ))
            }
            _ => Err(Self::ice("constructor arity mismatch")),
        }
    }

    fn switch(&mut self, sw: &LSwitch) -> Result<(MExp, LTy)> {
        match sw {
            LSwitch::Data {
                scrut,
                data,
                tyargs,
                arms,
                default,
                result_ty,
            } => {
                let (ms, _) = self.exp(scrut)?;
                let md = self.mdata.get(*data).clone();
                let rcon = result_ty.clone();
                if md.is_enum() {
                    // Enum switch: int switch over enum values.
                    let mut iarms = Vec::new();
                    for (tag, binder, arm) in arms {
                        debug_assert!(binder.is_none());
                        let (ma, _) = self.exp(arm)?;
                        iarms.push((md.enum_value(*tag), ma));
                    }
                    let def = match default {
                        Some(d) => self.exp(d)?.0,
                        None => {
                            // Exhaustive: last arm becomes the default.
                            iarms
                                .pop()
                                .map(|(_, a)| a)
                                .ok_or_else(|| Self::ice("empty enum switch"))?
                        }
                    };
                    return Ok((
                        MExp::Switch(Box::new(MSwitch::Int {
                            scrut: ms,
                            arms: iarms,
                            default: Box::new(def),
                            con: self.tcon(&rcon),
                        })),
                        rcon,
                    ));
                }
                let cargs: Vec<Con> = tyargs.iter().map(|t| self.tcon(t)).collect();
                let mut marms = Vec::new();
                for (tag, binder, arm) in arms {
                    match &md.cons[*tag] {
                        None => {
                            debug_assert!(binder.is_none());
                            let (ma, _) = self.exp(arm)?;
                            marms.push((*tag, vec![], ma));
                        }
                        Some(fields) => {
                            // Bind the flattened fields; rebuild the
                            // original record binder if present.
                            let fvars: Vec<Var> = (0..fields.len())
                                .map(|i| self.vs.fresh_named(&format!("f{i}")))
                                .collect();
                            let ma = match binder {
                                Some(orig) => {
                                    let carried = self
                                        .denv
                                        .get(*data)
                                        .con_arg_ty(*tag, tyargs)
                                        .expect("carrying");
                                    self.bind(*orig, vec![], carried.clone(), false);
                                    let (inner, _) = self.exp(arm)?;
                                    let rhs = if fields.len() == 1 {
                                        MExp::Var(fvars[0])
                                    } else {
                                        MExp::Record(
                                            fvars.iter().map(|v| MExp::Var(*v)).collect(),
                                        )
                                    };
                                    MExp::Let {
                                        var: *orig,
                                        rhs: Box::new(rhs),
                                        body: Box::new(inner),
                                    }
                                }
                                None => self.exp(arm)?.0,
                            };
                            marms.push((*tag, fvars, ma));
                        }
                    }
                }
                let mdefault = match default {
                    Some(d) => Some(Box::new(self.exp(d)?.0)),
                    None => None,
                };
                Ok((
                    MExp::Switch(Box::new(MSwitch::Data {
                        scrut: ms,
                        data: *data,
                        cargs,
                        arms: marms,
                        default: mdefault,
                        con: self.tcon(&rcon),
                    })),
                    rcon,
                ))
            }
            LSwitch::Int {
                scrut,
                arms,
                default,
                result_ty,
            } => {
                let (ms, _) = self.exp(scrut)?;
                let mut marms = Vec::new();
                for (k, a) in arms {
                    marms.push((*k, self.exp(a)?.0));
                }
                let (md, _) = self.exp(default)?;
                Ok((
                    MExp::Switch(Box::new(MSwitch::Int {
                        scrut: ms,
                        arms: marms,
                        default: Box::new(md),
                        con: self.tcon(result_ty),
                    })),
                    result_ty.clone(),
                ))
            }
            LSwitch::Str {
                scrut,
                arms,
                default,
                result_ty,
            } => {
                let (ms, _) = self.exp(scrut)?;
                let mut marms = Vec::new();
                for (k, a) in arms {
                    marms.push((k.clone(), self.exp(a)?.0));
                }
                let (md, _) = self.exp(default)?;
                Ok((
                    MExp::Switch(Box::new(MSwitch::Str {
                        scrut: ms,
                        arms: marms,
                        default: Box::new(md),
                        con: self.tcon(result_ty),
                    })),
                    result_ty.clone(),
                ))
            }
            LSwitch::Exn {
                scrut,
                arms,
                default,
                result_ty,
            } => {
                let (ms, _) = self.exp(scrut)?;
                let mut marms = Vec::new();
                for (id, binder, a) in arms {
                    if let Some(b) = binder {
                        let arg_ty = self
                            .denv_exn_arg(*id)
                            .ok_or_else(|| Self::ice("binder on constant exception"))?;
                        self.bind(*b, vec![], arg_ty, false);
                    }
                    marms.push((*id, *binder, self.exp(a)?.0));
                }
                let (md, _) = self.exp(default)?;
                Ok((
                    MExp::Switch(Box::new(MSwitch::Exn {
                        scrut: ms,
                        arms: marms,
                        default: Box::new(md),
                        con: self.tcon(result_ty),
                    })),
                    result_ty.clone(),
                ))
            }
        }
    }

    fn denv_exn_arg(&self, id: til_lambda::ExnId) -> Option<LTy> {
        self.eenv.get(id).arg.clone()
    }

    /// Converts a primitive application (the representation-level
    /// heart of the conversion).
    fn prim(&mut self, p: Prim, tyargs: &[LTy], args: &[LExp]) -> Result<(MExp, LTy)> {
        use MPrim as M;
        use Prim as P;
        // Direct structural mappings.
        let direct = |m: MPrim| Some(m);
        let mapped: Option<MPrim> = match p {
            P::IAdd => direct(M::IAdd),
            P::ISub => direct(M::ISub),
            P::IMul => direct(M::IMul),
            P::IDiv => direct(M::IDiv),
            P::IMod => direct(M::IMod),
            P::INeg => direct(M::INeg),
            P::IAbs => direct(M::IAbs),
            P::ILt | P::CLt => direct(M::ILt),
            P::ILe | P::CLe => direct(M::ILe),
            P::IGt | P::CGt => direct(M::IGt),
            P::IGe | P::CGe => direct(M::IGe),
            P::IEq | P::CEq => direct(M::IEq),
            P::INe | P::CNe => direct(M::INe),
            P::AndB => direct(M::AndB),
            P::OrB => direct(M::OrB),
            P::XorB => direct(M::XorB),
            P::NotB => direct(M::NotB),
            P::Lsl => direct(M::Lsl),
            P::Lsr => direct(M::Lsr),
            P::Asr => direct(M::Asr),
            P::CChr => direct(M::Chr),
            P::StrSize => direct(M::StrSize),
            P::StrSub => direct(M::StrSub),
            P::StrConcat => direct(M::StrConcat),
            P::StrFromChar => direct(M::StrFromChar),
            P::StrCmp => direct(M::StrCmp),
            P::IntToString => direct(M::IntToString),
            P::Print => direct(M::Print),
            P::COrd => None, // identity
            _ => None,
        };
        if let Some(m) = mapped {
            let mut margs = Vec::with_capacity(args.len());
            for a in args {
                margs.push(self.exp(a)?.0);
            }
            let ret = self.lam_prim_ret(p, tyargs);
            return Ok((
                MExp::Prim {
                    prim: m,
                    cargs: vec![],
                    args: margs,
                },
                ret,
            ));
        }
        match p {
            P::COrd => {
                let (ma, _) = self.exp(&args[0])?;
                Ok((ma, LTy::Int))
            }
            // Floats: unbox arguments, box float results.
            P::RAdd | P::RSub | P::RMul | P::RDiv => {
                let m = match p {
                    P::RAdd => M::FAdd,
                    P::RSub => M::FSub,
                    P::RMul => M::FMul,
                    _ => M::FDiv,
                };
                let a = self.exp(&args[0])?.0;
                let b = self.exp(&args[1])?.0;
                let inner = MExp::Prim {
                    prim: m,
                    cargs: vec![],
                    args: vec![self.unbox_exp(a), self.unbox_exp(b)],
                };
                Ok((self.box_exp(inner), LTy::Real))
            }
            P::RNeg | P::RAbs | P::Sqrt | P::Sin | P::Cos | P::Atan | P::ExpR | P::Ln => {
                let m = match p {
                    P::RNeg => M::FNeg,
                    P::RAbs => M::FAbs,
                    P::Sqrt => M::FSqrt,
                    P::Sin => M::FSin,
                    P::Cos => M::FCos,
                    P::Atan => M::FAtan,
                    P::ExpR => M::FExp,
                    _ => M::FLn,
                };
                let a = self.exp(&args[0])?.0;
                let inner = MExp::Prim {
                    prim: m,
                    cargs: vec![],
                    args: vec![self.unbox_exp(a)],
                };
                Ok((self.box_exp(inner), LTy::Real))
            }
            P::RLt | P::RLe | P::RGt | P::RGe | P::REq | P::RNe => {
                let m = match p {
                    P::RLt => M::FLt,
                    P::RLe => M::FLe,
                    P::RGt => M::FGt,
                    P::RGe => M::FGe,
                    P::REq => M::FEq,
                    _ => M::FNe,
                };
                let a = self.exp(&args[0])?.0;
                let b = self.exp(&args[1])?.0;
                Ok((
                    MExp::Prim {
                        prim: m,
                        cargs: vec![],
                        args: vec![self.unbox_exp(a), self.unbox_exp(b)],
                    },
                    LTy::bool_ty(),
                ))
            }
            P::RealFromInt => {
                let a = self.exp(&args[0])?.0;
                let inner = MExp::Prim {
                    prim: M::ItoF,
                    cargs: vec![],
                    args: vec![a],
                };
                Ok((self.box_exp(inner), LTy::Real))
            }
            P::Floor | P::Trunc => {
                let m = if matches!(p, P::Floor) {
                    M::Floor
                } else {
                    M::Trunc
                };
                let a = self.exp(&args[0])?.0;
                Ok((
                    MExp::Prim {
                        prim: m,
                        cargs: vec![],
                        args: vec![self.unbox_exp(a)],
                    },
                    LTy::Int,
                ))
            }
            P::RealToString => {
                let a = self.exp(&args[0])?.0;
                Ok((
                    MExp::Prim {
                        prim: M::FToString,
                        cargs: vec![],
                        args: vec![self.unbox_exp(a)],
                    },
                    LTy::Str,
                ))
            }
            // Arrays.
            P::ArrayNew => self.array_new(&tyargs[0], &args[0], &args[1]),
            P::ArraySubU => self.array_sub(&tyargs[0], &args[0], &args[1]),
            P::ArrayUpdateU => self.array_upd(&tyargs[0], &args[0], &args[1], &args[2]),
            P::ArrayLength => {
                let (ma, at) = self.exp(&args[0])?;
                let elem = self.tcon(&tyargs[0]);
                let _ = at;
                Ok((
                    MExp::Prim {
                        prim: M::ALen,
                        cargs: vec![elem],
                        args: vec![ma],
                    },
                    LTy::Int,
                ))
            }
            // References: one-element arrays, never float-specialized.
            P::RefNew => {
                let one = MExp::Int(1);
                let (mv, _) = self.exp(&args[0])?;
                let e = self.ref_like_op(&tyargs[0], RefOp::New, vec![one, mv]);
                Ok((e, LTy::Ref(Box::new(tyargs[0].clone()))))
            }
            P::RefGet => {
                let (mr, _) = self.exp(&args[0])?;
                let e = self.ref_like_op(&tyargs[0], RefOp::Get, vec![mr, MExp::Int(0)]);
                Ok((e, tyargs[0].clone()))
            }
            P::RefSet => {
                let (mr, _) = self.exp(&args[0])?;
                let (mv, _) = self.exp(&args[1])?;
                let e = self.ref_like_op(&tyargs[0], RefOp::Set, vec![mr, MExp::Int(0), mv]);
                Ok((e, LTy::unit()))
            }
            P::PolyEq => self.polyeq(&tyargs[0], &args[0], &args[1]),
            P::OverloadArith(_) | P::OverloadCmp(_) | P::OverloadNeg | P::OverloadAbs => {
                Err(Self::ice("overload placeholder survived zonking"))
            }
            _ => Err(Self::ice(format!("unhandled primitive {p}"))),
        }
    }

    fn lam_prim_ret(&self, p: Prim, tyargs: &[LTy]) -> LTy {
        let sig = p.sig().expect("mapped prims have signatures");
        let map: HashMap<TyVar, LTy> = (0..sig.tyvars)
            .map(|i| (TyVar(i as u32), tyargs[i].clone()))
            .collect();
        sig.ret.subst(&map)
    }

    // ------------------------------------------------------ array ops

    fn array_new(&mut self, elem: &LTy, n: &LExp, init: &LExp) -> Result<(MExp, LTy)> {
        let rty = LTy::Array(Box::new(elem.clone()));
        let (mn, _) = self.exp(n)?;
        let (mi, _) = self.exp(init)?;
        if !self.opts.specialize_arrays {
            let c = self.tcon(elem);
            return Ok((
                MExp::Prim {
                    prim: MPrim::PANew,
                    cargs: vec![c],
                    args: vec![mn, mi],
                },
                rty,
            ));
        }
        let e = match self.lam_rep_tag(elem) {
            RepClass::Int => MExp::Prim {
                prim: MPrim::IANew,
                cargs: vec![],
                args: vec![mn, mi],
            },
            RepClass::Float => MExp::Prim {
                prim: MPrim::FANew,
                cargs: vec![],
                args: vec![mn, self.unbox_exp(mi)],
            },
            RepClass::Ptr => MExp::Prim {
                prim: MPrim::PANew,
                cargs: vec![self.tcon(elem)],
                args: vec![mn, mi],
            },
            RepClass::Unknown => {
                // The paper's typecase: bind the operands once, then
                // branch on the element type's representation.
                let LTy::Var(tv) = elem else {
                    return Err(Self::ice("unknown array element that is not a variable"));
                };
                let vn = self.vs.fresh_named("n");
                let vi = self.vs.fresh_named("init");
                let tc = MExp::Typecase {
                    scrut: Con::Var(*tv),
                    int: Box::new(MExp::Prim {
                        prim: MPrim::IANew,
                        cargs: vec![],
                        args: vec![MExp::Var(vn), MExp::Var(vi)],
                    }),
                    float: Box::new(MExp::Prim {
                        prim: MPrim::FANew,
                        cargs: vec![],
                        args: vec![MExp::Var(vn), self.unbox_exp(MExp::Var(vi))],
                    }),
                    ptr: Box::new(MExp::Prim {
                        prim: MPrim::PANew,
                        cargs: vec![Con::Var(*tv)],
                        args: vec![MExp::Var(vn), MExp::Var(vi)],
                    }),
                    con: Con::SpecArray(Box::new(Con::Var(*tv))),
                };
                MExp::Let {
                    var: vn,
                    rhs: Box::new(mn),
                    body: Box::new(MExp::Let {
                        var: vi,
                        rhs: Box::new(mi),
                        body: Box::new(tc),
                    }),
                }
            }
        };
        Ok((e, rty))
    }

    fn array_sub(&mut self, elem: &LTy, arr: &LExp, idx: &LExp) -> Result<(MExp, LTy)> {
        let (ma, _) = self.exp(arr)?;
        let (mi, _) = self.exp(idx)?;
        if !self.opts.specialize_arrays {
            let c = self.tcon(elem);
            return Ok((
                MExp::Prim {
                    prim: MPrim::PASub,
                    cargs: vec![c],
                    args: vec![ma, mi],
                },
                elem.clone(),
            ));
        }
        let e = match self.lam_rep_tag(elem) {
            RepClass::Int => MExp::Prim {
                prim: MPrim::IASub,
                cargs: vec![],
                args: vec![ma, mi],
            },
            RepClass::Float => {
                let inner = MExp::Prim {
                    prim: MPrim::FASub,
                    cargs: vec![],
                    args: vec![ma, mi],
                };
                self.box_exp(inner)
            }
            RepClass::Ptr => MExp::Prim {
                prim: MPrim::PASub,
                cargs: vec![self.tcon(elem)],
                args: vec![ma, mi],
            },
            RepClass::Unknown => {
                let LTy::Var(tv) = elem else {
                    return Err(Self::ice("unknown array element that is not a variable"));
                };
                let va = self.vs.fresh_named("arr");
                let vi = self.vs.fresh_named("i");
                let boxed_read = {
                    let inner = MExp::Prim {
                        prim: MPrim::FASub,
                        cargs: vec![],
                        args: vec![MExp::Var(va), MExp::Var(vi)],
                    };
                    self.box_exp(inner)
                };
                let tc = MExp::Typecase {
                    scrut: Con::Var(*tv),
                    int: Box::new(MExp::Prim {
                        prim: MPrim::IASub,
                        cargs: vec![],
                        args: vec![MExp::Var(va), MExp::Var(vi)],
                    }),
                    float: Box::new(boxed_read),
                    ptr: Box::new(MExp::Prim {
                        prim: MPrim::PASub,
                        cargs: vec![Con::Var(*tv)],
                        args: vec![MExp::Var(va), MExp::Var(vi)],
                    }),
                    con: Con::Var(*tv),
                };
                MExp::Let {
                    var: va,
                    rhs: Box::new(ma),
                    body: Box::new(MExp::Let {
                        var: vi,
                        rhs: Box::new(mi),
                        body: Box::new(tc),
                    }),
                }
            }
        };
        Ok((e, elem.clone()))
    }

    fn array_upd(
        &mut self,
        elem: &LTy,
        arr: &LExp,
        idx: &LExp,
        val: &LExp,
    ) -> Result<(MExp, LTy)> {
        let (ma, _) = self.exp(arr)?;
        let (mi, _) = self.exp(idx)?;
        let (mv, _) = self.exp(val)?;
        if !self.opts.specialize_arrays {
            let c = self.tcon(elem);
            return Ok((
                MExp::Prim {
                    prim: MPrim::PAUpd,
                    cargs: vec![c],
                    args: vec![ma, mi, mv],
                },
                LTy::unit(),
            ));
        }
        let e = match self.lam_rep_tag(elem) {
            RepClass::Int => MExp::Prim {
                prim: MPrim::IAUpd,
                cargs: vec![],
                args: vec![ma, mi, mv],
            },
            RepClass::Float => MExp::Prim {
                prim: MPrim::FAUpd,
                cargs: vec![],
                args: vec![ma, mi, self.unbox_exp(mv)],
            },
            RepClass::Ptr => MExp::Prim {
                prim: MPrim::PAUpd,
                cargs: vec![self.tcon(elem)],
                args: vec![ma, mi, mv],
            },
            RepClass::Unknown => {
                let LTy::Var(tv) = elem else {
                    return Err(Self::ice("unknown array element that is not a variable"));
                };
                let va = self.vs.fresh_named("arr");
                let vi = self.vs.fresh_named("i");
                let vv = self.vs.fresh_named("v");
                let tc = MExp::Typecase {
                    scrut: Con::Var(*tv),
                    int: Box::new(MExp::Prim {
                        prim: MPrim::IAUpd,
                        cargs: vec![],
                        args: vec![MExp::Var(va), MExp::Var(vi), MExp::Var(vv)],
                    }),
                    float: Box::new(MExp::Prim {
                        prim: MPrim::FAUpd,
                        cargs: vec![],
                        args: vec![
                            MExp::Var(va),
                            MExp::Var(vi),
                            self.unbox_exp(MExp::Var(vv)),
                        ],
                    }),
                    ptr: Box::new(MExp::Prim {
                        prim: MPrim::PAUpd,
                        cargs: vec![Con::Var(*tv)],
                        args: vec![MExp::Var(va), MExp::Var(vi), MExp::Var(vv)],
                    }),
                    con: Con::unit(),
                };
                MExp::Let {
                    var: va,
                    rhs: Box::new(ma),
                    body: Box::new(MExp::Let {
                        var: vi,
                        rhs: Box::new(mi),
                        body: Box::new(MExp::Let {
                            var: vv,
                            rhs: Box::new(mv),
                            body: Box::new(tc),
                        }),
                    }),
                }
            }
        };
        Ok((e, LTy::unit()))
    }

    /// Reference-cell operations (unspecialized arrays of length 1).
    /// `real ref` keeps its contents boxed, so the float arm of the
    /// typecase uses pointer operations at element type `Boxed`.
    fn ref_like_op(&mut self, elem: &LTy, op: RefOp, args: Vec<MExp>) -> MExp {
        let (iprim, pprim) = match op {
            RefOp::New => (MPrim::IANew, MPrim::PANew),
            RefOp::Get => (MPrim::IASub, MPrim::PASub),
            RefOp::Set => (MPrim::IAUpd, MPrim::PAUpd),
        };
        match self.lam_rep_tag(elem) {
            RepClass::Int => MExp::Prim {
                prim: iprim,
                cargs: vec![],
                args,
            },
            RepClass::Float | RepClass::Ptr => MExp::Prim {
                prim: pprim,
                cargs: vec![self.tcon(elem)],
                args,
            },
            RepClass::Unknown => {
                let LTy::Var(tv) = elem else {
                    // Typecase constructors never land here with our
                    // front end; conservatively use pointer ops.
                    return MExp::Prim {
                        prim: pprim,
                        cargs: vec![self.tcon(elem)],
                        args,
                    };
                };
                // Bind operands once.
                let vars: Vec<Var> = args.iter().map(|_| self.vs.fresh()).collect();
                let atom_args: Vec<MExp> = vars.iter().map(|v| MExp::Var(*v)).collect();
                let con = match op {
                    RefOp::New => Con::Array(Box::new(Con::Var(*tv))),
                    RefOp::Get => Con::Var(*tv),
                    RefOp::Set => Con::unit(),
                };
                let tc = MExp::Typecase {
                    scrut: Con::Var(*tv),
                    int: Box::new(MExp::Prim {
                        prim: iprim,
                        cargs: vec![],
                        args: atom_args.clone(),
                    }),
                    float: Box::new(MExp::Prim {
                        prim: pprim,
                        cargs: vec![Con::Boxed],
                        args: atom_args.clone(),
                    }),
                    ptr: Box::new(MExp::Prim {
                        prim: pprim,
                        cargs: vec![Con::Var(*tv)],
                        args: atom_args,
                    }),
                    con,
                };
                let mut e = tc;
                for (v, a) in vars.into_iter().zip(args).rev() {
                    e = MExp::Let {
                        var: v,
                        rhs: Box::new(a),
                        body: Box::new(e),
                    };
                }
                e
            }
        }
    }

    /// Polymorphic equality: specialized by type when possible.
    fn polyeq(&mut self, t: &LTy, a: &LExp, b: &LExp) -> Result<(MExp, LTy)> {
        let (ma, _) = self.exp(a)?;
        let (mb, _) = self.exp(b)?;
        let e = match t {
            LTy::Int | LTy::Char => MExp::Prim {
                prim: MPrim::IEq,
                cargs: vec![],
                args: vec![ma, mb],
            },
            LTy::Data(id, _) if self.is_enum(*id) => MExp::Prim {
                prim: MPrim::IEq,
                cargs: vec![],
                args: vec![ma, mb],
            },
            LTy::Real => MExp::Prim {
                prim: MPrim::FEq,
                cargs: vec![],
                args: vec![self.unbox_exp(ma), self.unbox_exp(mb)],
            },
            LTy::Str => MExp::Prim {
                prim: MPrim::SEq,
                cargs: vec![],
                args: vec![ma, mb],
            },
            LTy::Ref(_) | LTy::Array(_) => MExp::Prim {
                prim: MPrim::PtrEq,
                cargs: vec![self.tcon(t)],
                args: vec![ma, mb],
            },
            other => MExp::Prim {
                prim: MPrim::PolyEq,
                cargs: vec![self.tcon(other)],
                args: vec![ma, mb],
            },
        };
        Ok((e, LTy::bool_ty()))
    }
}

enum RefOp {
    New,
    Get,
    Set,
}

enum FlatArgs {
    Direct(Vec<MExp>),
}
