//! Lmli terms.

use crate::con::{CVar, Con};
use crate::data::{MDataEnv, MExnEnv};
use crate::prim::MPrim;
use til_common::Var;
use til_lambda::env::{DataId, ExnId};

/// A complete Lmli program.
#[derive(Clone, Debug)]
pub struct MProgram {
    /// Datatype representations.
    pub data: MDataEnv,
    /// Exception argument representations.
    pub exns: MExnEnv,
    /// Whole-program body.
    pub body: MExp,
    /// Its constructor.
    pub con: Con,
}

/// One function of a `fix` nest. Functions take run-time type
/// parameters (`cparams`) and multiple value parameters — the paper's
/// Λty. λ(args...) pair from Figure 2, fused into one binder.
#[derive(Clone, Debug)]
pub struct MFun {
    /// The function's name.
    pub var: Var,
    /// Run-time type parameters (shared by the nest).
    pub cparams: Vec<CVar>,
    /// Value parameters with their constructors.
    pub params: Vec<(Var, Con)>,
    /// Result constructor.
    pub ret: Con,
    /// Body.
    pub body: MExp,
}

impl MFun {
    /// This function's constructor.
    pub fn con(&self) -> Con {
        Con::Arrow {
            cparams: self.cparams.clone(),
            params: self.params.iter().map(|(_, c)| c.clone()).collect(),
            ret: Box::new(self.ret.clone()),
        }
    }
}

/// An Lmli term.
#[derive(Clone, Debug)]
pub enum MExp {
    /// Variable occurrence.
    Var(Var),
    /// Integer (and char/word/bool/enum) constant.
    Int(i64),
    /// Unboxed float constant.
    Float(f64),
    /// String constant.
    Str(String),
    /// Mutually recursive function nest.
    Fix {
        /// Functions (all sharing their `cparams` lists' length).
        funs: Vec<MFun>,
        /// Scope.
        body: Box<MExp>,
    },
    /// Application: type arguments then value arguments, fully
    /// saturated against the callee's `Arrow`.
    App {
        /// Callee.
        f: Box<MExp>,
        /// Run-time type arguments.
        cargs: Vec<Con>,
        /// Value arguments.
        args: Vec<MExp>,
    },
    /// Monomorphic let.
    Let {
        /// Bound variable.
        var: Var,
        /// Right-hand side.
        rhs: Box<MExp>,
        /// Scope.
        body: Box<MExp>,
    },
    /// Record construction (positional).
    Record(Vec<MExp>),
    /// Positional field selection.
    Select(usize, Box<MExp>),
    /// Datatype constructor application with *flattened* arguments
    /// (`args` matches `MData::cons[tag]`; empty for nullary).
    Con {
        /// The datatype.
        data: DataId,
        /// Instantiation.
        cargs: Vec<Con>,
        /// Source constructor tag.
        tag: usize,
        /// Flattened field values.
        args: Vec<MExp>,
    },
    /// Exception packet construction.
    ExnCon {
        /// The exception.
        exn: ExnId,
        /// Carried value.
        arg: Option<Box<MExp>>,
    },
    /// Multi-way branch.
    Switch(Box<MSwitch>),
    /// Raise.
    Raise {
        /// The packet.
        exn: Box<MExp>,
        /// Type of the whole expression.
        con: Con,
    },
    /// Handle.
    Handle {
        /// Protected body.
        body: Box<MExp>,
        /// Bound to the packet.
        var: Var,
        /// Handler.
        handler: Box<MExp>,
    },
    /// Primitive application.
    Prim {
        /// The operation.
        prim: MPrim,
        /// Type arguments (for the polymorphic primitives).
        cargs: Vec<Con>,
        /// Arguments.
        args: Vec<MExp>,
    },
    /// Intensional type analysis (the paper's §2.1 `typecase`):
    /// branches on the run-time representation tag of `scrut`.
    Typecase {
        /// Analyzed constructor (a variable, or ground before constant
        /// folding removes it).
        scrut: Con,
        /// Int-representation arm.
        int: Box<MExp>,
        /// Float-representation arm (scrut refines to `Boxed`).
        float: Box<MExp>,
        /// Pointer-representation arm.
        ptr: Box<MExp>,
        /// Result constructor (may mention the scrutinized variable;
        /// each arm is checked under the corresponding refinement).
        con: Con,
    },
}

/// A multi-way branch.
#[derive(Clone, Debug)]
pub enum MSwitch {
    /// On an integer (covers bool, enums, chars, ints).
    Int {
        /// Scrutinee.
        scrut: MExp,
        /// `(value, arm)` pairs.
        arms: Vec<(i64, MExp)>,
        /// Fallback (always present; enum exhaustiveness turned the
        /// last arm into the default during conversion).
        default: Box<MExp>,
        /// Result constructor.
        con: Con,
    },
    /// On a (non-enum) datatype constructor; each arm binds the
    /// flattened fields.
    Data {
        /// Scrutinee.
        scrut: MExp,
        /// The datatype.
        data: DataId,
        /// Instantiation.
        cargs: Vec<Con>,
        /// `(tag, field binders, arm)`.
        arms: Vec<(usize, Vec<Var>, MExp)>,
        /// Fallback (`None` when arms are exhaustive).
        default: Option<Box<MExp>>,
        /// Result constructor.
        con: Con,
    },
    /// On a string value.
    Str {
        /// Scrutinee.
        scrut: MExp,
        /// `(value, arm)` pairs.
        arms: Vec<(String, MExp)>,
        /// Fallback.
        default: Box<MExp>,
        /// Result constructor.
        con: Con,
    },
    /// On an exception constructor.
    Exn {
        /// Scrutinee.
        scrut: MExp,
        /// `(exception, binder, arm)`.
        arms: Vec<(ExnId, Option<Var>, MExp)>,
        /// Fallback (usually a re-raise).
        default: Box<MExp>,
        /// Result constructor.
        con: Con,
    },
}

impl MExp {
    /// The unit value.
    pub fn unit() -> MExp {
        MExp::Record(Vec::new())
    }

    /// Counts expression nodes.
    pub fn size(&self) -> usize {
        let mut n = 1usize;
        self.for_each_child(&mut |c| n += c.size());
        n
    }

    /// Calls `f` on each direct child.
    pub fn for_each_child(&self, f: &mut impl FnMut(&MExp)) {
        match self {
            MExp::Var(_) | MExp::Int(_) | MExp::Float(_) | MExp::Str(_) => {}
            MExp::Fix { funs, body } => {
                for fun in funs {
                    f(&fun.body);
                }
                f(body);
            }
            MExp::App { f: g, args, .. } => {
                f(g);
                for a in args {
                    f(a);
                }
            }
            MExp::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            MExp::Record(fs) => {
                for e in fs {
                    f(e);
                }
            }
            MExp::Select(_, e) => f(e),
            MExp::Con { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            MExp::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            MExp::Switch(sw) => match &**sw {
                MSwitch::Int {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, a) in arms {
                        f(a);
                    }
                    f(default);
                }
                MSwitch::Data {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, a) in arms {
                        f(a);
                    }
                    if let Some(d) = default {
                        f(d);
                    }
                }
                MSwitch::Str {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, a) in arms {
                        f(a);
                    }
                    f(default);
                }
                MSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, a) in arms {
                        f(a);
                    }
                    f(default);
                }
            },
            MExp::Raise { exn, .. } => f(exn),
            MExp::Handle { body, handler, .. } => {
                f(body);
                f(handler);
            }
            MExp::Prim { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            MExp::Typecase {
                int, float, ptr, ..
            } => {
                f(int);
                f(float);
                f(ptr);
            }
        }
    }

    /// Calls `f` on each direct child, mutably.
    pub fn for_each_child_mut(&mut self, f: &mut impl FnMut(&mut MExp)) {
        match self {
            MExp::Var(_) | MExp::Int(_) | MExp::Float(_) | MExp::Str(_) => {}
            MExp::Fix { funs, body } => {
                for fun in funs {
                    f(&mut fun.body);
                }
                f(body);
            }
            MExp::App { f: g, args, .. } => {
                f(g);
                for a in args {
                    f(a);
                }
            }
            MExp::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            MExp::Record(fs) => {
                for e in fs {
                    f(e);
                }
            }
            MExp::Select(_, e) => f(e),
            MExp::Con { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            MExp::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            MExp::Switch(sw) => match &mut **sw {
                MSwitch::Int {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, a) in arms {
                        f(a);
                    }
                    f(default);
                }
                MSwitch::Data {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, a) in arms {
                        f(a);
                    }
                    if let Some(d) = default {
                        f(d);
                    }
                }
                MSwitch::Str {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, a) in arms {
                        f(a);
                    }
                    f(default);
                }
                MSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, a) in arms {
                        f(a);
                    }
                    f(default);
                }
            },
            MExp::Raise { exn, .. } => f(exn),
            MExp::Handle { body, handler, .. } => {
                f(body);
                f(handler);
            }
            MExp::Prim { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            MExp::Typecase {
                int, float, ptr, ..
            } => {
                f(int);
                f(float);
                f(ptr);
            }
        }
    }

    /// Replaces every occurrence of `Var(hole)` with `replacement`,
    /// returning the occurrence count (the prelude skeleton has
    /// exactly one hole).
    pub fn splice_var(&mut self, hole: Var, replacement: &MExp) -> usize {
        if let MExp::Var(v) = self {
            if *v == hole {
                *self = replacement.clone();
                return 1;
            }
        }
        let mut n = 0;
        self.for_each_child_mut(&mut |c| n += c.splice_var(hole, replacement));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_nested() {
        let e = MExp::Record(vec![MExp::Int(1), MExp::Int(2)]);
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn fun_con_includes_cparams() {
        let mut cs = crate::con::CVarSupply::new();
        let a = cs.fresh();
        let mut vs = til_common::VarSupply::new();
        let f = MFun {
            var: vs.fresh(),
            cparams: vec![a],
            params: vec![(vs.fresh(), Con::Var(a))],
            ret: Con::Var(a),
            body: MExp::Int(0),
        };
        let Con::Arrow { cparams, .. } = f.con() else {
            panic!()
        };
        assert_eq!(cparams, vec![a]);
    }
}
