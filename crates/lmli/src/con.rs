//! The constructor (type) language of λML_i.
//!
//! Constructors are the *run-time representable* types of Lmli: they are
//! passed to polymorphic functions as values, analyzed by term-level
//! `typecase`, and carried through to the garbage collector. The
//! type-level [`Con::Typecase`] is the (restricted) induction
//! elimination form of Harper–Morrisett: it lets the type of a
//! term-level `typecase` track its run-time control flow.
//!
//! After the Lambda→Lmli conversion, `char` has merged into `int`,
//! `'a ref` has become a one-element array, record labels have become
//! positions, and `real` has split into [`Con::Float`] (unboxed, only
//! inside float arrays and primitive operations) and [`Con::Boxed`]
//! (the default boxed representation, §3.2 of the paper).

use std::collections::HashMap;
use til_common::Symbol;
use til_lambda::env::DataId;
pub use til_lambda::ty::{TyVar as CVar, TyVarSupply as CVarSupply};

/// A constructor — an Lmli type.
#[derive(Clone, Debug, PartialEq)]
pub enum Con {
    /// A constructor variable (bound by a polymorphic function).
    Var(CVar),
    /// Word-sized integer (also chars and words).
    Int,
    /// Unboxed 64-bit float. Appears only as a float-array element
    /// type and transiently in float primitives.
    Float,
    /// Boxed float: pointer to a one-float heap cell.
    Boxed,
    /// String (byte array).
    Str,
    /// Exception packet.
    Exn,
    /// Multi-argument (possibly polymorphic) function.
    Arrow {
        /// Bound constructor parameters (run-time type arguments).
        cparams: Vec<CVar>,
        /// Value parameter types.
        params: Vec<Con>,
        /// Result type.
        ret: Box<Con>,
    },
    /// Record with positional fields (labels were resolved during the
    /// Lambda→Lmli conversion). The empty record is `unit`.
    Record(Vec<Con>),
    /// Array (element representation decided by [`rep_class`]).
    Array(Box<Con>),
    /// *Specialized* array (paper §3.2): normalizes to `Array(Float)`
    /// when the element is `real` (i.e. [`Con::Boxed`]), to an ordinary
    /// array otherwise, and is stuck on an unknown element, where the
    /// term-level `typecase` selects int/float/pointer operations at
    /// run time.
    SpecArray(Box<Con>),
    /// Saturated datatype application (representation in
    /// [`crate::data::MData`]).
    Data(DataId, Vec<Con>),
    /// Type-level typecase: reduces when the scrutinee's representation
    /// class is known.
    Typecase {
        /// Analyzed constructor.
        scrut: Box<Con>,
        /// Result when `scrut` is int-like.
        int: Box<Con>,
        /// Result when `scrut` is an unboxed float.
        float: Box<Con>,
        /// Result when `scrut` is a pointer.
        ptr: Box<Con>,
    },
}

/// Run-time representation class of a constructor — exactly the three
/// cases the paper's `sub` example analyzes (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepClass {
    /// Untraced machine word (ints, chars, enum datatypes).
    Int,
    /// Unboxed 64-bit float.
    Float,
    /// Traced pointer (records, strings, arrays, closures, boxed
    /// floats, non-enum datatypes — whose values may also be small
    /// constants, which the collector filters).
    Ptr,
    /// Not known at compile time (a constructor variable); requires
    /// run-time type analysis.
    Unknown,
}

/// Classifies a constructor's run-time representation.
///
/// `enum_datatype` reports whether a datatype is all-nullary (its
/// values are untraced small integers).
pub fn rep_class(c: &Con, enum_datatype: &impl Fn(DataId) -> bool) -> RepClass {
    match c {
        Con::Var(_) => RepClass::Unknown,
        Con::Int => RepClass::Int,
        Con::Float => RepClass::Float,
        Con::Boxed
        | Con::Str
        | Con::Exn
        | Con::Arrow { .. }
        | Con::Record(_)
        | Con::Array(_)
        | Con::SpecArray(_) => RepClass::Ptr,
        Con::Data(id, _) => {
            if enum_datatype(*id) {
                RepClass::Int
            } else {
                RepClass::Ptr
            }
        }
        Con::Typecase { .. } => RepClass::Unknown,
    }
}

/// Classifies a constructor by its *run-time type representation tag*
/// — what a `typecase` sees. This differs from [`rep_class`] in exactly
/// one case: a boxed float reports [`RepClass::Float`], because the
/// type representation of `real` is the FLOAT tag even though `real`
/// *values* travel boxed (only float arrays store them unboxed).
pub fn rep_tag(c: &Con, enum_datatype: &impl Fn(DataId) -> bool) -> RepClass {
    match c {
        Con::Boxed | Con::Float => RepClass::Float,
        other => rep_class(other, enum_datatype),
    }
}

impl Con {
    /// The unit type.
    pub fn unit() -> Con {
        Con::Record(Vec::new())
    }

    /// A monomorphic n-ary function type.
    pub fn arrow(params: Vec<Con>, ret: Con) -> Con {
        Con::Arrow {
            cparams: vec![],
            params,
            ret: Box::new(ret),
        }
    }

    /// Capture-avoiding substitution of constructors for variables.
    /// Bound `cparams` shadow the substitution (our supplies never
    /// reuse ids, so shadowing is the only capture concern).
    pub fn subst(&self, map: &HashMap<CVar, Con>) -> Con {
        if map.is_empty() {
            return self.clone();
        }
        match self {
            Con::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Con::Int | Con::Float | Con::Boxed | Con::Str | Con::Exn => self.clone(),
            Con::Arrow {
                cparams,
                params,
                ret,
            } => {
                if cparams.iter().any(|c| map.contains_key(c)) {
                    let mut inner = map.clone();
                    for c in cparams {
                        inner.remove(c);
                    }
                    Con::Arrow {
                        cparams: cparams.clone(),
                        params: params.iter().map(|p| p.subst(&inner)).collect(),
                        ret: Box::new(ret.subst(&inner)),
                    }
                } else {
                    Con::Arrow {
                        cparams: cparams.clone(),
                        params: params.iter().map(|p| p.subst(map)).collect(),
                        ret: Box::new(ret.subst(map)),
                    }
                }
            }
            Con::Record(fs) => Con::Record(fs.iter().map(|f| f.subst(map)).collect()),
            Con::Array(t) => Con::Array(Box::new(t.subst(map))),
            Con::SpecArray(t) => Con::SpecArray(Box::new(t.subst(map))),
            Con::Data(id, args) => {
                Con::Data(*id, args.iter().map(|a| a.subst(map)).collect())
            }
            Con::Typecase {
                scrut,
                int,
                float,
                ptr,
            } => Con::Typecase {
                scrut: Box::new(scrut.subst(map)),
                int: Box::new(int.subst(map)),
                float: Box::new(float.subst(map)),
                ptr: Box::new(ptr.subst(map)),
            },
        }
    }

    /// Normalizes the constructor: reduces every type-level typecase
    /// whose scrutinee's representation class is known.
    pub fn normalize(&self, enum_datatype: &impl Fn(DataId) -> bool) -> Con {
        match self {
            Con::Typecase {
                scrut,
                int,
                float,
                ptr,
            } => {
                let s = scrut.normalize(enum_datatype);
                match rep_tag(&s, enum_datatype) {
                    RepClass::Int => int.normalize(enum_datatype),
                    RepClass::Float => float.normalize(enum_datatype),
                    RepClass::Ptr => ptr.normalize(enum_datatype),
                    RepClass::Unknown => Con::Typecase {
                        scrut: Box::new(s),
                        int: Box::new(int.normalize(enum_datatype)),
                        float: Box::new(float.normalize(enum_datatype)),
                        ptr: Box::new(ptr.normalize(enum_datatype)),
                    },
                }
            }
            Con::Arrow {
                cparams,
                params,
                ret,
            } => Con::Arrow {
                cparams: cparams.clone(),
                params: params.iter().map(|p| p.normalize(enum_datatype)).collect(),
                ret: Box::new(ret.normalize(enum_datatype)),
            },
            Con::Record(fs) => {
                Con::Record(fs.iter().map(|f| f.normalize(enum_datatype)).collect())
            }
            Con::Array(t) => Con::Array(Box::new(t.normalize(enum_datatype))),
            Con::SpecArray(t) => {
                let elem = t.normalize(enum_datatype);
                match rep_tag(&elem, enum_datatype) {
                    RepClass::Float => Con::Array(Box::new(Con::Float)),
                    RepClass::Int | RepClass::Ptr => Con::Array(Box::new(elem)),
                    RepClass::Unknown => Con::SpecArray(Box::new(elem)),
                }
            }
            Con::Data(id, args) => Con::Data(
                *id,
                args.iter().map(|a| a.normalize(enum_datatype)).collect(),
            ),
            other => other.clone(),
        }
    }

    /// Collects free constructor variables.
    pub fn free_cvars(&self, out: &mut Vec<CVar>) {
        self.free_cvars_under(&mut Vec::new(), out);
    }

    fn free_cvars_under(&self, bound: &mut Vec<CVar>, out: &mut Vec<CVar>) {
        match self {
            Con::Var(v) => {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(*v);
                }
            }
            Con::Int | Con::Float | Con::Boxed | Con::Str | Con::Exn => {}
            Con::Arrow {
                cparams,
                params,
                ret,
            } => {
                let n = bound.len();
                bound.extend_from_slice(cparams);
                for p in params {
                    p.free_cvars_under(bound, out);
                }
                ret.free_cvars_under(bound, out);
                bound.truncate(n);
            }
            Con::Record(fs) => {
                for f in fs {
                    f.free_cvars_under(bound, out);
                }
            }
            Con::Array(t) | Con::SpecArray(t) => t.free_cvars_under(bound, out),
            Con::Data(_, args) => {
                for a in args {
                    a.free_cvars_under(bound, out);
                }
            }
            Con::Typecase {
                scrut,
                int,
                float,
                ptr,
            } => {
                scrut.free_cvars_under(bound, out);
                int.free_cvars_under(bound, out);
                float.free_cvars_under(bound, out);
                ptr.free_cvars_under(bound, out);
            }
        }
    }

    /// Renders the constructor for IR dumps.
    pub fn display(&self, name_of: &impl Fn(DataId) -> Symbol) -> String {
        match self {
            Con::Var(v) => v.to_string(),
            Con::Int => "int".into(),
            Con::Float => "float".into(),
            Con::Boxed => "boxedfloat".into(),
            Con::Str => "string".into(),
            Con::Exn => "exn".into(),
            Con::Arrow {
                cparams,
                params,
                ret,
            } => {
                let cps = if cparams.is_empty() {
                    String::new()
                } else {
                    format!(
                        "[{}]",
                        cparams
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                let ps = params
                    .iter()
                    .map(|p| p.display(name_of))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{cps}({ps}) -> {}", ret.display(name_of))
            }
            Con::Record(fs) if fs.is_empty() => "unit".into(),
            Con::Record(fs) => {
                let inner = fs
                    .iter()
                    .map(|f| f.display(name_of))
                    .collect::<Vec<_>>()
                    .join(" * ");
                format!("{{{inner}}}")
            }
            Con::Array(t) => format!("({}) array", t.display(name_of)),
            Con::SpecArray(t) => format!("({}) spec_array", t.display(name_of)),
            Con::Data(id, args) => {
                let name = name_of(*id);
                if args.is_empty() {
                    name.to_string()
                } else {
                    let inner = args
                        .iter()
                        .map(|a| a.display(name_of))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("({inner}) {name}")
                }
            }
            Con::Typecase {
                scrut,
                int,
                float,
                ptr,
            } => format!(
                "Typecase {} of int => {} | float => {} | ptr => {}",
                scrut.display(name_of),
                int.display(name_of),
                float.display(name_of),
                ptr.display(name_of)
            ),
        }
    }
}

/// Alpha-aware constructor equality (the `Arrow` binder is the only
/// binding form).
pub fn con_eq(a: &Con, b: &Con) -> bool {
    fn go(a: &Con, b: &Con, env: &mut Vec<(CVar, CVar)>) -> bool {
        match (a, b) {
            (Con::Var(x), Con::Var(y)) => {
                for (bx, by) in env.iter().rev() {
                    if bx == x || by == y {
                        return bx == x && by == y;
                    }
                }
                x == y
            }
            (Con::Int, Con::Int)
            | (Con::Float, Con::Float)
            | (Con::Boxed, Con::Boxed)
            | (Con::Str, Con::Str)
            | (Con::Exn, Con::Exn) => true,
            (
                Con::Arrow {
                    cparams: c1,
                    params: p1,
                    ret: r1,
                },
                Con::Arrow {
                    cparams: c2,
                    params: p2,
                    ret: r2,
                },
            ) => {
                if c1.len() != c2.len() || p1.len() != p2.len() {
                    return false;
                }
                let n = env.len();
                env.extend(c1.iter().copied().zip(c2.iter().copied()));
                let ok = p1.iter().zip(p2).all(|(x, y)| go(x, y, env)) && go(r1, r2, env);
                env.truncate(n);
                ok
            }
            (Con::Record(f1), Con::Record(f2)) => {
                f1.len() == f2.len() && f1.iter().zip(f2).all(|(x, y)| go(x, y, env))
            }
            (Con::Array(x), Con::Array(y)) | (Con::SpecArray(x), Con::SpecArray(y)) => {
                go(x, y, env)
            }
            (Con::Data(i1, a1), Con::Data(i2, a2)) => {
                i1 == i2
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(x, y)| go(x, y, env))
            }
            (
                Con::Typecase {
                    scrut: s1,
                    int: i1,
                    float: f1,
                    ptr: p1,
                },
                Con::Typecase {
                    scrut: s2,
                    int: i2,
                    float: f2,
                    ptr: p2,
                },
            ) => go(s1, s2, env) && go(i1, i2, env) && go(f1, f2, env) && go(p1, p2, env),
            _ => false,
        }
    }
    go(a, b, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_enum(_: DataId) -> bool {
        false
    }

    #[test]
    fn typecase_con_reduces_on_ground_scrutinee() {
        let tc = Con::Typecase {
            scrut: Box::new(Con::Int),
            int: Box::new(Con::Str),
            float: Box::new(Con::Exn),
            ptr: Box::new(Con::unit()),
        };
        assert_eq!(tc.normalize(&no_enum), Con::Str);
    }

    #[test]
    fn typecase_con_stuck_on_variable() {
        let v = CVar(0);
        let tc = Con::Typecase {
            scrut: Box::new(Con::Var(v)),
            int: Box::new(Con::Int),
            float: Box::new(Con::Float),
            ptr: Box::new(Con::Str),
        };
        assert!(matches!(tc.normalize(&no_enum), Con::Typecase { .. }));
        // Substituting a ground type then normalizing reduces; a boxed
        // float selects the *float* arm (rep_tag semantics).
        let mut m = HashMap::new();
        m.insert(v, Con::Boxed);
        assert_eq!(tc.subst(&m).normalize(&no_enum), Con::Float);
        let mut m2 = HashMap::new();
        m2.insert(v, Con::Str);
        assert_eq!(tc.subst(&m2).normalize(&no_enum), Con::Str);
    }

    #[test]
    fn alpha_equality_of_polymorphic_arrows() {
        let a = CVar(1);
        let b = CVar(2);
        let f1 = Con::Arrow {
            cparams: vec![a],
            params: vec![Con::Var(a)],
            ret: Box::new(Con::Var(a)),
        };
        let f2 = Con::Arrow {
            cparams: vec![b],
            params: vec![Con::Var(b)],
            ret: Box::new(Con::Var(b)),
        };
        assert!(con_eq(&f1, &f2));
        let f3 = Con::Arrow {
            cparams: vec![b],
            params: vec![Con::Var(b)],
            ret: Box::new(Con::Int),
        };
        assert!(!con_eq(&f1, &f3));
    }

    #[test]
    fn rep_class_matches_paper_cases() {
        assert_eq!(rep_class(&Con::Int, &no_enum), RepClass::Int);
        assert_eq!(rep_class(&Con::Float, &no_enum), RepClass::Float);
        assert_eq!(rep_class(&Con::Boxed, &no_enum), RepClass::Ptr);
        assert_eq!(rep_class(&Con::Var(CVar(9)), &no_enum), RepClass::Unknown);
        assert_eq!(
            rep_class(&Con::Data(DataId::BOOL, vec![]), &|_| true),
            RepClass::Int
        );
        assert_eq!(
            rep_class(&Con::Data(DataId::LIST, vec![Con::Int]), &no_enum),
            RepClass::Ptr
        );
    }

    #[test]
    fn subst_respects_binders() {
        let a = CVar(5);
        let inner = Con::Arrow {
            cparams: vec![a],
            params: vec![Con::Var(a)],
            ret: Box::new(Con::Var(a)),
        };
        let mut m = HashMap::new();
        m.insert(a, Con::Int);
        // The bound occurrence must not be substituted.
        assert!(con_eq(&inner.subst(&m), &inner));
    }

    #[test]
    fn free_cvars_skips_bound() {
        let a = CVar(1);
        let b = CVar(2);
        let c = Con::Arrow {
            cparams: vec![a],
            params: vec![Con::Var(a), Con::Var(b)],
            ret: Box::new(Con::Int),
        };
        let mut out = Vec::new();
        c.free_cvars(&mut out);
        assert_eq!(out, vec![b]);
    }
}
