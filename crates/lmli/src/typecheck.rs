//! The Lmli typechecker.
//!
//! The interesting rule is `typecase` (paper §2.1): when the scrutinee
//! is a constructor variable, each arm is checked under a *refinement*
//! of that variable — `Int` in the int arm, `Boxed` in the float arm
//! (real values travel boxed), and an abstract "some pointer type" in
//! the ptr arm. Refinements drive normalization: `SpecArray(a)` reduces
//! to `Array(Float)` once `a` is refined to `Boxed`, which is what lets
//! the specialized float-array primitives typecheck inside the float
//! arm. Constructor equality is alpha-equality of refined normal forms,
//! keeping the system decidable as the paper requires.

use crate::con::{con_eq, rep_tag, CVar, Con, RepClass};
use crate::data::{DataRep, MDataEnv, MExnEnv};
use crate::exp::{MExp, MFun, MProgram, MSwitch};
use std::collections::HashMap;
use til_common::{Diagnostic, Result, Var};

const PHASE: &str = "lmli-typecheck";

/// A refinement of a constructor variable inside a typecase arm.
#[derive(Clone, Debug)]
pub enum Refinement {
    /// The variable is exactly this constructor.
    Exact(Con),
    /// The variable is *some* pointer type (ptr arm).
    PtrClass,
}

/// Typechecks a whole Lmli program, returning its constructor.
pub fn typecheck_lmli(prog: &MProgram) -> Result<Con> {
    let mut tc = Tc {
        data: &prog.data,
        exns: &prog.exns,
        vars: HashMap::new(),
        cscope: Vec::new(),
        cx: ConCtx::new(&prog.data),
        hole: None,
        captured: None,
    };
    let con = tc.check(&prog.body)?;
    if !tc.eq(&con, &prog.con) {
        return Err(err(format!(
            "program body constructor mismatch: computed {:?}, recorded {:?}",
            con, prog.con
        )));
    }
    Ok(con)
}

/// The Lmli typing environment in scope at the prelude skeleton's
/// splice hole (the hole sits at the top level, outside every
/// constructor binder, so the variable environment is the whole
/// context). Produced by [`typecheck_lmli_prelude`], consumed by
/// [`typecheck_lmli_fragment`].
pub struct FragmentTcEnv {
    vars: HashMap<Var, Con>,
}

/// Typechecks the prelude skeleton (innermost body = the free
/// unit-typed variable `hole`), capturing the environment at the hole.
pub fn typecheck_lmli_prelude(prog: &MProgram, hole: Var) -> Result<FragmentTcEnv> {
    let mut tc = Tc {
        data: &prog.data,
        exns: &prog.exns,
        vars: HashMap::new(),
        cscope: Vec::new(),
        cx: ConCtx::new(&prog.data),
        hole: Some(hole),
        captured: None,
    };
    let con = tc.check(&prog.body)?;
    if !tc.eq(&con, &prog.con) {
        return Err(err(format!(
            "prelude skeleton constructor mismatch: computed {:?}, recorded {:?}",
            con, prog.con
        )));
    }
    let vars = tc
        .captured
        .ok_or_else(|| err(format!("prelude skeleton never reached its hole {hole}")))?;
    Ok(FragmentTcEnv { vars })
}

/// Typechecks a user fragment under the captured prelude environment.
/// `prog` carries the joined datatype/exception environments and the
/// fragment as its body.
pub fn typecheck_lmli_fragment(prog: &MProgram, env: &FragmentTcEnv) -> Result<Con> {
    let mut tc = Tc {
        data: &prog.data,
        exns: &prog.exns,
        vars: env.vars.clone(),
        cscope: Vec::new(),
        cx: ConCtx::new(&prog.data),
        hole: None,
        captured: None,
    };
    let con = tc.check(&prog.body)?;
    if !tc.eq(&con, &prog.con) {
        return Err(err(format!(
            "fragment body constructor mismatch: computed {:?}, recorded {:?}",
            con, prog.con
        )));
    }
    Ok(con)
}

fn err(msg: String) -> Diagnostic {
    Diagnostic::ice(PHASE, msg)
}

/// Reusable refined-normalization context, shared by the Lmli and
/// Bform typecheckers.
pub struct ConCtx<'a> {
    /// Datatype representations.
    pub data: &'a MDataEnv,
    /// Active typecase refinements.
    pub refine: HashMap<CVar, Refinement>,
}

impl<'a> ConCtx<'a> {
    /// A context with no refinements.
    pub fn new(data: &'a MDataEnv) -> ConCtx<'a> {
        ConCtx {
            data,
            refine: HashMap::new(),
        }
    }

    /// Refined representation tag.
    pub fn tag_of(&self, c: &Con) -> RepClass {
        match c {
            Con::Var(v) => match self.refine.get(v) {
                Some(Refinement::PtrClass) => RepClass::Ptr,
                Some(Refinement::Exact(e)) => self.tag_of(&e.clone()),
                None => RepClass::Unknown,
            },
            other => rep_tag(other, &|id| self.data.is_enum(id)),
        }
    }

    /// Refined normalization.
    pub fn norm(&self, c: &Con) -> Con {
        match c {
            Con::Var(v) => match self.refine.get(v) {
                Some(Refinement::Exact(e)) => self.norm(&e.clone()),
                _ => c.clone(),
            },
            Con::Int | Con::Float | Con::Boxed | Con::Str | Con::Exn => c.clone(),
            Con::Arrow {
                cparams,
                params,
                ret,
            } => Con::Arrow {
                cparams: cparams.clone(),
                params: params.iter().map(|p| self.norm(p)).collect(),
                ret: Box::new(self.norm(ret)),
            },
            Con::Record(fs) => Con::Record(fs.iter().map(|f| self.norm(f)).collect()),
            Con::Array(t) => Con::Array(Box::new(self.norm(t))),
            Con::SpecArray(t) => {
                let elem = self.norm(t);
                match self.tag_of(&elem) {
                    RepClass::Float => Con::Array(Box::new(Con::Float)),
                    RepClass::Int | RepClass::Ptr => Con::Array(Box::new(elem)),
                    RepClass::Unknown => Con::SpecArray(Box::new(elem)),
                }
            }
            Con::Data(id, args) => {
                Con::Data(*id, args.iter().map(|a| self.norm(a)).collect())
            }
            Con::Typecase {
                scrut,
                int,
                float,
                ptr,
            } => {
                let s = self.norm(scrut);
                match self.tag_of(&s) {
                    RepClass::Int => self.norm(int),
                    RepClass::Float => self.norm(float),
                    RepClass::Ptr => self.norm(ptr),
                    RepClass::Unknown => Con::Typecase {
                        scrut: Box::new(s),
                        int: Box::new(self.norm(int)),
                        float: Box::new(self.norm(float)),
                        ptr: Box::new(self.norm(ptr)),
                    },
                }
            }
        }
    }

    /// Equality of refined normal forms.
    pub fn eq(&self, a: &Con, b: &Con) -> bool {
        con_eq(&self.norm(a), &self.norm(b))
    }

    /// Requires `got` to equal `want`, reporting `what` otherwise.
    pub fn expect(&self, what: &str, got: &Con, want: &Con) -> Result<()> {
        if self.eq(got, want) {
            Ok(())
        } else {
            Err(err(format!(
                "{what}: expected {:?}, got {:?}",
                self.norm(want),
                self.norm(got)
            )))
        }
    }
}

struct Tc<'a> {
    data: &'a MDataEnv,
    exns: &'a MExnEnv,
    vars: HashMap<Var, Con>,
    cscope: Vec<CVar>,
    cx: ConCtx<'a>,
    /// The prelude skeleton's splice hole, when checking a skeleton.
    hole: Option<Var>,
    /// Environment snapshot taken at the hole (it sits at the top
    /// level, so no constructor variables or refinements are live).
    captured: Option<HashMap<Var, Con>>,
}

impl<'a> Tc<'a> {
    fn tag_of(&self, c: &Con) -> RepClass {
        self.cx.tag_of(c)
    }

    fn norm(&self, c: &Con) -> Con {
        self.cx.norm(c)
    }

    fn eq(&self, a: &Con, b: &Con) -> bool {
        self.cx.eq(a, b)
    }

    fn expect(&self, what: &str, got: &Con, want: &Con) -> Result<()> {
        self.cx.expect(what, got, want)
    }

    fn scope_check(&self, c: &Con) -> Result<()> {
        let mut free = Vec::new();
        c.free_cvars(&mut free);
        for v in free {
            if !self.cscope.contains(&v) {
                return Err(err(format!("constructor variable {v} out of scope")));
            }
        }
        Ok(())
    }

    fn bind(&mut self, v: Var, c: Con) -> Option<Con> {
        self.vars.insert(v, c)
    }

    fn unbind(&mut self, v: Var, old: Option<Con>) {
        match old {
            Some(c) => {
                self.vars.insert(v, c);
            }
            None => {
                self.vars.remove(&v);
            }
        }
    }

    fn check(&mut self, e: &MExp) -> Result<Con> {
        match e {
            MExp::Var(v) => {
                if self.hole == Some(*v) {
                    if self.captured.is_none() {
                        self.captured = Some(self.vars.clone());
                    }
                    return Ok(Con::Record(vec![]));
                }
                self.vars
                    .get(v)
                    .cloned()
                    .ok_or_else(|| err(format!("unbound variable {v}")))
            }
            MExp::Int(_) => Ok(Con::Int),
            MExp::Float(_) => Ok(Con::Float),
            MExp::Str(_) => Ok(Con::Str),
            MExp::Fix { funs, body } => {
                let mut saved = Vec::new();
                for f in funs {
                    saved.push((f.var, self.bind(f.var, f.con())));
                }
                for f in funs {
                    self.check_fun(f)?;
                }
                let out = self.check(body)?;
                for (v, old) in saved.into_iter().rev() {
                    self.unbind(v, old);
                }
                Ok(out)
            }
            MExp::App { f, cargs, args } => {
                let fcon = self.check(f)?;
                let Con::Arrow {
                    cparams,
                    params,
                    ret,
                } = self.norm(&fcon)
                else {
                    return Err(err(format!(
                        "application of non-function constructor {:?}",
                        self.norm(&fcon)
                    )));
                };
                if cparams.len() != cargs.len() {
                    return Err(err(format!(
                        "type-argument arity mismatch: {} vs {}",
                        cargs.len(),
                        cparams.len()
                    )));
                }
                for c in cargs {
                    self.scope_check(c)?;
                }
                let map: HashMap<CVar, Con> = cparams
                    .iter()
                    .copied()
                    .zip(cargs.iter().cloned())
                    .collect();
                if params.len() != args.len() {
                    return Err(err(format!(
                        "argument arity mismatch: {} vs {}",
                        args.len(),
                        params.len()
                    )));
                }
                for (a, p) in args.iter().zip(&params) {
                    let got = self.check(a)?;
                    let want = p.subst(&map);
                    self.expect("application argument", &got, &want)?;
                }
                Ok(ret.subst(&map))
            }
            MExp::Let { var, rhs, body } => {
                let rcon = self.check(rhs)?;
                let old = self.bind(*var, rcon);
                let out = self.check(body)?;
                self.unbind(*var, old);
                Ok(out)
            }
            MExp::Record(fs) => {
                let mut cons = Vec::with_capacity(fs.len());
                for f in fs {
                    cons.push(self.check(f)?);
                }
                Ok(Con::Record(cons))
            }
            MExp::Select(i, e) => {
                let c = self.check(e)?;
                match self.norm(&c) {
                    Con::Record(fs) if *i < fs.len() => Ok(fs[*i].clone()),
                    other => Err(err(format!(
                        "selection #{i} from non-record constructor {other:?}"
                    ))),
                }
            }
            MExp::Con {
                data,
                cargs,
                tag,
                args,
            } => {
                let md = self.data.get(*data);
                if md.is_enum() {
                    return Err(err("constructor node for enum datatype".into()));
                }
                match md.fields_at(*tag, cargs) {
                    None => {
                        if !args.is_empty() {
                            return Err(err("nullary constructor with arguments".into()));
                        }
                    }
                    Some(fields) => {
                        if fields.len() != args.len() {
                            return Err(err(format!(
                                "constructor field arity: {} vs {}",
                                args.len(),
                                fields.len()
                            )));
                        }
                        for (a, want) in args.iter().zip(&fields) {
                            let got = self.check(a)?;
                            self.expect("constructor field", &got, want)?;
                        }
                    }
                }
                Ok(Con::Data(*data, cargs.clone()))
            }
            MExp::ExnCon { exn, arg } => {
                match (self.exns.arg(*exn).cloned(), arg) {
                    (None, None) => {}
                    (Some(want), Some(a)) => {
                        let got = self.check(a)?;
                        self.expect("exception argument", &got, &want)?;
                    }
                    _ => return Err(err("exception argument arity mismatch".into())),
                }
                Ok(Con::Exn)
            }
            MExp::Switch(sw) => self.check_switch(sw),
            MExp::Raise { exn, con } => {
                let got = self.check(exn)?;
                self.expect("raise operand", &got, &Con::Exn)?;
                Ok(con.clone())
            }
            MExp::Handle { body, var, handler } => {
                let bcon = self.check(body)?;
                let old = self.bind(*var, Con::Exn);
                let hcon = self.check(handler)?;
                self.unbind(*var, old);
                self.expect("handler", &hcon, &bcon)?;
                Ok(bcon)
            }
            MExp::Prim { prim, cargs, args } => {
                // `length` is representation-independent: it accepts any
                // array constructor, specialized or not.
                if matches!(prim, crate::prim::MPrim::ALen) {
                    if args.len() != 1 {
                        return Err(err("length arity mismatch".into()));
                    }
                    let got = self.check(&args[0])?;
                    return match self.norm(&got) {
                        Con::Array(_) | Con::SpecArray(_) => Ok(Con::Int),
                        other => Err(err(format!(
                            "length of non-array constructor {other:?}"
                        ))),
                    };
                }
                let sig = prim.sig();
                if sig.cparams != cargs.len() {
                    return Err(err(format!(
                        "primitive {prim} type-arity: {} vs {}",
                        cargs.len(),
                        sig.cparams
                    )));
                }
                if sig.args.len() != args.len() {
                    return Err(err(format!(
                        "primitive {prim} arity: {} vs {}",
                        args.len(),
                        sig.args.len()
                    )));
                }
                let map: HashMap<CVar, Con> = (0..sig.cparams)
                    .map(|i| (CVar(i as u32), cargs[i].clone()))
                    .collect();
                for (a, want) in args.iter().zip(&sig.args) {
                    let got = self.check(a)?;
                    let want = want.subst(&map);
                    self.expect(&format!("argument of {prim}"), &got, &want)?;
                }
                Ok(sig.ret.subst(&map))
            }
            MExp::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => {
                let s = self.norm(scrut);
                match self.tag_of(&s) {
                    RepClass::Int => {
                        let got = self.check(int)?;
                        self.expect("typecase int arm", &got, con)?;
                        Ok(con.clone())
                    }
                    RepClass::Float => {
                        let got = self.check(float)?;
                        self.expect("typecase float arm", &got, con)?;
                        Ok(con.clone())
                    }
                    RepClass::Ptr => {
                        let got = self.check(ptr)?;
                        self.expect("typecase ptr arm", &got, con)?;
                        Ok(con.clone())
                    }
                    RepClass::Unknown => {
                        let Con::Var(v) = s else {
                            return Err(err(format!(
                                "typecase on irreducible non-variable constructor {s:?}"
                            )));
                        };
                        let old = self.cx.refine.insert(v, Refinement::Exact(Con::Int));
                        let got = self.check(int)?;
                        self.expect("typecase int arm", &got, con)?;
                        // Float arm: real values are boxed.
                        self.cx.refine.insert(v, Refinement::Exact(Con::Boxed));
                        let got = self.check(float)?;
                        self.expect("typecase float arm", &got, con)?;
                        // Ptr arm: abstract pointer class.
                        self.cx.refine.insert(v, Refinement::PtrClass);
                        let got = self.check(ptr)?;
                        self.expect("typecase ptr arm", &got, con)?;
                        match old {
                            Some(r) => {
                                self.cx.refine.insert(v, r);
                            }
                            None => {
                                self.cx.refine.remove(&v);
                            }
                        }
                        Ok(con.clone())
                    }
                }
            }
        }
    }

    fn check_fun(&mut self, f: &MFun) -> Result<()> {
        let n = self.cscope.len();
        self.cscope.extend_from_slice(&f.cparams);
        let mut saved = Vec::new();
        for (v, c) in &f.params {
            self.scope_check(c)?;
            saved.push((*v, self.bind(*v, c.clone())));
        }
        let got = self.check(&f.body)?;
        self.expect(&format!("body of {}", f.var), &got, &f.ret)?;
        for (v, old) in saved.into_iter().rev() {
            self.unbind(v, old);
        }
        self.cscope.truncate(n);
        Ok(())
    }

    fn check_switch(&mut self, sw: &MSwitch) -> Result<Con> {
        match sw {
            MSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => {
                let got = self.check(scrut)?;
                self.expect("int switch scrutinee", &got, &Con::Int)?;
                for (_, a) in arms {
                    let ac = self.check(a)?;
                    self.expect("int switch arm", &ac, con)?;
                }
                let dc = self.check(default)?;
                self.expect("int switch default", &dc, con)?;
                Ok(con.clone())
            }
            MSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => {
                let got = self.check(scrut)?;
                self.expect(
                    "data switch scrutinee",
                    &got,
                    &Con::Data(*data, cargs.clone()),
                )?;
                let md = self.data.get(*data).clone();
                if matches!(md.rep, DataRep::Enum) {
                    return Err(err("data switch on enum datatype".into()));
                }
                let mut covered = vec![false; md.cons.len()];
                for (tag, binders, arm) in arms {
                    covered[*tag] = true;
                    let fields = md.fields_at(*tag, cargs);
                    let mut saved = Vec::new();
                    match fields {
                        None => {
                            if !binders.is_empty() {
                                return Err(err("binders on nullary arm".into()));
                            }
                        }
                        Some(fs) => {
                            if fs.len() != binders.len() {
                                return Err(err(format!(
                                    "arm binder arity: {} vs {}",
                                    binders.len(),
                                    fs.len()
                                )));
                            }
                            for (v, c) in binders.iter().zip(fs) {
                                saved.push((*v, self.bind(*v, c)));
                            }
                        }
                    }
                    let ac = self.check(arm)?;
                    for (v, old) in saved.into_iter().rev() {
                        self.unbind(v, old);
                    }
                    self.expect("data switch arm", &ac, con)?;
                }
                match default {
                    Some(d) => {
                        let dc = self.check(d)?;
                        self.expect("data switch default", &dc, con)?;
                    }
                    None => {
                        if covered.iter().any(|c| !c) {
                            return Err(err(
                                "non-exhaustive data switch without default".into(),
                            ));
                        }
                    }
                }
                Ok(con.clone())
            }
            MSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => {
                let got = self.check(scrut)?;
                self.expect("string switch scrutinee", &got, &Con::Str)?;
                for (_, a) in arms {
                    let ac = self.check(a)?;
                    self.expect("string switch arm", &ac, con)?;
                }
                let dc = self.check(default)?;
                self.expect("string switch default", &dc, con)?;
                Ok(con.clone())
            }
            MSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => {
                let got = self.check(scrut)?;
                self.expect("exn switch scrutinee", &got, &Con::Exn)?;
                for (id, binder, a) in arms {
                    let argc = self.exns.arg(*id).cloned();
                    let saved = match (binder, argc) {
                        (Some(v), Some(c)) => Some((*v, self.bind(*v, c))),
                        (None, _) => None,
                        (Some(_), None) => {
                            return Err(err("binder on constant exception arm".into()))
                        }
                    };
                    let ac = self.check(a)?;
                    if let Some((v, old)) = saved {
                        self.unbind(v, old);
                    }
                    self.expect("exn switch arm", &ac, con)?;
                }
                let dc = self.check(default)?;
                self.expect("exn switch default", &dc, con)?;
                Ok(con.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::MPrim;

    fn prog(body: MExp, con: Con) -> MProgram {
        MProgram {
            data: MDataEnv::new(),
            exns: MExnEnv::new(),
            body,
            con,
        }
    }

    #[test]
    fn literals() {
        assert!(typecheck_lmli(&prog(MExp::Int(1), Con::Int)).is_ok());
        assert!(typecheck_lmli(&prog(MExp::Float(1.0), Con::Float)).is_ok());
        assert!(typecheck_lmli(&prog(MExp::Int(1), Con::Float)).is_err());
    }

    #[test]
    fn box_unbox_roundtrip_types() {
        let boxed = MExp::Prim {
            prim: MPrim::BoxFloat,
            cargs: vec![],
            args: vec![MExp::Float(1.5)],
        };
        let unboxed = MExp::Prim {
            prim: MPrim::UnboxFloat,
            cargs: vec![],
            args: vec![boxed],
        };
        assert!(typecheck_lmli(&prog(unboxed, Con::Float)).is_ok());
    }

    #[test]
    fn polymorphic_identity_applies() {
        let mut vs = til_common::VarSupply::new();
        let mut cs = crate::con::CVarSupply::new();
        let a = cs.fresh();
        let id = vs.fresh_named("id");
        let x = vs.fresh_named("x");
        let body = MExp::Fix {
            funs: vec![MFun {
                var: id,
                cparams: vec![a],
                params: vec![(x, Con::Var(a))],
                ret: Con::Var(a),
                body: MExp::Var(x),
            }],
            body: Box::new(MExp::App {
                f: Box::new(MExp::Var(id)),
                cargs: vec![Con::Int],
                args: vec![MExp::Int(7)],
            }),
        };
        assert!(typecheck_lmli(&prog(body, Con::Int)).is_ok());
    }

    #[test]
    fn typecase_refines_each_arm() {
        // The paper's `sub` example: each arm uses the specialized
        // subscript for its representation, all at result type `a`.
        let mut vs = til_common::VarSupply::new();
        let mut cs = crate::con::CVarSupply::new();
        let a = cs.fresh();
        let f = vs.fresh_named("sub");
        let x = vs.fresh_named("x");
        let arr = vs.fresh_named("arr");
        let body = MExp::Typecase {
            scrut: Con::Var(a),
            int: Box::new(MExp::Prim {
                prim: MPrim::IASub,
                cargs: vec![],
                args: vec![MExp::Var(arr), MExp::Int(0)],
            }),
            float: Box::new(MExp::Prim {
                prim: MPrim::BoxFloat,
                cargs: vec![],
                args: vec![MExp::Prim {
                    prim: MPrim::FASub,
                    cargs: vec![],
                    args: vec![MExp::Var(arr), MExp::Int(0)],
                }],
            }),
            ptr: Box::new(MExp::Prim {
                prim: MPrim::PASub,
                cargs: vec![Con::Var(a)],
                args: vec![MExp::Var(arr), MExp::Int(0)],
            }),
            con: Con::Var(a),
        };
        let fix = MExp::Fix {
            funs: vec![MFun {
                var: f,
                cparams: vec![a],
                params: vec![
                    (x, Con::Var(a)),
                    (arr, Con::SpecArray(Box::new(Con::Var(a)))),
                ],
                ret: Con::Var(a),
                body,
            }],
            body: Box::new(MExp::Int(0)),
        };
        typecheck_lmli(&prog(fix, Con::Int)).unwrap();
    }

    #[test]
    fn typecase_wrong_arm_type_rejected() {
        let mut cs = crate::con::CVarSupply::new();
        let a = cs.fresh();
        let mut vs = til_common::VarSupply::new();
        let f = vs.fresh();
        let x = vs.fresh();
        // The int arm returns a raw float where `a` (= int) is expected.
        let body = MExp::Typecase {
            scrut: Con::Var(a),
            int: Box::new(MExp::Float(0.0)),
            float: Box::new(MExp::Var(x)),
            ptr: Box::new(MExp::Var(x)),
            con: Con::Var(a),
        };
        let fix = MExp::Fix {
            funs: vec![MFun {
                var: f,
                cparams: vec![a],
                params: vec![(x, Con::Var(a))],
                ret: Con::Var(a),
                body,
            }],
            body: Box::new(MExp::Int(0)),
        };
        assert!(typecheck_lmli(&prog(fix, Con::Int)).is_err());
    }

    #[test]
    fn escaping_cvar_is_rejected() {
        let mut cs = crate::con::CVarSupply::new();
        let a = cs.fresh();
        let mut vs = til_common::VarSupply::new();
        let f = vs.fresh();
        let x = vs.fresh();
        let fix = MExp::Fix {
            funs: vec![MFun {
                var: f,
                cparams: vec![],
                params: vec![(x, Con::Var(a))],
                ret: Con::Var(a),
                body: MExp::Var(x),
            }],
            body: Box::new(MExp::Int(0)),
        };
        assert!(typecheck_lmli(&prog(fix, Con::Int)).is_err());
    }

    #[test]
    fn ground_typecase_checks_only_live_arm() {
        // Scrutinee is ground Int: the float/ptr arms may be ill-typed
        // garbage (they are unreachable and will be folded away).
        let tc = MExp::Typecase {
            scrut: Con::Int,
            int: Box::new(MExp::Int(1)),
            float: Box::new(MExp::Str("dead".into())),
            ptr: Box::new(MExp::Str("dead".into())),
            con: Con::Int,
        };
        assert!(typecheck_lmli(&prog(tc, Con::Int)).is_ok());
    }
}
