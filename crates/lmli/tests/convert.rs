//! End-to-end conversion tests: SML source → Lambda → Lmli → Lmli
//! typecheck, in both TIL and baseline representation modes.

use til_lmli::{from_lambda, typecheck_lmli, LmliOptions};

fn convert_ok(src: &str) {
    for (name, opts) in [
        ("til", LmliOptions::til()),
        ("baseline", LmliOptions::baseline()),
    ] {
        let mut e = til_elab::elaborate_source(src)
            .unwrap_or_else(|d| panic!("elaboration failed: {d}"));
        til_lambda::typecheck(&e.program)
            .unwrap_or_else(|d| panic!("lambda typecheck failed: {d}"));
        let m = from_lambda(&e.program, &opts, &mut e.vars)
            .unwrap_or_else(|d| panic!("[{name}] conversion failed: {d}"));
        typecheck_lmli(&m)
            .unwrap_or_else(|d| panic!("[{name}] lmli typecheck failed: {d}"));
    }
}

#[test]
fn prelude_converts() {
    convert_ok("");
}

#[test]
fn arithmetic_and_floats() {
    convert_ok("val x = 1 + 2 val y = 1.5 * 2.5 val z = real x + y");
}

#[test]
fn lists_and_polymorphism() {
    convert_ok("val xs = map (fn x => x * 2) [1, 2, 3] val n = length xs val s = rev [\"a\", \"b\"]");
}

#[test]
fn datatypes_flatten() {
    convert_ok(
        "datatype shape = Point | Circle of real * real * real | Rect of real * real
         fun area Point = 0.0
           | area (Circle (_, _, r)) = 3.14 * r * r
           | area (Rect (w, h)) = w * h
         val a = area (Circle (1.0, 2.0, 3.0)) + area (Rect (2.0, 5.0))",
    );
}

#[test]
fn arrays_all_classes() {
    convert_ok(
        "val ia = Array.array (5, 0)
         val fa = Array.array (5, 0.0)
         val sa = Array.array (5, \"x\")
         val _ = Array.update (ia, 0, 1)
         val _ = Array.update (fa, 1, 2.0)
         val v = Array.sub (fa, 1) + 1.0",
    );
}

#[test]
fn polymorphic_array_function_uses_typecase() {
    // `fill` is polymorphic over the element type: its array operations
    // need run-time type analysis until the optimizer specializes them.
    convert_ok(
        "fun fill (a, v, n) =
           let fun go i = if i >= n then () else (Array.update (a, i, v); go (i + 1))
           in go 0 end
         val ia = Array.array (4, 0)
         val fa = Array.array (4, 0.0)
         val _ = fill (ia, 7, 4)
         val _ = fill (fa, 7.0, 4)",
    );
}

#[test]
fn refs_of_each_class() {
    convert_ok(
        "val ri = ref 0
         val rf = ref 1.5
         val rl = ref [1, 2]
         val _ = ri := !ri + 1
         val _ = rf := !rf * 2.0
         val _ = rl := 3 :: !rl",
    );
}

#[test]
fn exceptions_convert() {
    convert_ok(
        "exception Bad of int * string
         fun f 0 = raise Bad (1, \"zero\") | f n = n
         val x = (f 0) handle Bad (n, _) => n | Div => ~1",
    );
}

#[test]
fn equality_specializes() {
    convert_ok(
        "val a = 1 = 2
         val b = 1.5 = 1.5
         val c = \"x\" = \"y\"
         val d = [1, 2] = [1]
         val e = (1, \"a\") = (2, \"b\")
         fun eqpair (x, y) = x = y
         val f = eqpair (3, 3)",
    );
}

#[test]
fn two_d_arrays_and_dot_product() {
    convert_ok(
        "val n = 4
         val A = Array2.array (n, n, 0)
         val B = Array2.array (n, n, 0)
         fun dot (i, j) =
           let fun go (cnt, sum) =
                 if cnt < n then go (cnt + 1, sum + sub2 (A, i, cnt) * sub2 (B, cnt, j))
                 else sum
           in go (0, 0) end
         val r = dot (0, 0)",
    );
}

#[test]
fn higher_order_closures() {
    convert_ok(
        "fun compose f g x = f (g x)
         val h = compose (fn x => x + 1) (fn x => x * 2)
         val v = h 10
         val folded = foldl (fn (a, b) => a + b) 0 [1, 2, 3, 4]",
    );
}

#[test]
fn string_switches() {
    convert_ok("fun kw \"let\" = 1 | kw \"in\" = 2 | kw _ = 0 val k = kw \"in\"");
}

/// The Lmli-level compilation-unit split: convert the prelude skeleton
/// once, convert the user fragment against the captured environment,
/// splice, and check both the per-fragment and joined typecheckers
/// accept the result.
#[test]
fn split_conversion_round_trips() {
    use til_elab::{elaborate_user_fragment, prelude_unit};
    use til_lmli::{
        from_lambda_fragment, from_lambda_prelude, typecheck_lmli_fragment,
        typecheck_lmli_prelude, MProgram,
    };
    let prelude = til_syntax::parse(til_elab::PRELUDE).expect("parse prelude");
    let user = til_syntax::parse(
        "datatype t = A | B of int
         val x = case B 3 of A => 0 | B n => n
         val _ = print (Int.toString (x + length [1, 2]))",
    )
    .expect("parse user");
    for (name, opts) in [
        ("til", LmliOptions::til()),
        ("baseline", LmliOptions::baseline()),
    ] {
        let unit = prelude_unit(&prelude).expect("prelude unit");
        let mut vars = unit.vars();
        let skel = unit.skeleton_program();
        let (m_skel, fcx) = from_lambda_prelude(&skel, &opts, &mut vars, unit.hole())
            .unwrap_or_else(|d| panic!("[{name}] prelude conversion failed: {d}"));
        let tc_env = typecheck_lmli_prelude(&m_skel, unit.hole())
            .unwrap_or_else(|d| panic!("[{name}] skeleton lmli typecheck failed: {d}"));
        // User elaboration resumes the variable supply *after* skeleton
        // conversion, so fragment ids never collide with skeleton ids.
        let u = elaborate_user_fragment(&unit, &user, Some(vars)).expect("fragment elaboration");
        let frag = til_lambda::LProgram {
            data_env: u.data_env,
            exn_env: u.exn_env,
            body: u.body,
            body_ty: til_lambda::ty::LTy::unit(),
        };
        let mut uvars = u.vars;
        let m_frag = from_lambda_fragment(&frag, &opts, &mut uvars, &fcx)
            .unwrap_or_else(|d| panic!("[{name}] fragment conversion failed: {d}"));
        typecheck_lmli_fragment(&m_frag, &tc_env)
            .unwrap_or_else(|d| panic!("[{name}] fragment lmli typecheck failed: {d}"));
        let mut body = m_skel.body.clone();
        assert_eq!(body.splice_var(unit.hole(), &m_frag.body), 1);
        let joined = MProgram {
            data: m_frag.data,
            exns: m_frag.exns,
            body,
            con: m_skel.con.clone(),
        };
        typecheck_lmli(&joined)
            .unwrap_or_else(|d| panic!("[{name}] joined lmli typecheck failed: {d}"));
    }
}

#[test]
fn while_loops_and_sequencing() {
    convert_ok(
        "val i = ref 0
         val total = ref 0
         val _ = while !i < 100 do (total := !total + !i; i := !i + 1)
         val _ = print (Int.toString (!total))",
    );
}
