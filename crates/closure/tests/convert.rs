//! Closure-conversion tests over the full front+middle end.

use til_closure::{closure_convert, typecheck_closure};
use til_opt::{optimize, OptOptions};

fn convert_ok(src: &str, opt: bool) -> til_closure::CProgram {
    til_common::with_big_stack(move || convert_inner(src, opt))
}

fn convert_inner(src: &str, opt: bool) -> til_closure::CProgram {
    let mut e = til_elab::elaborate_source(src).expect("elab");
    let m = til_lmli::from_lambda(&e.program, &til_lmli::LmliOptions::til(), &mut e.vars)
        .expect("lmli");
    let mut b = til_bform::from_lmli(&m, &mut e.vars).expect("bform");
    if opt {
        optimize(&mut b, &mut e.vars, &OptOptions::til()).expect("optimize");
    }
    til_bform::typecheck_bform(&b).expect("bform check");
    let c = closure_convert(&b, &mut e.vars).unwrap_or_else(|d| panic!("convert: {d}"));
    typecheck_closure(&c).unwrap_or_else(|d| panic!("closure check: {d}"));
    c
}

#[test]
fn prelude_converts_optimized_and_not() {
    convert_ok("", true);
    convert_ok("", false);
}

#[test]
fn known_functions_get_direct_calls() {
    let c = convert_ok(
        "fun add (a, b) : int = a + b
         val _ = print (Int.toString (add (1, 2)))",
        false,
    );
    assert!(!c.codes.is_empty());
}

#[test]
fn escaping_closures_capture_environment() {
    let c = convert_ok(
        "fun make n = fn x => x + n
         val f = make 10
         val g = make 20
         val _ = print (Int.toString (f 1 + g 2))",
        false,
    );
    // The inner lambda escapes and captures n.
    assert!(c.codes.iter().any(|code| code.escapes));
}

#[test]
fn optimized_benchmark_kernels_convert() {
    convert_ok(
        "val n = 8
         val A = Array2.array (n, n, 0)
         fun dot (i, j) =
           let fun go (cnt, sum) =
                 if cnt < n then go (cnt + 1, sum + sub2 (A, i, cnt)) else sum
           in go (0, 0) end
         val _ = print (Int.toString (dot (1, 1)))",
        true,
    );
}

#[test]
fn higher_order_with_stored_closures() {
    convert_ok(
        "val fs = [fn x => x + 1, fn x => x * 2]
         fun applyAll (nil, x) = x
           | applyAll (f :: rest, x) = applyAll (rest, f x)
         val _ = print (Int.toString (applyAll (fs, 10)))",
        true,
    );
}

#[test]
fn recursive_escaping_closure() {
    convert_ok(
        "fun makeCounter limit =
           let fun count (i, acc) = if i >= limit then acc else count (i + 1, acc + i)
           in fn () => count (0, 0) end
         val c = makeCounter 10
         val _ = print (Int.toString (c ()))",
        false,
    );
}
