//! Type-directed closure conversion (paper §3.4, after Minamide,
//! Morrisett & Harper).
//!
//! For each `fix` nest we compute the free value variables and free
//! constructor variables. If no function of the nest escapes, the
//! functions become *known* code blocks taking their captures as extra
//! parameters, and every call site passes them (Kranz-style). If any
//! function escapes, the nest shares one flat environment record
//! (paper: "TIL uses a flat environment representation for type and
//! value environments"): each code block takes the environment as its
//! first parameter, closures are `[code, env]` pairs, and sibling
//! references reuse the incoming environment, so recursive calls of
//! escaping functions allocate nothing.
//!
//! Top-level variables (bound on the program spine, outside any
//! function) are *not* captured: they are resolved through traditional
//! linking, as §3.4 describes — the later phases place them in a global
//! data segment.

use crate::ir::{CExp, CProgram, CRhs, CSwitch, Code};
use std::collections::{HashMap, HashSet};
use til_bform::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
use til_common::{Diagnostic, Result, Var, VarSupply};
use til_lmli::con::{CVar, Con};
use til_opt::census::census;

/// Converts a Bform program to closure form.
pub fn closure_convert(p: &BProgram, vs: &mut VarSupply) -> Result<CProgram> {
    let cen = census(&p.body);
    // Top-level (spine) bindings are globals: never captured.
    let mut globals = HashSet::new();
    collect_spine_vars(&p.body, &mut globals);
    // Capture typing comes from the (already verified) Bform typing.
    let var_cons = til_bform::infer_var_cons(p)?;
    let mut cx = Cx {
        vs,
        escapes: cen,
        globals,
        funs: HashMap::new(),
        codes: Vec::new(),
        var_cons,
    };
    let body = cx.exp(&p.body, &HashMap::new())?;
    Ok(CProgram {
        data: p.data.clone(),
        exns: p.exns.clone(),
        codes: cx.codes,
        body,
        con: p.con.clone(),
    })
}

/// Collects variables bound on the outermost spine (globals) including
/// top-level function names.
fn collect_spine_vars(e: &BExp, out: &mut HashSet<Var>) {
    match e {
        BExp::Ret(_) => {}
        BExp::Let { var, body, .. } => {
            out.insert(*var);
            collect_spine_vars(body, out);
        }
        BExp::Fix { funs, body } => {
            for f in funs {
                out.insert(f.var);
            }
            collect_spine_vars(body, out);
        }
    }
}

#[derive(Clone)]
enum FunStyle {
    /// Captures passed directly at each call.
    Direct,
    /// Captures live in a shared environment record; `env_binding` is
    /// the variable holding it at the definition site.
    Env { env_binding: Var },
}

#[derive(Clone)]
struct FunInfo {
    code: Var,
    style: FunStyle,
    /// Captured free value variables (original names).
    captures: Vec<Var>,
    /// Their constructors (kept for debugging dumps).
    #[allow(dead_code)]
    capture_cons: Vec<Con>,
    /// Captured free constructor variables.
    ccaptures: Vec<CVar>,
    /// Whether this particular function escapes.
    escapes: bool,
    /// The environment parameter var of this code (Env style).
    env_param: Option<Var>,
}

struct Cx<'a> {
    vs: &'a mut VarSupply,
    escapes: til_opt::census::Census,
    globals: HashSet<Var>,
    funs: HashMap<Var, FunInfo>,
    codes: Vec<Code>,
    /// Constructors of let-bound and parameter variables, for capture
    /// typing.
    var_cons: HashMap<Var, Con>,
}

impl<'a> Cx<'a> {
    fn ice(msg: impl Into<String>) -> Diagnostic {
        Diagnostic::ice("closure-convert", msg)
    }

    fn ren(&self, a: Atom, map: &HashMap<Var, Var>) -> Atom {
        match a {
            Atom::Var(v) => Atom::Var(map.get(&v).copied().unwrap_or(v)),
            other => other,
        }
    }

    /// Converts an expression under a capture-renaming map.
    fn exp(&mut self, e: &BExp, map: &HashMap<Var, Var>) -> Result<CExp> {
        match e {
            BExp::Ret(a) => Ok(CExp::Ret(self.ren(*a, map))),
            BExp::Let { var, rhs, body } => {
                let (binds, rhs) = self.rhs(*var, rhs, map)?;
                let body = self.exp(body, map)?;
                let mut out = CExp::Let {
                    var: *var,
                    rhs,
                    body: Box::new(body),
                };
                for (v, r) in binds.into_iter().rev() {
                    out = CExp::Let {
                        var: v,
                        rhs: r,
                        body: Box::new(out),
                    };
                }
                Ok(out)
            }
            BExp::Fix { funs, body } => self.fix(funs, body, map),
        }
    }

    /// Converts a right-hand side; may need auxiliary bindings (e.g. a
    /// sibling closure rebuilt from the environment).
    fn rhs(
        &mut self,
        bound: Var,
        r: &BRhs,
        map: &HashMap<Var, Var>,
    ) -> Result<(Vec<(Var, CRhs)>, CRhs)> {
        let _ = bound;
        let mut binds: Vec<(Var, CRhs)> = Vec::new();
        // Resolves an atom, materializing a closure for references to
        // escaping functions.
        macro_rules! val {
            ($a:expr) => {{
                let a = self.ren($a, map);
                match a {
                    Atom::Var(v) if self.funs.contains_key(&v) => {
                        let info = self.funs[&v].clone();
                        let clo = self.vs.fresh_named("clo");
                        let rhs = self.mk_closure_rhs(&info, map)?;
                        binds.push((clo, rhs));
                        Atom::Var(clo)
                    }
                    other => other,
                }
            }};
        }
        let rhs = match r {
            BRhs::Atom(a) => CRhs::Atom(val!(*a)),
            BRhs::Float(f) => CRhs::Float(*f),
            BRhs::Str(s) => CRhs::Str(s.clone()),
            BRhs::Record(atoms) => {
                let mut out = Vec::with_capacity(atoms.len());
                for a in atoms {
                    out.push(val!(*a));
                }
                CRhs::Record(out)
            }
            BRhs::Select(i, a) => CRhs::Select(*i, val!(*a)),
            BRhs::Con {
                data,
                cargs,
                tag,
                args,
            } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(val!(*a));
                }
                CRhs::Con {
                    data: *data,
                    cargs: cargs.clone(),
                    tag: *tag,
                    args: out,
                }
            }
            BRhs::ExnCon { exn, arg } => {
                let a = match arg {
                    Some(a) => Some(val!(*a)),
                    None => None,
                };
                CRhs::ExnCon { exn: *exn, arg: a }
            }
            BRhs::Prim { prim, cargs, args } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(val!(*a));
                }
                CRhs::Prim {
                    prim: *prim,
                    cargs: cargs.clone(),
                    args: out,
                }
            }
            BRhs::App { f, cargs, args } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(val!(*a));
                }
                let f = self.ren(*f, map);
                match f {
                    Atom::Var(fv) if self.funs.contains_key(&fv) => {
                        let info = self.funs[&fv].clone();
                        let mut full_cargs: Vec<Con> =
                            info.ccaptures.iter().map(|c| Con::Var(*c)).collect();
                        full_cargs.extend(cargs.iter().cloned());
                        match &info.style {
                            FunStyle::Direct => {
                                let mut full_args: Vec<Atom> = info
                                    .captures
                                    .iter()
                                    .map(|c| self.ren(Atom::Var(*c), map))
                                    .collect();
                                full_args.extend(out);
                                CRhs::CallKnown {
                                    code: info.code,
                                    cargs: full_cargs,
                                    args: full_args,
                                }
                            }
                            FunStyle::Env { env_binding } => {
                                let env = self.ren(Atom::Var(*env_binding), map);
                                let mut full_args = vec![env];
                                full_args.extend(out);
                                CRhs::CallKnown {
                                    code: info.code,
                                    cargs: full_cargs,
                                    args: full_args,
                                }
                            }
                        }
                    }
                    other => CRhs::CallClosure {
                        clo: other,
                        cargs: cargs.clone(),
                        args: out,
                    },
                }
            }
            BRhs::Raise { exn, con } => CRhs::Raise {
                exn: val!(*exn),
                con: con.clone(),
            },
            BRhs::Handle { body, var, handler } => {
                self.var_cons.insert(*var, Con::Exn);
                CRhs::Handle {
                    body: Box::new(self.exp(body, map)?),
                    var: *var,
                    handler: Box::new(self.exp(handler, map)?),
                }
            }
            BRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => CRhs::Typecase {
                scrut: scrut.clone(),
                int: Box::new(self.exp(int, map)?),
                float: Box::new(self.exp(float, map)?),
                ptr: Box::new(self.exp(ptr, map)?),
                con: con.clone(),
            },
            BRhs::Switch(sw) => CRhs::Switch(self.switch(sw, map)?),
        };
        // Record what we know about the bound variable's constructor.
        Ok((binds, rhs))
    }

    fn switch(&mut self, sw: &BSwitch, map: &HashMap<Var, Var>) -> Result<CSwitch> {
        Ok(match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => CSwitch::Int {
                scrut: self.ren(*scrut, map),
                arms: arms
                    .iter()
                    .map(|(k, a)| Ok((*k, self.exp(a, map)?)))
                    .collect::<Result<_>>()?,
                default: Box::new(self.exp(default, map)?),
                con: con.clone(),
            },
            BSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => {
                let md = {
                    // Record binder constructors for capture typing.
                    arms.clone()
                };
                let _ = md;
                CSwitch::Data {
                    scrut: self.ren(*scrut, map),
                    data: *data,
                    cargs: cargs.clone(),
                    arms: arms
                        .iter()
                        .map(|(t, b, a)| Ok((*t, b.clone(), self.exp(a, map)?)))
                        .collect::<Result<_>>()?,
                    default: match default {
                        Some(d) => Some(Box::new(self.exp(d, map)?)),
                        None => None,
                    },
                    con: con.clone(),
                }
            }
            BSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => CSwitch::Str {
                scrut: self.ren(*scrut, map),
                arms: arms
                    .iter()
                    .map(|(k, a)| Ok((k.clone(), self.exp(a, map)?)))
                    .collect::<Result<_>>()?,
                default: Box::new(self.exp(default, map)?),
                con: con.clone(),
            },
            BSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => CSwitch::Exn {
                scrut: self.ren(*scrut, map),
                arms: arms
                    .iter()
                    .map(|(id, b, a)| Ok((*id, *b, self.exp(a, map)?)))
                    .collect::<Result<_>>()?,
                default: Box::new(self.exp(default, map)?),
                con: con.clone(),
            },
        })
    }

    fn mk_closure_rhs(
        &mut self,
        info: &FunInfo,
        map: &HashMap<Var, Var>,
    ) -> Result<CRhs> {
        match &info.style {
            FunStyle::Env { env_binding } => Ok(CRhs::MkClosure {
                code: info.code,
                env: self.ren(Atom::Var(*env_binding), map),
            }),
            FunStyle::Direct => Err(Self::ice(
                "value reference to a function classified as non-escaping",
            )),
        }
    }

    fn fix(
        &mut self,
        funs: &[BFun],
        body: &BExp,
        map: &HashMap<Var, Var>,
    ) -> Result<CExp> {
        let nest: Vec<Var> = funs.iter().map(|f| f.var).collect();
        let top_level = funs.iter().all(|f| self.globals.contains(&f.var));
        // Free value variables and constructor variables of the nest.
        let (mut fvs, mut fcvs) = (Vec::new(), Vec::new());
        for f in funs {
            self.free_of_fun(f, &nest, &mut fvs, &mut fcvs);
        }
        // Apply the active renaming to captures (we capture the
        // *current* names) — but record the original names as keys.
        let any_escapes = funs.iter().any(|f| self.escapes.escapes(f.var) > 0);
        // Top-level functions with no captures need no environment even
        // if they escape as values (their closure is constant).
        let style_env = any_escapes;
        let env_binding = if style_env {
            Some(self.vs.fresh_named("env"))
        } else {
            None
        };
        let capture_cons: Vec<Con> = fvs
            .iter()
            .map(|v| {
                self.var_cons
                    .get(v)
                    .cloned()
                    .unwrap_or(Con::Record(vec![]))
            })
            .collect();
        // The captured values' constructors may mention constructor
        // variables the body never names directly; they are captures
        // too.
        for c in &capture_cons {
            let mut tmp = Vec::new();
            c.free_cvars(&mut tmp);
            for cv in tmp {
                if !fcvs.contains(&cv) {
                    fcvs.push(cv);
                }
            }
        }
        // Register the nest's functions.
        for f in funs {
            let code = self.vs.rename(f.var);
            let info = FunInfo {
                code,
                style: if style_env {
                    FunStyle::Env {
                        env_binding: env_binding.unwrap(),
                    }
                } else {
                    FunStyle::Direct
                },
                captures: fvs.clone(),
                capture_cons: capture_cons.clone(),
                ccaptures: fcvs.clone(),
                escapes: self.escapes.escapes(f.var) > 0,
                env_param: None,
            };
            self.funs.insert(f.var, info);
        }
        let _ = top_level;
        // Emit the code blocks.
        for f in funs {
            let info = self.funs[&f.var].clone();
            let mut inner_map = map.clone();
            let mut params: Vec<(Var, Con)> = Vec::new();
            let captured_vars;
            match &info.style {
                FunStyle::Direct => {
                    for (v, c) in fvs.iter().zip(&capture_cons) {
                        let nv = self.vs.rename(*v);
                        inner_map.insert(*v, nv);
                        params.push((nv, c.clone()));
                        self.var_cons.insert(nv, c.clone());
                    }
                    captured_vars = fvs.len();
                }
                FunStyle::Env { .. } => {
                    let env_param = self.vs.fresh_named("env");
                    let env_con = Con::Record(capture_cons.clone());
                    params.push((env_param, env_con));
                    // Captures are selected out of the environment in a
                    // prologue built below; here we map each capture to
                    // a fresh local.
                    captured_vars = 1;
                    // Remember the env param for sibling calls.
                    let mut info2 = info.clone();
                    info2.env_param = Some(env_param);
                    self.funs.insert(f.var, info2);
                    // Within this body, the shared environment is the
                    // parameter, not the definition-site binding.
                    if let Some(eb) = env_binding {
                        inner_map.insert(eb, env_param);
                    }
                }
            }
            for (v, c) in &f.params {
                params.push((*v, c.clone()));
                self.var_cons.insert(*v, c.clone());
            }
            // Record param cons before converting the body.
            let mut cparams = fcvs.clone();
            cparams.extend(f.cparams.iter().copied());
            // Prologue for env style: bind captures from the env.
            let mut body_c;
            if style_env {
                // Map captures to fresh locals selected from env.
                let env_param = params[0].0;
                let mut prologue: Vec<(Var, CRhs)> = Vec::new();
                for (i, (v, c)) in fvs.iter().zip(&capture_cons).enumerate() {
                    let nv = self.vs.rename(*v);
                    inner_map.insert(*v, nv);
                    self.var_cons.insert(nv, c.clone());
                    prologue.push((nv, CRhs::EnvSel(i, Atom::Var(env_param))));
                }
                let inner = self.exp(&f.body, &inner_map)?;
                let mut e = inner;
                for (v, r) in prologue.into_iter().rev() {
                    e = CExp::Let {
                        var: v,
                        rhs: r,
                        body: Box::new(e),
                    };
                }
                body_c = e;
            } else {
                body_c = self.exp(&f.body, &inner_map)?;
            }
            // Drop unused capture selections later (harmless).
            let code = Code {
                var: info.code,
                cparams,
                captured_cvars: fcvs.len(),
                params,
                captured_vars,
                escapes: info.escapes,
                ret: f.ret.clone(),
                body: std::mem::replace(&mut body_c, CExp::Ret(Atom::Int(0))),
            };
            self.codes.push(code);
        }
        // Convert the scope, binding the shared environment and the
        // escaping closures.
        let inner_body = self.exp(body, map)?;
        let mut out = inner_body;
        if style_env {
            // Bind closures for escaping functions.
            for f in funs.iter().rev() {
                let info = self.funs[&f.var].clone();
                if info.escapes {
                    out = CExp::Let {
                        var: f.var,
                        rhs: CRhs::MkClosure {
                            code: info.code,
                            env: Atom::Var(env_binding.unwrap()),
                        },
                        body: Box::new(out),
                    };
                }
            }
            // Build the shared environment record.
            let env_fields: Vec<Atom> =
                fvs.iter().map(|v| self.ren(Atom::Var(*v), map)).collect();
            out = CExp::Let {
                var: env_binding.unwrap(),
                rhs: CRhs::MkEnv {
                    tenv: fcvs.iter().map(|c| Con::Var(*c)).collect(),
                    venv: env_fields,
                },
                body: Box::new(out),
            };
        }
        Ok(out)
    }

    /// Free variables of one function, expanding known-call captures,
    /// accumulated into `fvs`/`fcvs` (deduplicated, globals excluded).
    fn free_of_fun(
        &self,
        f: &BFun,
        nest: &[Var],
        fvs: &mut Vec<Var>,
        fcvs: &mut Vec<CVar>,
    ) {
        let mut bound: HashSet<Var> = f.params.iter().map(|(v, _)| *v).collect();
        for v in nest {
            bound.insert(*v);
        }
        let mut cbound: HashSet<CVar> = f.cparams.iter().copied().collect();
        self.free_exp(&f.body, &mut bound, &mut cbound, fvs, fcvs);
        // Constructor variables free in parameter/result types.
        for (_, c) in &f.params {
            self.free_con(c, &cbound, fcvs);
        }
        self.free_con(&f.ret, &cbound, fcvs);
    }

    fn note_use(
        &self,
        a: &Atom,
        bound: &HashSet<Var>,
        fvs: &mut Vec<Var>,
    ) {
        if let Atom::Var(v) = a {
            if !bound.contains(v) && !self.globals.contains(v) && !fvs.contains(v) {
                // References to known functions expand to their captures.
                if let Some(info) = self.funs.get(v) {
                    match &info.style {
                        FunStyle::Direct => {
                            for c in &info.captures {
                                if !bound.contains(c)
                                    && !self.globals.contains(c)
                                    && !fvs.contains(c)
                                {
                                    fvs.push(*c);
                                }
                            }
                        }
                        FunStyle::Env { env_binding } => {
                            if !bound.contains(env_binding)
                                && !self.globals.contains(env_binding)
                                && !fvs.contains(env_binding)
                            {
                                fvs.push(*env_binding);
                            }
                        }
                    }
                } else {
                    fvs.push(*v);
                }
            }
        }
    }

    fn free_con(&self, c: &Con, cbound: &HashSet<CVar>, fcvs: &mut Vec<CVar>) {
        let mut tmp = Vec::new();
        c.free_cvars(&mut tmp);
        for cv in tmp {
            if !cbound.contains(&cv) && !fcvs.contains(&cv) {
                fcvs.push(cv);
            }
        }
    }

    fn free_exp(
        &self,
        e: &BExp,
        bound: &mut HashSet<Var>,
        cbound: &mut HashSet<CVar>,
        fvs: &mut Vec<Var>,
        fcvs: &mut Vec<CVar>,
    ) {
        match e {
            BExp::Ret(a) => self.note_use(a, bound, fvs),
            BExp::Let { var, rhs, body } => {
                self.free_rhs(rhs, bound, cbound, fvs, fcvs);
                bound.insert(*var);
                self.free_exp(body, bound, cbound, fvs, fcvs);
            }
            BExp::Fix { funs, body } => {
                for f in funs {
                    bound.insert(f.var);
                }
                for f in funs {
                    // The inner function's own constructor parameters
                    // bind before its parameter types are examined.
                    for cv in &f.cparams {
                        cbound.insert(*cv);
                    }
                    for (v, c) in &f.params {
                        bound.insert(*v);
                        self.free_con(c, cbound, fcvs);
                    }
                    self.free_con(&f.ret, cbound, fcvs);
                    self.free_exp(&f.body, bound, cbound, fvs, fcvs);
                }
                self.free_exp(body, bound, cbound, fvs, fcvs);
            }
        }
    }

    fn free_rhs(
        &self,
        r: &BRhs,
        bound: &mut HashSet<Var>,
        cbound: &mut HashSet<CVar>,
        fvs: &mut Vec<Var>,
        fcvs: &mut Vec<CVar>,
    ) {
        let mut cons: Vec<&Con> = Vec::new();
        match r {
            BRhs::Atom(a) | BRhs::Select(_, a) => self.note_use(a, bound, fvs),
            BRhs::Float(_) | BRhs::Str(_) => {}
            BRhs::Record(atoms) => atoms.iter().for_each(|a| self.note_use(a, bound, fvs)),
            BRhs::Con { cargs, args, .. } => {
                args.iter().for_each(|a| self.note_use(a, bound, fvs));
                cons.extend(cargs.iter());
            }
            BRhs::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    self.note_use(a, bound, fvs);
                }
            }
            BRhs::Prim { cargs, args, .. } => {
                args.iter().for_each(|a| self.note_use(a, bound, fvs));
                cons.extend(cargs.iter());
            }
            BRhs::App { f, cargs, args } => {
                self.note_use(f, bound, fvs);
                args.iter().for_each(|a| self.note_use(a, bound, fvs));
                cons.extend(cargs.iter());
            }
            BRhs::Raise { exn, con } => {
                self.note_use(exn, bound, fvs);
                cons.push(con);
            }
            BRhs::Handle { body, var, handler } => {
                self.free_exp(body, bound, cbound, fvs, fcvs);
                bound.insert(*var);
                self.free_exp(handler, bound, cbound, fvs, fcvs);
            }
            BRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => {
                cons.push(scrut);
                cons.push(con);
                self.free_exp(int, bound, cbound, fvs, fcvs);
                self.free_exp(float, bound, cbound, fvs, fcvs);
                self.free_exp(ptr, bound, cbound, fvs, fcvs);
            }
            BRhs::Switch(sw) => match sw {
                BSwitch::Int {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    self.note_use(scrut, bound, fvs);
                    for (_, a) in arms {
                        self.free_exp(a, bound, cbound, fvs, fcvs);
                    }
                    self.free_exp(default, bound, cbound, fvs, fcvs);
                }
                BSwitch::Data {
                    scrut,
                    cargs,
                    arms,
                    default,
                    ..
                } => {
                    self.note_use(scrut, bound, fvs);
                    cons.extend(cargs.iter());
                    for (_, binders, a) in arms {
                        for b in binders {
                            bound.insert(*b);
                        }
                        self.free_exp(a, bound, cbound, fvs, fcvs);
                    }
                    if let Some(d) = default {
                        self.free_exp(d, bound, cbound, fvs, fcvs);
                    }
                }
                BSwitch::Str {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    self.note_use(scrut, bound, fvs);
                    for (_, a) in arms {
                        self.free_exp(a, bound, cbound, fvs, fcvs);
                    }
                    self.free_exp(default, bound, cbound, fvs, fcvs);
                }
                BSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    self.note_use(scrut, bound, fvs);
                    for (_, b, a) in arms {
                        if let Some(bv) = b {
                            bound.insert(*bv);
                        }
                        self.free_exp(a, bound, cbound, fvs, fcvs);
                    }
                    self.free_exp(default, bound, cbound, fvs, fcvs);
                }
            },
        }
        for c in cons {
            self.free_con(c, cbound, fcvs);
        }
    }
}
