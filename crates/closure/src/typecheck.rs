//! Structural verification of closure-converted programs.
//!
//! The full constructor-level typing was already verified on Bform
//! (the conversion is type-preserving by construction); what closure
//! conversion adds — and what this checker verifies — are the *closure
//! invariants*: every code block is closed (it references only its own
//! parameters and locals, top-level globals, and code labels), every
//! known call matches its callee's full arity (captures included),
//! constructor-variable scoping holds per code block, and binders stay
//! globally unique.

use crate::ir::{CExp, CProgram, CRhs, CSwitch, Code};
use std::collections::HashSet;
use til_bform::Atom;
use til_common::{Diagnostic, Result, Var};
use til_lmli::con::{CVar, Con};

const PHASE: &str = "closure-check";

fn err(msg: String) -> Diagnostic {
    Diagnostic::ice(PHASE, msg)
}

/// Verifies the closure invariants.
pub fn typecheck_closure(p: &CProgram) -> Result<()> {
    let mut cx = Ck {
        globals: HashSet::new(),
        codes: &p.codes,
        seen: HashSet::new(),
    };
    let mut spine = &p.body;
    while let CExp::Let { var, body, .. } = spine {
        cx.globals.insert(*var);
        spine = body;
    }
    for c in &p.codes {
        cx.globals.insert(c.var);
    }
    for c in &p.codes {
        let mut scope: HashSet<Var> = c.params.iter().map(|(v, _)| *v).collect();
        for (v, _) in &c.params {
            if !cx.seen.insert(*v) {
                return Err(err(format!("parameter {v} not globally unique")));
            }
        }
        let cscope: HashSet<CVar> = c.cparams.iter().copied().collect();
        cx.exp(&c.body, &mut scope, &cscope, Some(c))?;
    }
    let mut scope = HashSet::new();
    let cscope = HashSet::new();
    cx.exp(&p.body, &mut scope, &cscope, None)?;
    Ok(())
}

struct Ck<'a> {
    globals: HashSet<Var>,
    codes: &'a [Code],
    seen: HashSet<Var>,
}

impl<'a> Ck<'a> {
    fn code(&self, v: Var) -> Result<&Code> {
        self.codes
            .iter()
            .find(|c| c.var == v)
            .ok_or_else(|| err(format!("unknown code label {v}")))
    }

    fn atom(&self, a: &Atom, scope: &HashSet<Var>, ctx: Option<&Code>) -> Result<()> {
        if let Atom::Var(v) = a {
            if !scope.contains(v) && !self.globals.contains(v) {
                let who = ctx.map(|c| c.var.to_string()).unwrap_or_else(|| "main".into());
                return Err(err(format!("code {who} is not closed: {v} escapes")));
            }
        }
        Ok(())
    }

    fn cons(&self, c: &Con, cscope: &HashSet<CVar>, ctx: Option<&Code>) -> Result<()> {
        let mut free = Vec::new();
        c.free_cvars(&mut free);
        for cv in free {
            if !cscope.contains(&cv) {
                let who = ctx.map(|c| c.var.to_string()).unwrap_or_else(|| "main".into());
                return Err(err(format!(
                    "code {who}: constructor variable {cv} out of scope"
                )));
            }
        }
        Ok(())
    }

    fn bind(&mut self, v: Var, scope: &mut HashSet<Var>) -> Result<()> {
        if !self.seen.insert(v) {
            return Err(err(format!("binder {v} not globally unique")));
        }
        scope.insert(v);
        Ok(())
    }

    fn exp(
        &mut self,
        e: &CExp,
        scope: &mut HashSet<Var>,
        cscope: &HashSet<CVar>,
        ctx: Option<&Code>,
    ) -> Result<()> {
        match e {
            CExp::Ret(a) => self.atom(a, scope, ctx),
            CExp::Let { var, rhs, body } => {
                self.rhs(rhs, scope, cscope, ctx)?;
                self.bind(*var, scope)?;
                self.exp(body, scope, cscope, ctx)
            }
        }
    }

    fn rhs(
        &mut self,
        r: &CRhs,
        scope: &mut HashSet<Var>,
        cscope: &HashSet<CVar>,
        ctx: Option<&Code>,
    ) -> Result<()> {
        match r {
            CRhs::Atom(a) | CRhs::Select(_, a) | CRhs::EnvSel(_, a) => self.atom(a, scope, ctx),
            CRhs::Float(_) | CRhs::Str(_) => Ok(()),
            CRhs::Record(atoms) => {
                for a in atoms {
                    self.atom(a, scope, ctx)?;
                }
                Ok(())
            }
            CRhs::Con { cargs, args, .. } | CRhs::Prim { cargs, args, .. } => {
                for a in args {
                    self.atom(a, scope, ctx)?;
                }
                for c in cargs {
                    self.cons(c, cscope, ctx)?;
                }
                Ok(())
            }
            CRhs::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    self.atom(a, scope, ctx)?;
                }
                Ok(())
            }
            CRhs::CallKnown { code, cargs, args } => {
                let (want_c, want_a) = {
                    let callee = self.code(*code)?;
                    (callee.cparams.len(), callee.params.len())
                };
                if want_c != cargs.len() {
                    return Err(err(format!(
                        "known call to {code}: {} cargs, expected {want_c}",
                        cargs.len()
                    )));
                }
                if want_a != args.len() {
                    return Err(err(format!(
                        "known call to {code}: {} args, expected {want_a}",
                        args.len()
                    )));
                }
                for a in args {
                    self.atom(a, scope, ctx)?;
                }
                for c in cargs {
                    self.cons(c, cscope, ctx)?;
                }
                Ok(())
            }
            CRhs::CallClosure { clo, cargs, args } => {
                self.atom(clo, scope, ctx)?;
                for a in args {
                    self.atom(a, scope, ctx)?;
                }
                for c in cargs {
                    self.cons(c, cscope, ctx)?;
                }
                Ok(())
            }
            CRhs::MkEnv { tenv, venv } => {
                for c in tenv {
                    self.cons(c, cscope, ctx)?;
                }
                for a in venv {
                    self.atom(a, scope, ctx)?;
                }
                Ok(())
            }
            CRhs::MkClosure { code, env } => {
                let escapes = self.code(*code)?.escapes;
                if !escapes {
                    return Err(err(format!(
                        "closure built for non-escaping code {code}"
                    )));
                }
                self.atom(env, scope, ctx)
            }
            CRhs::Raise { exn, con } => {
                self.atom(exn, scope, ctx)?;
                self.cons(con, cscope, ctx)
            }
            CRhs::Handle { body, var, handler } => {
                self.exp(body, scope, cscope, ctx)?;
                self.bind(*var, scope)?;
                self.exp(handler, scope, cscope, ctx)
            }
            CRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => {
                self.cons(scrut, cscope, ctx)?;
                self.cons(con, cscope, ctx)?;
                self.exp(int, scope, cscope, ctx)?;
                self.exp(float, scope, cscope, ctx)?;
                self.exp(ptr, scope, cscope, ctx)
            }
            CRhs::Switch(sw) => match sw {
                CSwitch::Int {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    self.atom(scrut, scope, ctx)?;
                    for (_, a) in arms {
                        self.exp(a, scope, cscope, ctx)?;
                    }
                    self.exp(default, scope, cscope, ctx)
                }
                CSwitch::Data {
                    scrut,
                    cargs,
                    arms,
                    default,
                    ..
                } => {
                    self.atom(scrut, scope, ctx)?;
                    for c in cargs {
                        self.cons(c, cscope, ctx)?;
                    }
                    for (_, binders, a) in arms {
                        for b in binders {
                            self.bind(*b, scope)?;
                        }
                        self.exp(a, scope, cscope, ctx)?;
                    }
                    if let Some(d) = default {
                        self.exp(d, scope, cscope, ctx)?;
                    }
                    Ok(())
                }
                CSwitch::Str {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    self.atom(scrut, scope, ctx)?;
                    for (_, a) in arms {
                        self.exp(a, scope, cscope, ctx)?;
                    }
                    self.exp(default, scope, cscope, ctx)
                }
                CSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    self.atom(scrut, scope, ctx)?;
                    for (_, b, a) in arms {
                        if let Some(bv) = b {
                            self.bind(*bv, scope)?;
                        }
                        self.exp(a, scope, cscope, ctx)?;
                    }
                    self.exp(default, scope, cscope, ctx)
                }
            },
        }
    }
}
