//! Closure-stage passes and the per-pass verification runner.
//!
//! The paper's engineering discipline — "we type-check the output of
//! each optimization" — applies after closure conversion too: every
//! transformation of the closure-converted IR re-runs
//! [`crate::typecheck_closure`], and a failure is attributed to the
//! pass that produced it with before/after IR dumps (the same
//! forensics the Bform optimizer uses, via
//! [`til_common::verify::attribute_pass_failure`]). The
//! [`til_common::fault`] registry (also exposed as `til_opt::fault`)
//! breaks closure-stage passes by name so the attribution path itself
//! stays tested.
//!
//! The passes are real cleanups the conversion leaves behind:
//!
//! * `closure-convert` — the conversion itself, verified as pass zero;
//! * `closure-prune` — dead pure-binding elimination (unused
//!   environment selections from the capture prologue, unused closure
//!   or record allocations);
//! * `closure-dead-code` — drops code blocks unreachable from the main
//!   body (known calls and closure allocations are the only ways to
//!   name a code).

use crate::convert::closure_convert;
use crate::ir::{CExp, CProgram, CRhs, CSwitch};
use crate::typecheck::typecheck_closure;
use std::collections::{HashMap, HashSet};
use til_bform::{Atom, BProgram};
use til_common::{fault, Diagnostic, Result, Tracer, Var, VarSupply};
use til_opt::PassStat;

/// Closure-stage configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClosureOptions {
    /// Run the cleanup passes (off = conversion only).
    pub enabled: bool,
    /// Re-run the closure typechecker after conversion and after every
    /// pass, attributing failures by pass name.
    pub verify: bool,
}

impl ClosureOptions {
    /// Default: passes on, verification per the driver's master switch.
    pub fn til(verify: bool) -> ClosureOptions {
        ClosureOptions {
            enabled: true,
            verify,
        }
    }
}

/// What the closure stage did.
#[derive(Clone, Debug, Default)]
pub struct ClosureStats {
    /// Passes executed (the conversion itself included).
    pub passes: usize,
    /// Program size (closure IR nodes) right after conversion.
    pub size_before: usize,
    /// Program size after the cleanup passes.
    pub size_after: usize,
    /// Code blocks removed as unreachable.
    pub codes_removed: usize,
    /// Per-pass aggregates, in first-execution order.
    pub pass_stats: Vec<PassStat>,
}

impl ClosureStats {
    fn record(&mut self, name: &'static str, seconds: f64, before: usize, after: usize) {
        self.passes += 1;
        let stat = match self.pass_stats.iter_mut().find(|s| s.name == name) {
            Some(s) => s,
            None => {
                self.pass_stats.push(PassStat {
                    name,
                    ..PassStat::default()
                });
                self.pass_stats.last_mut().unwrap()
            }
        };
        stat.runs += 1;
        stat.seconds += seconds;
        stat.nodes_eliminated += before.saturating_sub(after) as u64;
        stat.nodes_added += after.saturating_sub(before) as u64;
    }
}

/// Total node count of a closure program (codes + main).
pub fn program_size(p: &CProgram) -> usize {
    p.body.size() + p.codes.iter().map(|c| c.body.size()).sum::<usize>()
}

/// The minimal always-ill-typed mutation used by fault injection: bind
/// a fresh variable to another fresh — hence unbound — variable at the
/// head of the main body.
fn inject_unbound_var(p: &mut CProgram, vs: &mut VarSupply) {
    let body = std::mem::replace(&mut p.body, CExp::Ret(Atom::Int(0)));
    p.body = CExp::Let {
        var: vs.fresh_named("injected"),
        rhs: CRhs::Atom(Atom::Var(vs.fresh_named("unbound"))),
        body: Box::new(body),
    };
}

fn attribute(pass: &str, before: &str, after: &CProgram, d: Diagnostic) -> Diagnostic {
    til_common::verify::attribute_pass_failure(
        "closure",
        pass,
        before,
        &crate::print::program(after),
        "clo",
        d,
    )
}

/// Converts Bform to closure form and runs the closure-stage cleanup
/// passes, re-verifying after the conversion and after every pass when
/// `opts.verify` is set (failures attributed by pass name, with
/// before/after IR dumps). Pass spans are reported on `tracer`.
pub fn convert_and_optimize(
    b: &BProgram,
    vs: &mut VarSupply,
    opts: &ClosureOptions,
    tracer: Option<&Tracer>,
) -> Result<(CProgram, ClosureStats)> {
    let mut stats = ClosureStats::default();

    // Pass zero: the conversion itself.
    let bform_txt = if opts.verify {
        Some(til_bform::print::program(b))
    } else {
        None
    };
    let start = std::time::Instant::now();
    let mut p = closure_convert(b, vs)?;
    let seconds = start.elapsed().as_secs_f64();
    if fault::armed("closure-convert") {
        inject_unbound_var(&mut p, vs);
    }
    let converted_size = program_size(&p);
    stats.record("closure-convert", seconds, b.body.size(), converted_size);
    if let Some(t) = tracer {
        t.event(
            "closure-convert",
            seconds,
            &[("nodes-after", converted_size as i64)],
        );
    }
    if let Some(before) = &bform_txt {
        typecheck_closure(&p).map_err(|d| attribute("closure-convert", before, &p, d))?;
    }
    stats.size_before = converted_size;

    if opts.enabled {
        let mut r = Runner {
            verify: opts.verify,
            tracer,
            stats: &mut stats,
        };
        // Pruning can strand a closure's last reference and dead-code
        // removal can orphan a code's captures, so iterate briefly.
        for _ in 0..3 {
            let pruned = r.run_pass(&mut p, vs, "closure-prune", prune_dead_bindings)?;
            let removed = r.run_pass(&mut p, vs, "closure-dead-code", |p, _| {
                remove_unreachable_codes(p)
            })?;
            if !pruned && !removed {
                break;
            }
        }
    }
    stats.size_after = program_size(&p);
    Ok((p, stats))
}

/// Scheduler context mirroring the Bform optimizer's `Runner`.
struct Runner<'a> {
    verify: bool,
    tracer: Option<&'a Tracer>,
    stats: &'a mut ClosureStats,
}

impl Runner<'_> {
    fn run_pass(
        &mut self,
        p: &mut CProgram,
        vs: &mut VarSupply,
        name: &'static str,
        pass: impl FnOnce(&mut CProgram, &mut VarSupply) -> bool,
    ) -> Result<bool> {
        let size_before = program_size(p);
        let snapshot = if self.verify {
            Some(crate::print::program(p))
        } else {
            None
        };
        let start = std::time::Instant::now();
        let changed = pass(p, vs);
        let seconds = start.elapsed().as_secs_f64();
        if fault::armed(name) {
            inject_unbound_var(p, vs);
        }
        let size_after = program_size(p);
        self.stats.record(name, seconds, size_before, size_after);
        if let Some(t) = self.tracer {
            t.event(
                name,
                seconds,
                &[
                    ("nodes-before", size_before as i64),
                    ("nodes-after", size_after as i64),
                ],
            );
        }
        if let Some(before) = snapshot {
            typecheck_closure(p).map_err(|d| attribute(name, &before, p, d))?;
        }
        Ok(changed)
    }
}

// --------------------------------------------------- closure-prune

/// Whether a right-hand side is effect-free and can be dropped when
/// its binding is unused. Primitives and calls are conservatively kept
/// (prints, array writes, traps); control forms are kept.
fn rhs_pure(r: &CRhs) -> bool {
    matches!(
        r,
        CRhs::Atom(_)
            | CRhs::Float(_)
            | CRhs::Str(_)
            | CRhs::Record(_)
            | CRhs::Select(..)
            | CRhs::Con { .. }
            | CRhs::ExnCon { .. }
            | CRhs::MkEnv { .. }
            | CRhs::MkClosure { .. }
            | CRhs::EnvSel(..)
    )
}

/// Removes unused pure bindings across the whole program. Main-spine
/// bindings are globals visible from every code block, so use counts
/// are program-wide. Iterates to a local fixpoint.
fn prune_dead_bindings(p: &mut CProgram, _vs: &mut VarSupply) -> bool {
    let mut changed_any = false;
    loop {
        let mut uses: HashMap<Var, usize> = HashMap::new();
        count_exp(&p.body, &mut uses);
        for c in &p.codes {
            count_exp(&c.body, &mut uses);
        }
        let mut removed = 0usize;
        p.body = prune_exp(std::mem::replace(&mut p.body, CExp::Ret(Atom::Int(0))), &uses, &mut removed);
        for c in &mut p.codes {
            c.body = prune_exp(
                std::mem::replace(&mut c.body, CExp::Ret(Atom::Int(0))),
                &uses,
                &mut removed,
            );
        }
        if removed == 0 {
            break;
        }
        changed_any = true;
    }
    changed_any
}

fn prune_exp(e: CExp, uses: &HashMap<Var, usize>, removed: &mut usize) -> CExp {
    match e {
        CExp::Ret(a) => CExp::Ret(a),
        CExp::Let { var, rhs, body } => {
            let body = prune_exp(*body, uses, removed);
            if rhs_pure(&rhs) && uses.get(&var).copied().unwrap_or(0) == 0 {
                *removed += 1;
                body
            } else {
                CExp::Let {
                    var,
                    rhs: prune_rhs(rhs, uses, removed),
                    body: Box::new(body),
                }
            }
        }
    }
}

fn prune_rhs(r: CRhs, uses: &HashMap<Var, usize>, removed: &mut usize) -> CRhs {
    let pe = |e: Box<CExp>, removed: &mut usize| Box::new(prune_exp(*e, uses, removed));
    match r {
        CRhs::Handle { body, var, handler } => CRhs::Handle {
            body: pe(body, removed),
            var,
            handler: pe(handler, removed),
        },
        CRhs::Typecase {
            scrut,
            int,
            float,
            ptr,
            con,
        } => CRhs::Typecase {
            scrut,
            int: pe(int, removed),
            float: pe(float, removed),
            ptr: pe(ptr, removed),
            con,
        },
        CRhs::Switch(sw) => CRhs::Switch(match sw {
            CSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => CSwitch::Int {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(k, a)| (k, prune_exp(a, uses, removed)))
                    .collect(),
                default: pe(default, removed),
                con,
            },
            CSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => CSwitch::Data {
                scrut,
                data,
                cargs,
                arms: arms
                    .into_iter()
                    .map(|(t, b, a)| (t, b, prune_exp(a, uses, removed)))
                    .collect(),
                default: default.map(|d| pe(d, removed)),
                con,
            },
            CSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => CSwitch::Str {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(k, a)| (k, prune_exp(a, uses, removed)))
                    .collect(),
                default: pe(default, removed),
                con,
            },
            CSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => CSwitch::Exn {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(id, b, a)| (id, b, prune_exp(a, uses, removed)))
                    .collect(),
                default: pe(default, removed),
                con,
            },
        }),
        other => other,
    }
}

fn count_atom(a: &Atom, uses: &mut HashMap<Var, usize>) {
    if let Atom::Var(v) = a {
        *uses.entry(*v).or_insert(0) += 1;
    }
}

fn count_exp(e: &CExp, uses: &mut HashMap<Var, usize>) {
    match e {
        CExp::Ret(a) => count_atom(a, uses),
        CExp::Let { rhs, body, .. } => {
            count_rhs(rhs, uses);
            count_exp(body, uses);
        }
    }
}

fn count_rhs(r: &CRhs, uses: &mut HashMap<Var, usize>) {
    match r {
        CRhs::Atom(a) | CRhs::Select(_, a) | CRhs::EnvSel(_, a) => count_atom(a, uses),
        CRhs::Float(_) | CRhs::Str(_) => {}
        CRhs::Record(atoms) => atoms.iter().for_each(|a| count_atom(a, uses)),
        CRhs::Con { args, .. } | CRhs::Prim { args, .. } => {
            args.iter().for_each(|a| count_atom(a, uses))
        }
        CRhs::ExnCon { arg, .. } => {
            if let Some(a) = arg {
                count_atom(a, uses);
            }
        }
        CRhs::CallKnown { code, args, .. } => {
            *uses.entry(*code).or_insert(0) += 1;
            args.iter().for_each(|a| count_atom(a, uses));
        }
        CRhs::CallClosure { clo, args, .. } => {
            count_atom(clo, uses);
            args.iter().for_each(|a| count_atom(a, uses));
        }
        CRhs::MkEnv { venv, .. } => venv.iter().for_each(|a| count_atom(a, uses)),
        CRhs::MkClosure { code, env } => {
            *uses.entry(*code).or_insert(0) += 1;
            count_atom(env, uses);
        }
        CRhs::Raise { exn, .. } => count_atom(exn, uses),
        CRhs::Handle { body, handler, .. } => {
            count_exp(body, uses);
            count_exp(handler, uses);
        }
        CRhs::Typecase {
            int, float, ptr, ..
        } => {
            count_exp(int, uses);
            count_exp(float, uses);
            count_exp(ptr, uses);
        }
        CRhs::Switch(sw) => match sw {
            CSwitch::Int {
                scrut,
                arms,
                default,
                ..
            } => {
                count_atom(scrut, uses);
                arms.iter().for_each(|(_, a)| count_exp(a, uses));
                count_exp(default, uses);
            }
            CSwitch::Data {
                scrut,
                arms,
                default,
                ..
            } => {
                count_atom(scrut, uses);
                arms.iter().for_each(|(_, _, a)| count_exp(a, uses));
                if let Some(d) = default {
                    count_exp(d, uses);
                }
            }
            CSwitch::Str {
                scrut,
                arms,
                default,
                ..
            } => {
                count_atom(scrut, uses);
                arms.iter().for_each(|(_, a)| count_exp(a, uses));
                count_exp(default, uses);
            }
            CSwitch::Exn {
                scrut,
                arms,
                default,
                ..
            } => {
                count_atom(scrut, uses);
                arms.iter().for_each(|(_, _, a)| count_exp(a, uses));
                count_exp(default, uses);
            }
        },
    }
}

// ----------------------------------------------- closure-dead-code

/// Drops code blocks unreachable from the main body. Codes are only
/// ever named by `CallKnown` and `MkClosure`, so reachability is the
/// transitive closure of those references starting from main.
fn remove_unreachable_codes(p: &mut CProgram) -> bool {
    let mut reachable: HashSet<Var> = HashSet::new();
    let mut frontier: Vec<Var> = Vec::new();
    collect_code_refs(&p.body, &mut reachable, &mut frontier);
    while let Some(v) = frontier.pop() {
        if let Some(c) = p.codes.iter().find(|c| c.var == v) {
            collect_code_refs(&c.body, &mut reachable, &mut frontier);
        }
    }
    let before = p.codes.len();
    p.codes.retain(|c| reachable.contains(&c.var));
    before != p.codes.len()
}

fn collect_code_refs(e: &CExp, reachable: &mut HashSet<Var>, frontier: &mut Vec<Var>) {
    // Reuse the use-counting walk: code labels appear in the use map
    // through CallKnown/MkClosure; anything else is a value variable
    // and harmlessly ignored by the retain above.
    let mut uses = HashMap::new();
    count_exp(e, &mut uses);
    for v in uses.keys() {
        if reachable.insert(*v) {
            frontier.push(*v);
        }
    }
}
