//! The closure-converted IR (the paper's **Lmli-Closure**, §3.4).
//!
//! After closure conversion every function is a *closed*, top-level
//! [`Code`]: its free value variables have become extra parameters and
//! its free constructor variables extra constructor parameters.
//! Escaping functions additionally get a heap **closure**: a flat
//! record pairing the code pointer with the captured constructor
//! representations and values ([`CRhs::MkClosure`]); closure calls go
//! through [`CRhs::CallClosure`], which the later phases expand into
//! "fetch code pointer, pass the closure as the environment argument".
//! Known functions (those that never escape) are called directly with
//! their captures appended ([`CRhs::CallKnown`]), following Kranz.

use til_common::Var;
use til_lambda::env::{DataId, ExnId};
pub use til_lmli::con::{CVar, Con};
pub use til_lmli::data::{MDataEnv, MExnEnv};
pub use til_lmli::prim::MPrim;

pub use til_bform::Atom;

/// A closure-converted program: a flat list of closed code blocks plus
/// the main body.
#[derive(Clone, Debug)]
pub struct CProgram {
    /// Datatype representations.
    pub data: MDataEnv,
    /// Exception representations.
    pub exns: MExnEnv,
    /// All code blocks (closed functions), in definition order.
    pub codes: Vec<Code>,
    /// The main expression.
    pub body: CExp,
    /// Its constructor.
    pub con: Con,
}

impl CProgram {
    /// Looks up a code block by its label variable.
    pub fn code(&self, v: Var) -> Option<&Code> {
        self.codes.iter().find(|c| c.var == v)
    }

    /// Counts expression nodes across the main body and every code
    /// block (the pipeline's per-phase IR metric).
    pub fn size(&self) -> usize {
        crate::passes::program_size(self)
    }
}

/// One closed function.
#[derive(Clone, Debug)]
pub struct Code {
    /// The code label.
    pub var: Var,
    /// Constructor parameters: first the captured free constructor
    /// variables (loaded from the closure's type environment when the
    /// function escapes, passed explicitly at known calls), then the
    /// function's original constructor parameters (passed at every
    /// call).
    pub cparams: Vec<CVar>,
    /// How many of `cparams` are captures.
    pub captured_cvars: usize,
    /// Value parameters: first the captured free variables, then the
    /// original parameters.
    pub params: Vec<(Var, Con)>,
    /// How many of `params` are captures.
    pub captured_vars: usize,
    /// Whether this code is entered through a closure (its captures
    /// live in the closure record) or only by direct known calls (its
    /// captures arrive as arguments).
    pub escapes: bool,
    /// Result constructor.
    pub ret: Con,
    /// Body.
    pub body: CExp,
}

/// Closure-converted expressions (Bform shape).
#[derive(Clone, Debug)]
pub enum CExp {
    /// `let`.
    Let {
        /// Bound variable.
        var: Var,
        /// Right-hand side.
        rhs: CRhs,
        /// Continuation.
        body: Box<CExp>,
    },
    /// Return an atom.
    Ret(Atom),
}

/// Right-hand sides.
#[derive(Clone, Debug)]
pub enum CRhs {
    /// Copy.
    Atom(Atom),
    /// Float constant.
    Float(f64),
    /// String constant.
    Str(String),
    /// Record allocation.
    Record(Vec<Atom>),
    /// Positional selection.
    Select(usize, Atom),
    /// Datatype constructor.
    Con {
        /// Datatype.
        data: DataId,
        /// Instantiation.
        cargs: Vec<Con>,
        /// Tag.
        tag: usize,
        /// Flattened fields.
        args: Vec<Atom>,
    },
    /// Exception packet.
    ExnCon {
        /// Exception.
        exn: ExnId,
        /// Carried value.
        arg: Option<Atom>,
    },
    /// Primitive.
    Prim {
        /// Operation.
        prim: MPrim,
        /// Type arguments.
        cargs: Vec<Con>,
        /// Arguments.
        args: Vec<Atom>,
    },
    /// Direct call of a known code block. `cargs`/`args` already
    /// include the captures.
    CallKnown {
        /// Code label.
        code: Var,
        /// All constructor arguments.
        cargs: Vec<Con>,
        /// All value arguments.
        args: Vec<Atom>,
    },
    /// Call through a closure value.
    CallClosure {
        /// The closure.
        clo: Atom,
        /// The function's own constructor arguments.
        cargs: Vec<Con>,
        /// The function's own value arguments.
        args: Vec<Atom>,
    },
    /// Allocate a flat environment record: `[captured reps…, captured
    /// values…]` (the rep slots are materialized by the RTL phase).
    MkEnv {
        /// Captured constructor representations.
        tenv: Vec<Con>,
        /// Captured values.
        venv: Vec<Atom>,
    },
    /// Allocate a closure pair `[code, env]`.
    MkClosure {
        /// Code label.
        code: Var,
        /// The shared environment.
        env: Atom,
    },
    /// Select capture `i` from an environment (RTL offsets past the
    /// rep slots).
    EnvSel(usize, Atom),
    /// Branch.
    Switch(CSwitch),
    /// Run-time type analysis (still present if the program kept
    /// polymorphism).
    Typecase {
        /// Analyzed constructor.
        scrut: Con,
        /// Int arm.
        int: Box<CExp>,
        /// Float arm.
        float: Box<CExp>,
        /// Pointer arm.
        ptr: Box<CExp>,
        /// Result constructor.
        con: Con,
    },
    /// Exception handler.
    Handle {
        /// Protected body.
        body: Box<CExp>,
        /// Packet binder.
        var: Var,
        /// Handler.
        handler: Box<CExp>,
    },
    /// Raise.
    Raise {
        /// Packet.
        exn: Atom,
        /// Context type.
        con: Con,
    },
}

/// Switches (as in Bform).
#[derive(Clone, Debug)]
pub enum CSwitch {
    /// On integers.
    Int {
        /// Scrutinee.
        scrut: Atom,
        /// Arms.
        arms: Vec<(i64, CExp)>,
        /// Fallback.
        default: Box<CExp>,
        /// Result constructor.
        con: Con,
    },
    /// On datatype constructors.
    Data {
        /// Scrutinee.
        scrut: Atom,
        /// Datatype.
        data: DataId,
        /// Instantiation.
        cargs: Vec<Con>,
        /// Arms binding flattened fields.
        arms: Vec<(usize, Vec<Var>, CExp)>,
        /// Fallback.
        default: Option<Box<CExp>>,
        /// Result constructor.
        con: Con,
    },
    /// On strings.
    Str {
        /// Scrutinee.
        scrut: Atom,
        /// Arms.
        arms: Vec<(String, CExp)>,
        /// Fallback.
        default: Box<CExp>,
        /// Result constructor.
        con: Con,
    },
    /// On exception constructors.
    Exn {
        /// Scrutinee.
        scrut: Atom,
        /// Arms.
        arms: Vec<(ExnId, Option<Var>, CExp)>,
        /// Fallback.
        default: Box<CExp>,
        /// Result constructor.
        con: Con,
    },
}

impl CExp {
    /// Node count.
    pub fn size(&self) -> usize {
        match self {
            CExp::Ret(_) => 1,
            CExp::Let { rhs, body, .. } => 1 + rhs.size() + body.size(),
        }
    }
}

impl CRhs {
    /// Node count.
    pub fn size(&self) -> usize {
        match self {
            CRhs::Switch(sw) => match sw {
                CSwitch::Int { arms, default, .. } => {
                    1 + arms.iter().map(|(_, a)| a.size()).sum::<usize>() + default.size()
                }
                CSwitch::Data { arms, default, .. } => {
                    1 + arms.iter().map(|(_, _, a)| a.size()).sum::<usize>()
                        + default.as_ref().map_or(0, |d| d.size())
                }
                CSwitch::Str { arms, default, .. } => {
                    1 + arms.iter().map(|(_, a)| a.size()).sum::<usize>() + default.size()
                }
                CSwitch::Exn { arms, default, .. } => {
                    1 + arms.iter().map(|(_, _, a)| a.size()).sum::<usize>() + default.size()
                }
            },
            CRhs::Typecase {
                int, float, ptr, ..
            } => 1 + int.size() + float.size() + ptr.size(),
            CRhs::Handle { body, handler, .. } => 1 + body.size() + handler.size(),
            _ => 1,
        }
    }
}
