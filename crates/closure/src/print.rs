//! Pretty printer for closure-converted programs, used by the
//! per-pass verify forensics (before/after IR dumps) and debugging.

use crate::ir::{CExp, CProgram, CRhs, CSwitch};
use til_bform::Atom;
use til_common::pretty::Printer;
use til_lmli::data::MDataEnv;

/// Renders a whole program: every code block, then the main body.
pub fn program(p: &CProgram) -> String {
    let mut pr = Printer::new();
    for c in &p.codes {
        let cps = if c.cparams.is_empty() {
            String::new()
        } else {
            format!(
                "[{}]",
                c.cparams
                    .iter()
                    .map(|cv| cv.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let ps = c
            .params
            .iter()
            .map(|(v, _)| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let kind = if c.escapes { "code" } else { "known code" };
        pr.line(format!(
            "{kind} {}{cps}({ps})  (* {} captured cvars, {} captured vars *)",
            c.var, c.captured_cvars, c.captured_vars
        ));
        pr.indent();
        exp(&mut pr, &c.body, &p.data);
        pr.dedent();
    }
    pr.line("main:");
    pr.indent();
    exp(&mut pr, &p.body, &p.data);
    pr.dedent();
    pr.finish()
}

fn atom(a: &Atom) -> String {
    match a {
        Atom::Var(v) => v.to_string(),
        Atom::Int(n) => n.to_string(),
    }
}

fn atoms(asl: &[Atom]) -> String {
    asl.iter().map(atom).collect::<Vec<_>>().join(", ")
}

fn exp(p: &mut Printer, e: &CExp, data: &MDataEnv) {
    match e {
        CExp::Ret(a) => {
            p.line(format!("ret {}", atom(a)));
        }
        CExp::Let { var, rhs, body } => {
            p.line(format!("let {var} = "));
            rhs_str(p, rhs, data);
            exp(p, body, data);
        }
    }
}

fn rhs_str(p: &mut Printer, r: &CRhs, data: &MDataEnv) {
    match r {
        CRhs::Atom(a) => {
            p.word(atom(a));
        }
        CRhs::Float(f) => {
            p.word(format!("{f:?}"));
        }
        CRhs::Str(s) => {
            p.word(format!("{s:?}"));
        }
        CRhs::Record(fs) => {
            p.word(format!("{{{}}}", atoms(fs)));
        }
        CRhs::Select(i, a) => {
            p.word(format!("#{i} {}", atom(a)));
        }
        CRhs::Con {
            data: id,
            tag,
            args,
            ..
        } => {
            let name = data.get(*id).name;
            p.word(format!("{name}#{tag}({})", atoms(args)));
        }
        CRhs::ExnCon { exn, arg } => {
            let a = arg.as_ref().map(atom).unwrap_or_default();
            p.word(format!("exn#{}({a})", exn.0));
        }
        CRhs::Prim { prim, args, .. } => {
            p.word(format!("{prim}({})", atoms(args)));
        }
        CRhs::CallKnown { code, args, .. } => {
            p.word(format!("call {code}({})", atoms(args)));
        }
        CRhs::CallClosure { clo, args, .. } => {
            p.word(format!("callclo {}({})", atom(clo), atoms(args)));
        }
        CRhs::MkEnv { tenv, venv } => {
            p.word(format!("mkenv[{} reps]{{{}}}", tenv.len(), atoms(venv)));
        }
        CRhs::MkClosure { code, env } => {
            p.word(format!("mkclosure({code}, {})", atom(env)));
        }
        CRhs::EnvSel(i, a) => {
            p.word(format!("envsel #{i} {}", atom(a)));
        }
        CRhs::Raise { exn, .. } => {
            p.word(format!("raise {}", atom(exn)));
        }
        CRhs::Handle { body, var, handler } => {
            p.word("handle");
            p.indent();
            exp(p, body, data);
            p.line(format!("with {var} =>"));
            p.indent();
            exp(p, handler, data);
            p.dedent();
            p.dedent();
        }
        CRhs::Typecase {
            int, float, ptr, ..
        } => {
            p.word("typecase of");
            p.indent();
            p.line("int =>");
            p.indent();
            exp(p, int, data);
            p.dedent();
            p.line("float =>");
            p.indent();
            exp(p, float, data);
            p.dedent();
            p.line("ptr =>");
            p.indent();
            exp(p, ptr, data);
            p.dedent();
            p.dedent();
        }
        CRhs::Switch(sw) => switch(p, sw, data),
    }
}

fn switch(p: &mut Printer, sw: &CSwitch, data: &MDataEnv) {
    match sw {
        CSwitch::Int {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_int {} of", atom(scrut)));
            p.indent();
            for (k, a) in arms {
                p.line(format!("{k} =>"));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            p.line("_ =>");
            p.indent();
            exp(p, default, data);
            p.dedent();
            p.dedent();
        }
        CSwitch::Data {
            scrut,
            data: id,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_data {} of", atom(scrut)));
            p.indent();
            for (tag, binders, a) in arms {
                let name = data.get(*id).name;
                let bs = binders
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                p.line(format!("{name}#{tag}({bs}) =>"));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            if let Some(d) = default {
                p.line("_ =>");
                p.indent();
                exp(p, d, data);
                p.dedent();
            }
            p.dedent();
        }
        CSwitch::Str {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_str {} of", atom(scrut)));
            p.indent();
            for (k, a) in arms {
                p.line(format!("{k:?} =>"));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            p.line("_ =>");
            p.indent();
            exp(p, default, data);
            p.dedent();
            p.dedent();
        }
        CSwitch::Exn {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_exn {} of", atom(scrut)));
            p.indent();
            for (id, binder, a) in arms {
                let b = binder.map(|v| format!("({v})")).unwrap_or_default();
                p.line(format!("exn#{}{b} =>", id.0));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            p.line("_ =>");
            p.indent();
            exp(p, default, data);
            p.dedent();
            p.dedent();
        }
    }
}
