//! Typed closure conversion (paper §3.4): converts Bform to
//! **Lmli-Closure** — closed top-level code blocks, explicit flat
//! environments, Kranz-style known-function calls.

pub mod convert;
pub mod ir;
pub mod passes;
pub mod print;
pub mod typecheck;

pub use convert::closure_convert;
pub use ir::{CExp, CProgram, CRhs, CSwitch, Code};
pub use passes::{convert_and_optimize, ClosureOptions, ClosureStats};
pub use typecheck::typecheck_closure;
