//! The type-indexed heap census: bucketing live heap words by
//! representation class after each collection (and once at exit).
//!
//! This is a direct observability payoff of the paper's intensional
//! polymorphism. A fully tag-free collector could only report "N live
//! words"; TIL's nearly tag-free heap keeps just enough structure —
//! object headers for the scanner, plus run-time type representations
//! in companion slots for polymorphic code — that a post-collection
//! walk can say *what* the live data is:
//!
//! - `string` / `array`: directly off the header kind (strings and
//!   int/float/pointer arrays carry distinct kinds for the scanner).
//! - `closure`: a 2-field record whose first field is an odd-encoded
//!   code value pointing into the function region of the code segment
//!   (linker stubs occupy the low indices, which also excludes the
//!   odd immediate `TAG_ARRAY` tag of array rep-records).
//! - `record`: every other record in nearly tag-free mode.
//! - `unknown`: what the companion-slot rep resolution could not
//!   refine — notably all records in the tagged baseline, whose
//!   uniform low-bit tagging erases the distinctions above. The gap
//!   between the two modes' `unknown` buckets is the census-level
//!   measure of what intensional polymorphism buys.
//!
//! Companion-slot refinement: while tracing roots the collector records
//! `(forwarded address, rep value)` for every `LocRep::Computed` root;
//! after the Cheney scan those reps (immediates like `ARROW`, or heap
//! rep records tagged `TAG_RECORD`/`TAG_ARRAY`/`TAG_DATA`) override the
//! header-based guess for the objects they describe.
//!
//! The census only *reads* machine state and charges no `rt_cost`, so
//! a profiled run's `Stats` are identical to an unprofiled run's.

use std::collections::{BTreeMap, HashMap};
use til_vm::{header, Machine, VmError};

/// Representation class of one live heap object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepClass {
    /// Records and datatype constructors.
    Record,
    /// Int/float/pointer arrays (boxed floats are 1-element float
    /// arrays and land here too).
    Array,
    /// Strings.
    String,
    /// Closures (code pointer + environment).
    Closure,
    /// Exception packets (`[id]` / `[id, payload]` records whose
    /// header carries [`header::EXN_BIT`]).
    Exn,
    /// Unresolvable without a companion rep (tagged-mode records).
    Unknown,
}

/// Live words bucketed by representation class; one census sample.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CensusClasses {
    /// Words (headers included) in records and datatype values.
    pub record_words: u64,
    /// Words in arrays (including boxed floats).
    pub array_words: u64,
    /// Words in strings.
    pub string_words: u64,
    /// Words in closures.
    pub closure_words: u64,
    /// Words in exception packets.
    pub exn_words: u64,
    /// Words whose representation could not be resolved.
    pub unknown_words: u64,
}

impl CensusClasses {
    /// Sum over all classes — equals the live words of the heap region
    /// the census walked.
    pub fn total_words(&self) -> u64 {
        self.record_words
            + self.array_words
            + self.string_words
            + self.closure_words
            + self.exn_words
            + self.unknown_words
    }

    fn add(&mut self, class: RepClass, words: u64) {
        match class {
            RepClass::Record => self.record_words += words,
            RepClass::Array => self.array_words += words,
            RepClass::String => self.string_words += words,
            RepClass::Closure => self.closure_words += words,
            RepClass::Exn => self.exn_words += words,
            RepClass::Unknown => self.unknown_words += words,
        }
    }
}

/// Provenance of one census sample — when (and over what region) the
/// heap was walked. Exported into the benchmark schema so downstream
/// comparisons (e.g. `census_gap`) can tell an after-collection sample
/// from an exit-only or mid-run one instead of silently comparing
/// samples taken under different conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CensusWhen {
    /// Over to-space right after collection cycle `n` (zero-based),
    /// with companion-slot rep refinement from that cycle's roots.
    AfterGc(u64),
    /// Mid-run, over the allocated heap prefix — taken by the
    /// runtime's periodic hook so zero-GC runs still record a live
    /// census instead of only the exit sample. Header classification
    /// only. `at_instr` is the sample's position on the deterministic
    /// instruction timeline.
    MidRun {
        /// Instructions retired when the sample was taken.
        at_instr: u64,
        /// Zero-based index of this sample among the run's mid-run
        /// samples (cadence sampling takes several; the default takes
        /// at most one, with `seq == 0`).
        seq: u64,
    },
    /// At program exit, over the resident heap (header classification
    /// only).
    Exit,
}

/// One allocation site's slice of a census sample: the live words the
/// site's surviving objects occupy, still bucketed by representation
/// class. Site identity comes from the VM profiler's heap side map
/// (see `til_vm::profile`), which the collector keeps current across
/// semispace flips by reporting every forwarding copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteCensus {
    /// The allocation pc (`til_vm::RT_SITE` / `til_vm::UNMAPPED_SITE`
    /// for the pseudo-sites).
    pub site: u32,
    /// Resolved site name (`fun+offset`, `(rt)`, `(unmapped)`, …).
    pub name: String,
    /// This site's live words, by representation class.
    pub classes: CensusClasses,
}

/// One census sample: the heap walked after a collection, mid-run, or
/// at exit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapCensus {
    /// When this sample was taken.
    pub when: CensusWhen,
    /// The bucketed live words.
    pub classes: CensusClasses,
    /// The same live words broken down by allocation site, sorted by
    /// site pc (pseudo-sites last). Empty when the machine carries no
    /// execution profiler (site identity needs the heap side map);
    /// otherwise the sites' class totals sum to `classes` exactly.
    pub sites: Vec<SiteCensus>,
}

impl HeapCensus {
    /// Zero-based collection-cycle index for after-GC samples, `None`
    /// for mid-run and exit samples.
    pub fn after_gc(&self) -> Option<u64> {
        match self.when {
            CensusWhen::AfterGc(n) => Some(n),
            _ => None,
        }
    }
}

/// A census walk's result: the class totals plus the per-site
/// breakdown (empty without an attached execution profiler).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CensusSample {
    /// Live words by representation class.
    pub classes: CensusClasses,
    /// The same words by allocation site (each site again bucketed by
    /// class), sorted by site pc.
    pub sites: Vec<SiteCensus>,
}

/// Walks the contiguous object region `[base, end)` and buckets every
/// object — by representation class, and (when the machine carries an
/// execution profiler whose heap side map can name the allocator) by
/// allocation site as well. `known` maps object addresses to
/// companion-slot-resolved classes; `fun_code_start` is the first code
/// index belonging to a compiled function (everything below is linker
/// stub code); `tagged` disables the untagged-closure heuristic
/// (tagged values make code pointers indistinguishable from tagged
/// ints).
pub fn scan(
    m: &Machine,
    base: u64,
    end: u64,
    fun_code_start: u32,
    tagged: bool,
    known: &HashMap<u64, RepClass>,
) -> Result<CensusSample, VmError> {
    let profiler = m.profiler.as_deref();
    let mut out = CensusClasses::default();
    let mut by_site: BTreeMap<u32, CensusClasses> = BTreeMap::new();
    let mut a = base;
    while a < end {
        let h = m.rd(a)?;
        let len = header::len(h);
        let (words, class) = match header::kind(h) {
            header::KIND_RECORD => {
                let class = if header::is_exn(h) {
                    // The exn bit is definitive (set by the lowering
                    // and the linker on every packet, in both rep
                    // modes), so it wins over companion refinement and
                    // survives the tagged baseline's Unknown fallback.
                    RepClass::Exn
                } else if let Some(&c) = known.get(&a) {
                    c
                } else if tagged {
                    RepClass::Unknown
                } else if is_closure(m, a, h, fun_code_start)? {
                    RepClass::Closure
                } else {
                    RepClass::Record
                };
                (1 + len, class)
            }
            header::KIND_INTARRAY | header::KIND_FLOATARRAY | header::KIND_PTRARRAY => {
                (1 + len, RepClass::Array)
            }
            header::KIND_STRING => (1 + len.div_ceil(8), RepClass::String),
            k => {
                return Err(VmError::Runtime(format!(
                    "census: bad header kind {k} at {a:#x}"
                )))
            }
        };
        out.add(class, words);
        if let Some(p) = profiler {
            by_site.entry(p.site_of(a)).or_default().add(class, words);
        }
        a += 8 * words;
    }
    let sites = by_site
        .into_iter()
        .map(|(site, classes)| SiteCensus {
            site,
            name: profiler.map(|p| p.site_name(site)).unwrap_or_default(),
            classes,
        })
        .collect();
    Ok(CensusSample {
        classes: out,
        sites,
    })
}

/// The closure shape from RTL lowering: `[header(record, 2, mask=0b10),
/// code, env]` with the code field odd-encoded. Requiring the decoded
/// index to land in the *function* region rejects the lookalikes —
/// array rep-records are also 2-field mask-`0b10` records whose first
/// field (`TAG_ARRAY` = 17) is odd, but decodes into stub territory.
fn is_closure(m: &Machine, addr: u64, h: u64, fun_code_start: u32) -> Result<bool, VmError> {
    if header::len(h) != 2 || header::mask(h) != 0b10 {
        return Ok(false);
    }
    let f0 = m.rd(addr + 8)?;
    if f0 & 1 != 1 {
        return Ok(false);
    }
    let idx = til_vm::code_index(f0);
    Ok(idx >= fun_code_start && (idx as usize) < m.code.len())
}
