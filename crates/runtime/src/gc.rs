//! The two-space copying collector, in both of the paper's flavours:
//! **nearly tag-free** (table-driven roots, untagged values, record
//! headers with pointer masks — §2.3) and **tagged** (the baseline's
//! universal low-bit tagging, where stacks and globals are scanned
//! exhaustively).
//!
//! A `Trace` value is treated as a pointer exactly when it is aligned
//! and falls inside the heap — which is what lets untagged datatype
//! values mix small-constant constructors (`nil`) with pointers
//! (`cons`), per DESIGN.md.

use crate::census::{self, HeapCensus, RepClass};
use crate::reps::rep;
use crate::tables::{FrameInfo, GcMode, GcTables, LocRep, RepLoc};
use std::collections::HashMap;
use til_vm::{header, regs, Machine, VmError};

/// One collection's pause record. All fields are functions of the
/// deterministic instruction stream, so pause distributions are
/// byte-identical across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcPause {
    /// The GC point (instruction address of the triggering
    /// `RtCall`).
    pub trigger_pc: u32,
    /// Instructions retired when the pause began (the pause's position
    /// on the deterministic timeline).
    pub at_instr: u64,
    /// Pause cost in instruction-equivalents (the `rt_cost` this
    /// collection charged: per-collection constant + copy work).
    pub pause_cost: u64,
    /// Words this collection copied.
    pub copied_words: u64,
    /// Live words surviving this collection.
    pub live_words: u64,
}

/// Observability state carried by a collector when profiling is on:
/// per-collection pause records plus type-indexed heap censuses.
#[derive(Clone, Debug, Default)]
pub struct GcProfile {
    /// First code index belonging to a compiled function (from the
    /// linker's function-range map) — drives the census's closure
    /// detection.
    pub fun_code_start: u32,
    /// One record per collection, in collection order.
    pub pauses: Vec<GcPause>,
    /// One census per collection plus one exit-time sample.
    pub censuses: Vec<HeapCensus>,
}

impl GcProfile {
    /// An empty profile; `fun_code_start` comes from the linker.
    pub fn new(fun_code_start: u32) -> GcProfile {
        GcProfile {
            fun_code_start,
            ..Default::default()
        }
    }
}

/// The collector state (semispace bookkeeping).
#[derive(Debug)]
pub struct Collector {
    /// Interpretation mode.
    pub mode: GcMode,
    /// Tables (register maps always; frame maps in tag-free mode).
    pub tables: GcTables,
    /// Which semispace is currently "from" (0 or 1).
    pub from: u8,
    /// HP after the previous collection (0 = not yet initialized),
    /// used to meter mutator allocation.
    pub last_hp: u64,
    /// Pause/census recording, on when the run is profiled. Strictly
    /// observational: collection behaviour and every `Stats` counter
    /// are identical whether this is `Some` or `None`.
    pub profile: Option<GcProfile>,
}

impl Collector {
    /// A collector starting with semispace 0 active.
    pub fn new(mode: GcMode, tables: GcTables) -> Collector {
        Collector {
            mode,
            tables,
            from: 0,
            last_hp: 0,
            profile: None,
        }
    }

    fn semi(&self, m: &Machine, which: u8) -> (u64, u64) {
        let base = m.layout.heap_base + which as u64 * m.layout.semi_bytes;
        (base, base + m.layout.semi_bytes)
    }

    /// Is `v` a pointer the collector must move?
    fn is_from_ptr(&self, m: &Machine, v: u64) -> bool {
        let (lo, hi) = self.semi(m, self.from);
        let in_range = v >= lo && v < hi && v.is_multiple_of(8);
        match self.mode {
            GcMode::NearlyTagFree => in_range,
            GcMode::Tagged => in_range && v & 1 == 0,
        }
    }

    /// Copies the object at `v` to to-space (or follows its forwarding
    /// pointer); returns the new address.
    fn forward(&self, m: &mut Machine, v: u64, alloc: &mut u64) -> Result<u64, VmError> {
        let h = m.rd(v)?;
        if header::kind(h) == header::KIND_FWD {
            return Ok(header::fwd_addr(h));
        }
        let payload_words = match header::kind(h) {
            header::KIND_RECORD | header::KIND_INTARRAY | header::KIND_FLOATARRAY
            | header::KIND_PTRARRAY => header::len(h),
            header::KIND_STRING => header::len(h).div_ceil(8),
            k => {
                return Err(VmError::Runtime(format!(
                    "GC: bad header kind {k} at {v:#x}"
                )))
            }
        };
        let new = *alloc;
        m.wr(new, h)?;
        for i in 0..payload_words {
            let w = m.rd(v + 8 + i * 8)?;
            m.wr(new + 8 + i * 8, w)?;
        }
        *alloc += 8 * (1 + payload_words);
        m.wr(v, header::fwd(new))?;
        m.stats.gc_copied_words += 1 + payload_words;
        Ok(new)
    }

    /// Forwards the value at a location if it is a from-space pointer.
    fn fix(&self, m: &mut Machine, v: u64, alloc: &mut u64) -> Result<u64, VmError> {
        if self.is_from_ptr(m, v) {
            self.forward(m, v, alloc)
        } else {
            Ok(v)
        }
    }

    /// Reads a `Computed` rep location's runtime type representation.
    fn rep_value(&self, m: &Machine, loc: RepLoc, sp: u64) -> Result<u64, VmError> {
        Ok(match loc {
            RepLoc::Reg(r) => m.regs[r as usize],
            RepLoc::Slot(off) => m.rd(sp + off as u64)?,
        })
    }

    /// Interprets a companion-slot rep value as a census class (census
    /// refinement; read errors and unknown shapes resolve to `None`).
    /// `old_from` is the pre-flip from-space: a rep record living there
    /// may itself have been copied, so follow its forwarding pointer.
    fn rep_class(&self, m: &Machine, rep_val: u64, old_from: (u64, u64)) -> Option<RepClass> {
        match rep_val {
            rep::INT => None,
            // Boxed floats are 1-element float arrays; let the header
            // classify them.
            rep::FLOAT => None,
            rep::STR => Some(RepClass::String),
            rep::EXN => Some(RepClass::Record),
            rep::ARROW => Some(RepClass::Closure),
            ptr => {
                let a = if ptr >= old_from.0 && ptr < old_from.1 {
                    let h = m.rd(ptr).ok()?;
                    if header::kind(h) == header::KIND_FWD {
                        header::fwd_addr(h)
                    } else {
                        ptr
                    }
                } else {
                    ptr
                };
                let h = m.rd(a).ok()?;
                if header::kind(h) != header::KIND_RECORD || header::len(h) == 0 {
                    return None;
                }
                match m.rd(a + 8).ok()? {
                    rep::TAG_RECORD | rep::TAG_DATA => Some(RepClass::Record),
                    rep::TAG_ARRAY => Some(RepClass::Array),
                    _ => None,
                }
            }
        }
    }

    /// Runs a collection. `pc` is the GC point (the current
    /// instruction address of the `RtCall(Gc)` or allocating runtime
    /// call). `needed` is the pending allocation in bytes.
    pub fn collect(&mut self, m: &mut Machine, pc: u32, needed: u64) -> Result<(), VmError> {
        m.stats.gc_count += 1;
        self.meter_allocation(m);
        let copied_before = m.stats.gc_copied_words;
        let rt_before = m.stats.rt_cost;
        let to = 1 - self.from;
        let (to_base, to_end) = self.semi(m, to);
        let mut alloc = to_base;
        // When profiling, remember `(forwarded address, rep value)` for
        // every Computed root so the census can refine its header-based
        // classification after the scan. Purely observational.
        let profiling = self.profile.is_some();
        let mut computed_roots: Vec<(u64, u64)> = Vec::new();

        // --- Roots: registers at this GC point.
        let point = self
            .tables
            .gc_points
            .get(&pc)
            .cloned()
            .ok_or_else(|| VmError::Runtime(format!("GC at unmapped point pc={pc}")))?;
        let sp = m.regs[regs::SP as usize];
        for (r, rep) in &point.regs {
            let rep_val = match rep {
                LocRep::Trace => None,
                LocRep::Computed(loc) => Some(self.rep_value(m, *loc, sp)?),
            };
            if rep_val != Some(rep::INT) {
                let v = m.regs[*r as usize];
                let nv = self.fix(m, v, &mut alloc)?;
                m.regs[*r as usize] = nv;
                if profiling {
                    if let Some(rv) = rep_val {
                        computed_roots.push((nv, rv));
                    }
                }
            }
        }

        // --- Roots: the stack.
        match self.mode {
            GcMode::NearlyTagFree => {
                // Walk frames from the GC point's own frame outward.
                let mut sp_cur = sp;
                let mut frame: FrameInfo = point.frame.clone();
                loop {
                    for (off, rep) in &frame.slots {
                        let addr = sp_cur + *off as u64;
                        let rep_val = match rep {
                            LocRep::Trace => None,
                            LocRep::Computed(loc) => {
                                Some(self.rep_value(m, *loc, sp_cur)?)
                            }
                        };
                        if rep_val != Some(rep::INT) {
                            let v = m.rd(addr)?;
                            let nv = self.fix(m, v, &mut alloc)?;
                            m.wr(addr, nv)?;
                            if profiling {
                                if let Some(rv) = rep_val {
                                    computed_roots.push((nv, rv));
                                }
                            }
                        }
                    }
                    // Find the caller (return addresses are
                    // odd-encoded code values).
                    let ra_val = if frame.size == 0 {
                        // Leaf GC point: return address still in RA.
                        m.regs[regs::RA as usize]
                    } else {
                        m.rd(sp_cur + frame.ra_offset as u64)?
                    };
                    let ra = til_vm::code_index(ra_val);
                    if self.tables.stops.contains(&ra) {
                        break;
                    }
                    sp_cur += frame.size as u64;
                    frame = self
                        .tables
                        .call_sites
                        .get(&ra)
                        .cloned()
                        .ok_or_else(|| {
                            VmError::Runtime(format!("GC: unmapped return address {ra}"))
                        })?;
                }
            }
            GcMode::Tagged => {
                // Scan the whole live stack by tag bit.
                let mut a = sp;
                while a < m.layout.stack_top {
                    let v = m.rd(a)?;
                    if self.is_from_ptr(m, v) {
                        let nv = self.forward(m, v, &mut alloc)?;
                        m.wr(a, nv)?;
                    }
                    a += 8;
                }
            }
        }

        // --- Roots: globals.
        match self.mode {
            GcMode::NearlyTagFree => {
                for (addr, rep) in self.tables.globals.clone() {
                    let rep_val = match rep {
                        LocRep::Trace => None,
                        LocRep::Computed(loc) => Some(self.rep_value(m, loc, sp)?),
                    };
                    if rep_val != Some(rep::INT) {
                        let v = m.rd(addr)?;
                        let nv = self.fix(m, v, &mut alloc)?;
                        m.wr(addr, nv)?;
                        if profiling {
                            if let Some(rv) = rep_val {
                                computed_roots.push((nv, rv));
                            }
                        }
                    }
                }
            }
            GcMode::Tagged => {
                let mut a = 0u64;
                while a < m.layout.globals_end {
                    let v = m.rd(a)?;
                    if self.is_from_ptr(m, v) {
                        let nv = self.forward(m, v, &mut alloc)?;
                        m.wr(a, nv)?;
                    }
                    a += 8;
                }
            }
        }

        // --- Cheney scan.
        let mut scan = to_base;
        while scan < alloc {
            let h = m.rd(scan)?;
            let kind = header::kind(h);
            let len = header::len(h);
            match kind {
                header::KIND_RECORD => {
                    for i in 0..len {
                        let addr = scan + 8 + i * 8;
                        let traced = match self.mode {
                            GcMode::NearlyTagFree => header::mask(h) >> i & 1 == 1,
                            GcMode::Tagged => true,
                        };
                        if traced {
                            let v = m.rd(addr)?;
                            let nv = self.fix(m, v, &mut alloc)?;
                            m.wr(addr, nv)?;
                        }
                    }
                    scan += 8 * (1 + len);
                }
                header::KIND_PTRARRAY => {
                    for i in 0..len {
                        let addr = scan + 8 + i * 8;
                        let v = m.rd(addr)?;
                        let nv = self.fix(m, v, &mut alloc)?;
                        m.wr(addr, nv)?;
                    }
                    scan += 8 * (1 + len);
                }
                header::KIND_INTARRAY | header::KIND_FLOATARRAY => {
                    scan += 8 * (1 + len);
                }
                header::KIND_STRING => {
                    scan += 8 * (1 + len.div_ceil(8));
                }
                k => {
                    return Err(VmError::Runtime(format!(
                        "GC scan: bad header kind {k} at {scan:#x}"
                    )))
                }
            }
        }

        // --- Census (profiling only; before the flip so rep records
        // still in old from-space can be followed through forwarding).
        let census = if profiling {
            let old_from = self.semi(m, self.from);
            let mut known: HashMap<u64, RepClass> = HashMap::new();
            for (addr, rv) in computed_roots {
                if let Some(c) = self.rep_class(m, rv, old_from) {
                    known.insert(addr, c);
                }
            }
            let fun_code_start = self.profile.as_ref().map_or(0, |p| p.fun_code_start);
            Some(census::scan(
                m,
                to_base,
                alloc,
                fun_code_start,
                self.mode == GcMode::Tagged,
                &known,
            )?)
        } else {
            None
        };

        // --- Flip.
        self.from = to;
        self.last_hp = alloc;
        m.regs[regs::HP as usize] = alloc;
        m.regs[regs::HL as usize] = to_end;
        if let Some(p) = m.profiler.as_deref_mut() {
            // The flip moved HP without allocating; re-base the
            // profiler's allocation attribution.
            p.note_rt(alloc);
        }
        let live_words = (alloc - to_base) / 8;
        if live_words > m.stats.max_live_words {
            m.stats.max_live_words = live_words;
        }
        // Collection cost in instruction-equivalents: roughly 3 per
        // copied word plus a per-collection constant.
        m.stats.rt_cost += 200 + 3 * (m.stats.gc_copied_words - copied_before);
        if let (Some(p), Some(classes)) = (self.profile.as_mut(), census) {
            let idx = p.pauses.len() as u64;
            p.pauses.push(GcPause {
                trigger_pc: pc,
                at_instr: m.stats.instrs,
                pause_cost: m.stats.rt_cost - rt_before,
                copied_words: m.stats.gc_copied_words - copied_before,
                live_words,
            });
            p.censuses.push(HeapCensus {
                after_gc: Some(idx),
                classes,
            });
        }
        if alloc + needed > to_end {
            return Err(VmError::OutOfMemory);
        }
        Ok(())
    }

    /// Final accounting at program exit: meters the allocation tail
    /// and folds the final resident heap into the memory high-water
    /// mark. `max_live_words` is otherwise sampled only at
    /// collections, so a program whose high-water is its final live
    /// set (e.g. one that builds a big structure and never triggers a
    /// GC) would under-report the paper's Table 4 metric.
    pub fn finish(&mut self, m: &mut Machine) {
        self.meter_allocation(m);
        let (base, _) = self.semi(m, self.from);
        let hp = m.regs[regs::HP as usize];
        let resident = if hp >= base { (hp - base) / 8 } else { 0 };
        m.stats.final_heap_words = resident;
        if resident > m.stats.max_live_words {
            m.stats.max_live_words = resident;
        }
        // Exit-time census over the resident heap (no GC point, so no
        // companion reps — header classification only). Its total
        // equals `final_heap_words` by construction.
        if let Some(p) = &self.profile {
            let fun_code_start = p.fun_code_start;
            let tagged = self.mode == GcMode::Tagged;
            if hp >= base {
                if let Ok(classes) =
                    census::scan(m, base, hp, fun_code_start, tagged, &HashMap::new())
                {
                    if let Some(p) = self.profile.as_mut() {
                        p.censuses.push(HeapCensus {
                            after_gc: None,
                            classes,
                        });
                    }
                }
            }
        }
    }

    /// Accumulates mutator allocation since the previous collection
    /// (also called once at program exit).
    pub fn meter_allocation(&mut self, m: &mut Machine) {
        let hp = m.regs[regs::HP as usize];
        let base = if self.last_hp == 0 {
            m.layout.heap_base
        } else {
            self.last_hp
        };
        if hp >= base {
            m.stats.allocated_bytes += hp - base;
        }
        self.last_hp = hp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use til_vm::Layout;

    fn machine() -> Machine {
        let layout = Layout {
            globals_end: 4096,
            heap_base: 4096,
            semi_bytes: 8192,
            stack_limit: 24576,
            stack_top: 32768,
        };
        Machine::new(Vec::new(), layout)
    }

    /// A program that never collects still has its exit-time resident
    /// heap folded into the `max_live_words` high-water mark (and its
    /// allocation tail metered) by `finish` — otherwise Table 4's
    /// memory metric under-reports any program whose high-water is its
    /// final live set.
    #[test]
    fn finish_folds_exit_resident_heap_into_high_water_with_zero_gcs() {
        for mode in [GcMode::NearlyTagFree, GcMode::Tagged] {
            let mut m = machine();
            // Simulate 24 words of allocation with no collection:
            // HP advanced, gc_count untouched, high-water never sampled.
            m.regs[regs::HP as usize] = m.layout.heap_base + 24 * 8;
            let mut c = Collector::new(mode, GcTables::default());
            assert_eq!(m.stats.gc_count, 0);
            assert_eq!(m.stats.max_live_words, 0);
            c.finish(&mut m);
            assert_eq!(m.stats.final_heap_words, 24);
            assert_eq!(m.stats.max_live_words, 24);
            assert_eq!(m.stats.allocated_bytes, 24 * 8);
        }
    }

    /// `finish` must not *lower* a high-water mark already established
    /// by a collection mid-run.
    #[test]
    fn finish_keeps_a_larger_sampled_high_water() {
        let mut m = machine();
        m.stats.max_live_words = 1000;
        m.regs[regs::HP as usize] = m.layout.heap_base + 5 * 8;
        let mut c = Collector::new(GcMode::NearlyTagFree, GcTables::default());
        c.finish(&mut m);
        assert_eq!(m.stats.final_heap_words, 5);
        assert_eq!(m.stats.max_live_words, 1000);
    }
}
