//! The two-space copying collector, in both of the paper's flavours:
//! **nearly tag-free** (table-driven roots, untagged values, record
//! headers with pointer masks — §2.3) and **tagged** (the baseline's
//! universal low-bit tagging, where stacks and globals are scanned
//! exhaustively).
//!
//! A `Trace` value is treated as a pointer exactly when it is aligned
//! and falls inside the heap — which is what lets untagged datatype
//! values mix small-constant constructors (`nil`) with pointers
//! (`cons`), per DESIGN.md.
//!
//! Collection work is scheduled per [`CollectMode`]: the classic
//! stop-the-world flip, or an incremental mode that splits each cycle
//! into bounded slices (a root-scan slice, then scavenge slices) whose
//! individual cost never exceeds a configured pause budget. Both modes
//! run the same copying algorithm in the same order, so the final
//! machine state, every `Stats` counter, and the program output are
//! identical — only the pause *distribution* differs, which is exactly
//! what the `GcPause` spans record.

use crate::census::{self, CensusWhen, HeapCensus, RepClass};
use crate::reps::rep;
use crate::tables::{FrameInfo, GcMode, GcTables, LocRep, RepLoc};
use std::collections::HashMap;
use til_vm::{header, regs, Machine, VmError};

/// How collection work is scheduled at a safe point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectMode {
    /// One pause per collection: roots, full Cheney scan, flip.
    StopTheWorld,
    /// Each collection cycle is split into bounded slices: a root-scan
    /// slice (which carries the per-collection constant), then
    /// scavenge slices. A slice closes before any unit of work that
    /// would push its cost past `budget` instruction-equivalents. A
    /// single object copy is indivisible, so slices are guaranteed
    /// within budget only when `budget >= 3 * (1 + largest payload
    /// words)` (and `budget >= 200` for the root-scan constant).
    Incremental {
        /// Per-slice pause budget in instruction-equivalents.
        budget: u64,
    },
}

/// Default per-slice pause budget for [`CollectMode::Incremental`]:
/// large enough that the biggest single object in the benchmark suite
/// copies within one slice, small enough to sit well below every
/// stop-the-world pause the pressured-heap suite records.
pub const DEFAULT_PAUSE_BUDGET: u64 = 20_000;

impl CollectMode {
    /// Parses `TIL_GC_MODE`: `stw` / `stop-the-world`, `incremental`
    /// (default budget), or `incremental:<budget>`.
    pub fn from_env() -> Option<CollectMode> {
        let v = std::env::var("TIL_GC_MODE").ok()?;
        match v.as_str() {
            "stw" | "stop-the-world" => Some(CollectMode::StopTheWorld),
            "incremental" => Some(CollectMode::Incremental {
                budget: DEFAULT_PAUSE_BUDGET,
            }),
            s => {
                let budget = s.strip_prefix("incremental:")?.parse().ok()?;
                Some(CollectMode::Incremental { budget })
            }
        }
    }
}

/// One pause record. Under [`CollectMode::StopTheWorld`] a pause is a
/// whole collection; under [`CollectMode::Incremental`] it is one
/// slice, and the slices of one collection share a `cycle` index. All
/// fields are functions of the deterministic instruction stream, so
/// pause distributions are byte-identical across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcPause {
    /// The GC point (instruction address of the triggering
    /// `RtCall`).
    pub trigger_pc: u32,
    /// Instructions retired when the pause began (the pause's position
    /// on the deterministic timeline). Slices of one cycle all sit at
    /// the cycle's safe point, so they share this value.
    pub at_instr: u64,
    /// Pause cost in instruction-equivalents (the `rt_cost` this
    /// pause charged: per-collection constant + copy work).
    pub pause_cost: u64,
    /// Words this pause copied.
    pub copied_words: u64,
    /// Words evacuated to to-space by the end of this pause (for the
    /// last pause of a cycle: the cycle's surviving live words).
    pub live_words: u64,
    /// Zero-based index of the collection cycle this pause belongs to.
    pub cycle: u64,
}

/// Observability state carried by a collector when profiling is on:
/// per-collection pause records plus type-indexed heap censuses.
#[derive(Clone, Debug, Default)]
pub struct GcProfile {
    /// First code index belonging to a compiled function (from the
    /// linker's function-range map) — drives the census's closure
    /// detection.
    pub fun_code_start: u32,
    /// One record per pause (per collection under stop-the-world, per
    /// slice under incremental), in timeline order.
    pub pauses: Vec<GcPause>,
    /// One census per collection cycle, plus mid-run and exit samples
    /// (see [`CensusWhen`]).
    pub censuses: Vec<HeapCensus>,
}

impl GcProfile {
    /// An empty profile; `fun_code_start` comes from the linker.
    pub fn new(fun_code_start: u32) -> GcProfile {
        GcProfile {
            fun_code_start,
            ..Default::default()
        }
    }

    /// The largest recorded pause cost (0 when no pauses ran). Under
    /// incremental collection this is the quantity the pause budget
    /// bounds.
    pub fn max_pause(&self) -> u64 {
        self.pauses.iter().map(|g| g.pause_cost).max().unwrap_or(0)
    }

    /// Pauses per collection cycle, in cycle order — all 1s under
    /// stop-the-world, the per-cycle slice counts under incremental.
    pub fn cycle_slices(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for p in &self.pauses {
            let cycle = p.cycle as usize;
            if out.len() <= cycle {
                out.resize(cycle + 1, 0);
            }
            out[cycle] += 1;
        }
        out
    }
}

/// A root location pending fixup in an open incremental cycle.
#[derive(Clone, Copy, Debug)]
enum RootLoc {
    /// A machine register.
    Reg(u8),
    /// A memory word (stack slot or global).
    Mem(u64),
}

/// State of one open incremental collection cycle. The cycle is opened
/// at a safe point, worked off in bounded slices, and closed (census,
/// flip) by the slice that drains the last work.
#[derive(Debug)]
struct Cycle {
    /// The triggering GC point.
    pc: u32,
    /// To-space index being evacuated into.
    to: u8,
    /// To-space bounds.
    to_base: u64,
    to_end: u64,
    /// To-space allocation cursor.
    alloc: u64,
    /// Cheney scan pointer (object-header granular).
    scan: u64,
    /// Fields of the object at `scan` already processed — lets a slice
    /// suspend mid-object when a large record straddles the budget.
    field: u64,
    /// Root locations (with pre-resolved companion rep values),
    /// enumerated at cycle start and drained front-to-back.
    roots: Vec<(RootLoc, Option<u64>)>,
    next_root: usize,
    /// `(forwarded address, rep value)` of Computed roots, for the
    /// end-of-cycle census refinement (profiling only).
    computed_roots: Vec<(u64, u64)>,
    /// Slices run so far in this cycle.
    slices: u64,
}

/// The collector state (semispace bookkeeping).
#[derive(Debug)]
pub struct Collector {
    /// Interpretation mode.
    pub mode: GcMode,
    /// Pause scheduling mode.
    pub collect_mode: CollectMode,
    /// Tables (register maps always; frame maps in tag-free mode).
    pub tables: GcTables,
    /// Which semispace is currently "from" (0 or 1).
    pub from: u8,
    /// HP after the previous collection (0 = not yet initialized),
    /// used to meter mutator allocation.
    pub last_hp: u64,
    /// Pause/census recording, on when the run is profiled. Strictly
    /// observational: collection behaviour and every `Stats` counter
    /// are identical whether this is `Some` or `None`.
    pub profile: Option<GcProfile>,
    /// The open incremental cycle, if one is in progress. `collect`
    /// always drains the cycle within its safe point; the open-cycle
    /// API (`begin_cycle` / `slice` / write barrier) is also public so
    /// the barrier machinery can be driven with a cycle held open.
    cycle: Option<Cycle>,
    /// Mid-run census cadence: `None` keeps the default behaviour (at
    /// most one sample, taken only while no collection has happened);
    /// `Some(n)` samples roughly every `n` retired instructions,
    /// collections or not. Set via
    /// [`set_census_every`](Collector::set_census_every).
    census_every: Option<u64>,
    /// Instruction count at/after which the next cadence sample is
    /// due (cadence mode only).
    next_census_at: u64,
}

impl Collector {
    /// A collector starting with semispace 0 active, stop-the-world.
    pub fn new(mode: GcMode, tables: GcTables) -> Collector {
        Collector {
            mode,
            collect_mode: CollectMode::StopTheWorld,
            tables,
            from: 0,
            last_hp: 0,
            profile: None,
            cycle: None,
            census_every: None,
            next_census_at: 0,
        }
    }

    /// Configures the mid-run census cadence (see
    /// [`census_every`](field@Collector::census_every)). `Some(0)` is
    /// normalized to `None` (the default single-sample behaviour).
    pub fn set_census_every(&mut self, every: Option<u64>) {
        self.census_every = every.filter(|&n| n > 0);
        self.next_census_at = self.census_every.unwrap_or(0);
    }

    /// The periodic census policy, called from the runtime's periodic
    /// hook (profiled runs only; strictly observational). Default: at
    /// most one mid-run sample, taken only while the run has not yet
    /// collected (after-GC censuses cover the rest). Cadence mode
    /// (`set_census_every`): one sample every `n` retired
    /// instructions, collections or not; a failed sample (heap caught
    /// mid-allocation) retries at the next period.
    pub fn periodic_census(&mut self, m: &Machine) {
        if self.profile.is_none() {
            return;
        }
        match self.census_every {
            None => {
                if m.stats.gc_count == 0 && !self.has_midrun_census() {
                    self.midrun_census(m);
                }
            }
            Some(n) => {
                if m.stats.instrs >= self.next_census_at && self.midrun_census(m) {
                    self.next_census_at = m.stats.instrs + n;
                }
            }
        }
    }

    fn semi(&self, m: &Machine, which: u8) -> (u64, u64) {
        let base = m.layout.heap_base + which as u64 * m.layout.semi_bytes;
        (base, base + m.layout.semi_bytes)
    }

    /// Is `v` a pointer the collector must move?
    fn is_from_ptr(&self, m: &Machine, v: u64) -> bool {
        let (lo, hi) = self.semi(m, self.from);
        let in_range = v >= lo && v < hi && v.is_multiple_of(8);
        match self.mode {
            GcMode::NearlyTagFree => in_range,
            GcMode::Tagged => in_range && v & 1 == 0,
        }
    }

    /// Copies the object at `v` to to-space (or follows its forwarding
    /// pointer); returns the new address.
    fn forward(&self, m: &mut Machine, v: u64, alloc: &mut u64) -> Result<u64, VmError> {
        let h = m.rd(v)?;
        if header::kind(h) == header::KIND_FWD {
            return Ok(header::fwd_addr(h));
        }
        let payload_words = Self::payload_words(h, v)?;
        let new = *alloc;
        m.wr(new, h)?;
        for i in 0..payload_words {
            let w = m.rd(v + 8 + i * 8)?;
            m.wr(new + 8 + i * 8, w)?;
        }
        *alloc += 8 * (1 + payload_words);
        m.wr(v, header::fwd(new))?;
        m.stats.gc_copied_words += 1 + payload_words;
        // Report the copy to the site profiler so the object keeps its
        // allocation-site identity across the flip. Every copy funnels
        // through here — stop-the-world evacuation, incremental
        // slices, and the write barrier's re-forwarding alike.
        if let Some(p) = m.profiler.as_deref_mut() {
            p.gc_forward(v, new, 8 * (1 + payload_words));
        }
        Ok(new)
    }

    /// Payload size in words of the object with header `h` (at `v`,
    /// for diagnostics).
    fn payload_words(h: u64, v: u64) -> Result<u64, VmError> {
        match header::kind(h) {
            header::KIND_RECORD | header::KIND_INTARRAY | header::KIND_FLOATARRAY
            | header::KIND_PTRARRAY => Ok(header::len(h)),
            header::KIND_STRING => Ok(header::len(h).div_ceil(8)),
            k => Err(VmError::Runtime(format!("GC: bad header kind {k} at {v:#x}"))),
        }
    }

    /// The copy cost (in instruction-equivalents) of forwarding `v`
    /// right now: 0 when `v` is not a from-space pointer or the object
    /// is already forwarded, else 3 per word copied. This is the
    /// indivisible unit the incremental budget reasons about.
    fn forward_cost(&self, m: &Machine, v: u64) -> Result<u64, VmError> {
        if !self.is_from_ptr(m, v) {
            return Ok(0);
        }
        let h = m.rd(v)?;
        if header::kind(h) == header::KIND_FWD {
            return Ok(0);
        }
        Ok(3 * (1 + Self::payload_words(h, v)?))
    }

    /// Forwards the value at a location if it is a from-space pointer.
    fn fix(&self, m: &mut Machine, v: u64, alloc: &mut u64) -> Result<u64, VmError> {
        if self.is_from_ptr(m, v) {
            self.forward(m, v, alloc)
        } else {
            Ok(v)
        }
    }

    /// Reads a `Computed` rep location's runtime type representation.
    fn rep_value(&self, m: &Machine, loc: RepLoc, sp: u64) -> Result<u64, VmError> {
        Ok(match loc {
            RepLoc::Reg(r) => m.regs[r as usize],
            RepLoc::Slot(off) => m.rd(sp + off as u64)?,
        })
    }

    /// Interprets a companion-slot rep value as a census class (census
    /// refinement; read errors and unknown shapes resolve to `None`).
    /// `old_from` is the pre-flip from-space: a rep record living there
    /// may itself have been copied, so follow its forwarding pointer.
    fn rep_class(&self, m: &Machine, rep_val: u64, old_from: (u64, u64)) -> Option<RepClass> {
        match rep_val {
            rep::INT => None,
            // Boxed floats are 1-element float arrays; let the header
            // classify them.
            rep::FLOAT => None,
            rep::STR => Some(RepClass::String),
            rep::EXN => Some(RepClass::Exn),
            rep::ARROW => Some(RepClass::Closure),
            ptr => {
                let a = if ptr >= old_from.0 && ptr < old_from.1 {
                    let h = m.rd(ptr).ok()?;
                    if header::kind(h) == header::KIND_FWD {
                        header::fwd_addr(h)
                    } else {
                        ptr
                    }
                } else {
                    ptr
                };
                let h = m.rd(a).ok()?;
                if header::kind(h) != header::KIND_RECORD || header::len(h) == 0 {
                    return None;
                }
                match m.rd(a + 8).ok()? {
                    rep::TAG_RECORD | rep::TAG_DATA => Some(RepClass::Record),
                    rep::TAG_ARRAY => Some(RepClass::Array),
                    _ => None,
                }
            }
        }
    }

    /// Runs a collection. `pc` is the GC point (the current
    /// instruction address of the `RtCall(Gc)` or allocating runtime
    /// call). `needed` is the pending allocation in bytes.
    ///
    /// Under [`CollectMode::Incremental`] the cycle is opened and then
    /// drained slice by slice within this same safe point, so the
    /// machine-visible effects (registers, memory, every `Stats`
    /// counter) are identical to stop-the-world — only the recorded
    /// pause spans differ.
    pub fn collect(&mut self, m: &mut Machine, pc: u32, needed: u64) -> Result<(), VmError> {
        match self.collect_mode {
            CollectMode::StopTheWorld => self.collect_stw(m, pc, needed),
            CollectMode::Incremental { budget } => {
                self.begin_cycle(m, pc)?;
                while self.cycle_active() {
                    self.slice(m, budget)?;
                }
                let (_, to_end) = self.semi(m, self.from);
                if self.last_hp + needed > to_end {
                    return Err(VmError::OutOfMemory);
                }
                Ok(())
            }
        }
    }

    /// The stop-the-world collection: roots, full Cheney scan, flip —
    /// one pause.
    fn collect_stw(&mut self, m: &mut Machine, pc: u32, needed: u64) -> Result<(), VmError> {
        m.stats.gc_count += 1;
        self.meter_allocation(m);
        let copied_before = m.stats.gc_copied_words;
        let rt_before = m.stats.rt_cost;
        let to = 1 - self.from;
        let (to_base, to_end) = self.semi(m, to);
        let mut alloc = to_base;
        // When profiling, remember `(forwarded address, rep value)` for
        // every Computed root so the census can refine its header-based
        // classification after the scan. Purely observational.
        let profiling = self.profile.is_some();
        let mut computed_roots: Vec<(u64, u64)> = Vec::new();

        // --- Roots: registers at this GC point.
        let point = self
            .tables
            .gc_points
            .get(&pc)
            .cloned()
            .ok_or_else(|| VmError::Runtime(format!("GC at unmapped point pc={pc}")))?;
        let sp = m.regs[regs::SP as usize];
        for (r, rep) in &point.regs {
            let rep_val = match rep {
                LocRep::Trace => None,
                LocRep::Computed(loc) => Some(self.rep_value(m, *loc, sp)?),
            };
            if rep_val != Some(rep::INT) {
                let v = m.regs[*r as usize];
                let nv = self.fix(m, v, &mut alloc)?;
                m.regs[*r as usize] = nv;
                if profiling {
                    if let Some(rv) = rep_val {
                        computed_roots.push((nv, rv));
                    }
                }
            }
        }

        // --- Roots: the stack.
        match self.mode {
            GcMode::NearlyTagFree => {
                // Walk frames from the GC point's own frame outward.
                let mut sp_cur = sp;
                let mut frame: FrameInfo = point.frame.clone();
                loop {
                    for (off, rep) in &frame.slots {
                        let addr = sp_cur + *off as u64;
                        let rep_val = match rep {
                            LocRep::Trace => None,
                            LocRep::Computed(loc) => {
                                Some(self.rep_value(m, *loc, sp_cur)?)
                            }
                        };
                        if rep_val != Some(rep::INT) {
                            let v = m.rd(addr)?;
                            let nv = self.fix(m, v, &mut alloc)?;
                            m.wr(addr, nv)?;
                            if profiling {
                                if let Some(rv) = rep_val {
                                    computed_roots.push((nv, rv));
                                }
                            }
                        }
                    }
                    // Find the caller (return addresses are
                    // odd-encoded code values).
                    let ra_val = if frame.size == 0 {
                        // Leaf GC point: return address still in RA.
                        m.regs[regs::RA as usize]
                    } else {
                        m.rd(sp_cur + frame.ra_offset as u64)?
                    };
                    let ra = til_vm::code_index(ra_val);
                    if self.tables.stops.contains(&ra) {
                        break;
                    }
                    sp_cur += frame.size as u64;
                    frame = self
                        .tables
                        .call_sites
                        .get(&ra)
                        .cloned()
                        .ok_or_else(|| {
                            VmError::Runtime(format!("GC: unmapped return address {ra}"))
                        })?;
                }
            }
            GcMode::Tagged => {
                // Scan the whole live stack by tag bit.
                let mut a = sp;
                while a < m.layout.stack_top {
                    let v = m.rd(a)?;
                    if self.is_from_ptr(m, v) {
                        let nv = self.forward(m, v, &mut alloc)?;
                        m.wr(a, nv)?;
                    }
                    a += 8;
                }
            }
        }

        // --- Roots: globals.
        match self.mode {
            GcMode::NearlyTagFree => {
                for (addr, rep) in self.tables.globals.clone() {
                    let rep_val = match rep {
                        LocRep::Trace => None,
                        LocRep::Computed(loc) => Some(self.rep_value(m, loc, sp)?),
                    };
                    if rep_val != Some(rep::INT) {
                        let v = m.rd(addr)?;
                        let nv = self.fix(m, v, &mut alloc)?;
                        m.wr(addr, nv)?;
                        if profiling {
                            if let Some(rv) = rep_val {
                                computed_roots.push((nv, rv));
                            }
                        }
                    }
                }
            }
            GcMode::Tagged => {
                let mut a = 0u64;
                while a < m.layout.globals_end {
                    let v = m.rd(a)?;
                    if self.is_from_ptr(m, v) {
                        let nv = self.forward(m, v, &mut alloc)?;
                        m.wr(a, nv)?;
                    }
                    a += 8;
                }
            }
        }

        // --- Cheney scan.
        let mut scan = to_base;
        while scan < alloc {
            let h = m.rd(scan)?;
            let kind = header::kind(h);
            let len = header::len(h);
            match kind {
                header::KIND_RECORD => {
                    for i in 0..len {
                        let addr = scan + 8 + i * 8;
                        let traced = match self.mode {
                            GcMode::NearlyTagFree => header::mask(h) >> i & 1 == 1,
                            GcMode::Tagged => true,
                        };
                        if traced {
                            let v = m.rd(addr)?;
                            let nv = self.fix(m, v, &mut alloc)?;
                            m.wr(addr, nv)?;
                        }
                    }
                    scan += 8 * (1 + len);
                }
                header::KIND_PTRARRAY => {
                    for i in 0..len {
                        let addr = scan + 8 + i * 8;
                        let v = m.rd(addr)?;
                        let nv = self.fix(m, v, &mut alloc)?;
                        m.wr(addr, nv)?;
                    }
                    scan += 8 * (1 + len);
                }
                header::KIND_INTARRAY | header::KIND_FLOATARRAY => {
                    scan += 8 * (1 + len);
                }
                header::KIND_STRING => {
                    scan += 8 * (1 + len.div_ceil(8));
                }
                k => {
                    return Err(VmError::Runtime(format!(
                        "GC scan: bad header kind {k} at {scan:#x}"
                    )))
                }
            }
        }

        // --- Census (profiling only; before the flip so rep records
        // still in old from-space can be followed through forwarding).
        let census = if profiling {
            Some(self.cycle_census(m, to_base, alloc, &computed_roots)?)
        } else {
            None
        };

        // --- Flip.
        let (dead_lo, dead_hi) = self.semi(m, self.from);
        self.from = to;
        self.last_hp = alloc;
        m.regs[regs::HP as usize] = alloc;
        m.regs[regs::HL as usize] = to_end;
        if let Some(p) = m.profiler.as_deref_mut() {
            // The flip moved HP without allocating; re-base the
            // profiler's allocation attribution and purge the dying
            // semispace from its allocation-site heap map (survivors
            // were re-registered at their to-space addresses as they
            // were forwarded).
            p.note_rt(alloc);
            p.gc_flip(dead_lo, dead_hi);
        }
        let live_words = (alloc - to_base) / 8;
        if live_words > m.stats.max_live_words {
            m.stats.max_live_words = live_words;
        }
        // Collection cost in instruction-equivalents: roughly 3 per
        // copied word plus a per-collection constant.
        m.stats.rt_cost += 200 + 3 * (m.stats.gc_copied_words - copied_before);
        if let (Some(p), Some(sample)) = (self.profile.as_mut(), census) {
            let idx = p.pauses.len() as u64;
            p.pauses.push(GcPause {
                trigger_pc: pc,
                at_instr: m.stats.instrs,
                pause_cost: m.stats.rt_cost - rt_before,
                copied_words: m.stats.gc_copied_words - copied_before,
                live_words,
                cycle: idx,
            });
            p.censuses.push(HeapCensus {
                when: CensusWhen::AfterGc(idx),
                classes: sample.classes,
                sites: sample.sites,
            });
        }
        if alloc + needed > to_end {
            return Err(VmError::OutOfMemory);
        }
        Ok(())
    }

    /// Is an incremental cycle open (roots enumerated, not yet
    /// flipped)?
    pub fn cycle_active(&self) -> bool {
        self.cycle.is_some()
    }

    /// Opens an incremental collection cycle at GC point `pc`:
    /// accounts the collection, enumerates every root location (no
    /// copying yet), and arms the cycle state that `slice` drains.
    /// Root *enumeration* is pure table/stack walking; the copy work —
    /// the part the budget bounds — all happens in slices.
    pub fn begin_cycle(&mut self, m: &mut Machine, pc: u32) -> Result<(), VmError> {
        m.stats.gc_count += 1;
        self.meter_allocation(m);
        let to = 1 - self.from;
        let (to_base, to_end) = self.semi(m, to);
        let mut roots: Vec<(RootLoc, Option<u64>)> = Vec::new();

        // --- Roots: registers at this GC point.
        let point = self
            .tables
            .gc_points
            .get(&pc)
            .cloned()
            .ok_or_else(|| VmError::Runtime(format!("GC at unmapped point pc={pc}")))?;
        let sp = m.regs[regs::SP as usize];
        for (r, rep) in &point.regs {
            let rep_val = match rep {
                LocRep::Trace => None,
                LocRep::Computed(loc) => Some(self.rep_value(m, *loc, sp)?),
            };
            if rep_val != Some(rep::INT) {
                roots.push((RootLoc::Reg(*r), rep_val));
            }
        }

        // --- Roots: the stack.
        match self.mode {
            GcMode::NearlyTagFree => {
                let mut sp_cur = sp;
                let mut frame: FrameInfo = point.frame.clone();
                loop {
                    for (off, rep) in &frame.slots {
                        let addr = sp_cur + *off as u64;
                        let rep_val = match rep {
                            LocRep::Trace => None,
                            LocRep::Computed(loc) => {
                                Some(self.rep_value(m, *loc, sp_cur)?)
                            }
                        };
                        if rep_val != Some(rep::INT) {
                            roots.push((RootLoc::Mem(addr), rep_val));
                        }
                    }
                    let ra_val = if frame.size == 0 {
                        m.regs[regs::RA as usize]
                    } else {
                        m.rd(sp_cur + frame.ra_offset as u64)?
                    };
                    let ra = til_vm::code_index(ra_val);
                    if self.tables.stops.contains(&ra) {
                        break;
                    }
                    sp_cur += frame.size as u64;
                    frame = self
                        .tables
                        .call_sites
                        .get(&ra)
                        .cloned()
                        .ok_or_else(|| {
                            VmError::Runtime(format!("GC: unmapped return address {ra}"))
                        })?;
                }
            }
            GcMode::Tagged => {
                let mut a = sp;
                while a < m.layout.stack_top {
                    roots.push((RootLoc::Mem(a), None));
                    a += 8;
                }
            }
        }

        // --- Roots: globals.
        match self.mode {
            GcMode::NearlyTagFree => {
                for (addr, rep) in self.tables.globals.clone() {
                    let rep_val = match rep {
                        LocRep::Trace => None,
                        LocRep::Computed(loc) => Some(self.rep_value(m, loc, sp)?),
                    };
                    if rep_val != Some(rep::INT) {
                        roots.push((RootLoc::Mem(addr), rep_val));
                    }
                }
            }
            GcMode::Tagged => {
                let mut a = 0u64;
                while a < m.layout.globals_end {
                    roots.push((RootLoc::Mem(a), None));
                    a += 8;
                }
            }
        }

        self.cycle = Some(Cycle {
            pc,
            to,
            to_base,
            to_end,
            alloc: to_base,
            scan: to_base,
            field: 0,
            roots,
            next_root: 0,
            computed_roots: Vec::new(),
            slices: 0,
        });
        Ok(())
    }

    /// Runs one bounded slice of the open cycle: drains pending root
    /// fixups, then Cheney-scavenges, closing the slice before any
    /// object copy that would push its cost past `budget` (the first
    /// slice additionally carries the per-collection 200 constant). The
    /// slice that drains the last work also takes the cycle census and
    /// flips the semispaces. Each slice charges its own `rt_cost` and
    /// records its own [`GcPause`]; the cycle's totals equal the
    /// stop-the-world collection's exactly.
    pub fn slice(&mut self, m: &mut Machine, budget: u64) -> Result<(), VmError> {
        let mut cycle = match self.cycle.take() {
            Some(c) => c,
            None => return Ok(()),
        };
        let copied_before = m.stats.gc_copied_words;
        // The root-scan slice carries the per-collection constant.
        let mut cost: u64 = if cycle.slices == 0 { 200 } else { 0 };
        let profiling = self.profile.is_some();
        let mut closed = false;

        // --- Pending root fixups.
        while cycle.next_root < cycle.roots.len() {
            let (loc, rep_val) = cycle.roots[cycle.next_root];
            let v = match loc {
                RootLoc::Reg(r) => m.regs[r as usize],
                RootLoc::Mem(a) => m.rd(a)?,
            };
            let unit = self.forward_cost(m, v)?;
            if cost > 0 && cost + unit > budget {
                closed = true;
                break;
            }
            let mut alloc = cycle.alloc;
            let nv = self.fix(m, v, &mut alloc)?;
            cycle.alloc = alloc;
            match loc {
                RootLoc::Reg(r) => m.regs[r as usize] = nv,
                RootLoc::Mem(a) => m.wr(a, nv)?,
            }
            if profiling {
                if let Some(rv) = rep_val {
                    cycle.computed_roots.push((nv, rv));
                }
            }
            cost += unit;
            cycle.next_root += 1;
        }

        // --- Cheney scavenging (resumable mid-object via `field`).
        while !closed && cycle.next_root == cycle.roots.len() && cycle.scan < cycle.alloc {
            let h = m.rd(cycle.scan)?;
            let kind = header::kind(h);
            let len = header::len(h);
            match kind {
                header::KIND_RECORD | header::KIND_PTRARRAY => {
                    let mut i = cycle.field;
                    while i < len {
                        let traced = kind == header::KIND_PTRARRAY
                            || match self.mode {
                                GcMode::NearlyTagFree => header::mask(h) >> i & 1 == 1,
                                GcMode::Tagged => true,
                            };
                        if traced {
                            let addr = cycle.scan + 8 + i * 8;
                            let v = m.rd(addr)?;
                            let unit = self.forward_cost(m, v)?;
                            if cost > 0 && cost + unit > budget {
                                closed = true;
                                break;
                            }
                            let mut alloc = cycle.alloc;
                            let nv = self.fix(m, v, &mut alloc)?;
                            cycle.alloc = alloc;
                            m.wr(addr, nv)?;
                            cost += unit;
                        }
                        i += 1;
                    }
                    cycle.field = i;
                    if !closed {
                        cycle.scan += 8 * (1 + len);
                        cycle.field = 0;
                    }
                }
                header::KIND_INTARRAY | header::KIND_FLOATARRAY => {
                    cycle.scan += 8 * (1 + len);
                }
                header::KIND_STRING => {
                    cycle.scan += 8 * (1 + len.div_ceil(8));
                }
                k => {
                    return Err(VmError::Runtime(format!(
                        "GC scan: bad header kind {k} at {:#x}",
                        cycle.scan
                    )))
                }
            }
        }

        let done = cycle.next_root == cycle.roots.len() && cycle.scan >= cycle.alloc;
        cycle.slices += 1;
        m.stats.rt_cost += cost;
        if profiling {
            let cycle_idx = m.stats.gc_count - 1;
            let pause = GcPause {
                trigger_pc: cycle.pc,
                at_instr: m.stats.instrs,
                pause_cost: cost,
                copied_words: m.stats.gc_copied_words - copied_before,
                live_words: (cycle.alloc - cycle.to_base) / 8,
                cycle: cycle_idx,
            };
            if let Some(p) = self.profile.as_mut() {
                p.pauses.push(pause);
            }
        }

        if done {
            // --- Census, then flip — exactly the stop-the-world
            // closing sequence.
            let census = if profiling {
                Some(self.cycle_census(m, cycle.to_base, cycle.alloc, &cycle.computed_roots)?)
            } else {
                None
            };
            let (dead_lo, dead_hi) = self.semi(m, self.from);
            self.from = cycle.to;
            self.last_hp = cycle.alloc;
            m.regs[regs::HP as usize] = cycle.alloc;
            m.regs[regs::HL as usize] = cycle.to_end;
            if let Some(p) = m.profiler.as_deref_mut() {
                p.note_rt(cycle.alloc);
                p.gc_flip(dead_lo, dead_hi);
            }
            let live_words = (cycle.alloc - cycle.to_base) / 8;
            if live_words > m.stats.max_live_words {
                m.stats.max_live_words = live_words;
            }
            if let (Some(p), Some(sample)) = (self.profile.as_mut(), census) {
                p.censuses.push(HeapCensus {
                    when: CensusWhen::AfterGc(m.stats.gc_count - 1),
                    classes: sample.classes,
                    sites: sample.sites,
                });
            }
            self.cycle = None;
        } else {
            self.cycle = Some(cycle);
        }
        Ok(())
    }

    /// The end-of-cycle census over the evacuated region `[to_base,
    /// alloc)`, refined by the cycle's Computed-root rep values. Runs
    /// before the flip so rep records still in old from-space can be
    /// followed through their forwarding pointers.
    fn cycle_census(
        &self,
        m: &Machine,
        to_base: u64,
        alloc: u64,
        computed_roots: &[(u64, u64)],
    ) -> Result<crate::census::CensusSample, VmError> {
        let old_from = self.semi(m, self.from);
        let mut known: HashMap<u64, RepClass> = HashMap::new();
        for (addr, rv) in computed_roots {
            if let Some(c) = self.rep_class(m, *rv, old_from) {
                known.insert(*addr, c);
            }
        }
        let fun_code_start = self.profile.as_ref().map_or(0, |p| p.fun_code_start);
        census::scan(
            m,
            to_base,
            alloc,
            fun_code_start,
            self.mode == GcMode::Tagged,
            &known,
        )
    }

    /// The write barrier for mutations while an incremental cycle is
    /// open: forwards a stored from-space pointer immediately (so an
    /// already-scavenged to-space region never points back into
    /// from-space) and, when the mutated object has itself already
    /// been evacuated, mirrors the store into the to-space copy (the
    /// from-space image is dead after the flip). Returns the value the
    /// machine should store. Outside a cycle this is the identity —
    /// and `collect` always drains its cycle within one safe point, so
    /// in integrated runs the barrier never observes an open cycle and
    /// the instruction stream is identical across collect modes.
    pub fn barrier_store(
        &mut self,
        m: &mut Machine,
        obj: u64,
        addr: u64,
        val: u64,
    ) -> Result<u64, VmError> {
        if self.cycle.is_none() {
            return Ok(val);
        }
        let copied_before = m.stats.gc_copied_words;
        let mut alloc = match &self.cycle {
            Some(c) => c.alloc,
            None => return Ok(val),
        };
        let new_val = self.fix(m, val, &mut alloc)?;
        let mut mirrored = None;
        if self.is_from_ptr(m, obj) && addr >= obj {
            let h = m.rd(obj)?;
            if header::kind(h) == header::KIND_FWD {
                mirrored = Some(header::fwd_addr(h) + (addr - obj));
            }
        }
        if let Some(a) = mirrored {
            m.wr(a, new_val)?;
        }
        if let Some(c) = self.cycle.as_mut() {
            c.alloc = alloc;
        }
        // Barrier copy work is runtime work like any other.
        m.stats.rt_cost += 3 * (m.stats.gc_copied_words - copied_before);
        Ok(new_val)
    }

    /// Takes a mid-run census over the allocated heap prefix
    /// `[heap_base, HP)` — the zero-GC provenance sample. Called from
    /// the runtime's periodic hook; a heap caught mid-allocation (a
    /// header not yet written) makes the scan fail, in which case no
    /// sample is recorded (`false`) and a later period retries.
    pub fn midrun_census(&mut self, m: &Machine) -> bool {
        let (base, _) = self.semi(m, self.from);
        let hp = m.regs[regs::HP as usize];
        if hp <= base {
            return false;
        }
        let Some(p) = &self.profile else { return false };
        let fun_code_start = p.fun_code_start;
        let tagged = self.mode == GcMode::Tagged;
        let seq = self.midrun_census_count();
        if let Ok(sample) = census::scan(m, base, hp, fun_code_start, tagged, &HashMap::new()) {
            if let Some(p) = self.profile.as_mut() {
                p.censuses.push(HeapCensus {
                    when: CensusWhen::MidRun {
                        at_instr: m.stats.instrs,
                        seq,
                    },
                    classes: sample.classes,
                    sites: sample.sites,
                });
                return true;
            }
        }
        false
    }

    /// How many mid-run censuses have been recorded so far?
    pub fn midrun_census_count(&self) -> u64 {
        self.profile.as_ref().map_or(0, |p| {
            p.censuses
                .iter()
                .filter(|c| matches!(c.when, CensusWhen::MidRun { .. }))
                .count() as u64
        })
    }

    /// Has a mid-run census already been recorded?
    pub fn has_midrun_census(&self) -> bool {
        self.midrun_census_count() > 0
    }

    /// Final accounting at program exit: meters the allocation tail
    /// and folds the final resident heap into the memory high-water
    /// mark. `max_live_words` is otherwise sampled only at
    /// collections, so a program whose high-water is its final live
    /// set (e.g. one that builds a big structure and never triggers a
    /// GC) would under-report the paper's Table 4 metric.
    pub fn finish(&mut self, m: &mut Machine) {
        self.meter_allocation(m);
        let (base, _) = self.semi(m, self.from);
        let hp = m.regs[regs::HP as usize];
        let resident = if hp >= base { (hp - base) / 8 } else { 0 };
        m.stats.final_heap_words = resident;
        if resident > m.stats.max_live_words {
            m.stats.max_live_words = resident;
        }
        // Exit-time census over the resident heap (no GC point, so no
        // companion reps — header classification only). Its total
        // equals `final_heap_words` by construction.
        if let Some(p) = &self.profile {
            let fun_code_start = p.fun_code_start;
            let tagged = self.mode == GcMode::Tagged;
            if hp >= base {
                if let Ok(sample) =
                    census::scan(m, base, hp, fun_code_start, tagged, &HashMap::new())
                {
                    if let Some(p) = self.profile.as_mut() {
                        p.censuses.push(HeapCensus {
                            when: CensusWhen::Exit,
                            classes: sample.classes,
                            sites: sample.sites,
                        });
                    }
                }
            }
        }
    }

    /// Accumulates mutator allocation since the previous collection
    /// (also called once at program exit).
    pub fn meter_allocation(&mut self, m: &mut Machine) {
        let hp = m.regs[regs::HP as usize];
        let base = if self.last_hp == 0 {
            m.layout.heap_base
        } else {
            self.last_hp
        };
        if hp >= base {
            m.stats.allocated_bytes += hp - base;
        }
        self.last_hp = hp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::GcPoint;
    use til_vm::Layout;

    fn machine() -> Machine {
        let layout = Layout {
            globals_end: 4096,
            heap_base: 4096,
            semi_bytes: 8192,
            stack_limit: 24576,
            stack_top: 32768,
        };
        Machine::new(Vec::new(), layout)
    }

    /// A program that never collects still has its exit-time resident
    /// heap folded into the `max_live_words` high-water mark (and its
    /// allocation tail metered) by `finish` — otherwise Table 4's
    /// memory metric under-reports any program whose high-water is its
    /// final live set.
    #[test]
    fn finish_folds_exit_resident_heap_into_high_water_with_zero_gcs() {
        for mode in [GcMode::NearlyTagFree, GcMode::Tagged] {
            let mut m = machine();
            // Simulate 24 words of allocation with no collection:
            // HP advanced, gc_count untouched, high-water never sampled.
            m.regs[regs::HP as usize] = m.layout.heap_base + 24 * 8;
            let mut c = Collector::new(mode, GcTables::default());
            assert_eq!(m.stats.gc_count, 0);
            assert_eq!(m.stats.max_live_words, 0);
            c.finish(&mut m);
            assert_eq!(m.stats.final_heap_words, 24);
            assert_eq!(m.stats.max_live_words, 24);
            assert_eq!(m.stats.allocated_bytes, 24 * 8);
        }
    }

    /// `finish` must not *lower* a high-water mark already established
    /// by a collection mid-run.
    #[test]
    fn finish_keeps_a_larger_sampled_high_water() {
        let mut m = machine();
        m.stats.max_live_words = 1000;
        m.regs[regs::HP as usize] = m.layout.heap_base + 5 * 8;
        let mut c = Collector::new(GcMode::NearlyTagFree, GcTables::default());
        c.finish(&mut m);
        assert_eq!(m.stats.final_heap_words, 5);
        assert_eq!(m.stats.max_live_words, 1000);
    }

    const PC: u32 = 7;

    /// A tagged-mode machine with a small object graph in semispace 0:
    /// r0 -> record A [ptr B, int], where B is a record [int, int].
    /// Tagged mode keeps the fixture simple (no frame tables): the
    /// stack is empty (SP = stack_top) and the globals are zeros.
    fn tagged_fixture() -> Result<(Machine, Collector), VmError> {
        let mut m = machine();
        let base = m.layout.heap_base;
        let b = base; // record B: 2 untraced (odd) fields
        m.wr(b, header::make(header::KIND_RECORD, 2, 0b00))?;
        m.wr(b + 8, (41 << 1) | 1)?;
        m.wr(b + 16, (43 << 1) | 1)?;
        let a = base + 24; // record A: [ptr B, odd int]
        m.wr(a, header::make(header::KIND_RECORD, 2, 0b01))?;
        m.wr(a + 8, b)?;
        m.wr(a + 16, (99 << 1) | 1)?;
        m.regs[regs::HP as usize] = a + 24;
        m.regs[regs::SP as usize] = m.layout.stack_top;
        m.regs[0] = a;
        let mut tables = GcTables::default();
        tables.gc_points.insert(
            PC,
            GcPoint {
                regs: vec![(0, LocRep::Trace)],
                frame: FrameInfo::default(),
            },
        );
        let mut c = Collector::new(GcMode::Tagged, tables);
        c.profile = Some(GcProfile::new(0));
        Ok((m, c))
    }

    /// Incremental collection with a tight budget produces multiple
    /// slices whose costs each respect the budget, whose totals match
    /// a stop-the-world collection of the identical heap exactly, and
    /// whose final machine state (registers, stats, live heap) is
    /// identical to stop-the-world.
    #[test]
    fn incremental_slices_match_stop_the_world_totals() -> Result<(), VmError> {
        let (mut m_stw, mut c_stw) = tagged_fixture()?;
        c_stw.collect(&mut m_stw, PC, 0)?;

        let (mut m_inc, mut c_inc) = tagged_fixture()?;
        // Budget of 9: each record copy costs 3 * 3 = 9, and the
        // root-scan slice's 200 constant always closes alone.
        c_inc.collect_mode = CollectMode::Incremental { budget: 9 };
        c_inc.collect(&mut m_inc, PC, 0)?;

        assert_eq!(m_stw.stats, m_inc.stats, "stats diverge across collect modes");
        assert_eq!(m_stw.regs, m_inc.regs, "registers diverge across collect modes");
        let p_stw = c_stw.profile.as_ref().map(|p| &p.pauses).into_iter().flatten();
        let stw_cost: u64 = p_stw.map(|g| g.pause_cost).sum();
        let inc = match c_inc.profile.as_ref() {
            Some(p) => p,
            None => return Err(VmError::Runtime("no incremental profile".into())),
        };
        assert!(inc.pauses.len() > 1, "budget never split the cycle");
        let inc_cost: u64 = inc.pauses.iter().map(|g| g.pause_cost).sum();
        assert_eq!(stw_cost, inc_cost, "pause-cost totals diverge");
        // Every non-root slice within budget; the root slice carries
        // the constant alone.
        assert_eq!(inc.pauses[0].pause_cost, 200);
        for g in &inc.pauses[1..] {
            assert!(g.pause_cost <= 9, "slice cost {} over budget", g.pause_cost);
        }
        assert!(inc.pauses.iter().all(|g| g.cycle == 0));
        assert_eq!(inc.cycle_slices(), vec![inc.pauses.len() as u64]);
        assert_eq!(inc.max_pause(), 200);
        Ok(())
    }

    /// The write barrier, driven with a cycle held open: a store of a
    /// from-space pointer is forwarded before it lands, and a store
    /// into an already-evacuated object is mirrored into its to-space
    /// copy.
    #[test]
    fn write_barrier_forwards_and_mirrors_during_open_cycle() -> Result<(), VmError> {
        let (mut m, mut c) = tagged_fixture()?;
        let base = m.layout.heap_base;
        let b = base;
        let a = base + 24;
        c.begin_cycle(&mut m, PC)?;
        // One tight slice: the root-scan constant closes the first
        // slice before any copying.
        c.slice(&mut m, 200)?;
        assert!(c.cycle_active(), "cycle should still be open");
        // Second slice copies A (the only root) but not yet B.
        c.slice(&mut m, 9)?;
        assert!(c.cycle_active());
        let ha = m.rd(a)?;
        assert_eq!(header::kind(ha), header::KIND_FWD, "A not evacuated");
        let new_a = header::fwd_addr(ha);
        // Mutate A (already evacuated) while the cycle is open: store
        // a from-space pointer (B) into its second field.
        let stored = c.barrier_store(&mut m, a, a + 16, b)?;
        // The barrier forwarded B...
        assert!(stored >= m.layout.heap_base + m.layout.semi_bytes, "B not forwarded");
        assert_eq!(header::kind(m.rd(b)?), header::KIND_FWD);
        // ...and mirrored the store into A's to-space copy.
        assert_eq!(m.rd(new_a + 16)?, stored);
        // Outside heap objects (e.g. stack) the barrier is the
        // identity on the value, modulo forwarding.
        let odd = (5 << 1) | 1;
        let stack_slot = m.layout.stack_top - 8;
        assert_eq!(c.barrier_store(&mut m, 0, stack_slot, odd)?, odd);
        // Drain the cycle; the mirrored field must survive the flip.
        while c.cycle_active() {
            c.slice(&mut m, 1 << 20)?;
        }
        assert_eq!(m.regs[0], new_a, "root register not flipped to the copy");
        assert_eq!(m.rd(new_a + 16)?, stored);
        Ok(())
    }

    /// The barrier outside a cycle is the identity.
    #[test]
    fn write_barrier_is_identity_without_a_cycle() -> Result<(), VmError> {
        let (mut m, mut c) = tagged_fixture()?;
        let b = m.layout.heap_base;
        let rt_before = m.stats.rt_cost;
        assert_eq!(c.barrier_store(&mut m, b, b + 8, b)?, b);
        assert_eq!(m.stats.rt_cost, rt_before);
        Ok(())
    }

    /// `TIL_GC_MODE` parsing (string forms only — does not read the
    /// process environment).
    #[test]
    fn collect_mode_env_forms() {
        // from_env reads the live environment; exercise the parse arms
        // through a scoped setter would race other tests, so check the
        // default constant instead and the struct forms directly.
        assert!(DEFAULT_PAUSE_BUDGET > 200);
        assert_ne!(
            CollectMode::StopTheWorld,
            CollectMode::Incremental { budget: DEFAULT_PAUSE_BUDGET }
        );
    }
}
