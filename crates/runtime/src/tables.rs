//! GC tables: the compile-time information that makes nearly tag-free
//! collection possible (paper §2.3).
//!
//! The compiler records, for every *GC point* (allocation-site limit
//! checks and allocating runtime calls), which registers hold live
//! pointers, and, for every *call site* (keyed by return address),
//! the layout of the caller's stack frame — which slots are live
//! pointers, which hold unknown-type values described by a companion
//! type-representation slot (Tolmach-style, but eager), and where the
//! next return address lives so the collector can keep walking.

use std::collections::{HashMap, HashSet};

/// Where a run-time type representation lives, for `Computed` slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepLoc {
    /// In a register.
    Reg(u8),
    /// In the current frame at this byte offset from SP.
    Slot(u32),
}

/// The representation of one live location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocRep {
    /// A traced pointer (possibly a small-constant datatype value,
    /// which the collector filters by address range).
    Trace,
    /// Unknown at compile time: consult the type representation at the
    /// given location (0 = int-like ⇒ untraced; anything else traced).
    Computed(RepLoc),
}

/// Layout of one stack frame.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrameInfo {
    /// Frame size in bytes (caller SP = SP + size).
    pub size: u32,
    /// Byte offset (from SP) of the saved return address.
    pub ra_offset: u32,
    /// Live traced/computed slots as byte offsets from SP.
    pub slots: Vec<(u32, LocRep)>,
    /// Offsets among `slots` whose values are provably dead at the
    /// call instruction itself (call-site descriptors are built from
    /// liveness *after* the call, so the call's own result slot — and
    /// nothing else — may legitimately hold garbage while the callee
    /// walks the stack). The collector ignores this list (its pointer
    /// filter already makes such slots harmless); the machine-code
    /// verifier uses it to reject descriptors that claim a dead value
    /// live.
    pub dead: Vec<u32>,
}

/// Everything the collector must know at one GC point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GcPoint {
    /// Live registers and their representations.
    pub regs: Vec<(u8, LocRep)>,
    /// The allocating function's own frame.
    pub frame: FrameInfo,
}

/// The complete table set for a linked program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GcTables {
    /// Per GC-point pc.
    pub gc_points: HashMap<u32, GcPoint>,
    /// Per return-address pc: the frame of the function that will
    /// resume there.
    pub call_sites: HashMap<u32, FrameInfo>,
    /// Return addresses at which the stack walk stops (the program
    /// entry's sentinel).
    pub stops: HashSet<u32>,
    /// Global slots (byte addresses) holding traced or computed values.
    pub globals: Vec<(u64, LocRep)>,
}

impl GcTables {
    /// Approximate byte size of the tables (for the executable-size
    /// comparison, Table 5).
    pub fn byte_size(&self) -> usize {
        let frame = |f: &FrameInfo| 8 + 6 * f.slots.len() + 4 * f.dead.len();
        self.gc_points
            .values()
            .map(|g| 8 + 6 * g.regs.len() + frame(&g.frame))
            .sum::<usize>()
            + self.call_sites.values().map(frame).sum::<usize>()
            + 8 * self.stops.len()
            + 10 * self.globals.len()
    }
}

/// How the collector interprets memory: the paper's nearly tag-free
/// scheme, or the baseline's universal low-bit tagging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcMode {
    /// Tables + untagged values; record headers carry pointer masks.
    NearlyTagFree,
    /// Every value is tagged (ints odd, pointers even); stacks and
    /// globals are scanned exhaustively by tag; no tables needed
    /// except live-register maps at GC points.
    Tagged,
}
