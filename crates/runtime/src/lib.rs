//! The runtime-system substrate: two-space copying collection in the
//! paper's **nearly tag-free** flavour (table-driven, type-passing for
//! unknown slots, §2.3) and the baseline's fully **tagged** flavour,
//! plus string/math runtime services and tag-free polymorphic
//! structural equality over run-time type representations.

// Hot-path hygiene: the collector and runtime services must report
// every failure as a typed `VmError`, never abort the host process.
// (`clippy.toml` exempts test code.)
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod census;
pub mod gc;
pub mod reps;
pub mod rt;
pub mod tables;

pub use census::{CensusClasses, CensusSample, CensusWhen, HeapCensus, RepClass, SiteCensus};
pub use gc::{CollectMode, Collector, GcPause, GcProfile, DEFAULT_PAUSE_BUDGET};
pub use reps::{rep, RepExpr, RtData, RtDataRep};
pub use rt::{format_real, Rt};
pub use tables::{FrameInfo, GcMode, GcPoint, GcTables, LocRep, RepLoc};
