//! The runtime system: the [`til_vm::Runtime`] implementation wiring
//! the collector, string/math services, and tag-free polymorphic
//! structural equality into the machine.

use crate::gc::Collector;
use crate::reps::{rep, RepExpr, RtData, RtDataRep};
use crate::tables::{GcMode, GcTables};
use til_vm::{header, regs, Machine, RtFn, Runtime, Trap, VmError};

/// The runtime state.
pub struct Rt {
    /// The collector.
    pub gc: Collector,
    /// Datatype descriptions for structural equality.
    pub data: Vec<RtData>,
}

impl Rt {
    /// Builds a runtime.
    pub fn new(mode: GcMode, tables: GcTables, data: Vec<RtData>) -> Rt {
        Rt {
            gc: Collector::new(mode, tables),
            data,
        }
    }

    /// The GC-point key for the currently executing runtime call.
    fn point(m: &Machine) -> u32 {
        (m.pc - 1) as u32
    }

    /// Allocates `words` payload words with the given header, returning
    /// the object address (collecting first if needed).
    fn alloc(
        &mut self,
        m: &mut Machine,
        head: u64,
        words: u64,
    ) -> Result<u64, VmError> {
        let bytes = 8 * (1 + words);
        let hp = m.regs[regs::HP as usize];
        let hl = m.regs[regs::HL as usize];
        if hp + bytes > hl {
            self.gc.collect(m, Self::point(m), bytes)?;
        }
        let addr = m.regs[regs::HP as usize];
        m.regs[regs::HP as usize] = addr + bytes;
        m.wr(addr, head)?;
        Ok(addr)
    }

    /// Allocates a string object from Rust bytes.
    pub fn alloc_string(&mut self, m: &mut Machine, s: &str) -> Result<u64, VmError> {
        let bytes = s.as_bytes();
        let words = (bytes.len() as u64).div_ceil(8);
        let addr = self.alloc(
            m,
            header::make(header::KIND_STRING, bytes.len() as u64, 0),
            words,
        )?;
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = 0u64;
            for (j, b) in chunk.iter().enumerate() {
                w |= (*b as u64) << (j * 8);
            }
            m.wr(addr + 8 + 8 * i as u64, w)?;
        }
        // Charge the copy.
        m.stats.rt_cost += 4 + words;
        Ok(addr)
    }

    fn untag_int(&self, v: u64) -> i64 {
        match self.gc.mode {
            GcMode::Tagged => (v as i64) >> 1,
            GcMode::NearlyTagFree => v as i64,
        }
    }

    fn tag_int(&self, v: i64) -> u64 {
        match self.gc.mode {
            GcMode::Tagged => ((v << 1) | 1) as u64,
            GcMode::NearlyTagFree => v as u64,
        }
    }

    fn is_small(&self, m: &Machine, v: u64) -> bool {
        match self.gc.mode {
            GcMode::NearlyTagFree => {
                !(v >= m.layout.heap_base && v < m.layout.heap_end() && v.is_multiple_of(8))
            }
            GcMode::Tagged => v & 1 == 1,
        }
    }

    /// Tag-free structural equality at the representation `r`.
    fn polyeq(&self, m: &Machine, r: u64, a: u64, b: u64) -> Result<bool, VmError> {
        m_charge(m);
        match r {
            rep::INT | rep::EXN | rep::ARROW => Ok(a == b),
            rep::FLOAT => {
                // Boxed floats: compare contents.
                let fa = f64::from_bits(m.rd(a + 8)?);
                let fb = f64::from_bits(m.rd(b + 8)?);
                Ok(fa == fb)
            }
            rep::STR => {
                let sa = m.read_string(a)?;
                let sb = m.read_string(b)?;
                Ok(sa == sb)
            }
            ptr => {
                // A heap representation record.
                let tag = m.rd(ptr + 8)?;
                match tag {
                    t if t == rep::TAG_RECORD => {
                        let n = m.rd(ptr + 16)?;
                        for i in 0..n {
                            let fr = m.rd(ptr + 24 + 8 * i)?;
                            let fa = m.rd(a + 8 + 8 * i)?;
                            let fb = m.rd(b + 8 + 8 * i)?;
                            if !self.polyeq(m, fr, fa, fb)? {
                                return Ok(false);
                            }
                        }
                        Ok(true)
                    }
                    t if t == rep::TAG_ARRAY => Ok(a == b),
                    t if t == rep::TAG_DATA => {
                        let data_id = m.rd(ptr + 16)? as usize;
                        let nargs = m.rd(ptr + 24)? as usize;
                        let mut args = Vec::with_capacity(nargs);
                        for i in 0..nargs {
                            args.push(EvRep::Runtime(m.rd(ptr + 32 + 8 * i as u64)?));
                        }
                        self.data_eq(m, data_id, &std::rc::Rc::new(args), a, b)
                    }
                    other => Err(VmError::Runtime(format!(
                        "polyeq: bad representation tag {other}"
                    ))),
                }
            }
        }
    }

    /// Structural equality of two datatype values.
    fn data_eq(
        &self,
        m: &Machine,
        data_id: usize,
        args: &Env<'_>,
        a: u64,
        b: u64,
    ) -> Result<bool, VmError> {
        let d = self
            .data
            .get(data_id)
            .ok_or_else(|| VmError::Runtime(format!("polyeq: bad datatype id {data_id}")))?;
        match d.rep {
            RtDataRep::Enum => Ok(a == b),
            RtDataRep::Tagless => {
                if self.is_small(m, a) || self.is_small(m, b) {
                    return Ok(a == b);
                }
                let tag = d
                    .single_carrying()
                    .ok_or_else(|| VmError::Runtime("tagless without carrier".into()))?;
                let fields = d.cons[tag]
                    .as_ref()
                    .ok_or_else(|| VmError::Runtime("polyeq: constant constructor carries".into()))?;
                self.fields_eq(m, fields, args, a, b, 0)
            }
            RtDataRep::Tagged => {
                if self.is_small(m, a) || self.is_small(m, b) {
                    return Ok(a == b);
                }
                let ta = m.rd(a + 8)?;
                let tb = m.rd(b + 8)?;
                if ta != tb {
                    return Ok(false);
                }
                let tag = d
                    .carrying_with_sum_tag(self.untag_int(ta))
                    .ok_or_else(|| VmError::Runtime("polyeq: bad sum tag".into()))?;
                let fields = d.cons[tag]
                    .as_ref()
                    .ok_or_else(|| VmError::Runtime("polyeq: constant constructor carries".into()))?;
                self.fields_eq(m, fields, args, a, b, 1)
            }
            RtDataRep::Boxed => {
                if self.is_small(m, a) || self.is_small(m, b) {
                    return Ok(a == b);
                }
                let ta = m.rd(a + 8)?;
                let tb = m.rd(b + 8)?;
                if ta != tb {
                    return Ok(false);
                }
                let tag = d
                    .carrying_with_sum_tag(self.untag_int(ta))
                    .ok_or_else(|| VmError::Runtime("polyeq: bad sum tag".into()))?;
                let fields = d.cons[tag]
                    .as_ref()
                    .ok_or_else(|| VmError::Runtime("polyeq: constant constructor carries".into()))?;
                let pa = m.rd(a + 16)?;
                let pb = m.rd(b + 16)?;
                let fr = eval_rep(&fields[0], args);
                self.polyeq_val(m, fr, pa, pb)
            }
        }
    }

    fn fields_eq(
        &self,
        m: &Machine,
        fields: &[RepExpr],
        args: &Env<'_>,
        a: u64,
        b: u64,
        skip: u64,
    ) -> Result<bool, VmError> {
        for (i, f) in fields.iter().enumerate() {
            let fa = m.rd(a + 8 * (1 + skip + i as u64))?;
            let fb = m.rd(b + 8 * (1 + skip + i as u64))?;
            let fr = eval_rep(f, args);
            if !self.polyeq_val(m, fr, fa, fb)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Equality guided by an evaluated representation.
    fn polyeq_val(&self, m: &Machine, r: EvRep<'_>, a: u64, b: u64) -> Result<bool, VmError> {
        match r {
            EvRep::Runtime(v) => self.polyeq(m, v, a, b),
            EvRep::Expr(e, env) => match e {
                RepExpr::Int | RepExpr::Exn | RepExpr::Arrow => Ok(a == b),
                RepExpr::Float => {
                    let fa = f64::from_bits(m.rd(a + 8)?);
                    let fb = f64::from_bits(m.rd(b + 8)?);
                    Ok(fa == fb)
                }
                RepExpr::Str => Ok(m.read_string(a)? == m.read_string(b)?),
                RepExpr::Array(_) => Ok(a == b),
                RepExpr::Record(fs) => {
                    for (i, f) in fs.iter().enumerate() {
                        let fa = m.rd(a + 8 * (1 + i as u64))?;
                        let fb = m.rd(b + 8 * (1 + i as u64))?;
                        let fr = eval_rep(f, &env);
                        if !self.polyeq_val(m, fr, fa, fb)? {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
                RepExpr::Data(id, dargs) => {
                    let inner: Env<'_> =
                        std::rc::Rc::new(dargs.iter().map(|da| eval_rep(da, &env)).collect());
                    self.data_eq(m, *id as usize, &inner, a, b)
                }
                RepExpr::Param(_) => unreachable!("resolved by eval_rep"),
            },
        }
    }
}

/// An environment of evaluated representation arguments.
type Env<'e> = std::rc::Rc<Vec<EvRep<'e>>>;

/// Evaluates a representation recipe against an environment; structured
/// recipes stay symbolic (a closure over the environment).
fn eval_rep<'e>(e: &'e RepExpr, env: &Env<'e>) -> EvRep<'e> {
    match e {
        RepExpr::Param(i) => env
            .get(*i)
            .cloned()
            .unwrap_or(EvRep::Runtime(crate::reps::rep::INT)),
        other => EvRep::Expr(other, env.clone()),
    }
}

#[derive(Clone)]
enum EvRep<'e> {
    /// A materialized run-time representation value.
    Runtime(u64),
    /// A compile-time recipe closed over its parameter environment.
    Expr(&'e RepExpr, Env<'e>),
}

fn m_charge(_m: &Machine) {}

impl Runtime for Rt {
    /// The store barrier: only active while an incremental collection
    /// cycle is held open (never the case in integrated runs, where
    /// `collect` drains its cycle within one safe point).
    fn pre_store(
        &mut self,
        m: &mut Machine,
        base: u64,
        addr: u64,
        val: u64,
    ) -> Result<u64, VmError> {
        if self.gc.cycle_active() {
            return self.gc.barrier_store(m, base, addr, val);
        }
        Ok(val)
    }

    /// Low-frequency observational work: mid-run heap censuses per
    /// the collector's sampling policy — by default one sample in
    /// runs that have not collected yet (so zero-GC runs report a
    /// live sample instead of only the exit census), or every N
    /// retired instructions under a configured cadence
    /// (`Collector::set_census_every` / `TIL_CENSUS_EVERY`).
    fn periodic(&mut self, m: &mut Machine) -> Result<(), VmError> {
        self.gc.periodic_census(m);
        Ok(())
    }

    fn rt_call(&mut self, f: RtFn, m: &mut Machine) -> Result<Option<Trap>, VmError> {
        match f {
            RtFn::Gc => {
                let needed = m.regs[regs::TMP as usize];
                self.gc.collect(m, Self::point(m), needed)?;
                Ok(None)
            }
            RtFn::PrintStr => {
                let s = m.read_string(m.regs[0])?;
                if m.echo {
                    print!("{s}");
                }
                m.stats.rt_cost += 4 + s.len() as u64 / 8;
                m.output.push_str(&s);
                Ok(None)
            }
            RtFn::IntToStr => {
                let v = self.untag_int(m.regs[0]);
                // SML rendering: ~ for negative.
                let s = if v < 0 {
                    format!("~{}", v.unsigned_abs())
                } else {
                    v.to_string()
                };
                let addr = self.alloc_string(m, &s)?;
                m.regs[0] = addr;
                Ok(None)
            }
            RtFn::FloatToStr => {
                let v = f64::from_bits(m.regs[0]);
                let s = format_real(v);
                let addr = self.alloc_string(m, &s)?;
                m.regs[0] = addr;
                Ok(None)
            }
            RtFn::StrCmp => {
                let a = m.read_string(m.regs[0])?;
                let b = m.read_string(m.regs[1])?;
                m.stats.rt_cost += 4 + (a.len().min(b.len()) as u64) / 4;
                m.regs[0] = self.tag_int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                });
                Ok(None)
            }
            RtFn::StrEq => {
                let a = m.read_string(m.regs[0])?;
                let b = m.read_string(m.regs[1])?;
                m.stats.rt_cost += 4 + (a.len().min(b.len()) as u64) / 4;
                m.regs[0] = self.tag_int((a == b) as i64);
                Ok(None)
            }
            RtFn::StrConcat => {
                let a = m.read_string(m.regs[0])?;
                let b = m.read_string(m.regs[1])?;
                let addr = self.alloc_string(m, &format!("{a}{b}"))?;
                m.regs[0] = addr;
                Ok(None)
            }
            RtFn::StrSub => {
                let s = m.read_string(m.regs[0])?;
                let i = self.untag_int(m.regs[1]);
                m.stats.rt_cost += 6;
                if i < 0 || i as usize >= s.len() {
                    return Ok(Some(Trap::Subscript));
                }
                m.regs[0] = self.tag_int(s.as_bytes()[i as usize] as i64);
                Ok(None)
            }
            RtFn::StrFromChar => {
                let c = self.untag_int(m.regs[0]);
                let ch = char::from_u32(c as u32).unwrap_or('?');
                let addr = self.alloc_string(m, &ch.to_string())?;
                m.regs[0] = addr;
                Ok(None)
            }
            RtFn::PolyEq => {
                let r = m.regs[0];
                let a = m.regs[1];
                let b = m.regs[2];
                m.stats.rt_cost += 8;
                let eq = self.polyeq(m, r, a, b)?;
                m.regs[0] = self.tag_int(eq as i64);
                Ok(None)
            }
            RtFn::Sqrt | RtFn::Sin | RtFn::Cos | RtFn::Atan | RtFn::Exp | RtFn::Ln => {
                let x = f64::from_bits(m.regs[0]);
                m.stats.rt_cost += 20;
                let v = match f {
                    RtFn::Sqrt => {
                        if x < 0.0 {
                            return Ok(Some(Trap::Domain));
                        }
                        x.sqrt()
                    }
                    RtFn::Sin => x.sin(),
                    RtFn::Cos => x.cos(),
                    RtFn::Atan => x.atan(),
                    RtFn::Exp => x.exp(),
                    _ => {
                        if x <= 0.0 {
                            return Ok(Some(Trap::Domain));
                        }
                        x.ln()
                    }
                };
                m.regs[0] = v.to_bits();
                Ok(None)
            }
            RtFn::Floor => {
                let x = f64::from_bits(m.regs[0]);
                let v = x.floor();
                if !v.is_finite() || v < i64::MIN as f64 || v > i64::MAX as f64 {
                    return Ok(Some(Trap::Overflow));
                }
                m.regs[0] = self.tag_int(v as i64);
                Ok(None)
            }
            RtFn::Trunc => {
                let x = f64::from_bits(m.regs[0]);
                let v = x.trunc();
                if !v.is_finite() || v < i64::MIN as f64 || v > i64::MAX as f64 {
                    return Ok(Some(Trap::Overflow));
                }
                m.regs[0] = self.tag_int(v as i64);
                Ok(None)
            }
        }
    }
}

/// SML `Real.toString` formatting (close enough: `~` for minus, a
/// trailing `.0` for integral values).
pub fn format_real(v: f64) -> String {
    let s = if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    };
    s.replace('-', "~")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_formatting_matches_sml() {
        assert_eq!(format_real(1.0), "1.0");
        assert_eq!(format_real(-2.5), "~2.5");
        assert_eq!(format_real(0.125), "0.125");
    }
}
