//! Run-time type representations.
//!
//! Intensional polymorphism needs types as run-time values (paper
//! §2.1). A representation is either a small immediate — int-like,
//! float, string, exn, code — or a pointer to a heap record describing
//! a structured type. The same representations drive the `typecase`
//! switch (int / float / pointer), the collector's `Computed` slots
//! (untraced iff the representation is `REP_INT`), and tag-free
//! structural equality.

/// Immediate representation values.
pub mod rep {
    /// Untraced machine word (ints, chars, enums).
    pub const INT: u64 = 0;
    /// `real`: values travel boxed, arrays store them unboxed.
    pub const FLOAT: u64 = 1;
    /// String.
    pub const STR: u64 = 2;
    /// Exception packet.
    pub const EXN: u64 = 3;
    /// Function/closure.
    pub const ARROW: u64 = 4;
    /// First word of a heap representation record: record type.
    pub const TAG_RECORD: u64 = 16;
    /// Heap representation: array type (`[TAG_ARRAY, elem]`).
    pub const TAG_ARRAY: u64 = 17;
    /// Heap representation: datatype (`[TAG_DATA, data_id, n, args…]`).
    pub const TAG_DATA: u64 = 18;
}

/// A compile-time recipe for a run-time representation; `Param(i)`
/// refers to the i-th representation argument in scope (a datatype's
/// type parameters, or a polymorphic function's constructor
/// parameters).
#[derive(Clone, Debug, PartialEq)]
pub enum RepExpr {
    /// `rep::INT`.
    Int,
    /// `rep::FLOAT`.
    Float,
    /// `rep::STR`.
    Str,
    /// `rep::EXN`.
    Exn,
    /// `rep::ARROW`.
    Arrow,
    /// Record of field representations.
    Record(Vec<RepExpr>),
    /// Array of an element representation.
    Array(Box<RepExpr>),
    /// Datatype applied to argument representations.
    Data(u32, Vec<RepExpr>),
    /// A representation parameter.
    Param(usize),
}

impl RepExpr {
    /// True when the representation contains no parameters (it can be
    /// materialized once, statically).
    pub fn is_ground(&self) -> bool {
        match self {
            RepExpr::Int | RepExpr::Float | RepExpr::Str | RepExpr::Exn | RepExpr::Arrow => true,
            RepExpr::Record(fs) => fs.iter().all(RepExpr::is_ground),
            RepExpr::Array(e) => e.is_ground(),
            RepExpr::Data(_, args) => args.iter().all(RepExpr::is_ground),
            RepExpr::Param(_) => false,
        }
    }
}

/// How a datatype's values are laid out (mirrors the middle end's
/// `DataRep`, in a form the runtime can interpret).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtDataRep {
    /// All-nullary: small ints.
    Enum,
    /// One carrying constructor: untagged record; constants small ints.
    Tagless,
    /// Carrying constructors: records with a tag in field 0.
    Tagged,
    /// Baseline: `(tag, pointer-to-unflattened-argument)` records.
    Boxed,
}

/// Runtime description of one datatype, for structural equality.
#[derive(Clone, Debug)]
pub struct RtData {
    /// Value layout.
    pub rep: RtDataRep,
    /// Per source constructor: `None` for nullary, `Some(fields)` with
    /// each field's representation recipe (parameters refer to the
    /// datatype's type arguments).
    pub cons: Vec<Option<Vec<RepExpr>>>,
}

impl RtData {
    /// Small-int value of nullary constructor `tag`.
    pub fn enum_value(&self, tag: usize) -> i64 {
        self.cons[..tag].iter().filter(|c| c.is_none()).count() as i64
    }

    /// Record tag of carrying constructor `tag`.
    pub fn sum_tag(&self, tag: usize) -> i64 {
        self.cons[..tag].iter().filter(|c| c.is_some()).count() as i64
    }

    /// The source tag of the carrying constructor with record-tag `t`.
    pub fn carrying_with_sum_tag(&self, t: i64) -> Option<usize> {
        let mut n = 0;
        for (i, c) in self.cons.iter().enumerate() {
            if c.is_some() {
                if n == t {
                    return Some(i);
                }
                n += 1;
            }
        }
        None
    }

    /// The unique carrying constructor (for `Tagless`).
    pub fn single_carrying(&self) -> Option<usize> {
        let mut found = None;
        for (i, c) in self.cons.iter().enumerate() {
            if c.is_some() {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groundness() {
        assert!(RepExpr::Record(vec![RepExpr::Int, RepExpr::Str]).is_ground());
        assert!(!RepExpr::Array(Box::new(RepExpr::Param(0))).is_ground());
    }

    #[test]
    fn tag_arithmetic() {
        // datatype t = A | B of x | C | D of y
        let d = RtData {
            rep: RtDataRep::Tagged,
            cons: vec![None, Some(vec![RepExpr::Int]), None, Some(vec![RepExpr::Str])],
        };
        assert_eq!(d.enum_value(0), 0);
        assert_eq!(d.enum_value(2), 1);
        assert_eq!(d.sum_tag(1), 0);
        assert_eq!(d.sum_tag(3), 1);
        assert_eq!(d.carrying_with_sum_tag(1), Some(3));
        assert_eq!(d.single_carrying(), None);
    }
}
