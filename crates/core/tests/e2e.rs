//! End-to-end execution tests: compile and run whole programs in both
//! modes, asserting printed output.

use til::{Compiler, Mode, Options};

const FUEL: u64 = 500_000_000;

fn run_mode(src: &str, opts: Options) -> String {
    let name = match opts.mode {
        Mode::Til => "til",
        Mode::Baseline => "baseline",
    };
    let exe = Compiler::new(opts)
        .compile(src)
        .unwrap_or_else(|d| panic!("[{name}] compile: {d}"));
    let out = exe
        .run(FUEL)
        .unwrap_or_else(|e| panic!("[{name}] run: {e}"));
    out.output
}

fn check(src: &str, expected: &str) {
    assert_eq!(run_mode(src, Options::til()), expected, "TIL mode");
    assert_eq!(run_mode(src, Options::baseline()), expected, "baseline mode");
    assert_eq!(
        run_mode(src, Options::til_no_loop_opts()),
        expected,
        "no-loop-opts mode"
    );
}

#[test]
fn hello() {
    check("val _ = print \"hello\"", "hello");
}

#[test]
fn arithmetic() {
    check("val _ = print (Int.toString (6 * 7))", "42");
    check("val _ = print (Int.toString (1 - 10))", "~9");
    check("val _ = print (Int.toString (17 div 5))", "3");
    check("val _ = print (Int.toString (17 mod 5))", "2");
}

#[test]
fn recursion_and_tail_calls() {
    check(
        "fun sum (0, acc) = acc | sum (n, acc) = sum (n - 1, acc + n)
         val _ = print (Int.toString (sum (100000, 0)))",
        "5000050000",
    );
}

#[test]
fn lists_and_polymorphism() {
    check(
        "val xs = map (fn x => x * x) [1, 2, 3, 4]
         val _ = app (fn x => (print (Int.toString x); print \" \")) xs",
        "1 4 9 16 ",
    );
}

#[test]
fn floats() {
    check(
        "val x = 1.5 + 2.25
         val _ = print (Real.toString (x * 2.0))",
        "7.5",
    );
}

#[test]
fn exceptions() {
    check(
        "exception Bad of int
         fun f x = if x > 2 then raise Bad (x * 10) else x
         val r = (f 5) handle Bad n => n | Overflow => 0
         val _ = print (Int.toString r)",
        "50",
    );
}

#[test]
fn builtin_exceptions_from_traps() {
    check(
        "val r = (1 div 0) handle Div => ~1
         val _ = print (Int.toString r)",
        "~1",
    );
    check(
        "val a = Array.array (3, 0)
         val r = (Array.sub (a, 5)) handle Subscript => 99
         val _ = print (Int.toString r)",
        "99",
    );
}

#[test]
fn arrays_and_loops() {
    check(
        "val a = Array.array (100, 0)
         fun fill i = if i >= 100 then () else (Array.update (a, i, i * i); fill (i + 1))
         val _ = fill 0
         fun total (i, acc) = if i >= 100 then acc else total (i + 1, acc + Array.sub (a, i))
         val _ = print (Int.toString (total (0, 0)))",
        "328350",
    );
}

#[test]
fn float_arrays() {
    check(
        "val a = Array.array (10, 0.0)
         fun fill i = if i >= 10 then () else (Array.update (a, i, real i * 0.5); fill (i + 1))
         val _ = fill 0
         fun total (i, acc) = if i >= 10 then acc else total (i + 1, acc + Array.sub (a, i))
         val _ = print (Real.toString (total (0, 0.0)))",
        "22.5",
    );
}

#[test]
fn datatypes() {
    check(
        "datatype shape = Point | Circle of real | Rect of real * real
         fun area Point = 0.0
           | area (Circle r) = 3.0 * r * r
           | area (Rect (w, h)) = w * h
         val total = area Point + area (Circle 2.0) + area (Rect (3.0, 4.0))
         val _ = print (Real.toString total)",
        "24.0",
    );
}

#[test]
fn closures_capture() {
    check(
        "fun make n = fn x => x + n
         val add10 = make 10
         val add20 = make 20
         val _ = print (Int.toString (add10 1 + add20 2))",
        "33",
    );
}

#[test]
fn strings() {
    check(
        "val s = \"foo\" ^ \"bar\"
         val _ = print s
         val _ = print (Int.toString (size s))
         val _ = print (if \"abc\" < \"abd\" then \"LT\" else \"GE\")",
        "foobar6LT",
    );
}

#[test]
fn polymorphic_equality() {
    check(
        "val _ = print (if [1, 2, 3] = [1, 2, 3] then \"yes\" else \"no\")
         val _ = print (if (1, \"a\") = (1, \"b\") then \"yes\" else \"no\")",
        "yesno",
    );
}

#[test]
fn gc_survives_allocation_pressure() {
    // Allocates far more than one semispace; the collector must run
    // and preserve the live list.
    check(
        "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
         fun sum (nil, acc) = acc | sum (x :: xs, acc) = sum (xs, acc + x)
         fun loop (0, l) = l | loop (k, l) = loop (k - 1, build (1000, nil))
         val keep = build (100, nil)
         val _ = loop (2000, nil)
         val _ = print (Int.toString (sum (keep, 0)))",
        "5050",
    );
}

#[test]
fn higher_order_functions() {
    check(
        "val v = foldl (fn (x, a) => x + a) 0 (List.tabulate (100, fn i => i))
         val _ = print (Int.toString v)",
        "4950",
    );
}

#[test]
fn references() {
    check(
        "val r = ref 0
         val _ = while !r < 10 do r := !r + 3
         val _ = print (Int.toString (!r))",
        "12",
    );
}

#[test]
fn two_dimensional_arrays() {
    check(
        "val n = 5
         val a = Array2.array (n, n, 0)
         fun fill (i, j) =
           if i >= n then ()
           else if j >= n then fill (i + 1, 0)
           else (update2 (a, i, j, i * n + j); fill (i, j + 1))
         val _ = fill (0, 0)
         val _ = print (Int.toString (sub2 (a, 3, 4)))",
        "19",
    );
}
