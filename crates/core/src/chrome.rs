//! Chrome trace-event export: one `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev) file combining the wall-clock
//! compile-phase tree with the deterministic runtime spans of a
//! profiled run.
//!
//! The two timelines have incompatible units, so each gets its own
//! track (Chrome "thread"): compile events are wall-clock microseconds
//! from the tracer epoch, runtime events sit on instruction time where
//! one instruction-equivalent ([`Stats::time`] unit) is one
//! microsecond. Both tracks are labeled with metadata events so the
//! unit convention is visible in the viewer.

use crate::{CompileInfo, RunProfile};
use til_common::json::{chrome_trace, ChromeEvent, Json};
use til_vm::Stats;

/// Track carrying the compile-phase tree (wall-clock µs).
const TID_COMPILE: u64 = 1;
/// Track carrying runtime spans (1 instruction-equivalent = 1 µs).
const TID_RUNTIME: u64 = 2;

/// Builds a Chrome trace-event JSON document from a compile's recorded
/// events and, optionally, a profiled run. Counter-only compile events
/// (zero duration) are kept: they render as zero-width slices whose
/// args carry the counter value.
pub fn chrome_trace_json(info: &CompileInfo, run: Option<(&Stats, &RunProfile)>) -> Json {
    let mut evs = vec![ChromeEvent::thread_name(
        TID_COMPILE,
        "compile (wall clock)",
    )];
    for e in &info.events {
        let mut ce = ChromeEvent::complete(
            e.name.clone(),
            "compile",
            e.start * 1e6,
            e.seconds * 1e6,
            TID_COMPILE,
        );
        for (k, v) in &e.counters {
            ce = ce.arg(k, *v);
        }
        evs.push(ce);
    }
    if let Some((stats, rp)) = run {
        evs.push(ChromeEvent::thread_name(
            TID_RUNTIME,
            "run (1 instr = 1us)",
        ));
        // The depth-0 "run" slice spans the whole instruction timeline;
        // pauses and hot-function slices nest inside it by containment.
        evs.push(
            ChromeEvent::complete("run", "runtime", 0.0, stats.time() as f64, TID_RUNTIME)
                .arg("instrs", stats.instrs)
                .arg("rt-cost", stats.rt_cost)
                .arg("gc-count", stats.gc_count)
                .arg("allocated-bytes", stats.allocated_bytes)
                .arg("max-live-words", stats.max_live_words),
        );
        for (i, p) in rp.pauses.iter().enumerate() {
            let mut ce = ChromeEvent::complete(
                "gc-pause",
                "runtime",
                p.at_instr as f64,
                p.pause_cost as f64,
                TID_RUNTIME,
            )
            .arg("trigger-pc", p.trigger_pc as u64)
            .arg("cycle", p.cycle)
            .arg("copied-words", p.copied_words)
            .arg("live-words", p.live_words);
            // The cycle's census rides on its last slice (under
            // stop-the-world collection, the pause itself).
            let last_of_cycle = rp.pauses.get(i + 1).is_none_or(|q| q.cycle != p.cycle);
            if last_of_cycle {
                if let Some(c) = rp.censuses.iter().find(|c| c.after_gc() == Some(p.cycle)) {
                    ce = census_args(ce, &c.classes);
                }
            }
            evs.push(ce);
        }
        for c in &rp.censuses {
            match c.when {
                til_runtime::CensusWhen::MidRun { at_instr, .. } => evs.push(census_args(
                    ChromeEvent::complete(
                        "midrun-census",
                        "runtime",
                        at_instr as f64,
                        0.0,
                        TID_RUNTIME,
                    ),
                    &c.classes,
                )),
                til_runtime::CensusWhen::Exit => evs.push(census_args(
                    ChromeEvent::complete(
                        "exit-census",
                        "runtime",
                        stats.instrs as f64,
                        0.0,
                        TID_RUNTIME,
                    ),
                    &c.classes,
                )),
                til_runtime::CensusWhen::AfterGc(_) => {}
            }
        }
        // Allocation-site counter track: one `ph:"C"` sample per
        // census, with a series per top site (by words allocated)
        // carrying that site's live words at the sample. Perfetto
        // renders this as the per-site residency timeline — the
        // visual form of the survival statistics.
        let top: Vec<&str> = rp.top_sites(8).iter().map(|s| s.name.as_str()).collect();
        if !top.is_empty() {
            for c in &rp.censuses {
                let ts = match c.when {
                    til_runtime::CensusWhen::AfterGc(cycle) => rp
                        .pauses
                        .iter()
                        .filter(|p| p.cycle == cycle)
                        .map(|p| p.at_instr)
                        .max(),
                    til_runtime::CensusWhen::MidRun { at_instr, .. } => Some(at_instr),
                    til_runtime::CensusWhen::Exit => Some(stats.instrs),
                };
                let Some(ts) = ts else { continue };
                if c.sites.is_empty() {
                    continue;
                }
                let mut ce =
                    ChromeEvent::counter("site-live-words", "runtime", ts as f64, TID_RUNTIME);
                for name in &top {
                    let words = c
                        .sites
                        .iter()
                        .find(|s| s.name == *name)
                        .map_or(0, |s| s.classes.total_words());
                    ce = ce.arg(name, words);
                }
                evs.push(ce);
            }
        }
    }
    chrome_trace(&evs)
}

fn census_args(ce: ChromeEvent, c: &crate::CensusClasses) -> ChromeEvent {
    ce.arg("record-words", c.record_words)
        .arg("array-words", c.array_words)
        .arg("string-words", c.string_words)
        .arg("closure-words", c.closure_words)
        .arg("exn-words", c.exn_words)
        .arg("unknown-words", c.unknown_words)
}
