//! The staged pipeline driver: one [`Phase`] descriptor per stage
//! (name, optional IR count, optional named verifiers), executed and
//! timed by a [`Pipeline`].
//!
//! Every stage of the compiler — front end, Bform, closure, RTL,
//! backend — runs through the same `Pipeline::run` call, so phase
//! attribution (wall-clock, IR node counts, size deltas, trace
//! events) is uniform: a stage cannot forget to record itself, and a
//! verifier cannot run without being attributed. Verifiers run only
//! when the pipeline was built with `verify = true`, each recording
//! its own phase entry (e.g. `"rtl-verify"`, `"gc-check"`) so failure
//! diagnostics and timings point at the check, not the stage it
//! guards.

use crate::{CompileInfo, PhaseInfo};
use til_common::{Result, Tracer};

/// A named check over a phase's output, run when verification is on.
type Verifier<'a, T> = (&'static str, Box<dyn FnOnce(&T) -> Result<()> + 'a>);

/// A stage descriptor: what to call it, how to measure its output,
/// and which checks guard it.
pub struct Phase<'a, T> {
    name: &'static str,
    count: Option<fn(&T) -> usize>,
    verifiers: Vec<Verifier<'a, T>>,
}

impl<'a, T> Phase<'a, T> {
    /// A phase with the given name and no IR count or verifiers.
    pub fn new(name: &'static str) -> Self {
        Phase {
            name,
            count: None,
            verifiers: Vec::new(),
        }
    }

    /// Counts the phase's output IR (recorded as `ir-nodes`, with a
    /// delta against the previous counted phase).
    pub fn count(mut self, f: fn(&T) -> usize) -> Self {
        self.count = Some(f);
        self
    }

    /// Adds a named verifier over the phase's output. Verifiers run
    /// in the order added, only when verification is enabled, and
    /// each records its own phase entry under `name`.
    pub fn verify(
        mut self,
        name: &'static str,
        f: impl FnOnce(&T) -> Result<()> + 'a,
    ) -> Self {
        self.verifiers.push((name, Box::new(f)));
        self
    }
}

/// Drives phases in order, accumulating [`CompileInfo`] and emitting
/// trace events.
pub struct Pipeline<'t> {
    tracer: &'t Tracer,
    verify: bool,
    info: CompileInfo,
    clock: std::time::Instant,
    last_nodes: Option<usize>,
}

impl<'t> Pipeline<'t> {
    /// A pipeline reporting through `tracer`; `verify` gates every
    /// phase's verifiers.
    pub fn new(tracer: &'t Tracer, verify: bool) -> Self {
        Pipeline {
            tracer,
            verify,
            info: CompileInfo::default(),
            clock: std::time::Instant::now(),
            last_nodes: None,
        }
    }

    /// The tracer this pipeline reports through.
    pub fn tracer(&self) -> &'t Tracer {
        self.tracer
    }

    /// The accumulated measurements so far.
    pub fn info_mut(&mut self) -> &mut CompileInfo {
        &mut self.info
    }

    /// Finishes the pipeline. The tracer is shared by reference, so
    /// the caller drains its events into the returned info.
    pub fn into_info(self) -> CompileInfo {
        self.info
    }

    /// Records one completed phase: wall-clock since the previous
    /// record, plus the IR size it produced (when counted).
    fn lap(&mut self, name: &'static str, nodes: Option<usize>) {
        let now = std::time::Instant::now();
        let seconds = (now - self.clock).as_secs_f64();
        self.clock = now;
        let ir_delta = match (self.last_nodes, nodes) {
            (Some(prev), Some(cur)) => Some(cur as i64 - prev as i64),
            _ => None,
        };
        if nodes.is_some() {
            self.last_nodes = nodes;
        }
        let mut counters: Vec<(&'static str, i64)> = Vec::new();
        if let Some(n) = nodes {
            counters.push(("ir-nodes", n as i64));
        }
        if let Some(d) = ir_delta {
            counters.push(("ir-delta", d));
        }
        self.tracer.event(name, seconds, &counters);
        self.info.phases.push(PhaseInfo {
            name,
            seconds,
            ir_nodes: nodes,
            ir_delta,
        });
    }

    /// Runs one phase: executes `body`, records its timing and IR
    /// count, then runs each verifier (when enabled), recording each
    /// under its own name.
    pub fn run<T>(&mut self, phase: Phase<'_, T>, body: impl FnOnce() -> Result<T>) -> Result<T> {
        let t = body()?;
        let nodes = phase.count.map(|f| f(&t));
        self.lap(phase.name, nodes);
        if self.verify {
            for (vname, v) in phase.verifiers {
                v(&t)?;
                self.lap(vname, None);
            }
        }
        Ok(t)
    }
}
