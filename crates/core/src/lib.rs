//! **TIL** — a type-directed optimizing compiler for core Standard ML,
//! reproducing Tarditi et al., *TIL: A Type-Directed Optimizing
//! Compiler for ML* (PLDI 1996).
//!
//! The pipeline follows the paper's Figure 1: parse/elaborate →
//! **Lambda** → **Lmli** (intensional polymorphism + type-directed
//! representation optimizations) → **Bform** (A-normal form, all
//! conventional and loop-oriented optimization) → typed closure
//! conversion → untyped representation analysis → **RTL** → register
//! allocation + GC tables → machine code for a simulated ALPHA-style
//! target with a nearly tag-free copying collector.
//!
//! # Quick start
//!
//! ```
//! use til::{Compiler, Options};
//!
//! let exe = Compiler::new(Options::til())
//!     .compile("val _ = print (Int.toString (6 * 7))")
//!     .unwrap();
//! let out = exe.run(100_000_000).unwrap();
//! assert_eq!(out.output, "42");
//! ```

use til_common::{Diagnostic, Result, Tracer};

pub use til_backend::{Linked, LinkOptions};
pub use til_closure::{ClosureOptions, ClosureStats};
pub use til_common::TraceEvent;
pub use til_lmli::LmliOptions;
pub use til_opt::{OptOptions, OptStats, PassStat};
pub use til_vm::{Stats, VmError};

/// The SML prelude prefixed onto every compilation unit.
pub use til_elab::PRELUDE;

/// Compilation mode: which compiler the paper's tables compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// TIL: specialized representations, nearly tag-free GC, full
    /// optimization.
    Til,
    /// The SML/NJ-like comparator: universal tagged representation,
    /// boxed values, heap-allocated frames, tagged GC.
    Baseline,
}

/// Compiler configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Compilation mode.
    pub mode: Mode,
    /// Representation choices (argument/constructor flattening, float
    /// boxing, array specialization).
    pub lmli: LmliOptions,
    /// Optimizer schedule and toggles (loop optimizations etc.).
    pub opt: OptOptions,
    /// Typecheck between all typed phases (the paper's engineering
    /// discipline; cheap and recommended).
    pub verify: bool,
    /// Stream a hierarchical phase/pass trace to stderr (wall-clock,
    /// IR node counts, size deltas). Also enabled by setting the
    /// `TIL_TRACE` environment variable; structured trace events are
    /// recorded into [`CompileInfo::events`] either way.
    pub trace: bool,
    /// Heap/stack sizing.
    pub link: LinkOptions,
}

impl Options {
    /// Full TIL configuration.
    pub fn til() -> Options {
        Options {
            mode: Mode::Til,
            lmli: LmliOptions::til(),
            opt: OptOptions::til(),
            verify: true,
            trace: false,
            link: LinkOptions::default(),
        }
    }

    /// TIL without the loop-oriented optimizations (the Table 7 /
    /// Figure 12 ablation).
    pub fn til_no_loop_opts() -> Options {
        Options {
            opt: OptOptions::til_no_loop_opts(),
            ..Options::til()
        }
    }

    /// TIL representations with the optimizer disabled entirely — the
    /// differential suite's oracle configuration (O0).
    pub fn o0() -> Options {
        Options {
            opt: OptOptions::none(),
            ..Options::til()
        }
    }

    /// Every single-flag ablation of the full TIL optimizer, as
    /// `(name, options)` pairs. The differential suite compiles each
    /// generated program under all of these and compares outputs
    /// against the O0 oracle.
    pub fn ablations() -> Vec<(&'static str, Options)> {
        fn with(f: impl FnOnce(&mut OptOptions)) -> Options {
            let mut o = Options::til();
            f(&mut o.opt);
            o
        }
        vec![
            ("no-loop-opts", with(|o| o.loop_opts = false)),
            ("no-inline", with(|o| o.inline = false)),
            ("no-flatten", with(|o| o.flatten = false)),
            ("no-specialize", with(|o| o.specialize = false)),
            ("no-sink", with(|o| o.sink = false)),
            ("no-minfix", with(|o| o.minfix = false)),
            ("no-switch-cont", with(|o| o.switch_cont = false)),
        ]
    }

    /// The baseline comparator.
    pub fn baseline() -> Options {
        Options {
            mode: Mode::Baseline,
            lmli: LmliOptions::baseline(),
            opt: OptOptions::baseline(),
            verify: true,
            trace: false,
            link: LinkOptions::default(),
        }
    }
}

/// One pipeline phase's measurements.
#[derive(Clone, Debug)]
pub struct PhaseInfo {
    /// Phase name, in pipeline order (e.g. `"parse"`, `"optimize"`).
    pub name: &'static str,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// IR node count after the phase (None for phases without a
    /// counted IR, e.g. parse and backend).
    pub ir_nodes: Option<usize>,
    /// Node-count change relative to the previous counted phase
    /// (negative = the phase shrank the program).
    pub ir_delta: Option<i64>,
}

/// Per-phase compile-time measurements (Table 6's metric) and sizes.
#[derive(Clone, Debug, Default)]
pub struct CompileInfo {
    /// Per-phase wall-clock and IR-size measurements, in pipeline
    /// order.
    pub phases: Vec<PhaseInfo>,
    /// Optimizer statistics (including per-pass aggregates).
    pub opt_stats: Option<OptStats>,
    /// Closure-stage statistics (conversion plus cleanup passes).
    pub closure_stats: Option<ClosureStats>,
    /// Generated code size in bytes.
    pub code_bytes: usize,
    /// Executable size (code + GC tables + static data).
    pub executable_bytes: usize,
    /// The full structured trace (phases plus nested optimizer
    /// passes), in span-closing order.
    pub events: Vec<TraceEvent>,
}

impl CompileInfo {
    /// Total compile time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Seconds spent in the named phase (0.0 if it did not run).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.seconds)
            .sum()
    }
}

/// A compiled, runnable executable.
pub struct Executable {
    linked: Linked,
    /// Compilation measurements.
    pub info: CompileInfo,
}

/// The result of running an executable.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Everything the program printed.
    pub output: String,
    /// Machine counters (time/allocation/memory metrics).
    pub stats: Stats,
}

impl Executable {
    /// Runs the program with the given instruction budget.
    pub fn run(&self, fuel: u64) -> std::result::Result<RunOutcome, VmError> {
        let mut m = self.linked.machine();
        let mut rt = self.linked.runtime();
        m.run(&mut rt, fuel)?;
        // Final accounting: meter the allocation tail and fold the
        // final resident heap into the memory high-water mark (a
        // program whose high-water is its final live set would
        // otherwise under-report the Table 4 metric).
        rt.gc.finish(&mut m);
        Ok(RunOutcome {
            output: m.output.clone(),
            stats: m.stats.clone(),
        })
    }

    /// The linked image (for inspection).
    pub fn linked(&self) -> &Linked {
        &self.linked
    }
}

/// Intermediate-representation dumps for one program (the paper's
/// Section 4 walkthrough).
#[derive(Clone, Debug, Default)]
pub struct PhaseDumps {
    /// Lambda (Figure 2's stage).
    pub lambda: String,
    /// Lmli after conversion.
    pub lmli: String,
    /// Bform before optimization (Figure 3).
    pub bform: String,
    /// Bform after optimization (Figure 4).
    pub bform_optimized: String,
    /// Instruction listing (Figures 6–7).
    pub assembly: String,
}

/// The compiler.
pub struct Compiler {
    opts: Options,
}

impl Compiler {
    /// A compiler with the given options.
    pub fn new(opts: Options) -> Compiler {
        Compiler { opts }
    }

    /// Compiles `src` (with the prelude) to a runnable executable.
    pub fn compile(&self, src: &str) -> Result<Executable> {
        til_common::with_big_stack(|| self.compile_impl(src, None))
    }

    /// Compiles and collects per-phase IR dumps.
    pub fn compile_with_dumps(&self, src: &str) -> Result<(Executable, PhaseDumps)> {
        let mut dumps = PhaseDumps::default();
        let exe = til_common::with_big_stack(|| self.compile_impl(src, Some(&mut dumps)))?;
        Ok((exe, dumps))
    }

    fn compile_impl(&self, src: &str, mut dumps: Option<&mut PhaseDumps>) -> Result<Executable> {
        let tracer = Tracer::new(self.opts.trace || til_common::trace::env_enabled());
        let mut info = CompileInfo::default();
        let mut clock = std::time::Instant::now();
        let mut last_nodes: Option<usize> = None;
        // Lap-style phase recorder: wall-clock since the previous lap,
        // plus the size of the IR the phase produced (when counted).
        let mut lap = |info: &mut CompileInfo, name: &'static str, nodes: Option<usize>| {
            let now = std::time::Instant::now();
            let seconds = (now - clock).as_secs_f64();
            clock = now;
            let ir_delta = match (last_nodes, nodes) {
                (Some(prev), Some(cur)) => Some(cur as i64 - prev as i64),
                _ => None,
            };
            if nodes.is_some() {
                last_nodes = nodes;
            }
            let mut counters: Vec<(&'static str, i64)> = Vec::new();
            if let Some(n) = nodes {
                counters.push(("ir-nodes", n as i64));
            }
            if let Some(d) = ir_delta {
                counters.push(("ir-delta", d));
            }
            tracer.event(name, seconds, &counters);
            info.phases.push(PhaseInfo {
                name,
                seconds,
                ir_nodes: nodes,
                ir_delta,
            });
        };

        // Front end.
        let prelude = til_syntax::parse(til_elab::PRELUDE)?;
        let user = til_syntax::parse(src).map_err(|d| self.render(src, d))?;
        lap(&mut info, "parse", None);
        let mut e =
            til_elab::elaborate(&[&prelude, &user]).map_err(|d| self.render(src, d))?;
        lap(&mut info, "elaborate", Some(e.program.body.size()));
        if self.opts.verify {
            til_lambda::typecheck(&e.program)?;
            lap(&mut info, "lambda-typecheck", None);
        }
        if let Some(d) = dumps.as_deref_mut() {
            d.lambda = til_lambda::print::program(&e.program);
        }

        // Lmli: representation decisions.
        let m = til_lmli::from_lambda(&e.program, &self.opts.lmli, &mut e.vars)?;
        lap(&mut info, "to-lmli", Some(m.body.size()));
        if self.opts.verify {
            til_lmli::typecheck_lmli(&m)?;
            lap(&mut info, "lmli-typecheck", None);
        }
        if let Some(d) = dumps.as_deref_mut() {
            d.lmli = til_lmli::print::program(&m);
        }

        // Bform + optimization.
        let mut b = til_bform::from_lmli(&m, &mut e.vars)?;
        lap(&mut info, "to-bform", Some(b.body.size()));
        if self.opts.verify {
            til_bform::typecheck_bform(&b)?;
            lap(&mut info, "bform-typecheck", None);
        }
        if let Some(d) = dumps.as_deref_mut() {
            d.bform = til_bform::print::program(&b);
        }
        let mut opt = self.opts.opt;
        opt.verify = self.opts.verify;
        let stats = {
            // Nest the per-pass spans under an `optimize` span.
            let _span = tracer.span("optimize-passes");
            til_opt::optimize_traced(&mut b, &mut e.vars, &opt, Some(&tracer))?
        };
        info.opt_stats = Some(stats);
        lap(&mut info, "optimize", Some(b.body.size()));
        if let Some(d) = dumps.as_deref_mut() {
            d.bform_optimized = til_bform::print::program(&b);
        }

        // Closure conversion plus the closure-stage cleanup passes.
        // Verification re-runs the closure typechecker after the
        // conversion and after every pass, attributing failures by
        // pass name (the same machinery the Bform optimizer uses).
        let copts = ClosureOptions::til(self.opts.verify);
        let (c, cstats) = {
            let _span = tracer.span("closure-passes");
            til_closure::convert_and_optimize(&b, &mut e.vars, &copts, Some(&tracer))?
        };
        let c_nodes = til_closure::passes::program_size(&c);
        info.closure_stats = Some(cstats);
        lap(&mut info, "closure", Some(c_nodes));

        // RTL and the backend.
        let rtl = til_rtl::lower(&c, self.opts.mode == Mode::Baseline)?;
        let rtl_instrs = rtl.funs.iter().map(|f| f.instrs.len()).sum::<usize>();
        lap(&mut info, "to-rtl", Some(rtl_instrs));
        if self.opts.verify {
            // Structural RTL verification (def-before-use, label
            // resolution, calling convention, representation
            // annotations)...
            til_rtl::verify_rtl(&rtl)?;
            lap(&mut info, "rtl-verify", None);
            // ...and the GC-table cross-check: every live pointer slot
            // described, no table entry naming a dead slot.
            til_backend::check_gc_tables(&rtl)?;
            lap(&mut info, "gc-check", None);
        }
        let linked = til_backend::link(&rtl, &self.opts.link)?;
        lap(&mut info, "backend", Some(linked.code.len()));
        if let Some(d) = dumps {
            use std::fmt::Write as _;
            let mut s = String::new();
            for (i, ins) in linked.code.iter().enumerate() {
                let _ = writeln!(s, "{i:6}: {ins}");
            }
            d.assembly = s;
        }
        info.code_bytes = linked.code_bytes;
        info.executable_bytes = linked.executable_bytes();
        tracer.counter("code-bytes", linked.code_bytes as i64);
        tracer.counter("executable-bytes", linked.executable_bytes() as i64);
        info.events = tracer.into_events();
        Ok(Executable { linked, info })
    }

    fn render(&self, src: &str, d: Diagnostic) -> Diagnostic {
        // Attach line/column context for user errors.
        Diagnostic {
            message: d.render(src),
            ..d
        }
    }
}

/// Convenience: compile and run with default TIL options.
pub fn run_program(src: &str, fuel: u64) -> Result<RunOutcome> {
    let exe = Compiler::new(Options::til()).compile(src)?;
    exe.run(fuel)
        .map_err(|e| Diagnostic::ice("run", e.to_string()))
}
