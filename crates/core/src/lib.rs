//! **TIL** — a type-directed optimizing compiler for core Standard ML,
//! reproducing Tarditi et al., *TIL: A Type-Directed Optimizing
//! Compiler for ML* (PLDI 1996).
//!
//! The pipeline follows the paper's Figure 1: parse/elaborate →
//! **Lambda** → **Lmli** (intensional polymorphism + type-directed
//! representation optimizations) → **Bform** (A-normal form, all
//! conventional and loop-oriented optimization) → typed closure
//! conversion → untyped representation analysis → **RTL** → register
//! allocation + GC tables → machine code for a simulated ALPHA-style
//! target with a nearly tag-free copying collector.
//!
//! # Quick start
//!
//! ```
//! use til::{Compiler, Options};
//!
//! let exe = Compiler::new(Options::til())
//!     .compile("val _ = print (Int.toString (6 * 7))")
//!     .unwrap();
//! let out = exe.run(100_000_000).unwrap();
//! assert_eq!(out.output, "42");
//! ```

use til_common::{Diagnostic, Result};

pub use til_backend::{Linked, LinkOptions};
pub use til_lmli::LmliOptions;
pub use til_opt::{OptOptions, OptStats};
pub use til_vm::{Stats, VmError};

/// The SML prelude prefixed onto every compilation unit.
pub use til_elab::PRELUDE;

/// Compilation mode: which compiler the paper's tables compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// TIL: specialized representations, nearly tag-free GC, full
    /// optimization.
    Til,
    /// The SML/NJ-like comparator: universal tagged representation,
    /// boxed values, heap-allocated frames, tagged GC.
    Baseline,
}

/// Compiler configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Compilation mode.
    pub mode: Mode,
    /// Representation choices (argument/constructor flattening, float
    /// boxing, array specialization).
    pub lmli: LmliOptions,
    /// Optimizer schedule and toggles (loop optimizations etc.).
    pub opt: OptOptions,
    /// Typecheck between all typed phases (the paper's engineering
    /// discipline; cheap and recommended).
    pub verify: bool,
    /// Heap/stack sizing.
    pub link: LinkOptions,
}

impl Options {
    /// Full TIL configuration.
    pub fn til() -> Options {
        Options {
            mode: Mode::Til,
            lmli: LmliOptions::til(),
            opt: OptOptions::til(),
            verify: true,
            link: LinkOptions::default(),
        }
    }

    /// TIL without the loop-oriented optimizations (the Table 7 /
    /// Figure 12 ablation).
    pub fn til_no_loop_opts() -> Options {
        Options {
            opt: OptOptions::til_no_loop_opts(),
            ..Options::til()
        }
    }

    /// The baseline comparator.
    pub fn baseline() -> Options {
        Options {
            mode: Mode::Baseline,
            lmli: LmliOptions::baseline(),
            opt: OptOptions::baseline(),
            verify: true,
            link: LinkOptions::default(),
        }
    }
}

/// Per-phase compile-time measurements (Table 6's metric) and sizes.
#[derive(Clone, Debug, Default)]
pub struct CompileInfo {
    /// Wall-clock seconds per phase, in pipeline order.
    pub phase_seconds: Vec<(&'static str, f64)>,
    /// Optimizer statistics.
    pub opt_stats: Option<OptStats>,
    /// Generated code size in bytes.
    pub code_bytes: usize,
    /// Executable size (code + GC tables + static data).
    pub executable_bytes: usize,
}

impl CompileInfo {
    /// Total compile time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phase_seconds.iter().map(|(_, s)| s).sum()
    }
}

/// A compiled, runnable executable.
pub struct Executable {
    linked: Linked,
    /// Compilation measurements.
    pub info: CompileInfo,
}

/// The result of running an executable.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Everything the program printed.
    pub output: String,
    /// Machine counters (time/allocation/memory metrics).
    pub stats: Stats,
}

impl Executable {
    /// Runs the program with the given instruction budget.
    pub fn run(&self, fuel: u64) -> std::result::Result<RunOutcome, VmError> {
        let mut m = self.linked.machine();
        let mut rt = self.linked.runtime();
        m.run(&mut rt, fuel)?;
        rt.gc.meter_allocation(&mut m);
        // Account the final live heap for the memory high-water mark.
        let live = m.stats.gc_copied_words;
        let _ = live;
        Ok(RunOutcome {
            output: m.output.clone(),
            stats: m.stats.clone(),
        })
    }

    /// The linked image (for inspection).
    pub fn linked(&self) -> &Linked {
        &self.linked
    }
}

/// Intermediate-representation dumps for one program (the paper's
/// Section 4 walkthrough).
#[derive(Clone, Debug, Default)]
pub struct PhaseDumps {
    /// Lambda (Figure 2's stage).
    pub lambda: String,
    /// Lmli after conversion.
    pub lmli: String,
    /// Bform before optimization (Figure 3).
    pub bform: String,
    /// Bform after optimization (Figure 4).
    pub bform_optimized: String,
    /// Instruction listing (Figures 6–7).
    pub assembly: String,
}

/// The compiler.
pub struct Compiler {
    opts: Options,
}

impl Compiler {
    /// A compiler with the given options.
    pub fn new(opts: Options) -> Compiler {
        Compiler { opts }
    }

    /// Compiles `src` (with the prelude) to a runnable executable.
    pub fn compile(&self, src: &str) -> Result<Executable> {
        til_common::with_big_stack(|| self.compile_impl(src, None))
    }

    /// Compiles and collects per-phase IR dumps.
    pub fn compile_with_dumps(&self, src: &str) -> Result<(Executable, PhaseDumps)> {
        let mut dumps = PhaseDumps::default();
        let exe = til_common::with_big_stack(|| self.compile_impl(src, Some(&mut dumps)))?;
        Ok((exe, dumps))
    }

    fn compile_impl(&self, src: &str, mut dumps: Option<&mut PhaseDumps>) -> Result<Executable> {
        let mut info = CompileInfo::default();
        let mut clock = std::time::Instant::now();
        let mut lap = |info: &mut CompileInfo, name: &'static str| {
            let now = std::time::Instant::now();
            info.phase_seconds.push((name, (now - clock).as_secs_f64()));
            clock = now;
        };

        // Front end.
        let prelude = til_syntax::parse(til_elab::PRELUDE)?;
        let user = til_syntax::parse(src).map_err(|d| self.render(src, d))?;
        lap(&mut info, "parse");
        let mut e =
            til_elab::elaborate(&[&prelude, &user]).map_err(|d| self.render(src, d))?;
        lap(&mut info, "elaborate");
        if self.opts.verify {
            til_lambda::typecheck(&e.program)?;
            lap(&mut info, "lambda-typecheck");
        }
        if let Some(d) = dumps.as_deref_mut() {
            d.lambda = til_lambda::print::program(&e.program);
        }

        // Lmli: representation decisions.
        let m = til_lmli::from_lambda(&e.program, &self.opts.lmli, &mut e.vars)?;
        lap(&mut info, "to-lmli");
        if self.opts.verify {
            til_lmli::typecheck_lmli(&m)?;
            lap(&mut info, "lmli-typecheck");
        }
        if let Some(d) = dumps.as_deref_mut() {
            d.lmli = til_lmli::print::program(&m);
        }

        // Bform + optimization.
        let mut b = til_bform::from_lmli(&m, &mut e.vars)?;
        lap(&mut info, "to-bform");
        if self.opts.verify {
            til_bform::typecheck_bform(&b)?;
            lap(&mut info, "bform-typecheck");
        }
        if let Some(d) = dumps.as_deref_mut() {
            d.bform = til_bform::print::program(&b);
        }
        let mut opt = self.opts.opt;
        opt.verify = self.opts.verify;
        let stats = til_opt::optimize(&mut b, &mut e.vars, &opt)?;
        info.opt_stats = Some(stats);
        lap(&mut info, "optimize");
        if let Some(d) = dumps.as_deref_mut() {
            d.bform_optimized = til_bform::print::program(&b);
        }

        // Closure conversion.
        let c = til_closure::closure_convert(&b, &mut e.vars)?;
        lap(&mut info, "closure-convert");
        if self.opts.verify {
            til_closure::typecheck_closure(&c)?;
            lap(&mut info, "closure-check");
        }

        // RTL and the backend.
        let rtl = til_rtl::lower(&c, self.opts.mode == Mode::Baseline)?;
        lap(&mut info, "to-rtl");
        let linked = til_backend::link(&rtl, &self.opts.link)?;
        lap(&mut info, "backend");
        if let Some(d) = dumps.as_deref_mut() {
            use std::fmt::Write as _;
            let mut s = String::new();
            for (i, ins) in linked.code.iter().enumerate() {
                let _ = writeln!(s, "{i:6}: {ins}");
            }
            d.assembly = s;
        }
        info.code_bytes = linked.code_bytes;
        info.executable_bytes = linked.executable_bytes();
        Ok(Executable { linked, info })
    }

    fn render(&self, src: &str, d: Diagnostic) -> Diagnostic {
        // Attach line/column context for user errors.
        Diagnostic {
            message: d.render(src),
            ..d
        }
    }
}

/// Convenience: compile and run with default TIL options.
pub fn run_program(src: &str, fuel: u64) -> Result<RunOutcome> {
    let exe = Compiler::new(Options::til()).compile(src)?;
    exe.run(fuel)
        .map_err(|e| Diagnostic::ice("run", e.to_string()))
}
