//! **TIL** — a type-directed optimizing compiler for core Standard ML,
//! reproducing Tarditi et al., *TIL: A Type-Directed Optimizing
//! Compiler for ML* (PLDI 1996).
//!
//! The pipeline follows the paper's Figure 1: parse/elaborate →
//! **Lambda** → **Lmli** (intensional polymorphism + type-directed
//! representation optimizations) → **Bform** (A-normal form, all
//! conventional and loop-oriented optimization) → typed closure
//! conversion → untyped representation analysis → **RTL** → register
//! allocation + GC tables → machine code for a simulated ALPHA-style
//! target with a nearly tag-free copying collector.
//!
//! # Quick start
//!
//! ```
//! use til::{Compiler, Options};
//!
//! let exe = Compiler::new(Options::til())
//!     .compile("val _ = print (Int.toString (6 * 7))")
//!     .unwrap();
//! let out = exe.run(100_000_000).unwrap();
//! assert_eq!(out.output, "42");
//! ```

use std::sync::OnceLock;
use til_common::{Diagnostic, Result, Tracer, VarSupply};

pub mod chrome;
pub mod pipeline;

pub use chrome::chrome_trace_json;
pub use pipeline::{Phase, Pipeline};
pub use til_backend::{Linked, LinkOptions};
pub use til_closure::{ClosureOptions, ClosureStats};
pub use til_common::TraceEvent;
pub use til_lmli::LmliOptions;
pub use til_opt::{OptOptions, OptStats, PassStat};
pub use til_runtime::{
    CensusClasses, CensusWhen, CollectMode, GcPause, HeapCensus, SiteCensus, DEFAULT_PAUSE_BUDGET,
};
pub use til_vm::{FuncProfile, SiteProfile, Stats, VmError};

/// The SML prelude prefixed onto every compilation unit.
pub use til_elab::PRELUDE;

/// Compilation mode: which compiler the paper's tables compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// TIL: specialized representations, nearly tag-free GC, full
    /// optimization.
    Til,
    /// The SML/NJ-like comparator: universal tagged representation,
    /// boxed values, heap-allocated frames, tagged GC.
    Baseline,
}

/// How much of the prelude's compilation a [`Compiler`] caches across
/// `compile()` calls. Every level runs the *same* compilation-unit
/// split (prelude unit + user unit, joined at elaboration), so the
/// generated code is byte-identical whether the prelude came from the
/// cache or was rebuilt; the level only decides how much work a warm
/// compile skips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreludeCache {
    /// Rebuild the prelude unit on every compile (the split still
    /// runs; nothing is stored).
    Off,
    /// Cache the parsed + elaborated prelude (the zonked Lambda
    /// skeleton and the elaborator snapshot); everything from Lmli
    /// conversion down still sees the whole program.
    Elab,
    /// Additionally cache the prelude's Lmli conversion and its
    /// typing environment: warm compiles elaborate, convert and
    /// typecheck only the user fragment, splicing it into the cached
    /// skeleton at the Lmli level.
    Lmli,
}

/// Compiler configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Compilation mode.
    pub mode: Mode,
    /// Representation choices (argument/constructor flattening, float
    /// boxing, array specialization).
    pub lmli: LmliOptions,
    /// Optimizer schedule and toggles (loop optimizations etc.).
    pub opt: OptOptions,
    /// Typecheck between all typed phases (the paper's engineering
    /// discipline; cheap and recommended).
    pub verify: bool,
    /// Stream a hierarchical phase/pass trace to stderr (wall-clock,
    /// IR node counts, size deltas). Also enabled by setting the
    /// `TIL_TRACE` environment variable; structured trace events are
    /// recorded into [`CompileInfo::events`] either way.
    pub trace: bool,
    /// Heap/stack sizing.
    pub link: LinkOptions,
    /// Worker threads for the per-function backend stages (RTL
    /// lowering, verification, GC-table checking, allocation and
    /// emission). `None` = the machine's available parallelism; the
    /// `TIL_JOBS` environment variable overrides either. The output
    /// is byte-identical for every value.
    pub jobs: Option<usize>,
    /// Prelude caching level (see [`PreludeCache`]).
    pub prelude_cache: PreludeCache,
    /// How the collector schedules its work: one stop-the-world pause
    /// per collection, or bounded incremental slices (see
    /// [`CollectMode`]). The `TIL_GC_MODE` environment variable
    /// overrides this at run time. Program results and [`Stats`] are
    /// identical under every value; only the pause structure differs.
    pub gc_mode: CollectMode,
    /// Also emit textual x86-64 through the second backend target
    /// (structurally validated and mcv-checked when [`Options::verify`]
    /// is on); retrieve it with [`Executable::asm`]. The VM image is
    /// byte-identical either way.
    pub emit_asm: bool,
    /// Mid-run heap-census cadence for profiled runs: `None` (the
    /// default) records at most one mid-run sample, and only while the
    /// run has not collected yet; `Some(n)` samples roughly every `n`
    /// retired instructions, collections or not. The
    /// `TIL_CENSUS_EVERY` environment variable overrides this at run
    /// time (`0` = the default behaviour). Strictly observational:
    /// program output and [`Stats`] are identical under every value.
    pub census_every: Option<u64>,
}

impl Options {
    /// Full TIL configuration.
    pub fn til() -> Options {
        Options {
            mode: Mode::Til,
            lmli: LmliOptions::til(),
            opt: OptOptions::til(),
            verify: true,
            trace: false,
            link: LinkOptions::default(),
            jobs: None,
            prelude_cache: PreludeCache::Elab,
            gc_mode: CollectMode::StopTheWorld,
            emit_asm: false,
            census_every: None,
        }
    }

    /// TIL without the loop-oriented optimizations (the Table 7 /
    /// Figure 12 ablation).
    pub fn til_no_loop_opts() -> Options {
        Options {
            opt: OptOptions::til_no_loop_opts(),
            ..Options::til()
        }
    }

    /// TIL representations with the optimizer disabled entirely — the
    /// differential suite's oracle configuration (O0).
    pub fn o0() -> Options {
        Options {
            opt: OptOptions::none(),
            ..Options::til()
        }
    }

    /// Every single-flag ablation of the full TIL optimizer, as
    /// `(name, options)` pairs. The differential suite compiles each
    /// generated program under all of these and compares outputs
    /// against the O0 oracle.
    pub fn ablations() -> Vec<(&'static str, Options)> {
        fn with(f: impl FnOnce(&mut OptOptions)) -> Options {
            let mut o = Options::til();
            f(&mut o.opt);
            o
        }
        vec![
            ("no-loop-opts", with(|o| o.loop_opts = false)),
            ("no-inline", with(|o| o.inline = false)),
            ("no-flatten", with(|o| o.flatten = false)),
            ("no-specialize", with(|o| o.specialize = false)),
            ("no-sink", with(|o| o.sink = false)),
            ("no-minfix", with(|o| o.minfix = false)),
            ("no-switch-cont", with(|o| o.switch_cont = false)),
        ]
    }

    /// The baseline comparator.
    pub fn baseline() -> Options {
        Options {
            mode: Mode::Baseline,
            lmli: LmliOptions::baseline(),
            opt: OptOptions::baseline(),
            verify: true,
            trace: false,
            link: LinkOptions::default(),
            jobs: None,
            prelude_cache: PreludeCache::Elab,
            gc_mode: CollectMode::StopTheWorld,
            emit_asm: false,
            census_every: None,
        }
    }

    /// Every *pair* of optimizer ablations, as `(name, options)`
    /// triples of the two disabled flags. The deep differential suite
    /// samples a seeded subset of these: single-flag ablations miss
    /// bugs that only show when two passes stop covering for each
    /// other.
    pub fn ablation_pairs() -> Vec<(String, Options)> {
        let singles = Options::ablations();
        let mut out = Vec::new();
        for i in 0..singles.len() {
            for j in (i + 1)..singles.len() {
                let (na, _) = &singles[i];
                let (nb, ob) = &singles[j];
                let mut o = singles[i].1.clone();
                // Apply the second ablation on top of the first: the
                // single-flag constructors each clear exactly one
                // field, so merging = copying the cleared field over.
                merge_disabled(&mut o.opt, &ob.opt);
                out.push((format!("{na}+{nb}"), o));
            }
        }
        out
    }
}

/// Copies every disabled optimizer flag of `b` into `a` (used to
/// compose two single-flag ablations into a pair).
fn merge_disabled(a: &mut OptOptions, b: &OptOptions) {
    a.loop_opts &= b.loop_opts;
    a.inline &= b.inline;
    a.flatten &= b.flatten;
    a.specialize &= b.specialize;
    a.sink &= b.sink;
    a.minfix &= b.minfix;
    a.switch_cont &= b.switch_cont;
}

/// One pipeline phase's measurements.
#[derive(Clone, Debug)]
pub struct PhaseInfo {
    /// Phase name, in pipeline order (e.g. `"parse"`, `"optimize"`).
    pub name: &'static str,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// IR node count after the phase (None for phases without a
    /// counted IR, e.g. parse and backend).
    pub ir_nodes: Option<usize>,
    /// Node-count change relative to the previous counted phase
    /// (negative = the phase shrank the program).
    pub ir_delta: Option<i64>,
}

/// Per-phase compile-time measurements (Table 6's metric) and sizes.
#[derive(Clone, Debug, Default)]
pub struct CompileInfo {
    /// Per-phase wall-clock and IR-size measurements, in pipeline
    /// order.
    pub phases: Vec<PhaseInfo>,
    /// Optimizer statistics (including per-pass aggregates).
    pub opt_stats: Option<OptStats>,
    /// Closure-stage statistics (conversion plus cleanup passes).
    pub closure_stats: Option<ClosureStats>,
    /// Generated code size in bytes.
    pub code_bytes: usize,
    /// Executable size (code + GC tables + static data).
    pub executable_bytes: usize,
    /// The full structured trace (phases plus nested optimizer
    /// passes), in span-closing order.
    pub events: Vec<TraceEvent>,
}

impl CompileInfo {
    /// Total compile time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Seconds spent in the named phase (0.0 if it did not run).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.seconds)
            .sum()
    }
}

/// A compiled, runnable executable.
pub struct Executable {
    linked: Linked,
    /// Textual x86-64 from the second backend target (only with
    /// [`Options::emit_asm`]).
    asm: Option<til_backend::X64Module>,
    /// Compilation measurements.
    pub info: CompileInfo,
    /// Echo the runtime spans of profiled runs to stderr (inherited
    /// from the compile's tracing setting).
    trace_echo: bool,
    /// Collection scheduling (inherited from [`Options::gc_mode`];
    /// `TIL_GC_MODE` overrides it at run time).
    gc_mode: CollectMode,
    /// Mid-run census cadence (inherited from
    /// [`Options::census_every`]; `TIL_CENSUS_EVERY` overrides it at
    /// run time).
    census_every: Option<u64>,
}

/// A profiled run's observability payload. Every field is a pure
/// function of the deterministic instruction stream: profiles are
/// byte-identical across runs and machines, and collecting them leaves
/// [`Stats`] untouched.
#[derive(Clone, Debug)]
pub struct RunProfile {
    /// Per-opcode retired-instruction histogram (nonzero entries, in
    /// fixed opcode order).
    pub opcodes: Vec<(&'static str, u64)>,
    /// Per-function profiles in code order (plus a trailing
    /// `"(stubs)"` bucket when linker stub code executed).
    pub functions: Vec<FuncProfile>,
    /// GC pause records, in collection order. Under
    /// [`CollectMode::StopTheWorld`] there is exactly one per
    /// collection; under [`CollectMode::Incremental`] each collection
    /// cycle contributes one record per slice (slices of one cycle
    /// share a [`GcPause::cycle`] value).
    pub pauses: Vec<GcPause>,
    /// Type-indexed heap censuses: one per collection
    /// ([`CensusWhen::AfterGc`]), mid-run samples per the census
    /// cadence ([`CensusWhen::MidRun`] — by default at most one, only
    /// for runs that never collect), plus an exit-time sample
    /// ([`CensusWhen::Exit`]). Each sample also carries a per-site
    /// breakdown ([`HeapCensus::sites`]).
    pub censuses: Vec<HeapCensus>,
    /// Per-allocation-site lifetime statistics (words allocated,
    /// survival histogram by collection count, words live at exit),
    /// sorted by site pc with the `(rt)` pseudo-site last. Site
    /// identity is carried across semispace flips by the collector
    /// reporting every forwarding copy to the profiler's heap side
    /// map.
    pub sites: Vec<SiteProfile>,
}

impl RunProfile {
    /// The longest pause cost over the run (0 when nothing collected).
    pub fn max_pause(&self) -> u64 {
        self.pauses.iter().map(|p| p.pause_cost).max().unwrap_or(0)
    }

    /// Nearest-rank percentile of the pause-cost distribution
    /// (`q` in `(0, 100]`; 0 when nothing collected). `q = 100` is
    /// [`max_pause`](RunProfile::max_pause).
    pub fn pause_percentile(&self, q: f64) -> u64 {
        let mut costs: Vec<u64> = self.pauses.iter().map(|p| p.pause_cost).collect();
        if costs.is_empty() {
            return 0;
        }
        costs.sort_unstable();
        let rank = (q / 100.0 * costs.len() as f64).ceil() as usize;
        costs[rank.clamp(1, costs.len()) - 1]
    }

    /// The top `k` allocation sites by words allocated (ties broken by
    /// site pc, so the ranking is deterministic).
    pub fn top_sites(&self, k: usize) -> Vec<&SiteProfile> {
        let mut v: Vec<&SiteProfile> = self.sites.iter().filter(|s| s.alloc_words > 0).collect();
        v.sort_by(|a, b| b.alloc_words.cmp(&a.alloc_words).then_with(|| a.pc.cmp(&b.pc)));
        v.truncate(k);
        v
    }

    /// Slice counts per collection cycle, in cycle order. Every entry
    /// is 1 under [`CollectMode::StopTheWorld`].
    pub fn cycle_slices(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for p in &self.pauses {
            let cycle = p.cycle as usize;
            if out.len() <= cycle {
                out.resize(cycle + 1, 0);
            }
            out[cycle] += 1;
        }
        out
    }

    /// The top `k` functions by instructions retired (ties broken by
    /// name, so the ranking is deterministic).
    pub fn top_functions(&self, k: usize) -> Vec<&FuncProfile> {
        let mut v: Vec<&FuncProfile> = self.functions.iter().filter(|f| f.instrs > 0).collect();
        v.sort_by(|a, b| b.instrs.cmp(&a.instrs).then_with(|| a.name.cmp(&b.name)));
        v.truncate(k);
        v
    }

    /// Renders the profile as trace events on the deterministic
    /// instruction timeline (1 instruction-equivalent = 1 µs, so a
    /// printed "ms" is a thousand instruction-equivalents). Children
    /// (pauses, censuses, hot functions) precede the depth-0 `run`
    /// event, matching the tracer's children-close-first convention.
    pub fn trace_events(&self, stats: &Stats) -> Vec<TraceEvent> {
        let at_us = |n: u64| n as f64 * 1e-6;
        let mut evs = Vec::new();
        for (i, p) in self.pauses.iter().enumerate() {
            evs.push(TraceEvent {
                name: "gc-pause".into(),
                depth: 1,
                start: at_us(p.at_instr),
                seconds: at_us(p.pause_cost),
                counters: vec![
                    ("trigger-pc", p.trigger_pc as i64),
                    ("cost", p.pause_cost as i64),
                    ("copied-words", p.copied_words as i64),
                    ("live-words", p.live_words as i64),
                ],
            });
            // Attach the cycle's census to its last slice (for
            // stop-the-world pauses, the pause itself).
            let last_of_cycle = self.pauses.get(i + 1).is_none_or(|q| q.cycle != p.cycle);
            if last_of_cycle {
                if let Some(c) = self
                    .censuses
                    .iter()
                    .find(|c| c.after_gc() == Some(p.cycle))
                {
                    evs.push(census_event(c, at_us(p.at_instr)));
                }
            }
        }
        for c in &self.censuses {
            match c.when {
                CensusWhen::MidRun { at_instr, .. } => evs.push(census_event(c, at_us(at_instr))),
                CensusWhen::Exit => evs.push(census_event(c, at_us(stats.instrs))),
                CensusWhen::AfterGc(_) => {}
            }
        }
        for s in self.top_sites(8) {
            evs.push(TraceEvent {
                name: format!("site {}", s.name),
                depth: 1,
                start: 0.0,
                seconds: 0.0,
                counters: vec![
                    ("alloc-words", s.alloc_words as i64),
                    (
                        "survived-1-words",
                        s.survived_words.first().copied().unwrap_or(0) as i64,
                    ),
                    ("live-at-exit-words", s.live_at_exit_words as i64),
                ],
            });
        }
        for f in self.top_functions(8) {
            evs.push(TraceEvent {
                name: format!("fn {}", f.name),
                depth: 1,
                start: 0.0,
                seconds: at_us(f.instrs),
                counters: vec![
                    ("instrs", f.instrs as i64),
                    ("alloc-bytes", f.alloc_bytes as i64),
                    ("traps", f.traps as i64),
                ],
            });
        }
        evs.push(TraceEvent {
            name: "run".into(),
            depth: 0,
            start: 0.0,
            seconds: at_us(stats.time()),
            counters: vec![
                ("instrs", stats.instrs as i64),
                ("rt-cost", stats.rt_cost as i64),
                ("gc-count", stats.gc_count as i64),
                ("allocated-bytes", stats.allocated_bytes as i64),
                ("max-live-words", stats.max_live_words as i64),
            ],
        });
        evs
    }
}

fn census_event(c: &HeapCensus, start: f64) -> TraceEvent {
    let mut counters = vec![("after-gc", c.after_gc().map_or(-1, |i| i as i64))];
    if let CensusWhen::MidRun { seq, .. } = c.when {
        counters.push(("midrun-seq", seq as i64));
    }
    TraceEvent {
        name: "heap-census".into(),
        depth: 1,
        start,
        seconds: 0.0,
        counters: {
            counters.extend([
                ("record-words", c.classes.record_words as i64),
                ("array-words", c.classes.array_words as i64),
                ("string-words", c.classes.string_words as i64),
                ("closure-words", c.classes.closure_words as i64),
                ("exn-words", c.classes.exn_words as i64),
                ("unknown-words", c.classes.unknown_words as i64),
                ("total-words", c.classes.total_words() as i64),
            ]);
            counters
        },
    }
}

/// `TIL_CENSUS_EVERY` parsed as a run-time override: `Some(Some(n))`
/// for a cadence of `n` instructions, `Some(None)` when set to `0`
/// (force the default single-sample behaviour), `None` when unset or
/// unparsable (fall back to [`Options::census_every`]).
fn census_every_from_env() -> Option<Option<u64>> {
    let v = std::env::var("TIL_CENSUS_EVERY").ok()?;
    let n: u64 = v.trim().parse().ok()?;
    Some((n > 0).then_some(n))
}

/// The result of running an executable.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Everything the program printed.
    pub output: String,
    /// Machine counters (time/allocation/memory metrics). Identical
    /// whether or not the run was profiled.
    pub stats: Stats,
    /// The observability payload of a profiled run (`None` when
    /// profiling was off).
    pub profile: Option<RunProfile>,
}

impl Executable {
    /// Runs the program with the given instruction budget. Profiling
    /// follows the `TIL_PROFILE` environment variable.
    pub fn run(&self, fuel: u64) -> std::result::Result<RunOutcome, VmError> {
        self.run_with(fuel, til_vm::profile::env_enabled())
    }

    /// Runs the program, explicitly profiled or not. A profiled run
    /// additionally returns a [`RunProfile`] (and echoes runtime spans
    /// to stderr when the compile traced); its `Stats` are identical
    /// to an unprofiled run's.
    pub fn run_with(&self, fuel: u64, profile: bool) -> std::result::Result<RunOutcome, VmError> {
        self.run_with_gc_mode(fuel, profile, CollectMode::from_env().unwrap_or(self.gc_mode))
    }

    /// Runs under an explicit collection-scheduling mode, ignoring
    /// both the compile-time [`Options::gc_mode`] and `TIL_GC_MODE`
    /// (the differential suite uses this to drive one compiled image
    /// through both modes).
    pub fn run_with_gc_mode(
        &self,
        fuel: u64,
        profile: bool,
        gc_mode: CollectMode,
    ) -> std::result::Result<RunOutcome, VmError> {
        let mut m = self.linked.machine();
        let mut rt = self.linked.runtime();
        rt.gc.collect_mode = gc_mode;
        rt.gc
            .set_census_every(census_every_from_env().unwrap_or(self.census_every));
        if profile {
            m.profiler = Some(Box::new(
                til_vm::Profiler::new(self.linked.fun_ranges.clone())
                    .with_exn_allocs(self.linked.exn_alloc_pcs.clone()),
            ));
            let fun_code_start = self
                .linked
                .fun_ranges
                .first()
                .map_or(self.linked.code.len() as u32, |r| r.start);
            rt.gc.profile = Some(til_runtime::GcProfile::new(fun_code_start));
        }
        m.run(&mut rt, fuel)?;
        // Final accounting: meter the allocation tail and fold the
        // final resident heap into the memory high-water mark (a
        // program whose high-water is its final live set would
        // otherwise under-report the Table 4 metric).
        rt.gc.finish(&mut m);
        let profile = m.profiler.take().map(|p| {
            let g = rt.gc.profile.take().unwrap_or_default();
            RunProfile {
                opcodes: p.opcode_histogram(),
                functions: p.function_profiles(),
                pauses: g.pauses,
                censuses: g.censuses,
                sites: p.site_profiles(),
            }
        });
        if let (Some(rp), true) = (&profile, self.trace_echo) {
            Tracer::new(true).replay_events(rp.trace_events(&m.stats));
        }
        Ok(RunOutcome {
            output: m.output.clone(),
            stats: m.stats.clone(),
            profile,
        })
    }

    /// The linked image (for inspection).
    pub fn linked(&self) -> &Linked {
        &self.linked
    }

    /// The textual x86-64 module, when compiled with
    /// [`Options::emit_asm`].
    pub fn asm(&self) -> Option<&til_backend::X64Module> {
        self.asm.as_ref()
    }
}

/// Intermediate-representation dumps for one program (the paper's
/// Section 4 walkthrough).
#[derive(Clone, Debug, Default)]
pub struct PhaseDumps {
    /// Lambda (Figure 2's stage).
    pub lambda: String,
    /// Lmli after conversion.
    pub lmli: String,
    /// Bform before optimization (Figure 3).
    pub bform: String,
    /// Bform after optimization (Figure 4).
    pub bform_optimized: String,
    /// Instruction listing (Figures 6–7).
    pub assembly: String,
}

/// The prelude's compilation state, computed once per [`Compiler`]
/// (lazily, on the first `compile()`) and shared by every subsequent
/// call. Cold and warm compiles run the same split code path, so the
/// cache cannot change the generated code — only how often this is
/// rebuilt.
struct CachedPrelude {
    /// Elaborator snapshot + zonked Lambda skeleton with its hole.
    unit: til_elab::PreludeUnit,
    /// Lambda typing environment at the hole (captured when
    /// verification is on; drives fragment typechecking at the Lmli
    /// cache level).
    lambda_env: Option<til_lambda::typecheck::FragmentEnv>,
    /// The Lmli-level extension (only at [`PreludeCache::Lmli`]).
    lmli: Option<LmliPrelude>,
}

/// The prelude converted to Lmli: the skeleton program, the
/// conversion environment at the hole, the Lmli typing environment,
/// and the variable supply after conversion (user elaboration resumes
/// from it so fragment ids never collide with skeleton ids).
struct LmliPrelude {
    skel: til_lmli::MProgram,
    fcx: til_lmli::FragmentCx,
    tc_env: Option<til_lmli::FragmentTcEnv>,
    vars_after: VarSupply,
}

/// The compiler.
pub struct Compiler {
    opts: Options,
    prelude: OnceLock<CachedPrelude>,
}

impl Compiler {
    /// A compiler with the given options.
    pub fn new(opts: Options) -> Compiler {
        Compiler {
            opts,
            prelude: OnceLock::new(),
        }
    }

    /// Compiles `src` (with the prelude) to a runnable executable.
    pub fn compile(&self, src: &str) -> Result<Executable> {
        til_common::with_big_stack(|| self.compile_impl(src, None))
    }

    /// Compiles and collects per-phase IR dumps.
    pub fn compile_with_dumps(&self, src: &str) -> Result<(Executable, PhaseDumps)> {
        let mut dumps = PhaseDumps::default();
        let exe = til_common::with_big_stack(|| self.compile_impl(src, Some(&mut dumps)))?;
        Ok((exe, dumps))
    }

    /// Builds the prelude unit (parse → elaborate → typecheck → at
    /// the Lmli cache level, convert + typecheck), recording each
    /// step as a `prelude-*` phase. Runs once per compiler when the
    /// cache is on; every compile when it is off.
    fn build_prelude(&self, pl: &mut Pipeline) -> Result<CachedPrelude> {
        let past = pl.run(Phase::new("prelude-parse"), || {
            til_syntax::parse(til_elab::PRELUDE)
        })?;
        let unit = pl.run(
            Phase::new("prelude-elaborate")
                .count(|u: &til_elab::PreludeUnit| u.skeleton().size()),
            || til_elab::prelude_unit(&past),
        )?;
        // The skeleton typecheck doubles as the capture of the typing
        // environment at the hole, so it runs as its own phase (a
        // verifier cannot return a value).
        let lambda_env = if self.opts.verify {
            Some(pl.run(Phase::new("prelude-lambda-typecheck"), || {
                til_lambda::typecheck::typecheck_prelude(&unit.skeleton_program(), unit.hole())
            })?)
        } else {
            None
        };
        let lmli = if self.opts.prelude_cache == PreludeCache::Lmli {
            let skel_prog = unit.skeleton_program();
            let mut vars = unit.vars();
            let (skel, fcx) = pl.run(
                Phase::new("prelude-to-lmli")
                    .count(|t: &(til_lmli::MProgram, til_lmli::FragmentCx)| t.0.body.size()),
                || til_lmli::from_lambda_prelude(&skel_prog, &self.opts.lmli, &mut vars, unit.hole()),
            )?;
            let tc_env = if self.opts.verify {
                Some(pl.run(Phase::new("prelude-lmli-typecheck"), || {
                    til_lmli::typecheck_lmli_prelude(&skel, unit.hole())
                })?)
            } else {
                None
            };
            Some(LmliPrelude {
                skel,
                fcx,
                tc_env,
                vars_after: vars,
            })
        } else {
            None
        };
        Ok(CachedPrelude {
            unit,
            lambda_env,
            lmli,
        })
    }

    fn compile_impl(&self, src: &str, mut dumps: Option<&mut PhaseDumps>) -> Result<Executable> {
        let tracer = Tracer::new(self.opts.trace || til_common::trace::env_enabled());
        let jobs = til_common::par::jobs(self.opts.jobs);
        let mut pl = Pipeline::new(&tracer, self.opts.verify);

        // ---- Prelude unit: from the per-compiler cache, or rebuilt.
        // A warm compile records a `prelude-cache-hit` counter and no
        // `prelude-*` phases at all.
        let rebuilt; // keeps an uncached build alive (PreludeCache::Off)
        let prelude: &CachedPrelude = match self.opts.prelude_cache {
            PreludeCache::Off => {
                rebuilt = self.build_prelude(&mut pl)?;
                &rebuilt
            }
            PreludeCache::Elab | PreludeCache::Lmli => {
                if let Some(c) = self.prelude.get() {
                    tracer.counter("prelude-cache-hit", 1);
                    c
                } else {
                    let built = self.build_prelude(&mut pl)?;
                    // A concurrent compile may have won the race;
                    // both builds are identical, so either works.
                    let _ = self.prelude.set(built);
                    self.prelude.get().expect("cache was just populated")
                }
            }
        };

        // ---- User unit: parse, elaborate against the snapshot, join.
        let user = pl.run(Phase::new("parse"), || {
            til_syntax::parse(src).map_err(|d| self.render(src, d))
        })?;
        let (m, mut vars) = match &prelude.lmli {
            None => {
                // Join at the Lambda level: splice the user body into
                // the skeleton and run the whole program downstream.
                let e = pl.run(
                    Phase::new("elaborate")
                        .count(|e: &til_elab::Elaborated| e.program.body.size())
                        .verify("lambda-typecheck", |e: &til_elab::Elaborated| {
                            til_lambda::typecheck(&e.program).map(|_| ())
                        }),
                    || {
                        til_elab::elaborate_user(&prelude.unit, &user)
                            .map_err(|d| self.render(src, d))
                    },
                )?;
                if let Some(d) = dumps.as_deref_mut() {
                    d.lambda = til_lambda::print::program(&e.program);
                }
                let mut vars = e.vars;
                let m = pl.run(
                    Phase::new("to-lmli")
                        .count(|m: &til_lmli::MProgram| m.body.size())
                        .verify("lmli-typecheck", |m: &til_lmli::MProgram| {
                            til_lmli::typecheck_lmli(m).map(|_| ())
                        }),
                    || til_lmli::from_lambda(&e.program, &self.opts.lmli, &mut vars),
                )?;
                (m, vars)
            }
            Some(lm) => {
                // Join at the Lmli level: only the user fragment is
                // elaborated, converted and typechecked; the cached
                // skeleton supplies the rest.
                let (frag, mut vars) = pl.run(
                    Phase::new("elaborate")
                        .count(|t: &(til_lambda::LProgram, VarSupply)| t.0.body.size())
                        .verify("lambda-typecheck", |t: &(til_lambda::LProgram, VarSupply)| {
                            let env = prelude.lambda_env.as_ref().ok_or_else(|| {
                                Diagnostic::ice("pipeline", "verify on but no captured prelude env")
                            })?;
                            til_lambda::typecheck::typecheck_fragment(&t.0, env).map(|_| ())
                        }),
                    || {
                        let u = til_elab::elaborate_user_fragment(
                            &prelude.unit,
                            &user,
                            Some(lm.vars_after.clone()),
                        )
                        .map_err(|d| self.render(src, d))?;
                        let vars = u.vars.clone();
                        Ok((
                            til_lambda::LProgram {
                                data_env: u.data_env,
                                exn_env: u.exn_env,
                                body: u.body,
                                body_ty: til_lambda::ty::LTy::unit(),
                            },
                            vars,
                        ))
                    },
                )?;
                if let Some(d) = dumps.as_deref_mut() {
                    let mut body = prelude.unit.skeleton().clone();
                    body.splice_var(prelude.unit.hole(), &frag.body);
                    d.lambda = til_lambda::print::program(&til_lambda::LProgram {
                        data_env: frag.data_env.clone(),
                        exn_env: frag.exn_env.clone(),
                        body,
                        body_ty: til_lambda::ty::LTy::unit(),
                    });
                }
                let m_frag = pl.run(
                    Phase::new("to-lmli")
                        .count(|m: &til_lmli::MProgram| m.body.size())
                        .verify("lmli-typecheck", |m: &til_lmli::MProgram| {
                            let env = lm.tc_env.as_ref().ok_or_else(|| {
                                Diagnostic::ice("pipeline", "verify on but no captured lmli env")
                            })?;
                            til_lmli::typecheck_lmli_fragment(m, env).map(|_| ())
                        }),
                    || til_lmli::from_lambda_fragment(&frag, &self.opts.lmli, &mut vars, &lm.fcx),
                )?;
                let mut body = lm.skel.body.clone();
                let spliced = body.splice_var(prelude.unit.hole(), &m_frag.body);
                debug_assert_eq!(spliced, 1, "the Lmli skeleton has exactly one hole");
                let m = til_lmli::MProgram {
                    data: m_frag.data,
                    exns: m_frag.exns,
                    body,
                    con: lm.skel.con.clone(),
                };
                (m, vars)
            }
        };
        // Drop the dead weight of the joined prelude before the rest
        // of the pipeline sees it: unused prelude bindings would
        // otherwise ride through Bform conversion, typechecking, and
        // optimization on every compile just to be dead-code
        // eliminated at the end. Runs on every path (cached or not) so
        // outputs stay identical across cache states.
        let mut m = m;
        pl.run(
            Phase::new("lmli-prune").count(|t: &(usize, usize)| t.1),
            || {
                let removed = til_lmli::prune_dead(&mut m);
                Ok((removed, m.body.size()))
            },
        )?;
        if let Some(d) = dumps.as_deref_mut() {
            d.lmli = til_lmli::print::program(&m);
        }

        // ---- Bform + optimization.
        let mut b = pl.run(
            Phase::new("to-bform")
                .count(|b: &til_bform::BProgram| b.body.size())
                .verify("bform-typecheck", |b: &til_bform::BProgram| {
                    til_bform::typecheck_bform(b).map(|_| ())
                }),
            || til_bform::from_lmli(&m, &mut vars),
        )?;
        if let Some(d) = dumps.as_deref_mut() {
            d.bform = til_bform::print::program(&b);
        }
        let mut opt = self.opts.opt;
        opt.verify = self.opts.verify;
        let (stats, _) = pl.run(
            Phase::new("optimize").count(|t: &(OptStats, usize)| t.1),
            || {
                // Nest the per-pass spans under an `optimize` span.
                let _span = tracer.span("optimize-passes");
                let stats = til_opt::optimize_traced(&mut b, &mut vars, &opt, Some(&tracer))?;
                Ok((stats, b.body.size()))
            },
        )?;
        pl.info_mut().opt_stats = Some(stats);
        if let Some(d) = dumps.as_deref_mut() {
            d.bform_optimized = til_bform::print::program(&b);
        }

        // ---- Closure conversion plus the closure-stage cleanup
        // passes. Verification re-runs the closure typechecker after
        // the conversion and after every pass, attributing failures
        // by pass name (the same machinery the Bform optimizer uses).
        let copts = ClosureOptions::til(self.opts.verify);
        let (c, cstats) = pl.run(
            Phase::new("closure").count(|t: &(til_closure::CProgram, ClosureStats)| t.0.size()),
            || {
                let _span = tracer.span("closure-passes");
                til_closure::convert_and_optimize(&b, &mut vars, &copts, Some(&tracer))
            },
        )?;
        pl.info_mut().closure_stats = Some(cstats);

        // ---- RTL and the backend: per-function work (lowering,
        // verification, GC-table checks, allocation, emission) fans
        // out over `jobs` workers and joins in function order.
        let rtl = pl.run(
            Phase::new("to-rtl")
                .count(|r: &til_rtl::RtlProgram| {
                    r.funs.iter().map(|f| f.instrs.len()).sum::<usize>()
                })
                // Structural RTL verification (def-before-use, label
                // resolution, calling convention, representation
                // consistency)...
                .verify("rtl-verify", {
                    let tr = &tracer;
                    move |r: &til_rtl::RtlProgram| til_rtl::verify_rtl_jobs(r, jobs, Some(tr))
                })
                // ...and the GC-table cross-check: every live pointer
                // slot described, no table entry naming a dead slot.
                .verify("gc-check", {
                    let tr = &tracer;
                    move |r: &til_rtl::RtlProgram| til_backend::check_gc_tables_jobs(r, jobs, Some(tr))
                }),
            || til_rtl::lower(&c, self.opts.mode == Mode::Baseline, jobs, Some(&tracer)),
        )?;
        let mut link_opts = self.opts.link;
        link_opts.jobs = jobs;
        let linked = pl.run(
            Phase::new("backend")
                .count(|l: &Linked| l.code.len())
                // The machine-code verifier: abstract interpretation
                // over the *linked* image — control-flow integrity,
                // calling convention, and an independent re-derivation
                // of the GC tables from the code alone.
                .verify("mc-verify", {
                    let tr = &tracer;
                    move |l: &Linked| til_backend::mcv::verify_linked(l, jobs, Some(tr))
                }),
            || til_backend::link(&rtl, &link_opts, Some(&tracer)),
        )?;
        // The second target: textual x86-64 from the same allocated
        // LIR, with its own structural validation and per-target mcv
        // rules. Runs after the link so a VM-side verifier failure
        // wins, and never perturbs the linked image.
        let asm = if self.opts.emit_asm {
            Some(pl.run(
                Phase::new("emit-x64")
                    .count(|m: &til_backend::X64Module| {
                        m.funs.iter().map(|f| f.ops.len()).sum::<usize>()
                    })
                    .verify("x64-validate", |m: &til_backend::X64Module| {
                        til_backend::targets::x64::validate(m)
                            .map_err(|e| Diagnostic::ice("x64-validate", e))
                    })
                    .verify("mc-verify-x64", til_backend::mcv::x64::verify),
                || Ok(til_backend::emit_x64(&rtl)),
            )?)
        } else {
            None
        };
        if let Some(d) = dumps {
            use std::fmt::Write as _;
            let mut s = String::new();
            for (i, ins) in linked.code.iter().enumerate() {
                let _ = writeln!(s, "{i:6}: {ins}");
            }
            d.assembly = s;
        }
        let mut info = pl.into_info();
        info.code_bytes = linked.code_bytes;
        info.executable_bytes = linked.executable_bytes();
        tracer.counter("code-bytes", linked.code_bytes as i64);
        tracer.counter("executable-bytes", linked.executable_bytes() as i64);
        let trace_echo = tracer.echoing();
        info.events = tracer.into_events();
        Ok(Executable {
            linked,
            asm,
            info,
            trace_echo,
            gc_mode: self.opts.gc_mode,
            census_every: self.opts.census_every,
        })
    }

    fn render(&self, src: &str, d: Diagnostic) -> Diagnostic {
        // Attach line/column context for user errors.
        Diagnostic {
            message: d.render(src),
            ..d
        }
    }
}

/// Convenience: compile and run with default TIL options.
pub fn run_program(src: &str, fuel: u64) -> Result<RunOutcome> {
    let exe = Compiler::new(Options::til()).compile(src)?;
    exe.run(fuel)
        .map_err(|e| Diagnostic::ice("run", e.to_string()))
}
