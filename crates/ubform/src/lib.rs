//! **Ubform** — the untyped representation layer (paper §3.5:
//! "conversion to an untyped language with gc info").
//!
//! After closure conversion the types' only remaining job is to say how
//! values are *represented*: this crate computes, for every
//! constructor, (a) its value representation ([`VRep`] — the paper's
//! `INT`/`TRACE`/... variable annotations, including the
//! `Computed` case where the representation is named by a run-time
//! type), (b) the run-time type-representation recipe ([`RepExpr`])
//! that intensional polymorphism passes around, and (c) the per-program
//! datatype table the runtime's structural equality interprets.

use til_common::{Diagnostic, Result};
use til_lmli::con::{CVar, Con};
use til_lmli::data::{DataRep, MDataEnv};
use til_runtime::{RepExpr, RtData, RtDataRep};

/// The representation of a value (the paper's variable annotations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VRep {
    /// Untraced machine word (ints, chars, enums).
    Int,
    /// Raw 64-bit float bits (only transiently outside float arrays).
    Float,
    /// Traced pointer (possibly a small datatype constant).
    Trace,
    /// Unknown: the constructor variable's run-time representation
    /// decides.
    Computed(CVar),
}

/// Computes the value representation of a constructor.
pub fn vrep(c: &Con, data: &MDataEnv) -> VRep {
    let c = c.normalize(&|id| data.is_enum(id));
    match c {
        Con::Int => VRep::Int,
        Con::Float => VRep::Float,
        Con::Var(v) => VRep::Computed(v),
        Con::Data(id, _) if data.is_enum(id) => VRep::Int,
        Con::Typecase { .. } => match c {
            // An irreducible typecase over a variable: conservative.
            Con::Typecase { scrut, .. } => match *scrut {
                Con::Var(v) => VRep::Computed(v),
                _ => VRep::Trace,
            },
            _ => unreachable!(),
        },
        _ => VRep::Trace,
    }
}

/// Computes the run-time representation recipe of a constructor, with
/// `Param(i)` for the i-th entry of `cparams`.
pub fn rep_expr(c: &Con, cparams: &[CVar], data: &MDataEnv) -> Result<RepExpr> {
    let c = c.normalize(&|id| data.is_enum(id));
    go(&c, cparams, data)
}

fn go(c: &Con, cparams: &[CVar], data: &MDataEnv) -> Result<RepExpr> {
    Ok(match c {
        Con::Int => RepExpr::Int,
        Con::Float | Con::Boxed => RepExpr::Float,
        Con::Str => RepExpr::Str,
        Con::Exn => RepExpr::Exn,
        Con::Arrow { .. } => RepExpr::Arrow,
        Con::Record(fs) => RepExpr::Record(
            fs.iter()
                .map(|f| go(f, cparams, data))
                .collect::<Result<_>>()?,
        ),
        Con::Array(e) | Con::SpecArray(e) => RepExpr::Array(Box::new(go(e, cparams, data)?)),
        Con::Data(id, args) => {
            if data.is_enum(*id) {
                RepExpr::Int
            } else {
                RepExpr::Data(
                    id.0,
                    args.iter()
                        .map(|a| go(a, cparams, data))
                        .collect::<Result<_>>()?,
                )
            }
        }
        Con::Var(v) => {
            let i = cparams.iter().position(|c| c == v).ok_or_else(|| {
                Diagnostic::ice("ubform", format!("constructor variable {v} has no rep slot"))
            })?;
            RepExpr::Param(i)
        }
        Con::Typecase { .. } => {
            return Err(Diagnostic::ice(
                "ubform",
                "irreducible typecase constructor reached representation analysis",
            ))
        }
    })
}

/// Builds the runtime datatype table for structural equality.
pub fn data_table(data: &MDataEnv) -> Result<Vec<RtData>> {
    let mut out = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let md = data.get(til_lambda::DataId(i as u32));
        let rep = match md.rep {
            DataRep::Enum => RtDataRep::Enum,
            DataRep::Tagless => RtDataRep::Tagless,
            DataRep::Tagged => RtDataRep::Tagged,
            DataRep::Boxed => RtDataRep::Boxed,
        };
        let cons = md
            .cons
            .iter()
            .map(|c| {
                c.as_ref()
                    .map(|fields| {
                        fields
                            .iter()
                            .map(|f| rep_expr(f, &md.params, data))
                            .collect::<Result<Vec<_>>>()
                    })
                    .transpose()
            })
            .collect::<Result<Vec<_>>>()?;
        out.push(RtData { rep, cons });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> MDataEnv {
        let mut tvs = til_lmli::con::CVarSupply::new();
        let a = tvs.fresh();
        let mut e = MDataEnv::new();
        // bool (enum)
        e.push(til_lmli::MData {
            name: til_common::Symbol::intern("bool"),
            params: vec![],
            rep: DataRep::Enum,
            cons: vec![None, None],
        });
        // list
        e.push(til_lmli::MData {
            name: til_common::Symbol::intern("list"),
            params: vec![a],
            rep: DataRep::Tagless,
            cons: vec![
                None,
                Some(vec![
                    Con::Var(a),
                    Con::Data(til_lambda::DataId(1), vec![Con::Var(a)]),
                ]),
            ],
        });
        e
    }

    #[test]
    fn vreps_match_paper_classes() {
        let e = env();
        assert_eq!(vrep(&Con::Int, &e), VRep::Int);
        assert_eq!(vrep(&Con::Boxed, &e), VRep::Trace);
        assert_eq!(vrep(&Con::Data(til_lambda::DataId(0), vec![]), &e), VRep::Int);
        assert_eq!(
            vrep(&Con::Data(til_lambda::DataId(1), vec![Con::Int]), &e),
            VRep::Trace
        );
    }

    #[test]
    fn rep_exprs_translate_params() {
        let e = env();
        let md = e.get(til_lambda::DataId(1)).clone();
        let r = rep_expr(&md.cons[1].as_ref().unwrap()[0], &md.params, &e).unwrap();
        assert_eq!(r, RepExpr::Param(0));
    }

    #[test]
    fn data_table_builds() {
        let e = env();
        let t = data_table(&e).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].rep, RtDataRep::Enum);
        assert!(t[1].cons[1].is_some());
    }
}
