//! Structural verifier for RTL (the machine-checkable counterpart of
//! the Bform and closure typecheckers, pushed one stage further down):
//!
//! * every pseudo-register is defined on every path before it is used
//!   (forward must-defined dataflow over the same CFG the backend's
//!   liveness uses, including the `PushHandler` → handler edge);
//! * every referenced label resolves to exactly one `Label`
//!   instruction and every handler slot is within the declared depth;
//! * the calling convention is respected: at most `NUM_ARGS` register
//!   arguments, direct calls name an existing function with matching
//!   arity, indirect calls go through a `Code`-representation register;
//! * every pseudo-register that appears has a representation
//!   annotation, and computed representations point at an annotated
//!   register (the GC tables are built from these, so a missing or
//!   dangling annotation is a collector bug waiting to happen);
//! * global and static references are in bounds.

use crate::analysis::{defs, uses};
use crate::ir::{CallTarget, Lbl, RInstr, RRep, RtlFun, RtlProgram, VReg};
use std::collections::{HashMap, HashSet};
use til_common::{Diagnostic, Result};
use til_vm::regs::NUM_ARGS;

/// Verifies a whole lowered program.
pub fn verify_rtl(p: &RtlProgram) -> Result<()> {
    let mut arities: HashMap<til_common::Var, usize> = HashMap::new();
    for f in &p.funs {
        if let Some(name) = f.name {
            arities.insert(name, f.params.len());
        }
    }
    for f in &p.funs {
        verify_fun(p, f, &arities)?;
    }
    Ok(())
}

fn fun_name(f: &RtlFun) -> String {
    f.name.map(|v| v.to_string()).unwrap_or_else(|| "<entry>".to_string())
}

fn err(f: &RtlFun, at: usize, msg: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::ice(
        "rtl-verify",
        format!("fun {} instr {at}: {msg}", fun_name(f)),
    )
}

fn verify_fun(
    p: &RtlProgram,
    f: &RtlFun,
    arities: &HashMap<til_common::Var, usize>,
) -> Result<()> {
    let n = f.instrs.len();

    // Labels: unique definitions, within the declared count.
    let mut label_at: HashMap<Lbl, usize> = HashMap::new();
    for (i, ins) in f.instrs.iter().enumerate() {
        if let RInstr::Label(l) = ins {
            if *l >= f.nlabels {
                return Err(err(f, i, format!("label L{l} >= nlabels {}", f.nlabels)));
            }
            if label_at.insert(*l, i).is_some() {
                return Err(err(f, i, format!("label L{l} defined twice")));
            }
        }
    }
    let resolve = |f: &RtlFun, i: usize, l: Lbl| -> Result<usize> {
        label_at
            .get(&l)
            .copied()
            .ok_or_else(|| err(f, i, format!("branch to undefined label L{l}")))
    };

    // Representation annotations.
    let rep_of = |f: &RtlFun, i: usize, v: VReg| -> Result<RRep> {
        f.reps
            .get(&v)
            .copied()
            .ok_or_else(|| err(f, i, format!("v{v} has no representation annotation")))
    };
    for (i, ins) in f.instrs.iter().enumerate() {
        for v in uses(ins).into_iter().chain(defs(ins)) {
            if let RRep::Computed(rv) = rep_of(f, i, v)? {
                rep_of(f, i, rv).map_err(|_| {
                    err(f, i, format!("v{v}'s computed representation names unannotated v{rv}"))
                })?;
            }
        }
    }
    for v in &f.params {
        if !f.reps.contains_key(v) {
            return Err(err(f, 0, format!("parameter v{v} has no representation annotation")));
        }
    }

    // Per-instruction structural checks.
    for (i, ins) in f.instrs.iter().enumerate() {
        match ins {
            RInstr::Br(l) | RInstr::Beqz(_, l) | RInstr::Bnez(_, l) => {
                resolve(f, i, *l)?;
            }
            RInstr::PushHandler { lbl, idx } => {
                resolve(f, i, *lbl)?;
                if *idx >= f.nhandlers {
                    return Err(err(f, i, format!("handler slot {idx} >= nhandlers {}", f.nhandlers)));
                }
            }
            RInstr::PopHandler { idx } if *idx >= f.nhandlers => {
                return Err(err(f, i, format!("handler slot {idx} >= nhandlers {}", f.nhandlers)));
            }
            RInstr::Call { target, args, .. } | RInstr::TailCall { target, args } => {
                if args.len() > NUM_ARGS {
                    return Err(err(
                        f,
                        i,
                        format!("{} args exceed the {NUM_ARGS} argument registers", args.len()),
                    ));
                }
                match target {
                    CallTarget::Code(v) => match arities.get(v) {
                        None => {
                            return Err(err(f, i, format!("call to unknown code {v}")));
                        }
                        Some(want) if *want != args.len() => {
                            return Err(err(
                                f,
                                i,
                                format!("call to {v} passes {} args, code takes {want}", args.len()),
                            ));
                        }
                        Some(_) => {}
                    },
                    CallTarget::Reg(v) => {
                        if rep_of(f, i, *v)? != RRep::Code {
                            return Err(err(
                                f,
                                i,
                                format!("indirect call through v{v} whose representation is not Code"),
                            ));
                        }
                    }
                }
            }
            RInstr::CallRt { args, .. } if args.len() > NUM_ARGS => {
                return Err(err(
                    f,
                    i,
                    format!("{} args exceed the {NUM_ARGS} argument registers", args.len()),
                ));
            }
            RInstr::LdGlobal { gid, .. } | RInstr::StGlobal { gid, .. }
                if *gid as usize >= p.globals.len() =>
            {
                return Err(err(f, i, format!("global g{gid} out of bounds ({} slots)", p.globals.len())));
            }
            RInstr::LeaStatic { obj, .. } if *obj as usize >= p.statics.len() => {
                return Err(err(f, i, format!("static s{obj} out of bounds ({} objects)", p.statics.len())));
            }
            RInstr::LeaCode { code, .. } if !arities.contains_key(code) => {
                return Err(err(f, i, format!("address of unknown code {code}")));
            }
            _ => {}
        }
    }
    if f.params.len() > NUM_ARGS {
        return Err(err(
            f,
            0,
            format!("{} params exceed the {NUM_ARGS} argument registers", f.params.len()),
        ));
    }

    // Definite assignment: forward must-defined analysis, meet =
    // intersection over predecessors, entry seeded with the params.
    if n == 0 {
        return Ok(());
    }
    let succs = |i: usize| -> Vec<usize> {
        match &f.instrs[i] {
            RInstr::Br(l) => vec![label_at[l]],
            RInstr::Beqz(_, l) | RInstr::Bnez(_, l) => {
                let mut s = vec![label_at[l]];
                if i + 1 < n {
                    s.push(i + 1);
                }
                s
            }
            RInstr::Ret(_) | RInstr::TailCall { .. } | RInstr::Raise { .. } => vec![],
            RInstr::PushHandler { lbl, .. } => {
                let mut s = vec![label_at[lbl]];
                if i + 1 < n {
                    s.push(i + 1);
                }
                s
            }
            _ => {
                if i + 1 < n {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        }
    };
    // `None` = not yet reached (top).
    let mut defined_in: Vec<Option<HashSet<VReg>>> = vec![None; n];
    defined_in[0] = Some(f.params.iter().copied().collect());
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let Some(inn) = defined_in[i].clone() else {
                continue;
            };
            let mut out = inn;
            if let Some(d) = defs(&f.instrs[i]) {
                out.insert(d);
            }
            for s in succs(i) {
                let next = match &defined_in[s] {
                    None => Some(out.clone()),
                    Some(cur) => {
                        let met: HashSet<VReg> = cur.intersection(&out).copied().collect();
                        (met.len() != cur.len()).then_some(met)
                    }
                };
                if let Some(next) = next {
                    defined_in[s] = Some(next);
                    changed = true;
                }
            }
        }
    }
    for (i, (slot, ins)) in defined_in.iter().zip(&f.instrs).enumerate() {
        let Some(inn) = slot else {
            continue; // unreachable code
        };
        for u in uses(ins) {
            if !inn.contains(&u) {
                return Err(err(f, i, format!("v{u} used before it is defined on some path")));
            }
        }
    }
    Ok(())
}
