//! Structural verifier for RTL (the machine-checkable counterpart of
//! the Bform and closure typecheckers, pushed one stage further down):
//!
//! * every pseudo-register is defined on every path before it is used
//!   (forward must-defined dataflow over the same CFG the backend's
//!   liveness uses — [`crate::analysis::successors`], including a
//!   handler edge from every may-raise point in a protected region);
//! * every referenced label resolves to exactly one `Label`
//!   instruction and every handler slot is within the declared depth;
//! * the calling convention is respected: at most `NUM_ARGS` register
//!   arguments, direct calls name an existing function with matching
//!   arity, indirect calls go through a `Code`-representation register;
//! * every pseudo-register that appears has a representation
//!   annotation, and computed representations point at an annotated
//!   register (the GC tables are built from these, so a missing or
//!   dangling annotation is a collector bug waiting to happen);
//! * global and static references are in bounds.

use crate::analysis::{defs, uses};
use crate::ir::{CallTarget, Lbl, RInstr, ROp, RRep, RtlFun, RtlProgram, VReg};
use std::collections::{HashMap, HashSet};
use til_common::{Diagnostic, Result};
use til_vm::regs::NUM_ARGS;

/// Verifies a whole lowered program on a single thread.
pub fn verify_rtl(p: &RtlProgram) -> Result<()> {
    verify_rtl_jobs(p, 1, None)
}

/// Verifies a whole lowered program, checking functions on up to
/// `jobs` worker threads. On multiple failures the first in function
/// order is reported, matching the sequential verifier. With a tracer,
/// each function's check records its own span (buffered per worker,
/// merged in function order).
pub fn verify_rtl_jobs(
    p: &RtlProgram,
    jobs: usize,
    tracer: Option<&til_common::Tracer>,
) -> Result<()> {
    let mut arities: HashMap<til_common::Var, usize> = HashMap::new();
    for f in &p.funs {
        if let Some(name) = f.name {
            arities.insert(name, f.params.len());
        }
    }
    let span = tracer.map(|t| t.span("verify-functions"));
    let results = til_common::par::map_traced(jobs, &p.funs, tracer, |_, f, t| {
        let _span = t.map(|t| t.span(format!("verify {}", fun_name(f))));
        verify_fun(p, f, &arities)
    });
    drop(span);
    results.into_iter().collect()
}

fn fun_name(f: &RtlFun) -> String {
    f.name.map(|v| v.to_string()).unwrap_or_else(|| "<entry>".to_string())
}

fn err(f: &RtlFun, at: usize, msg: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::ice(
        "rtl-verify",
        format!("fun {} instr {at}: {msg}", fun_name(f)),
    )
}

fn verify_fun(
    p: &RtlProgram,
    f: &RtlFun,
    arities: &HashMap<til_common::Var, usize>,
) -> Result<()> {
    let n = f.instrs.len();

    // Labels: unique definitions, within the declared count.
    let mut label_at: HashMap<Lbl, usize> = HashMap::new();
    for (i, ins) in f.instrs.iter().enumerate() {
        if let RInstr::Label(l) = ins {
            if *l >= f.nlabels {
                return Err(err(f, i, format!("label L{l} >= nlabels {}", f.nlabels)));
            }
            if label_at.insert(*l, i).is_some() {
                return Err(err(f, i, format!("label L{l} defined twice")));
            }
        }
    }
    let resolve = |f: &RtlFun, i: usize, l: Lbl| -> Result<usize> {
        label_at
            .get(&l)
            .copied()
            .ok_or_else(|| err(f, i, format!("branch to undefined label L{l}")))
    };

    // Representation annotations.
    let rep_of = |f: &RtlFun, i: usize, v: VReg| -> Result<RRep> {
        f.reps
            .get(&v)
            .copied()
            .ok_or_else(|| err(f, i, format!("v{v} has no representation annotation")))
    };
    for (i, ins) in f.instrs.iter().enumerate() {
        for v in uses(ins).into_iter().chain(defs(ins)) {
            if let RRep::Computed(rv) = rep_of(f, i, v)? {
                rep_of(f, i, rv).map_err(|_| {
                    err(f, i, format!("v{v}'s computed representation names unannotated v{rv}"))
                })?;
            }
        }
    }
    for v in &f.params {
        if !f.reps.contains_key(v) {
            return Err(err(f, 0, format!("parameter v{v} has no representation annotation")));
        }
    }

    // Per-instruction structural checks.
    for (i, ins) in f.instrs.iter().enumerate() {
        match ins {
            RInstr::Br(l) | RInstr::Beqz(_, l) | RInstr::Bnez(_, l) => {
                resolve(f, i, *l)?;
            }
            // Representation consistency across moves: in the nearly
            // tag-free scheme an untraced register flowing into a
            // traced destination would make the collector trace a raw
            // word. (The converse — a traced value narrowed into an
            // untraced slot — is legal: the lowering does it for
            // pointer compares and spills, and an untraced copy merely
            // opts out of GC. Immediates and computed representations
            // are skipped: small constants are filtered at trace time,
            // and computed reps are only resolvable at run time. The
            // tagged baseline is exempt: there every word carries its
            // own tag, so the collector can scan any register.)
            RInstr::Mov {
                dst,
                src: ROp::V(s),
            } if !p.tagged => {
                let srep = rep_of(f, i, *s)?;
                if rep_of(f, i, *dst)? == RRep::Trace
                    && matches!(srep, RRep::Int | RRep::Float | RRep::Code | RRep::Locative)
                {
                    return Err(err(
                        f,
                        i,
                        format!("mov of untraced v{s} ({srep:?}) into traced v{dst}"),
                    ));
                }
            }
            RInstr::PushHandler { lbl, idx } => {
                resolve(f, i, *lbl)?;
                if *idx >= f.nhandlers {
                    return Err(err(f, i, format!("handler slot {idx} >= nhandlers {}", f.nhandlers)));
                }
            }
            RInstr::PopHandler { idx } if *idx >= f.nhandlers => {
                return Err(err(f, i, format!("handler slot {idx} >= nhandlers {}", f.nhandlers)));
            }
            RInstr::Call { target, args, .. } | RInstr::TailCall { target, args } => {
                if args.len() > NUM_ARGS {
                    return Err(err(
                        f,
                        i,
                        format!("{} args exceed the {NUM_ARGS} argument registers", args.len()),
                    ));
                }
                match target {
                    CallTarget::Code(v) => match arities.get(v) {
                        None => {
                            return Err(err(f, i, format!("call to unknown code {v}")));
                        }
                        Some(want) if *want != args.len() => {
                            return Err(err(
                                f,
                                i,
                                format!("call to {v} passes {} args, code takes {want}", args.len()),
                            ));
                        }
                        Some(_) => {}
                    },
                    CallTarget::Reg(v) => {
                        if rep_of(f, i, *v)? != RRep::Code {
                            return Err(err(
                                f,
                                i,
                                format!("indirect call through v{v} whose representation is not Code"),
                            ));
                        }
                    }
                }
            }
            RInstr::CallRt { args, .. } if args.len() > NUM_ARGS => {
                return Err(err(
                    f,
                    i,
                    format!("{} args exceed the {NUM_ARGS} argument registers", args.len()),
                ));
            }
            RInstr::LdGlobal { gid, .. } | RInstr::StGlobal { gid, .. }
                if *gid as usize >= p.globals.len() =>
            {
                return Err(err(f, i, format!("global g{gid} out of bounds ({} slots)", p.globals.len())));
            }
            RInstr::LeaStatic { obj, .. } if *obj as usize >= p.statics.len() => {
                return Err(err(f, i, format!("static s{obj} out of bounds ({} objects)", p.statics.len())));
            }
            RInstr::LeaCode { code, .. } if !arities.contains_key(code) => {
                return Err(err(f, i, format!("address of unknown code {code}")));
            }
            _ => {}
        }
    }
    if f.params.len() > NUM_ARGS {
        return Err(err(
            f,
            0,
            format!("{} params exceed the {NUM_ARGS} argument registers", f.params.len()),
        ));
    }

    // Definite assignment: forward must-defined analysis, meet =
    // intersection over predecessors, entry seeded with the params.
    if n == 0 {
        return Ok(());
    }
    // Shared successor model (`analysis::successors`): includes an
    // edge to the handler label from every instruction in a protected
    // region, since any of them may raise.
    let succ = crate::analysis::successors(f);
    let succs = |i: usize| -> &[usize] { &succ[i] };
    // `None` = not yet reached (top).
    let mut defined_in: Vec<Option<HashSet<VReg>>> = vec![None; n];
    defined_in[0] = Some(f.params.iter().copied().collect());
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let Some(inn) = defined_in[i].clone() else {
                continue;
            };
            let mut out = inn;
            if let Some(d) = defs(&f.instrs[i]) {
                out.insert(d);
            }
            for &s in succs(i) {
                let next = match &defined_in[s] {
                    None => Some(out.clone()),
                    Some(cur) => {
                        let met: HashSet<VReg> = cur.intersection(&out).copied().collect();
                        (met.len() != cur.len()).then_some(met)
                    }
                };
                if let Some(next) = next {
                    defined_in[s] = Some(next);
                    changed = true;
                }
            }
        }
    }
    for (i, (slot, ins)) in defined_in.iter().zip(&f.instrs).enumerate() {
        let Some(inn) = slot else {
            continue; // unreachable code
        };
        for u in uses(ins) {
            if !inn.contains(&u) {
                return Err(err(f, i, format!("v{u} used before it is defined on some path")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RtlFun, RtlProgram};

    /// A one-function program: the entry defines v0 and v1 by
    /// immediate moves, runs `instrs`, and returns.
    fn prog(reps: &[(VReg, RRep)], instrs: Vec<RInstr>) -> RtlProgram {
        let mut all = vec![
            RInstr::Mov {
                dst: 0,
                src: ROp::I(0),
            },
            RInstr::Mov {
                dst: 1,
                src: ROp::I(0),
            },
        ];
        all.extend(instrs);
        all.push(RInstr::Ret(None));
        RtlProgram {
            funs: vec![RtlFun {
                name: None,
                params: vec![],
                instrs: all,
                reps: reps.iter().copied().collect(),
                nlabels: 0,
                nhandlers: 0,
            }],
            globals: vec![],
            statics: vec![],
            data_table: vec![],
            tagged: false,
        }
    }

    /// Fault injection: an untraced register moved into a traced
    /// destination must fail verification — the collector would trace
    /// a raw word.
    #[test]
    fn untraced_source_into_traced_destination_is_rejected() {
        for srep in [RRep::Int, RRep::Float, RRep::Code, RRep::Locative] {
            let p = prog(
                &[(0, srep), (1, RRep::Trace), (2, RRep::Trace)],
                vec![RInstr::Mov {
                    dst: 2,
                    src: ROp::V(0),
                }],
            );
            let e = verify_rtl(&p).expect_err("verifier must reject the rep-changing mov");
            assert!(
                e.to_string().contains("untraced"),
                "unexpected diagnostic: {e}"
            );
        }
    }

    /// The narrowing direction is legal (pointer compares and spills
    /// copy traced values into untraced registers), as are immediate
    /// sources into traced destinations (small-constant filtering).
    #[test]
    fn traced_narrowing_and_immediates_stay_legal() {
        let p = prog(
            &[(0, RRep::Int), (1, RRep::Trace), (2, RRep::Int)],
            vec![
                RInstr::Mov {
                    dst: 2,
                    src: ROp::V(1),
                },
                RInstr::Mov {
                    dst: 1,
                    src: ROp::I(42),
                },
            ],
        );
        verify_rtl(&p).expect("Trace→Int and immediate moves verify");
    }

    /// The tagged baseline is exempt: every word carries its own tag,
    /// so the collector can scan any register and the same mov is
    /// legal.
    #[test]
    fn tagged_mode_permits_rep_changing_moves() {
        let mut p = prog(
            &[(0, RRep::Int), (1, RRep::Trace), (2, RRep::Trace)],
            vec![RInstr::Mov {
                dst: 2,
                src: ROp::V(0),
            }],
        );
        p.tagged = true;
        verify_rtl(&p).expect("tagged programs may move untraced into traced");
    }

    /// The parallel verifier agrees with the sequential one on both
    /// accept and reject.
    #[test]
    fn parallel_verifier_matches_sequential() {
        let bad = prog(
            &[(0, RRep::Int), (1, RRep::Trace), (2, RRep::Trace)],
            vec![RInstr::Mov {
                dst: 2,
                src: ROp::V(0),
            }],
        );
        let good = prog(&[(0, RRep::Int), (1, RRep::Trace)], vec![]);
        for jobs in [1, 8] {
            assert!(verify_rtl_jobs(&bad, jobs, None).is_err());
            assert!(verify_rtl_jobs(&good, jobs, None).is_ok());
        }
    }
}
