//! Conversion of closure-converted code to RTL (paper §3.6): decides
//! value representations, introduces record/array tagging, expands
//! datatype constructors and switches into loads, compares and pointer
//! tests, compiles `typecase` into a switch on the run-time type
//! representation, materializes type representations at call sites
//! (the run-time cost of intensional polymorphism), and lowers
//! exceptions onto the handler chain.
//!
//! In the baseline ("tagged") mode every integer is low-bit tagged
//! (`2n+1`) and arithmetic untags/retags — the universal
//! representation's per-operation cost.

use crate::ir::*;
use std::collections::HashMap;
use til_closure::{CExp, CProgram, CRhs, CSwitch, Code};
use til_common::{Diagnostic, Result, Var};
use til_lmli::con::{CVar, Con};
use til_lmli::data::DataRep;
use til_lmli::prim::MPrim;
use til_lmli::typecheck::ConCtx;
use til_runtime::{rep, RepExpr};
use til_vm::{header, Alu, Falu, RtFn, Trap};

/// Fixed heap base (the globals segment must fit below it; the linker
/// asserts this).
pub const HEAP_BASE: u64 = 1 << 21;

/// Lowers a whole program. `tagged` selects the baseline universal
/// representation; `jobs` bounds the per-function worker pool (the
/// main spine is lowered first — it records the global slots' cons —
/// then the codes lower independently and merge in program order, so
/// the output is identical for every `jobs` value).
pub fn lower(
    p: &CProgram,
    tagged: bool,
    jobs: usize,
    tracer: Option<&til_common::Tracer>,
) -> Result<RtlProgram> {
    let data_table = til_ubform::data_table(&p.data)?;
    let mut shared = Shared {
        prog: p,
        tagged,
        global_ids: HashMap::new(),
        global_cons: HashMap::new(),
        sigs: HashMap::new(),
    };
    let mut globals = Vec::new();
    for c in &p.codes {
        shared.sigs.insert(
            c.var,
            Sig {
                cparams: c.cparams.clone(),
                captured_cvars: c.captured_cvars,
                params: c.params.iter().map(|(_, con)| con.clone()).collect(),
                ret: c.ret.clone(),
                escapes: c.escapes,
            },
        );
    }
    // Globals: the main spine (assign ids now; traced flags after
    // lowering main records their cons).
    let mut spine = &p.body;
    while let CExp::Let { var, body, .. } = spine {
        let gid = globals.len() as u32;
        globals.push(GlobalSlot { traced: false });
        shared.global_ids.insert(*var, gid);
        spine = body;
    }
    // Lower main first: it fills in the global cons every code may
    // read, so it cannot join the parallel batch.
    let lower_span = tracer.map(|t| t.span("lower-functions"));
    let (main, main_gcons) = {
        let _s = tracer.map(|t| t.span("lower main"));
        shared.lower_main(&p.body)?
    };
    shared.global_cons = main_gcons;
    // The codes only *read* shared state; each lowers into its own
    // statics table, merged below.
    let lowered = til_common::par::map_traced(jobs, &p.codes, tracer, |_, c, t| {
        let mut span = t.map(|t| t.span(format!("lower {}", c.var)));
        let part = shared.lower_code(c);
        if let (Some(s), Ok(part)) = (span.as_mut(), &part) {
            s.counter("rtl-instrs", part.fun.instrs.len() as i64);
        }
        part
    });
    drop(lower_span);
    // Merge in program order (main, then codes in declaration order):
    // each function's local statics intern into the root table exactly
    // as a sequential lowering would have, then its `LeaStatic`
    // instructions remap to the root indices.
    let mut statics = StaticsTable::default();
    let mut funs = Vec::with_capacity(1 + p.codes.len());
    for part in std::iter::once(Ok(main)).chain(lowered) {
        let mut part = part?;
        let remap: Vec<u32> = part
            .statics
            .objs
            .into_iter()
            .map(|o| statics.intern(o))
            .collect();
        for i in &mut part.fun.instrs {
            if let RInstr::LeaStatic { obj, .. } = i {
                *obj = remap[*obj as usize];
            }
        }
        funs.push(part.fun);
    }
    // Global traced flags from the recorded cons.
    for (v, gid) in &shared.global_ids {
        let traced = match shared.global_cons.get(v) {
            Some(c) => match til_ubform::vrep(c, &p.data) {
                til_ubform::VRep::Trace => true,
                til_ubform::VRep::Computed(_) => true, // conservative
                _ => false,
            },
            None => false,
        };
        globals[*gid as usize].traced = traced;
    }
    Ok(RtlProgram {
        funs,
        globals,
        statics: statics.objs,
        data_table,
        tagged,
    })
}

#[derive(Clone)]
struct Sig {
    cparams: Vec<CVar>,
    captured_cvars: usize,
    params: Vec<Con>,
    ret: Con,
    escapes: bool,
}

/// Read-only lowering context shared by every function's worker:
/// after `lower_main` runs, nothing here mutates, so codes lower in
/// parallel against `&Shared`.
struct Shared<'a> {
    prog: &'a CProgram,
    tagged: bool,
    global_ids: HashMap<Var, u32>,
    global_cons: HashMap<Var, Con>,
    sigs: HashMap<Var, Sig>,
}

/// A deduplicating static-object table. Each function lowers into its
/// own, then the tables intern into the root in program order.
#[derive(Default)]
struct StaticsTable {
    objs: Vec<StaticObj>,
    ix: HashMap<String, u32>,
}

impl StaticsTable {
    fn intern(&mut self, o: StaticObj) -> u32 {
        let key = format!("{o:?}");
        if let Some(&i) = self.ix.get(&key) {
            return i;
        }
        let i = self.objs.len() as u32;
        self.objs.push(o);
        self.ix.insert(key, i);
        i
    }
}

/// One function's lowering output: the function plus its local statics
/// (indices into `statics.objs`, remapped at the merge).
struct LoweredFun {
    fun: RtlFun,
    statics: StaticsTable,
}

impl<'a> Shared<'a> {
    fn lower_main(&self, body: &CExp) -> Result<(LoweredFun, HashMap<Var, Con>)> {
        let mut cx = FunCx::new(self, vec![], None, true);
        cx.exp(body, false)?;
        // The program entry returns normally to the linker's halt stub.
        cx.instrs.push(RInstr::Ret(None));
        Ok(cx.finish_main(None, vec![]))
    }

    fn lower_code(&self, c: &Code) -> Result<LoweredFun> {
        let sig = self.sigs[&c.var].clone();
        let mut cx = FunCx::new(self, c.cparams.clone(), Some(c), false);
        // Parameter layout (see DESIGN): escaping codes receive
        // [env, orig rep args.., orig value args..]; known codes receive
        // [all rep args.., all value args..].
        let mut params: Vec<VReg> = Vec::new();
        if c.escapes {
            let env = cx.fresh(RRep::Trace);
            params.push(env);
            // Original cparams (after the captured prefix) arrive as
            // rep arguments.
            for cv in c.cparams.iter().skip(c.captured_cvars) {
                let r = cx.fresh(RRep::Trace);
                cx.crmap.insert(*cv, r);
                params.push(r);
            }
            // Captured reps load from the environment.
            for (i, cv) in c.cparams.iter().take(c.captured_cvars).enumerate() {
                let r = cx.fresh(RRep::Trace);
                cx.instrs.push(RInstr::Ld {
                    dst: r,
                    base: env,
                    off: (8 * (1 + i)) as i32,
                });
                cx.crmap.insert(*cv, r);
            }
            // Value params: [env(param 0 of code), orig...].
            for (i, (v, con)) in c.params.iter().enumerate() {
                if i == 0 {
                    // The env param is the closure environment itself.
                    cx.vmap.insert(*v, env);
                    cx.cons.insert(*v, con.clone());
                } else {
                    let r = cx.fresh_for_con(con);
                    cx.vmap.insert(*v, r);
                    cx.cons.insert(*v, con.clone());
                    params.push(r);
                }
            }
            cx.env_base = Some((env, c.captured_cvars));
        } else {
            for cv in &c.cparams {
                let r = cx.fresh(RRep::Trace);
                cx.crmap.insert(*cv, r);
                params.push(r);
            }
            for (v, con) in &c.params {
                let r = cx.fresh_for_con(con);
                cx.vmap.insert(*v, r);
                cx.cons.insert(*v, con.clone());
                params.push(r);
            }
        }
        let _ = sig;
        cx.exp(&c.body, true)?;
        Ok(cx.finish(Some(c.var), params))
    }
}

struct FunCx<'a, 'b> {
    lw: &'b Shared<'a>,
    /// This function's local statics (merged into the root after).
    statics: StaticsTable,
    /// Global cons recorded while lowering main (codes never write;
    /// reads overlay [`Shared::global_cons`], which is empty during
    /// main and complete during the codes).
    gcons: HashMap<Var, Con>,
    instrs: Vec<RInstr>,
    reps: HashMap<VReg, RRep>,
    next_vreg: VReg,
    next_lbl: Lbl,
    vmap: HashMap<Var, VReg>,
    cons: HashMap<Var, Con>,
    crmap: HashMap<CVar, VReg>,
    cparams: Vec<CVar>,
    handler_depth: u32,
    max_handlers: u32,
    in_main: bool,
    env_base: Option<(VReg, usize)>,
    #[allow(dead_code)]
    code: Option<Code>,
}

fn ice(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::ice("rtl-lower", msg)
}

impl<'a, 'b> FunCx<'a, 'b> {
    fn new(
        lw: &'b Shared<'a>,
        cparams: Vec<CVar>,
        code: Option<&Code>,
        in_main: bool,
    ) -> Self {
        FunCx {
            lw,
            statics: StaticsTable::default(),
            gcons: HashMap::new(),
            instrs: Vec::new(),
            reps: HashMap::new(),
            next_vreg: 0,
            next_lbl: 0,
            vmap: HashMap::new(),
            cons: HashMap::new(),
            crmap: HashMap::new(),
            cparams,
            handler_depth: 0,
            max_handlers: 0,
            in_main,
            env_base: None,
            code: code.cloned(),
        }
    }

    fn global_con(&self, x: &Var) -> Option<&Con> {
        self.gcons.get(x).or_else(|| self.lw.global_cons.get(x))
    }

    fn intern_static(&mut self, o: StaticObj) -> u32 {
        self.statics.intern(o)
    }

    fn finish(self, name: Option<Var>, params: Vec<VReg>) -> LoweredFun {
        LoweredFun {
            fun: RtlFun {
                name,
                params,
                instrs: self.instrs,
                reps: self.reps,
                nlabels: self.next_lbl,
                nhandlers: self.max_handlers,
            },
            statics: self.statics,
        }
    }

    fn finish_main(mut self, name: Option<Var>, params: Vec<VReg>) -> (LoweredFun, HashMap<Var, Con>) {
        let gcons = std::mem::take(&mut self.gcons);
        (self.finish(name, params), gcons)
    }

    fn fresh(&mut self, rep: RRep) -> VReg {
        let v = self.next_vreg;
        self.next_vreg += 1;
        self.reps.insert(v, rep);
        v
    }

    fn fresh_for_con(&mut self, c: &Con) -> VReg {
        let rep = self.rep_of_con(c);
        self.fresh(rep)
    }

    fn rep_of_con(&mut self, c: &Con) -> RRep {
        match til_ubform::vrep(c, &self.lw.prog.data) {
            til_ubform::VRep::Int => RRep::Int,
            til_ubform::VRep::Float => RRep::Float,
            til_ubform::VRep::Trace => RRep::Trace,
            til_ubform::VRep::Computed(cv) => match self.crmap.get(&cv) {
                Some(r) => RRep::Computed(*r),
                None => RRep::Trace, // out-of-scope rep: conservative
            },
        }
    }

    fn lbl(&mut self) -> Lbl {
        let l = self.next_lbl;
        self.next_lbl += 1;
        l
    }

    fn emit(&mut self, i: RInstr) {
        self.instrs.push(i);
    }

    fn norm(&self, c: &Con) -> Con {
        ConCtx::new(&self.lw.prog.data).norm(c)
    }

    // ---- tagging helpers -------------------------------------------------

    fn int_imm(&self, n: i64) -> i64 {
        if self.lw.tagged {
            // The universal representation has 63-bit integers (as
            // SML/NJ had 31-bit ones against TIL's 32): literals wrap
            // into the tagged space.
            n.wrapping_mul(2).wrapping_add(1)
        } else {
            n
        }
    }

    fn untag(&mut self, v: VReg) -> VReg {
        if self.lw.tagged {
            let t = self.fresh(RRep::Int);
            self.emit(RInstr::Alu {
                op: Alu::Sra,
                dst: t,
                a: ROp::V(v),
                b: ROp::I(1),
            });
            t
        } else {
            v
        }
    }

    fn retag(&mut self, v: VReg) -> VReg {
        if self.lw.tagged {
            let t = self.fresh(RRep::Int);
            self.emit(RInstr::Alu {
                op: Alu::Sll,
                dst: t,
                a: ROp::V(v),
                b: ROp::I(1),
            });
            let t2 = self.fresh(RRep::Int);
            self.emit(RInstr::Alu {
                op: Alu::Or,
                dst: t2,
                a: ROp::V(t),
                b: ROp::I(1),
            });
            t2
        } else {
            v
        }
    }

    // ---- atoms and cons --------------------------------------------------

    fn atom(&mut self, a: &til_bform::Atom) -> Result<VReg> {
        match a {
            til_bform::Atom::Int(n) => {
                let v = self.fresh(RRep::Int);
                let imm = self.int_imm(*n);
                self.emit(RInstr::Mov {
                    dst: v,
                    src: ROp::I(imm),
                });
                Ok(v)
            }
            til_bform::Atom::Var(x) => {
                if let Some(r) = self.vmap.get(x) {
                    return Ok(*r);
                }
                if let Some(gid) = self.lw.global_ids.get(x).copied() {
                    let con = self
                        .global_con(x)
                        .cloned()
                        .unwrap_or(Con::Record(vec![]));
                    let r = self.fresh_for_con(&con);
                    self.emit(RInstr::LdGlobal { dst: r, gid });
                    return Ok(r);
                }
                Err(ice(format!("unbound variable {x} in RTL lowering")))
            }
        }
    }

    fn atom_con(&self, a: &til_bform::Atom) -> Con {
        match a {
            til_bform::Atom::Int(_) => Con::Int,
            til_bform::Atom::Var(x) => self
                .cons
                .get(x)
                .or_else(|| self.global_con(x))
                .cloned()
                .unwrap_or(Con::Int),
        }
    }

    // ---- run-time type representations ------------------------------------

    /// Materializes the run-time representation of a constructor.
    fn rep_value(&mut self, c: &Con) -> Result<VReg> {
        let c = self.norm(c);
        if let Con::Var(cv) = &c {
            return self
                .crmap
                .get(cv)
                .copied()
                .ok_or_else(|| ice(format!("no rep register for {cv}")));
        }
        let expr = til_ubform::rep_expr(&c, &self.cparams, &self.lw.prog.data)?;
        self.rep_of_expr(&expr)
    }

    fn rep_of_expr(&mut self, e: &RepExpr) -> Result<VReg> {
        if e.is_ground() {
            // Immediates stay immediate; structured ground reps become
            // static objects.
            let imm = match e {
                RepExpr::Int => Some(rep::INT),
                RepExpr::Float => Some(rep::FLOAT),
                RepExpr::Str => Some(rep::STR),
                RepExpr::Exn => Some(rep::EXN),
                RepExpr::Arrow => Some(rep::ARROW),
                _ => None,
            };
            let v = self.fresh(RRep::Trace);
            match imm {
                Some(i) => self.emit(RInstr::Mov {
                    dst: v,
                    src: ROp::I(i as i64),
                }),
                None => {
                    let id = self.intern_static(StaticObj::Rep(e.clone()));
                    self.emit(RInstr::LeaStatic { dst: v, obj: id });
                }
            }
            return Ok(v);
        }
        // Build a heap representation record at run time — the paper's
        // "types must be constructed and passed ... at run time".
        match e {
            RepExpr::Param(i) => {
                let cv = self.cparams[*i];
                self.crmap
                    .get(&cv)
                    .copied()
                    .ok_or_else(|| ice(format!("no rep register for parameter {cv}")))
            }
            RepExpr::Record(fs) => {
                let mut fields = vec![ROp::I(rep::TAG_RECORD as i64), ROp::I(fs.len() as i64)];
                let mut mask: u32 = 0;
                for (i, f) in fs.iter().enumerate() {
                    let r = self.rep_of_expr(f)?;
                    fields.push(ROp::V(r));
                    mask |= 1 << (2 + i);
                }
                let dst = self.fresh(RRep::Trace);
                self.emit(RInstr::Alloc {
                    dst,
                    head: HeadSpec::Static(header::make(
                        header::KIND_RECORD,
                        fields.len() as u64,
                        mask,
                    )),
                    fields,
                });
                Ok(dst)
            }
            RepExpr::Array(el) => {
                let r = self.rep_of_expr(el)?;
                let dst = self.fresh(RRep::Trace);
                self.emit(RInstr::Alloc {
                    dst,
                    head: HeadSpec::Static(header::make(header::KIND_RECORD, 2, 0b10)),
                    fields: vec![ROp::I(rep::TAG_ARRAY as i64), ROp::V(r)],
                });
                Ok(dst)
            }
            RepExpr::Data(id, args) => {
                let mut fields = vec![
                    ROp::I(rep::TAG_DATA as i64),
                    ROp::I(*id as i64),
                    ROp::I(args.len() as i64),
                ];
                let mut mask: u32 = 0;
                for (i, a) in args.iter().enumerate() {
                    let r = self.rep_of_expr(a)?;
                    fields.push(ROp::V(r));
                    mask |= 1 << (3 + i);
                }
                let dst = self.fresh(RRep::Trace);
                self.emit(RInstr::Alloc {
                    dst,
                    head: HeadSpec::Static(header::make(
                        header::KIND_RECORD,
                        fields.len() as u64,
                        mask,
                    )),
                    fields,
                });
                Ok(dst)
            }
            _ => unreachable!("ground handled above"),
        }
    }

    // ---- expressions -------------------------------------------------------

    /// Lowers an expression; in tail position emits the return/tail
    /// call and yields `None`, otherwise yields the result vreg.
    fn exp(&mut self, e: &CExp, tail: bool) -> Result<Option<VReg>> {
        match e {
            CExp::Ret(a) => {
                let v = self.atom(a)?;
                if tail {
                    self.emit(RInstr::Ret(Some(v)));
                    Ok(None)
                } else {
                    Ok(Some(v))
                }
            }
            CExp::Let { var, rhs, body } => {
                // Function-tail call patterns become tail calls.
                let body_returns_var = matches!(
                    &**body,
                    CExp::Ret(til_bform::Atom::Var(v)) if v == var
                );
                if tail
                    && body_returns_var
                    && self.handler_depth == 0
                    && !self.in_main
                {
                    match rhs {
                        CRhs::CallKnown { code, cargs, args } => {
                            let (t, a) = self.call_parts(*code, cargs, args)?;
                            self.emit(RInstr::TailCall { target: t, args: a });
                            return Ok(None);
                        }
                        CRhs::CallClosure { clo, cargs, args } => {
                            let (t, a) = self.closure_call_parts(clo, cargs, args)?;
                            self.emit(RInstr::TailCall { target: t, args: a });
                            return Ok(None);
                        }
                        _ => {}
                    }
                }
                let con = self.rhs_con(rhs)?;
                let tail_rhs = tail && body_returns_var && self.handler_depth == 0;
                let v = self.rhs(rhs, &con, tail_rhs)?;
                let v = match v {
                    Some(v) => v,
                    None => return Ok(None), // rhs completed the tail
                };
                self.vmap.insert(*var, v);
                self.cons.insert(*var, con.clone());
                if self.in_main {
                    if let Some(gid) = self.lw.global_ids.get(var).copied() {
                        self.emit(RInstr::StGlobal { src: v, gid });
                        self.gcons.insert(*var, con);
                    }
                }
                self.exp(body, tail)
            }
        }
    }

    /// Splits a known call into target + final argument registers.
    fn call_parts(
        &mut self,
        code: Var,
        cargs: &[Con],
        args: &[til_bform::Atom],
    ) -> Result<(CallTarget, Vec<VReg>)> {
        let sig = self
            .lw
            .sigs
            .get(&code)
            .cloned()
            .ok_or_else(|| ice(format!("unknown code {code}")))?;
        let mut out = Vec::new();
        if sig.escapes {
            // args[0] is the environment; captured reps live there.
            out.push(self.atom(&args[0])?);
            for c in cargs.iter().skip(sig.captured_cvars) {
                out.push(self.rep_value(c)?);
            }
            for a in &args[1..] {
                out.push(self.atom(a)?);
            }
        } else {
            for c in cargs {
                out.push(self.rep_value(c)?);
            }
            for a in args {
                out.push(self.atom(a)?);
            }
        }
        Ok((CallTarget::Code(code), out))
    }

    fn closure_call_parts(
        &mut self,
        clo: &til_bform::Atom,
        cargs: &[Con],
        args: &[til_bform::Atom],
    ) -> Result<(CallTarget, Vec<VReg>)> {
        let c = self.atom(clo)?;
        let codev = self.fresh(RRep::Code);
        self.emit(RInstr::Ld {
            dst: codev,
            base: c,
            off: 8,
        });
        let env = self.fresh(RRep::Trace);
        self.emit(RInstr::Ld {
            dst: env,
            base: c,
            off: 16,
        });
        let mut out = vec![env];
        for cg in cargs {
            out.push(self.rep_value(cg)?);
        }
        for a in args {
            out.push(self.atom(a)?);
        }
        Ok((CallTarget::Reg(codev), out))
    }

    /// Synthesizes the constructor of a right-hand side.
    fn rhs_con(&mut self, r: &CRhs) -> Result<Con> {
        Ok(match r {
            CRhs::Atom(a) => self.atom_con(a),
            CRhs::Float(_) => Con::Float,
            CRhs::Str(_) => Con::Str,
            CRhs::Record(atoms) => {
                Con::Record(atoms.iter().map(|a| self.atom_con(a)).collect())
            }
            CRhs::Select(i, a) => match self.norm(&self.atom_con(a)) {
                Con::Record(fs) if *i < fs.len() => fs[*i].clone(),
                other => return Err(ice(format!("select from {other:?}"))),
            },
            CRhs::EnvSel(i, a) => match self.norm(&self.atom_con(a)) {
                Con::Record(fs) if *i < fs.len() => fs[*i].clone(),
                other => return Err(ice(format!("envsel from {other:?}"))),
            },
            CRhs::Con { data, cargs, .. } => Con::Data(*data, cargs.clone()),
            CRhs::ExnCon { .. } => Con::Exn,
            CRhs::Prim { prim, cargs, args } => {
                if matches!(prim, MPrim::ALen) {
                    Con::Int
                } else {
                    let sig = prim.sig();
                    let map: HashMap<CVar, Con> = (0..sig.cparams)
                        .map(|i| (CVar(i as u32), cargs[i].clone()))
                        .collect();
                    let _ = args;
                    sig.ret.subst(&map)
                }
            }
            CRhs::CallKnown { code, cargs, .. } => {
                let sig = self
                    .lw
                    .sigs
                    .get(code)
                    .cloned()
                    .ok_or_else(|| ice(format!("unknown code {code}")))?;
                let map: HashMap<CVar, Con> = sig
                    .cparams
                    .iter()
                    .copied()
                    .zip(cargs.iter().cloned())
                    .collect();
                sig.ret.subst(&map)
            }
            CRhs::CallClosure { clo, cargs, .. } => {
                match self.norm(&self.atom_con(clo)) {
                    Con::Arrow { cparams, ret, .. } => {
                        let map: HashMap<CVar, Con> = cparams
                            .iter()
                            .copied()
                            .zip(cargs.iter().cloned())
                            .collect();
                        ret.subst(&map)
                    }
                    other => return Err(ice(format!("closure call on {other:?}"))),
                }
            }
            CRhs::MkEnv { tenv, venv } => {
                let mut fs: Vec<Con> = tenv.iter().map(|_| Con::Int).collect();
                fs.extend(venv.iter().map(|a| self.atom_con(a)));
                Con::Record(fs)
            }
            CRhs::MkClosure { code, .. } => {
                let sig = self
                    .lw
                    .sigs
                    .get(code)
                    .cloned()
                    .ok_or_else(|| ice(format!("unknown code {code}")))?;
                Con::Arrow {
                    cparams: sig.cparams[sig.captured_cvars..].to_vec(),
                    params: sig.params[1..].to_vec(),
                    ret: Box::new(sig.ret.clone()),
                }
            }
            CRhs::Switch(sw) => match sw {
                CSwitch::Int { con, .. }
                | CSwitch::Data { con, .. }
                | CSwitch::Str { con, .. }
                | CSwitch::Exn { con, .. } => con.clone(),
            },
            CRhs::Typecase { con, .. } => con.clone(),
            CRhs::Handle { body, .. } => {
                // The handle's type is its body's type; synthesize from
                // the body's returned atom via its spine.
                fn spine_ret_con(cx: &FunCx, e: &CExp) -> Option<Con> {
                    match e {
                        CExp::Ret(a) => Some(cx.atom_con(a)),
                        CExp::Let { body, .. } => spine_ret_con(cx, body),
                    }
                }
                // Fall back to unit; the rep is what matters and a
                // handle always produces a value of its body's con.
                spine_ret_con(self, body).unwrap_or(Con::Record(vec![]))
            }
            CRhs::Raise { con, .. } => con.clone(),
        })
    }
}

impl<'a, 'b> FunCx<'a, 'b> {
    /// Lowers one right-hand side to a value register. `tail_direct` is
    /// true when the value is immediately returned (lets switch arms
    /// stay in tail position).
    fn rhs(&mut self, r: &CRhs, con: &Con, tail_direct: bool) -> Result<Option<VReg>> {
        match r {
            CRhs::Atom(a) => Ok(Some(self.atom(a)?)),
            CRhs::Float(f) => {
                let v = self.fresh(RRep::Float);
                self.emit(RInstr::Mov {
                    dst: v,
                    src: ROp::I(f.to_bits() as i64),
                });
                Ok(Some(v))
            }
            CRhs::Str(s) => {
                let id = self.intern_static(StaticObj::Str(s.clone()));
                let v = self.fresh(RRep::Trace);
                self.emit(RInstr::LeaStatic { dst: v, obj: id });
                Ok(Some(v))
            }
            CRhs::Record(atoms) => {
                if atoms.is_empty() {
                    // Unit is a small constant, not an allocation. It
                    // keeps its con's representation (Trace for the
                    // record con) so copies into join registers stay
                    // rep-consistent; the collector filters small
                    // constants out of traced slots.
                    let v = self.fresh_for_con(con);
                    let imm = self.int_imm(0);
                    self.emit(RInstr::Mov {
                        dst: v,
                        src: ROp::I(imm),
                    });
                    return Ok(Some(v));
                }
                let cons: Vec<Con> = atoms.iter().map(|a| self.atom_con(a)).collect();
                let vs: Vec<ROp> = atoms
                    .iter()
                    .map(|a| self.atom(a).map(ROp::V))
                    .collect::<Result<_>>()?;
                Ok(Some(self.alloc_record(&vs, &cons)?))
            }
            CRhs::Select(i, a) => {
                let base = self.atom(a)?;
                let v = self.fresh_for_con(con);
                self.emit(RInstr::Ld {
                    dst: v,
                    base,
                    off: (8 * (1 + i)) as i32,
                });
                Ok(Some(v))
            }
            CRhs::EnvSel(i, a) => {
                let base = self.atom(a)?;
                let skip = self.env_base.map(|(_, n)| n).unwrap_or(0);
                let v = self.fresh_for_con(con);
                self.emit(RInstr::Ld {
                    dst: v,
                    base,
                    off: (8 * (1 + skip + i)) as i32,
                });
                Ok(Some(v))
            }
            CRhs::Con {
                data,
                cargs,
                tag,
                args,
            } => {
                let md = self.lw.prog.data.get(*data).clone();
                match &md.cons[*tag] {
                    None => {
                        // Nullary: small constant.
                        let v = self.fresh(RRep::Trace);
                        let imm = self.int_imm(md.enum_value(*tag));
                        self.emit(RInstr::Mov {
                            dst: v,
                            src: ROp::I(imm),
                        });
                        Ok(Some(v))
                    }
                    Some(_) => {
                        let fields = md
                            .fields_at(*tag, cargs)
                            .ok_or_else(|| ice("constructor fields"))?;
                        let mut vs: Vec<ROp> = Vec::new();
                        let mut cs: Vec<Con> = Vec::new();
                        if matches!(md.rep, DataRep::Tagged | DataRep::Boxed) {
                            let t = self.fresh(RRep::Int);
                            self.emit(RInstr::Mov {
                                dst: t,
                                src: ROp::I(self.int_imm(md.sum_tag(*tag))),
                            });
                            vs.push(ROp::V(t));
                            cs.push(Con::Int);
                        }
                        for (a, c) in args.iter().zip(&fields) {
                            vs.push(ROp::V(self.atom(a)?));
                            cs.push(c.clone());
                        }
                        Ok(Some(self.alloc_record(&vs, &cs)?))
                    }
                }
            }
            CRhs::ExnCon { exn, arg } => match arg {
                None => {
                    let id = self.intern_static(StaticObj::ExnPacket(exn.0));
                    let v = self.fresh(RRep::Trace);
                    self.emit(RInstr::LeaStatic { dst: v, obj: id });
                    Ok(Some(v))
                }
                Some(a) => {
                    let idv = self.fresh(RRep::Int);
                    self.emit(RInstr::Mov {
                        dst: idv,
                        src: ROp::I(exn.0 as i64),
                    });
                    let ac = self.atom_con(a);
                    let av = self.atom(a)?;
                    // Packet = [id, payload], header marked with the
                    // exception bit so the census and the allocation
                    // profiler can tell packet construction apart from
                    // ordinary records. Exception payloads are ground
                    // (no type variables in `exception` declarations),
                    // so the mask is static: traced unless the payload
                    // is an unboxed int/float.
                    let mask = match til_ubform::vrep(&ac, &self.lw.prog.data) {
                        til_ubform::VRep::Int | til_ubform::VRep::Float => 0,
                        _ => 0b10,
                    };
                    let head = header::make(header::KIND_RECORD, 2, mask) | header::EXN_BIT;
                    let dst = self.fresh(RRep::Trace);
                    self.emit(RInstr::Alloc {
                        dst,
                        head: HeadSpec::Static(head),
                        fields: vec![ROp::V(idv), ROp::V(av)],
                    });
                    Ok(Some(dst))
                }
            },
            CRhs::MkEnv { tenv, venv } => {
                let mut vs: Vec<ROp> = Vec::new();
                let mut cs: Vec<Con> = Vec::new();
                for c in tenv {
                    let r = self.rep_value(c)?;
                    vs.push(ROp::V(r));
                    // Reps are traced (small immediates are filtered).
                    cs.push(Con::Str);
                }
                for a in venv {
                    cs.push(self.atom_con(a));
                    vs.push(ROp::V(self.atom(a)?));
                }
                if vs.is_empty() {
                    // Empty environment: a small constant standing in
                    // for the record, rep-matched to its con as above.
                    let v = self.fresh_for_con(con);
                    let imm = self.int_imm(0);
                    self.emit(RInstr::Mov {
                        dst: v,
                        src: ROp::I(imm),
                    });
                    return Ok(Some(v));
                }
                Ok(Some(self.alloc_record(&vs, &cs)?))
            }
            CRhs::MkClosure { code, env } => {
                let cv = self.fresh(RRep::Code);
                self.emit(RInstr::LeaCode {
                    dst: cv,
                    code: *code,
                });
                let ev = self.atom(env)?;
                let dst = self.fresh(RRep::Trace);
                // [code (untraced), env (traced unless a small unit)].
                self.emit(RInstr::Alloc {
                    dst,
                    head: HeadSpec::Static(header::make(header::KIND_RECORD, 2, 0b10)),
                    fields: vec![ROp::V(cv), ROp::V(ev)],
                });
                Ok(Some(dst))
            }
            CRhs::CallKnown { code, cargs, args } => {
                let (t, a) = self.call_parts(*code, cargs, args)?;
                let dst = self.fresh_for_con(con);
                self.emit(RInstr::Call {
                    target: t,
                    args: a,
                    dst: Some(dst),
                });
                Ok(Some(dst))
            }
            CRhs::CallClosure { clo, cargs, args } => {
                let (t, a) = self.closure_call_parts(clo, cargs, args)?;
                let dst = self.fresh_for_con(con);
                self.emit(RInstr::Call {
                    target: t,
                    args: a,
                    dst: Some(dst),
                });
                Ok(Some(dst))
            }
            CRhs::Prim { prim, cargs, args } => self.prim(*prim, cargs, args, con).map(Some),
            CRhs::Raise { exn, .. } => {
                let p = self.atom(exn)?;
                self.emit(RInstr::Raise { packet: p });
                // Unreachable filler definition keeps liveness simple.
                let v = self.fresh_for_con(con);
                self.emit(RInstr::Mov {
                    dst: v,
                    src: ROp::I(0),
                });
                Ok(Some(v))
            }
            CRhs::Handle { body, var, handler } => {
                let hl = self.lbl();
                let join = self.lbl();
                let out = self.fresh_for_con(con);
                let idx = self.handler_depth;
                self.handler_depth += 1;
                self.max_handlers = self.max_handlers.max(self.handler_depth);
                self.emit(RInstr::PushHandler { lbl: hl, idx });
                if let Some(v) = self.exp(body, false)? {
                    self.emit(RInstr::PopHandler { idx });
                    self.emit(RInstr::Mov {
                        dst: out,
                        src: ROp::V(v),
                    });
                    self.emit(RInstr::Br(join));
                }
                self.handler_depth -= 1;
                self.emit(RInstr::Label(hl));
                let packet = self.fresh(RRep::Trace);
                self.emit(RInstr::HandlerEntry { dst: packet });
                self.vmap.insert(*var, packet);
                self.cons.insert(*var, Con::Exn);
                if let Some(v) = self.exp(handler, false)? {
                    self.emit(RInstr::Mov {
                        dst: out,
                        src: ROp::V(v),
                    });
                }
                self.emit(RInstr::Label(join));
                Ok(Some(out))
            }
            CRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => {
                let r = self.rep_value(scrut)?;
                let lint = self.lbl();
                let lfloat = self.lbl();
                let join = self.lbl();
                let out = self.fresh_for_con(con);
                self.init_out(out, tail_direct);
                let c0 = self.fresh(RRep::Int);
                self.emit(RInstr::Alu {
                    op: Alu::CmpEq,
                    dst: c0,
                    a: ROp::V(r),
                    b: ROp::I(rep::INT as i64),
                });
                self.emit(RInstr::Bnez(c0, lint));
                let c1 = self.fresh(RRep::Int);
                self.emit(RInstr::Alu {
                    op: Alu::CmpEq,
                    dst: c1,
                    a: ROp::V(r),
                    b: ROp::I(rep::FLOAT as i64),
                });
                self.emit(RInstr::Bnez(c1, lfloat));
                self.arm(ptr, out, join, tail_direct)?;
                self.emit(RInstr::Label(lint));
                self.arm(int, out, join, tail_direct)?;
                self.emit(RInstr::Label(lfloat));
                self.arm(float, out, join, tail_direct)?;
                self.emit(RInstr::Label(join));
                Ok(Some(out))
            }
            CRhs::Switch(sw) => self.switch(sw, tail_direct).map(Some),
        }
    }

    /// Lowers one arm. In tail position the arm returns (or tail-calls)
    /// directly; otherwise its result moves to `out` and control joins.
    fn arm(&mut self, e: &CExp, out: VReg, join: Lbl, tail: bool) -> Result<()> {
        if tail {
            // The arm ends the function itself (Ret / TailCall).
            self.exp(e, true)?;
            return Ok(());
        }
        if let Some(v) = self.exp(e, false)? {
            self.emit(RInstr::Mov {
                dst: out,
                src: ROp::V(v),
            });
            self.emit(RInstr::Br(join));
        }
        Ok(())
    }

    /// In tail-lowered switches the join is unreachable; keep the
    /// result register defined so dead code stays well-formed.
    fn init_out(&mut self, out: VReg, tail: bool) {
        if tail {
            self.emit(RInstr::Mov {
                dst: out,
                src: ROp::I(0),
            });
        }
    }

    fn switch(&mut self, sw: &CSwitch, tail: bool) -> Result<VReg> {
        match sw {
            CSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => {
                let s = self.atom(scrut)?;
                let join = self.lbl();
                let out = self.fresh_for_con(con);
                self.init_out(out, tail);
                let labels: Vec<Lbl> = arms.iter().map(|_| self.lbl()).collect();
                for ((k, _), l) in arms.iter().zip(&labels) {
                    let c = self.fresh(RRep::Int);
                    self.emit(RInstr::Alu {
                        op: Alu::CmpEq,
                        dst: c,
                        a: ROp::V(s),
                        b: ROp::I(self.int_imm(*k)),
                    });
                    self.emit(RInstr::Bnez(c, *l));
                }
                self.arm(default, out, join, tail)?;
                for ((_, a), l) in arms.iter().zip(&labels) {
                    self.emit(RInstr::Label(*l));
                    self.arm(a, out, join, tail)?;
                }
                self.emit(RInstr::Label(join));
                Ok(out)
            }
            CSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => {
                let s = self.atom(scrut)?;
                let join = self.lbl();
                let out = self.fresh_for_con(con);
                self.init_out(out, tail);
                let labels: Vec<Lbl> = arms.iter().map(|_| self.lbl()).collect();
                for ((k, _), l) in arms.iter().zip(&labels) {
                    let id = self.intern_static(StaticObj::Str(k.clone()));
                    let sv = self.fresh(RRep::Trace);
                    self.emit(RInstr::LeaStatic { dst: sv, obj: id });
                    let c = self.fresh(RRep::Int);
                    self.emit(RInstr::CallRt {
                        f: RtFn::StrEq,
                        args: vec![s, sv],
                        dst: Some(c),
                        alloc: false,
                    });
                    // StrEq returns a mode-tagged boolean; test truthy.
                    let u = self.untag(c);
                    self.emit(RInstr::Bnez(u, *l));
                }
                self.arm(default, out, join, tail)?;
                for ((_, a), l) in arms.iter().zip(&labels) {
                    self.emit(RInstr::Label(*l));
                    self.arm(a, out, join, tail)?;
                }
                self.emit(RInstr::Label(join));
                Ok(out)
            }
            CSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => {
                let s = self.atom(scrut)?;
                let idv = self.fresh(RRep::Int);
                self.emit(RInstr::Ld {
                    dst: idv,
                    base: s,
                    off: 8,
                });
                let join = self.lbl();
                let out = self.fresh_for_con(con);
                self.init_out(out, tail);
                let labels: Vec<Lbl> = arms.iter().map(|_| self.lbl()).collect();
                for ((id, _, _), l) in arms.iter().zip(&labels) {
                    let c = self.fresh(RRep::Int);
                    self.emit(RInstr::Alu {
                        op: Alu::CmpEq,
                        dst: c,
                        a: ROp::V(idv),
                        b: ROp::I(id.0 as i64),
                    });
                    self.emit(RInstr::Bnez(c, *l));
                }
                self.arm(default, out, join, tail)?;
                for ((id, binder, a), l) in arms.iter().zip(&labels) {
                    self.emit(RInstr::Label(*l));
                    if let Some(b) = binder {
                        let bc = self
                            .lw
                            .prog
                            .exns
                            .arg(*id)
                            .cloned()
                            .unwrap_or(Con::Record(vec![]));
                        let bv = self.fresh_for_con(&bc);
                        self.emit(RInstr::Ld {
                            dst: bv,
                            base: s,
                            off: 16,
                        });
                        self.vmap.insert(*b, bv);
                        self.cons.insert(*b, bc);
                    }
                    self.arm(a, out, join, tail)?;
                }
                self.emit(RInstr::Label(join));
                Ok(out)
            }
            CSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => {
                let md = self.lw.prog.data.get(*data).clone();
                let s = self.atom(scrut)?;
                let join = self.lbl();
                let out = self.fresh_for_con(con);
                self.init_out(out, tail);
                // Split arms into nullary and carrying.
                let lsmall = self.lbl();
                if md.needs_pointer_test() {
                    let c = self.fresh(RRep::Int);
                    self.emit(RInstr::Alu {
                        op: Alu::CmpLt,
                        dst: c,
                        a: ROp::V(s),
                        b: ROp::I(HEAP_BASE as i64),
                    });
                    self.emit(RInstr::Bnez(c, lsmall));
                }
                // Pointer side: carrying constructors.
                let carrying: Vec<&(usize, Vec<Var>, CExp)> = arms
                    .iter()
                    .filter(|(t, _, _)| md.cons[*t].is_some())
                    .collect();
                let tag_field = matches!(md.rep, DataRep::Tagged | DataRep::Boxed);
                let mut tagv = None;
                if tag_field && carrying.len() + md.num_carrying().min(1) > 1 {
                    let t = self.fresh(RRep::Int);
                    self.emit(RInstr::Ld {
                        dst: t,
                        base: s,
                        off: 8,
                    });
                    tagv = Some(t);
                }
                let carry_labels: Vec<Lbl> = carrying.iter().map(|_| self.lbl()).collect();
                if let Some(tv) = tagv {
                    for ((tag, _, _), l) in carrying.iter().zip(&carry_labels) {
                        let c = self.fresh(RRep::Int);
                        self.emit(RInstr::Alu {
                            op: Alu::CmpEq,
                            dst: c,
                            a: ROp::V(tv),
                            b: ROp::I(self.int_imm(md.sum_tag(*tag))),
                        });
                        self.emit(RInstr::Bnez(c, *l));
                    }
                    // Fall through: default (or unreachable).
                    match default {
                        Some(d) => self.arm(d, out, join, tail)?,
                        None => {
                            // All carrying arms listed: jump to last.
                            if let Some(l) = carry_labels.last() {
                                self.emit(RInstr::Br(*l));
                            }
                        }
                    }
                } else if carrying.len() == 1 {
                    self.emit(RInstr::Br(carry_labels[0]));
                } else {
                    if let Some(d) = default {
                        self.arm(d, out, join, tail)?
                    }
                }
                for ((tag, binders, a), l) in carrying.iter().zip(&carry_labels) {
                    self.emit(RInstr::Label(*l));
                    let fields = md
                        .fields_at(*tag, cargs)
                        .ok_or_else(|| ice("carrying fields"))?;
                    let skip = if tag_field { 1 } else { 0 };
                    match md.rep {
                        DataRep::Boxed => {
                            // Single unflattened argument behind the tag.
                            let bc = fields[0].clone();
                            let bv = self.fresh_for_con(&bc);
                            self.emit(RInstr::Ld {
                                dst: bv,
                                base: s,
                                off: 16,
                            });
                            self.vmap.insert(binders[0], bv);
                            self.cons.insert(binders[0], bc);
                        }
                        _ => {
                            for (i, (b, fc)) in binders.iter().zip(&fields).enumerate() {
                                let bv = self.fresh_for_con(fc);
                                self.emit(RInstr::Ld {
                                    dst: bv,
                                    base: s,
                                    off: (8 * (1 + skip + i)) as i32,
                                });
                                self.vmap.insert(*b, bv);
                                self.cons.insert(*b, fc.clone());
                            }
                        }
                    }
                    self.arm(a, out, join, tail)?;
                }
                // Small side: nullary constructors.
                if md.needs_pointer_test() {
                    self.emit(RInstr::Label(lsmall));
                    let nullary: Vec<&(usize, Vec<Var>, CExp)> = arms
                        .iter()
                        .filter(|(t, _, _)| md.cons[*t].is_none())
                        .collect();
                    let nlabels: Vec<Lbl> = nullary.iter().map(|_| self.lbl()).collect();
                    for ((tag, _, _), l) in nullary.iter().zip(&nlabels) {
                        let c = self.fresh(RRep::Int);
                        self.emit(RInstr::Alu {
                            op: Alu::CmpEq,
                            dst: c,
                            a: ROp::V(s),
                            b: ROp::I(self.int_imm(md.enum_value(*tag))),
                        });
                        self.emit(RInstr::Bnez(c, *l));
                    }
                    match default {
                        Some(d) => self.arm(d, out, join, tail)?,
                        None => {
                            if let Some(l) = nlabels.last() {
                                self.emit(RInstr::Br(*l));
                            }
                        }
                    }
                    for ((_, _, a), l) in nullary.iter().zip(&nlabels) {
                        self.emit(RInstr::Label(*l));
                        self.arm(a, out, join, tail)?;
                    }
                }
                self.emit(RInstr::Label(join));
                Ok(out)
            }
        }
    }

    /// Allocates a record, computing the header (statically when all
    /// field representations are known, partially at run time
    /// otherwise).
    fn alloc_record(&mut self, fields: &[ROp], cons: &[Con]) -> Result<VReg> {
        let mut mask: u32 = 0;
        let mut dynamic: Vec<(u8, VReg)> = Vec::new();
        for (i, c) in cons.iter().enumerate() {
            match til_ubform::vrep(c, &self.lw.prog.data) {
                til_ubform::VRep::Trace => mask |= 1 << i,
                til_ubform::VRep::Int | til_ubform::VRep::Float => {}
                til_ubform::VRep::Computed(cv) => {
                    if let Some(r) = self.crmap.get(&cv).copied() {
                        dynamic.push((i as u8, r));
                    } else {
                        mask |= 1 << i; // conservative: trace-filter
                    }
                }
            }
        }
        let base = header::make(header::KIND_RECORD, fields.len() as u64, mask);
        let head = if dynamic.is_empty() || self.lw.tagged {
            HeadSpec::Static(base)
        } else {
            // hd = base | (Σ (rep != 0) << (32 + field)).
            let h = self.fresh(RRep::Int);
            self.emit(RInstr::Mov {
                dst: h,
                src: ROp::I(base as i64),
            });
            for (bit, repv) in dynamic {
                let c = self.fresh(RRep::Int);
                self.emit(RInstr::Alu {
                    op: Alu::CmpNe,
                    dst: c,
                    a: ROp::V(repv),
                    b: ROp::I(rep::INT as i64),
                });
                let sh = self.fresh(RRep::Int);
                self.emit(RInstr::Alu {
                    op: Alu::Sll,
                    dst: sh,
                    a: ROp::V(c),
                    b: ROp::I(32 + bit as i64),
                });
                let h2 = self.fresh(RRep::Int);
                self.emit(RInstr::Alu {
                    op: Alu::Or,
                    dst: h2,
                    a: ROp::V(h),
                    b: ROp::V(sh),
                });
                self.emit(RInstr::Mov {
                    dst: h,
                    src: ROp::V(h2),
                });
            }
            HeadSpec::Reg(h)
        };
        let dst = self.fresh(RRep::Trace);
        self.emit(RInstr::Alloc {
            dst,
            head,
            fields: fields.to_vec(),
        });
        Ok(dst)
    }
}

impl<'a, 'b> FunCx<'a, 'b> {
    fn alu2(&mut self, op: Alu, a: ROp, b: ROp, rep: RRep) -> VReg {
        let d = self.fresh(rep);
        self.emit(RInstr::Alu { op, dst: d, a, b });
        d
    }

    /// Lowers a primitive (the heart of the representation decisions:
    /// in baseline mode every integer operation pays untag/retag).
    fn prim(
        &mut self,
        p: MPrim,
        cargs: &[Con],
        args: &[til_bform::Atom],
        con: &Con,
    ) -> Result<VReg> {
        use MPrim as M;
        let tagged = self.lw.tagged;
        let vs: Vec<VReg> = args
            .iter()
            .map(|a| self.atom(a))
            .collect::<Result<_>>()?;
        let v = |i: usize| ROp::V(vs[i]);
        Ok(match p {
            M::IAdd | M::ISub => {
                let op = if matches!(p, M::IAdd) { Alu::AddV } else { Alu::SubV };
                if tagged {
                    let t = self.alu2(op, v(0), v(1), RRep::Int);
                    let fix = if matches!(p, M::IAdd) { Alu::Sub } else { Alu::Add };
                    self.alu2(fix, ROp::V(t), ROp::I(1), RRep::Int)
                } else {
                    self.alu2(op, v(0), v(1), RRep::Int)
                }
            }
            M::IMul => {
                if tagged {
                    let ua = self.alu2(Alu::Sra, v(0), ROp::I(1), RRep::Int);
                    let ub = self.alu2(Alu::Sub, v(1), ROp::I(1), RRep::Int);
                    let t = self.alu2(Alu::MulV, ROp::V(ua), ROp::V(ub), RRep::Int);
                    self.alu2(Alu::Add, ROp::V(t), ROp::I(1), RRep::Int)
                } else {
                    self.alu2(Alu::MulV, v(0), v(1), RRep::Int)
                }
            }
            M::IDiv | M::IMod => {
                let op = if matches!(p, M::IDiv) { Alu::Div } else { Alu::Rem };
                if tagged {
                    let ua = self.alu2(Alu::Sra, v(0), ROp::I(1), RRep::Int);
                    let ub = self.alu2(Alu::Sra, v(1), ROp::I(1), RRep::Int);
                    let t = self.alu2(op, ROp::V(ua), ROp::V(ub), RRep::Int);
                    self.retag(t)
                } else {
                    self.alu2(op, v(0), v(1), RRep::Int)
                }
            }
            M::INeg => {
                if tagged {
                    self.alu2(Alu::SubV, ROp::I(2), v(0), RRep::Int)
                } else {
                    self.alu2(Alu::SubV, ROp::I(0), v(0), RRep::Int)
                }
            }
            M::IAbs => {
                let zero = self.int_imm(0);
                let c = self.alu2(Alu::CmpLt, v(0), ROp::I(zero), RRep::Int);
                let out = self.fresh(RRep::Int);
                self.emit(RInstr::Mov { dst: out, src: v(0) });
                let l = self.lbl();
                self.emit(RInstr::Beqz(c, l));
                let neg = if tagged {
                    self.alu2(Alu::SubV, ROp::I(2), v(0), RRep::Int)
                } else {
                    self.alu2(Alu::SubV, ROp::I(0), v(0), RRep::Int)
                };
                self.emit(RInstr::Mov { dst: out, src: ROp::V(neg) });
                self.emit(RInstr::Label(l));
                out
            }
            M::ILt | M::ILe | M::IGt | M::IGe | M::IEq | M::INe => {
                // Tagged comparison works directly (the map is
                // monotone).
                let (op, swap) = match p {
                    M::ILt => (Alu::CmpLt, false),
                    M::ILe => (Alu::CmpLe, false),
                    M::IGt => (Alu::CmpLt, true),
                    M::IGe => (Alu::CmpLe, true),
                    M::IEq => (Alu::CmpEq, false),
                    _ => (Alu::CmpNe, false),
                };
                let (x, y) = if swap { (v(1), v(0)) } else { (v(0), v(1)) };
                let c = self.alu2(op, x, y, RRep::Int);
                self.retag(c)
            }
            M::AndB | M::OrB => {
                let op = if matches!(p, M::AndB) { Alu::And } else { Alu::Or };
                // Tagged values and/or correctly preserve the tag bit.
                self.alu2(op, v(0), v(1), RRep::Int)
            }
            M::XorB => {
                let t = self.alu2(Alu::Xor, v(0), v(1), RRep::Int);
                if tagged {
                    self.alu2(Alu::Or, ROp::V(t), ROp::I(1), RRep::Int)
                } else {
                    t
                }
            }
            M::NotB => {
                let t = self.alu2(Alu::Xor, v(0), ROp::I(-1), RRep::Int);
                if tagged {
                    self.alu2(Alu::Or, ROp::V(t), ROp::I(1), RRep::Int)
                } else {
                    t
                }
            }
            M::Lsl | M::Lsr | M::Asr => {
                let op = match p {
                    M::Lsl => Alu::Sll,
                    M::Lsr => Alu::Srl,
                    _ => Alu::Sra,
                };
                if tagged {
                    let ua = self.alu2(Alu::Sra, v(0), ROp::I(1), RRep::Int);
                    let ub = self.alu2(Alu::Sra, v(1), ROp::I(1), RRep::Int);
                    let t = self.alu2(op, ROp::V(ua), ROp::V(ub), RRep::Int);
                    self.retag(t)
                } else {
                    self.alu2(op, v(0), v(1), RRep::Int)
                }
            }
            M::Chr => {
                let u = self.untag(vs[0]);
                let c1 = self.alu2(Alu::CmpLt, ROp::V(u), ROp::I(0), RRep::Int);
                self.emit(RInstr::TrapIf { cond: c1, trap: Trap::Chr });
                let c2 = self.alu2(Alu::CmpLt, ROp::I(255), ROp::V(u), RRep::Int);
                self.emit(RInstr::TrapIf { cond: c2, trap: Trap::Chr });
                vs[0]
            }
            M::FAdd | M::FSub | M::FMul | M::FDiv => {
                let op = match p {
                    M::FAdd => Falu::Add,
                    M::FSub => Falu::Sub,
                    M::FMul => Falu::Mul,
                    _ => Falu::Div,
                };
                let d = self.fresh(RRep::Float);
                self.emit(RInstr::Falu { op, dst: d, a: vs[0], b: vs[1] });
                d
            }
            M::FLt | M::FLe | M::FGt | M::FGe | M::FEq | M::FNe => {
                let (op, swap) = match p {
                    M::FLt => (Falu::CmpLt, false),
                    M::FLe => (Falu::CmpLe, false),
                    M::FGt => (Falu::CmpLt, true),
                    M::FGe => (Falu::CmpLe, true),
                    M::FEq => (Falu::CmpEq, false),
                    _ => (Falu::CmpNe, false),
                };
                let (x, y) = if swap { (vs[1], vs[0]) } else { (vs[0], vs[1]) };
                let c = self.fresh(RRep::Int);
                self.emit(RInstr::Falu { op, dst: c, a: x, b: y });
                self.retag(c)
            }
            M::FNeg => {
                let z = self.fresh(RRep::Float);
                self.emit(RInstr::Mov { dst: z, src: ROp::I(0) });
                let d = self.fresh(RRep::Float);
                self.emit(RInstr::Falu { op: Falu::Sub, dst: d, a: z, b: vs[0] });
                d
            }
            M::FAbs => {
                // Clear the sign bit.
                let t = self.alu2(Alu::Sll, v(0), ROp::I(1), RRep::Int);
                self.alu2(Alu::Srl, ROp::V(t), ROp::I(1), RRep::Float)
            }
            M::ItoF => {
                let u = self.untag(vs[0]);
                let d = self.fresh(RRep::Float);
                self.emit(RInstr::Itof { dst: d, a: u });
                d
            }
            M::Floor | M::Trunc => {
                let f = if matches!(p, M::Floor) { RtFn::Floor } else { RtFn::Trunc };
                let d = self.fresh(RRep::Int);
                self.emit(RInstr::CallRt { f, args: vec![vs[0]], dst: Some(d), alloc: false });
                d
            }
            M::FSqrt | M::FSin | M::FCos | M::FAtan | M::FExp | M::FLn => {
                let f = match p {
                    M::FSqrt => RtFn::Sqrt,
                    M::FSin => RtFn::Sin,
                    M::FCos => RtFn::Cos,
                    M::FAtan => RtFn::Atan,
                    M::FExp => RtFn::Exp,
                    _ => RtFn::Ln,
                };
                let d = self.fresh(RRep::Float);
                self.emit(RInstr::CallRt { f, args: vec![vs[0]], dst: Some(d), alloc: false });
                d
            }
            M::BoxFloat => {
                let d = self.fresh(RRep::Trace);
                self.emit(RInstr::Alloc {
                    dst: d,
                    head: HeadSpec::Static(header::make(header::KIND_FLOATARRAY, 1, 0)),
                    fields: vec![v(0)],
                });
                d
            }
            M::UnboxFloat => {
                let d = self.fresh(RRep::Float);
                self.emit(RInstr::Ld { dst: d, base: vs[0], off: 8 });
                d
            }
            M::StrSize | M::ALen => {
                let h = self.fresh(RRep::Int);
                self.emit(RInstr::Ld { dst: h, base: vs[0], off: 0 });
                let t = self.alu2(Alu::Srl, ROp::V(h), ROp::I(3), RRep::Int);
                let len = self.alu2(Alu::And, ROp::V(t), ROp::I((1 << 29) - 1), RRep::Int);
                self.retag(len)
            }
            M::StrSub => {
                let d = self.fresh(RRep::Int);
                self.emit(RInstr::CallRt {
                    f: RtFn::StrSub,
                    args: vec![vs[0], vs[1]],
                    dst: Some(d),
                    alloc: false,
                });
                d
            }
            M::StrConcat => {
                let d = self.fresh(RRep::Trace);
                self.emit(RInstr::CallRt {
                    f: RtFn::StrConcat,
                    args: vec![vs[0], vs[1]],
                    dst: Some(d),
                    alloc: true,
                });
                d
            }
            M::StrFromChar => {
                let d = self.fresh(RRep::Trace);
                self.emit(RInstr::CallRt {
                    f: RtFn::StrFromChar,
                    args: vec![vs[0]],
                    dst: Some(d),
                    alloc: true,
                });
                d
            }
            M::StrCmp => {
                let d = self.fresh(RRep::Int);
                self.emit(RInstr::CallRt {
                    f: RtFn::StrCmp,
                    args: vec![vs[0], vs[1]],
                    dst: Some(d),
                    alloc: false,
                });
                d
            }
            M::SEq => {
                let d = self.fresh(RRep::Int);
                self.emit(RInstr::CallRt {
                    f: RtFn::StrEq,
                    args: vec![vs[0], vs[1]],
                    dst: Some(d),
                    alloc: false,
                });
                d
            }
            M::IntToString => {
                let d = self.fresh(RRep::Trace);
                self.emit(RInstr::CallRt {
                    f: RtFn::IntToStr,
                    args: vec![vs[0]],
                    dst: Some(d),
                    alloc: true,
                });
                d
            }
            M::FToString => {
                let d = self.fresh(RRep::Trace);
                self.emit(RInstr::CallRt {
                    f: RtFn::FloatToStr,
                    args: vec![vs[0]],
                    dst: Some(d),
                    alloc: true,
                });
                d
            }
            M::Print => {
                self.emit(RInstr::CallRt {
                    f: RtFn::PrintStr,
                    args: vec![vs[0]],
                    dst: None,
                    alloc: false,
                });
                // Unit result: rep-matched to its (record) con so
                // copies into join registers stay consistent.
                let d = self.fresh_for_con(con);
                let imm = self.int_imm(0);
                self.emit(RInstr::Mov { dst: d, src: ROp::I(imm) });
                d
            }
            M::IANew | M::FANew | M::PANew => {
                let kind = match p {
                    M::IANew => ArrKind::Int,
                    M::FANew => ArrKind::Float,
                    _ => ArrKind::Ptr,
                };
                let n = self.untag(vs[0]);
                let c = self.alu2(Alu::CmpLt, ROp::V(n), ROp::I(0), RRep::Int);
                self.emit(RInstr::TrapIf { cond: c, trap: Trap::Size });
                let d = self.fresh(RRep::Trace);
                self.emit(RInstr::AllocArr { dst: d, kind, len: ROp::V(n), init: vs[1] });
                d
            }
            M::IASub | M::FASub | M::PASub => {
                let u = self.untag(vs[1]);
                let t = self.alu2(Alu::Sll, ROp::V(u), ROp::I(3), RRep::Int);
                let loc = self.alu2(Alu::Add, v(0), ROp::V(t), RRep::Locative);
                let rep = match p {
                    M::IASub => RRep::Int,
                    M::FASub => RRep::Float,
                    _ => self.rep_of_con(con),
                };
                let d = self.fresh(rep);
                self.emit(RInstr::Ld { dst: d, base: loc, off: 8 });
                d
            }
            M::IAUpd | M::FAUpd | M::PAUpd => {
                let u = self.untag(vs[1]);
                let t = self.alu2(Alu::Sll, ROp::V(u), ROp::I(3), RRep::Int);
                let loc = self.alu2(Alu::Add, v(0), ROp::V(t), RRep::Locative);
                self.emit(RInstr::St { src: vs[2], base: loc, off: 8 });
                // Unit result, rep-matched to its con (see Print).
                let d = self.fresh_for_con(con);
                let imm = self.int_imm(0);
                self.emit(RInstr::Mov { dst: d, src: ROp::I(imm) });
                d
            }
            M::PolyEq => {
                let r = self.rep_value(&cargs[0])?;
                let d = self.fresh(RRep::Int);
                self.emit(RInstr::CallRt {
                    f: RtFn::PolyEq,
                    args: vec![r, vs[0], vs[1]],
                    dst: Some(d),
                    alloc: false,
                });
                d
            }
            M::PtrEq => {
                let c = self.alu2(Alu::CmpEq, v(0), v(1), RRep::Int);
                self.retag(c)
            }
        })
    }
}
