//! RTL — the register-transfer language (paper §3.6): ALPHA-style
//! operations over an infinite supply of representation-annotated
//! pseudo-registers, with explicit allocation, GC checks, tagging,
//! and the exception-handler chain (the paper's "interprocedural
//! goto").

use std::collections::HashMap;
use til_common::Var;
use til_runtime::RepExpr;
use til_vm::{Alu, Falu, RtFn, Trap};

/// A pseudo-register.
pub type VReg = u32;

/// A local label within a function.
pub type Lbl = u32;

/// An operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ROp {
    /// Pseudo-register.
    V(VReg),
    /// Immediate.
    I(i64),
}

/// Representation annotation of a pseudo-register (the paper's
/// `INT`/`TRACE`/`LOCATIVE`/computed annotations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RRep {
    /// Untraced word.
    Int,
    /// Raw float bits (untraced).
    Float,
    /// Traced pointer (small-constant filtering applies).
    Trace,
    /// Code value (odd-encoded; untraced).
    Code,
    /// Interior pointer; never live across a GC point.
    Locative,
    /// Representation decided by the run-time type in another
    /// pseudo-register.
    Computed(VReg),
}

/// Call targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// Direct call to a code block.
    Code(Var),
    /// Indirect call through an odd-encoded code value.
    Reg(VReg),
}

/// Static (pre-linked) objects living in the globals segment.
#[derive(Clone, Debug, PartialEq)]
pub enum StaticObj {
    /// A string literal.
    Str(String),
    /// A ground run-time type representation.
    Rep(RepExpr),
    /// A constant exception packet (nullary exceptions, trap stubs).
    ExnPacket(u32),
}

/// Header recipe for a record allocation. A dynamic header (mask bits
/// computed from run-time type representations — the paper's
/// "construct tags partially at run time") is computed into a register
/// by the lowering before the `Alloc`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HeadSpec {
    /// Fully static header word.
    Static(u64),
    /// Header computed at run time (in the register).
    Reg(VReg),
}

/// Array element kinds (specialized, §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrKind {
    /// Untraced words.
    Int,
    /// Unboxed floats.
    Float,
    /// Traced pointers.
    Ptr,
}

/// One RTL instruction.
#[derive(Clone, Debug)]
pub enum RInstr {
    /// Register/immediate move.
    Mov {
        /// Destination.
        dst: VReg,
        /// Source.
        src: ROp,
    },
    /// ALU operation.
    Alu {
        /// Operation.
        op: Alu,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: ROp,
        /// Right operand.
        b: ROp,
    },
    /// Float operation on raw bits.
    Falu {
        /// Operation.
        op: Falu,
        /// Destination.
        dst: VReg,
        /// Left.
        a: VReg,
        /// Right.
        b: VReg,
    },
    /// Int → float.
    Itof {
        /// Destination.
        dst: VReg,
        /// Source.
        a: VReg,
    },
    /// Load word.
    Ld {
        /// Destination.
        dst: VReg,
        /// Base.
        base: VReg,
        /// Byte offset.
        off: i32,
    },
    /// Store word.
    St {
        /// Source.
        src: VReg,
        /// Base.
        base: VReg,
        /// Byte offset.
        off: i32,
    },
    /// Load a global slot.
    LdGlobal {
        /// Destination.
        dst: VReg,
        /// Slot.
        gid: u32,
    },
    /// Store a global slot.
    StGlobal {
        /// Source.
        src: VReg,
        /// Slot.
        gid: u32,
    },
    /// Load the odd-encoded address of a code block.
    LeaCode {
        /// Destination.
        dst: VReg,
        /// Code.
        code: Var,
    },
    /// Load the address of a static object.
    LeaStatic {
        /// Destination.
        dst: VReg,
        /// Static id.
        obj: u32,
    },
    /// Local label.
    Label(Lbl),
    /// Unconditional branch.
    Br(Lbl),
    /// Branch if zero.
    Beqz(VReg, Lbl),
    /// Branch if nonzero.
    Bnez(VReg, Lbl),
    /// Non-tail call.
    Call {
        /// Target.
        target: CallTarget,
        /// Arguments (placed in r0..).
        args: Vec<VReg>,
        /// Result (from r0).
        dst: Option<VReg>,
    },
    /// Tail call: pops the frame and jumps.
    TailCall {
        /// Target.
        target: CallTarget,
        /// Arguments.
        args: Vec<VReg>,
    },
    /// Runtime-service call.
    CallRt {
        /// Service.
        f: RtFn,
        /// Arguments (placed in r0..).
        args: Vec<VReg>,
        /// Result.
        dst: Option<VReg>,
        /// Whether the service may allocate (⇒ this is a GC point).
        alloc: bool,
    },
    /// Return (value moves to r0).
    Ret(Option<VReg>),
    /// Record/closure/box allocation (with GC check).
    Alloc {
        /// Destination (the object pointer).
        dst: VReg,
        /// Header recipe.
        head: HeadSpec,
        /// Field values.
        fields: Vec<ROp>,
    },
    /// Array allocation (dynamic length, with GC check).
    AllocArr {
        /// Destination.
        dst: VReg,
        /// Element kind.
        kind: ArrKind,
        /// Element count (untagged).
        len: ROp,
        /// Initial value for every element.
        init: VReg,
    },
    /// Install an exception handler (frame handler slot `idx`).
    PushHandler {
        /// Handler code label.
        lbl: Lbl,
        /// Handler nesting slot.
        idx: u32,
    },
    /// Remove the innermost handler.
    PopHandler {
        /// Handler nesting slot.
        idx: u32,
    },
    /// Handler entry point: receives the packet (from r0).
    HandlerEntry {
        /// Packet destination.
        dst: VReg,
    },
    /// Raise: unwind to the innermost handler.
    Raise {
        /// The packet.
        packet: VReg,
    },
    /// Trap if the register is nonzero.
    TrapIf {
        /// Condition.
        cond: VReg,
        /// Trap kind.
        trap: Trap,
    },
}

/// One lowered function.
#[derive(Clone, Debug)]
pub struct RtlFun {
    /// Name (the code label; `None` for the program entry).
    pub name: Option<Var>,
    /// Parameter vregs, in calling-convention order.
    pub params: Vec<VReg>,
    /// Body.
    pub instrs: Vec<RInstr>,
    /// Representation annotations.
    pub reps: HashMap<VReg, RRep>,
    /// Number of labels used.
    pub nlabels: u32,
    /// Maximum handler nesting depth.
    pub nhandlers: u32,
}

/// A global slot.
#[derive(Clone, Debug)]
pub struct GlobalSlot {
    /// GC interpretation: true = traced.
    pub traced: bool,
}

/// The lowered program.
#[derive(Clone, Debug)]
pub struct RtlProgram {
    /// All functions; index 0 is the program entry.
    pub funs: Vec<RtlFun>,
    /// Global slots (top-level bindings).
    pub globals: Vec<GlobalSlot>,
    /// Static objects.
    pub statics: Vec<StaticObj>,
    /// Datatype table for the runtime.
    pub data_table: Vec<til_runtime::RtData>,
    /// Universal tagged representation (baseline) or TIL.
    pub tagged: bool,
}
