//! **RTL** — the register-transfer language and the Ubform→RTL
//! conversion (paper §3.5–3.6): representation decisions, record and
//! array tagging, GC checks, exception elimination, and run-time
//! type-representation construction.

pub mod analysis;
pub mod ir;
pub mod lower;
pub mod verify;

pub use ir::*;
pub use lower::{lower, HEAP_BASE};
pub use verify::{verify_rtl, verify_rtl_jobs};
