//! Instruction-level use/def facts for RTL. The backend's dataflow
//! (liveness, register allocation) and the RTL verifier both consume
//! these, so they live with the IR rather than in the backend.

use crate::ir::{CallTarget, HeadSpec, RInstr, ROp, VReg};

/// Uses of one instruction.
pub fn uses(i: &RInstr) -> Vec<VReg> {
    let mut out = Vec::new();
    fn op(out: &mut Vec<VReg>, o: &ROp) {
        if let ROp::V(v) = o {
            out.push(*v);
        }
    }
    match i {
        RInstr::Mov { src, .. } => op(&mut out, src),
        RInstr::Alu { a, b, .. } => {
            op(&mut out, a);
            op(&mut out, b);
        }
        RInstr::Falu { a, b, .. } => {
            out.push(*a);
            out.push(*b);
        }
        RInstr::Itof { a, .. } => out.push(*a),
        RInstr::Ld { base, .. } => out.push(*base),
        RInstr::St { src, base, .. } => {
            out.push(*src);
            out.push(*base);
        }
        RInstr::LdGlobal { .. }
        | RInstr::LeaCode { .. }
        | RInstr::LeaStatic { .. }
        | RInstr::Label(_)
        | RInstr::Br(_)
        | RInstr::PushHandler { .. }
        | RInstr::PopHandler { .. }
        | RInstr::HandlerEntry { .. } => {}
        RInstr::StGlobal { src, .. } => out.push(*src),
        RInstr::Beqz(v, _) | RInstr::Bnez(v, _) | RInstr::TrapIf { cond: v, .. } => {
            out.push(*v)
        }
        RInstr::Call { target, args, .. } | RInstr::TailCall { target, args } => {
            if let CallTarget::Reg(v) = target {
                out.push(*v);
            }
            out.extend(args.iter().copied());
        }
        RInstr::CallRt { args, .. } => out.extend(args.iter().copied()),
        RInstr::Ret(v) => {
            if let Some(v) = v {
                out.push(*v);
            }
        }
        RInstr::Alloc { head, fields, .. } => {
            if let HeadSpec::Reg(h) = head {
                out.push(*h);
            }
            for f in fields {
                op(&mut out, f);
            }
        }
        RInstr::AllocArr { len, init, .. } => {
            op(&mut out, len);
            out.push(*init);
        }
        RInstr::Raise { packet } => out.push(*packet),
    }
    out
}

/// Definition of one instruction.
pub fn defs(i: &RInstr) -> Option<VReg> {
    match i {
        RInstr::Mov { dst, .. }
        | RInstr::Alu { dst, .. }
        | RInstr::Falu { dst, .. }
        | RInstr::Itof { dst, .. }
        | RInstr::Ld { dst, .. }
        | RInstr::LdGlobal { dst, .. }
        | RInstr::LeaCode { dst, .. }
        | RInstr::LeaStatic { dst, .. }
        | RInstr::Alloc { dst, .. }
        | RInstr::AllocArr { dst, .. }
        | RInstr::HandlerEntry { dst } => Some(*dst),
        RInstr::Call { dst, .. } | RInstr::CallRt { dst, .. } => *dst,
        _ => None,
    }
}
