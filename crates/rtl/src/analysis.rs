//! Instruction-level use/def facts and the control-flow successor
//! model for RTL. The backend's dataflow (liveness, register
//! allocation) and the RTL verifier both consume these, so they live
//! with the IR rather than in the backend.

use crate::ir::{CallTarget, HeadSpec, Lbl, RInstr, ROp, RtlFun, VReg};
use std::collections::HashMap;

/// Per-instruction successors, including handler edges.
///
/// A `PushHandler { lbl }` protects the lexical region up to the
/// handler's `Label` (the lowering always places the handler entry
/// after the whole protected body, and nested handles nest lexically).
/// *Every* instruction in that region gets an edge to the handler
/// label: calls raise out of callees, `Raise` jumps there directly,
/// `TrapIf` and plain arithmetic trap at run time (overflow, divide),
/// and `RtCall` primitives raise Domain/Size. Values live only into a
/// handler are therefore live across every potential raise point — the
/// GC tables and the register allocator both depend on this (a
/// handler-crossing value must sit in a listed frame slot, not a
/// register the callee clobbers or a slot the collector skips).
pub fn successors(f: &RtlFun) -> Vec<Vec<usize>> {
    let n = f.instrs.len();
    let mut label_at: HashMap<Lbl, usize> = HashMap::new();
    for (i, ins) in f.instrs.iter().enumerate() {
        if let RInstr::Label(l) = ins {
            label_at.insert(*l, i);
        }
    }
    let mut succ: Vec<Vec<usize>> = (0..n)
        .map(|i| match &f.instrs[i] {
            RInstr::Br(l) => vec![label_at[l]],
            RInstr::Beqz(_, l) | RInstr::Bnez(_, l) => {
                let mut s = vec![label_at[l]];
                if i + 1 < n {
                    s.push(i + 1);
                }
                s
            }
            // `Raise` transfers to the innermost handler; when that
            // handler is in this function the edge is added below.
            RInstr::Ret(_) | RInstr::TailCall { .. } | RInstr::Raise { .. } => vec![],
            RInstr::PushHandler { lbl, .. } => {
                let mut s = vec![label_at[lbl]];
                if i + 1 < n {
                    s.push(i + 1);
                }
                s
            }
            _ => {
                if i + 1 < n {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        })
        .collect();
    for (i, ins) in f.instrs.iter().enumerate() {
        if let RInstr::PushHandler { lbl, .. } = ins {
            if let Some(&t) = label_at.get(lbl) {
                for s in succ.iter_mut().take(t).skip(i + 1) {
                    if !s.contains(&t) {
                        s.push(t);
                    }
                }
            }
        }
    }
    succ
}

/// Uses of one instruction.
pub fn uses(i: &RInstr) -> Vec<VReg> {
    let mut out = Vec::new();
    fn op(out: &mut Vec<VReg>, o: &ROp) {
        if let ROp::V(v) = o {
            out.push(*v);
        }
    }
    match i {
        RInstr::Mov { src, .. } => op(&mut out, src),
        RInstr::Alu { a, b, .. } => {
            op(&mut out, a);
            op(&mut out, b);
        }
        RInstr::Falu { a, b, .. } => {
            out.push(*a);
            out.push(*b);
        }
        RInstr::Itof { a, .. } => out.push(*a),
        RInstr::Ld { base, .. } => out.push(*base),
        RInstr::St { src, base, .. } => {
            out.push(*src);
            out.push(*base);
        }
        RInstr::LdGlobal { .. }
        | RInstr::LeaCode { .. }
        | RInstr::LeaStatic { .. }
        | RInstr::Label(_)
        | RInstr::Br(_)
        | RInstr::PushHandler { .. }
        | RInstr::PopHandler { .. }
        | RInstr::HandlerEntry { .. } => {}
        RInstr::StGlobal { src, .. } => out.push(*src),
        RInstr::Beqz(v, _) | RInstr::Bnez(v, _) | RInstr::TrapIf { cond: v, .. } => {
            out.push(*v)
        }
        RInstr::Call { target, args, .. } | RInstr::TailCall { target, args } => {
            if let CallTarget::Reg(v) = target {
                out.push(*v);
            }
            out.extend(args.iter().copied());
        }
        RInstr::CallRt { args, .. } => out.extend(args.iter().copied()),
        RInstr::Ret(v) => {
            if let Some(v) = v {
                out.push(*v);
            }
        }
        RInstr::Alloc { head, fields, .. } => {
            if let HeadSpec::Reg(h) = head {
                out.push(*h);
            }
            for f in fields {
                op(&mut out, f);
            }
        }
        RInstr::AllocArr { len, init, .. } => {
            op(&mut out, len);
            out.push(*init);
        }
        RInstr::Raise { packet } => out.push(*packet),
    }
    out
}

/// Definition of one instruction.
pub fn defs(i: &RInstr) -> Option<VReg> {
    match i {
        RInstr::Mov { dst, .. }
        | RInstr::Alu { dst, .. }
        | RInstr::Falu { dst, .. }
        | RInstr::Itof { dst, .. }
        | RInstr::Ld { dst, .. }
        | RInstr::LdGlobal { dst, .. }
        | RInstr::LeaCode { dst, .. }
        | RInstr::LeaStatic { dst, .. }
        | RInstr::Alloc { dst, .. }
        | RInstr::AllocArr { dst, .. }
        | RInstr::HandlerEntry { dst } => Some(*dst),
        RInstr::Call { dst, .. } | RInstr::CallRt { dst, .. } => *dst,
        _ => None,
    }
}
