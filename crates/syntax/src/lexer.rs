//! Lexer for the core-SML subset.
//!
//! Follows the Definition's lexical rules for the constructs we accept:
//! alphanumeric and symbolic identifiers, `'a` type variables, nested
//! `(* ... *)` comments, `~`-negated numeric literals, `0w` word
//! literals, string escapes, and `#"c"` character literals.

use crate::token::{TokKind, Token};
use til_common::{Diagnostic, Result, Span, Symbol};

/// Lexes `src` into a token stream terminated by [`TokKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

const SYMBOLIC: &str = "!%&$+-/:<=>?@\\~^|*";

fn is_symbolic(c: u8) -> bool {
    SYMBOLIC.as_bytes().contains(&c)
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic()
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'\''
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos as u32;
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokKind::Eof,
                    span: Span::new(start, start),
                });
                return Ok(out);
            };
            let kind = self.token(c)?;
            out.push(Token {
                kind,
                span: Span::new(start, self.pos as u32),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error("lex", Span::new(self.pos as u32, self.pos as u32 + 1), msg)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let open = self.pos;
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.peek() {
                            Some(b'(') if self.peek2() == Some(b'*') => {
                                self.pos += 2;
                                depth += 1;
                            }
                            Some(b'*') if self.peek2() == Some(b')') => {
                                self.pos += 2;
                                depth -= 1;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(Diagnostic::error(
                                    "lex",
                                    Span::new(open as u32, self.pos as u32),
                                    "unterminated comment",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn token(&mut self, c: u8) -> Result<TokKind> {
        match c {
            b'(' => {
                self.pos += 1;
                Ok(TokKind::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(TokKind::RParen)
            }
            b'[' => {
                self.pos += 1;
                Ok(TokKind::LBracket)
            }
            b']' => {
                self.pos += 1;
                Ok(TokKind::RBracket)
            }
            b'{' => {
                self.pos += 1;
                Ok(TokKind::LBrace)
            }
            b'}' => {
                self.pos += 1;
                Ok(TokKind::RBrace)
            }
            b',' => {
                self.pos += 1;
                Ok(TokKind::Comma)
            }
            b';' => {
                self.pos += 1;
                Ok(TokKind::Semi)
            }
            b'_' => {
                self.pos += 1;
                Ok(TokKind::Underscore)
            }
            b'.' => {
                if self.src[self.pos..].starts_with("...") {
                    self.pos += 3;
                    Ok(TokKind::Ellipsis)
                } else {
                    Err(self.err("unexpected `.`"))
                }
            }
            b'\'' => self.tyvar(),
            b'"' => self.string().map(TokKind::Str),
            b'#' => {
                if self.peek2() == Some(b'"') {
                    self.pos += 1;
                    let s = self.string()?;
                    let mut it = s.chars();
                    match (it.next(), it.next()) {
                        (Some(ch), None) => Ok(TokKind::Char(ch)),
                        _ => Err(self.err("character literal must contain exactly one character")),
                    }
                } else {
                    self.pos += 1;
                    Ok(TokKind::Hash)
                }
            }
            b'~' if self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                self.pos += 1;
                self.number(true)
            }
            c if c.is_ascii_digit() => self.number(false),
            c if is_ident_start(c) => Ok(self.alpha_ident()),
            c if is_symbolic(c) => Ok(self.symbolic_ident()),
            other => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn tyvar(&mut self) -> Result<TokKind> {
        self.pos += 1; // '
        let start = self.pos;
        while self.peek().is_some_and(is_ident_cont) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected type variable name after `'`"));
        }
        Ok(TokKind::TyVar(Symbol::intern(&self.src[start..self.pos])))
    }

    fn string(&mut self) -> Result<String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(d) if d.is_ascii_digit() => {
                        let mut code = (d - b'0') as u32;
                        for _ in 0..2 {
                            match self.bump() {
                                Some(d2) if d2.is_ascii_digit() => {
                                    code = code * 10 + (d2 - b'0') as u32;
                                }
                                _ => return Err(self.err("malformed \\ddd escape")),
                            }
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("\\ddd escape out of range"))?,
                        );
                    }
                    _ => return Err(self.err("unknown string escape")),
                },
                Some(c) => {
                    // Multi-byte UTF-8: copy the full character.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let s = &self.src[self.pos - 1..];
                        let ch = s.chars().next().unwrap();
                        out.push(ch);
                        self.pos += ch.len_utf8() - 1;
                    }
                }
            }
        }
    }

    fn number(&mut self, negative: bool) -> Result<TokKind> {
        let start = self.pos;
        // 0w / 0x prefixes.
        if self.peek() == Some(b'0') && self.peek2() == Some(b'w') && !negative {
            self.pos += 2;
            let dstart = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if dstart == self.pos {
                return Err(self.err("expected digits after `0w`"));
            }
            let v: u64 = self.src[dstart..self.pos]
                .parse()
                .map_err(|_| self.err("word literal out of range"))?;
            return Ok(TokKind::Word(v));
        }
        if self.peek() == Some(b'0') && self.peek2() == Some(b'x') {
            self.pos += 2;
            let dstart = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if dstart == self.pos {
                return Err(self.err("expected hex digits after `0x`"));
            }
            let v = i64::from_str_radix(&self.src[dstart..self.pos], 16)
                .map_err(|_| self.err("hex literal out of range"))?;
            return Ok(TokKind::Int(if negative { -v } else { v }));
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_real = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_real = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let mut text_end = self.pos;
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            // Exponent: e[~]ddd.
            let save = self.pos;
            self.pos += 1;
            let mut exp_neg = false;
            if self.peek() == Some(b'~') {
                exp_neg = true;
                self.pos += 1;
            }
            let dstart = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if dstart == self.pos {
                self.pos = save; // not an exponent after all
            } else {
                is_real = true;
                let _ = exp_neg;
                text_end = self.pos;
            }
        } else {
            text_end = self.pos;
        }
        let text = self.src[start..text_end].replace('~', "-");
        if is_real {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err("malformed real literal"))?;
            Ok(TokKind::Real(if negative { -v } else { v }))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err("integer literal out of range"))?;
            Ok(TokKind::Int(if negative { -v } else { v }))
        }
    }

    fn alpha_ident(&mut self) -> TokKind {
        let start = self.pos;
        while self.peek().is_some_and(is_ident_cont) {
            self.pos += 1;
        }
        // Qualified names (`Int.toString`, `Array.sub`) lex as a single
        // identifier: there is no module system in our subset, but the
        // basis exposes dotted names for familiarity.
        while self.peek() == Some(b'.') && self.peek2().is_some_and(is_ident_start) {
            self.pos += 1;
            while self.peek().is_some_and(is_ident_cont) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        match text {
            "and" => TokKind::And,
            "andalso" => TokKind::Andalso,
            "as" => TokKind::As,
            "case" => TokKind::Case,
            "datatype" => TokKind::Datatype,
            "do" => TokKind::Do,
            "else" => TokKind::Else,
            "end" => TokKind::End,
            "exception" => TokKind::Exception,
            "fn" => TokKind::Fn,
            "fun" => TokKind::Fun,
            "handle" => TokKind::Handle,
            "if" => TokKind::If,
            "in" => TokKind::In,
            "let" => TokKind::Let,
            "local" => TokKind::Local,
            "of" => TokKind::Of,
            "op" => TokKind::Op,
            "orelse" => TokKind::Orelse,
            "raise" => TokKind::Raise,
            "rec" => TokKind::Rec,
            "then" => TokKind::Then,
            "type" => TokKind::Type,
            "val" => TokKind::Val,
            "while" => TokKind::While,
            _ => TokKind::Ident(Symbol::intern(text)),
        }
    }

    fn symbolic_ident(&mut self) -> TokKind {
        let start = self.pos;
        while self.peek().is_some_and(is_symbolic) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match text {
            "=" => TokKind::Equals,
            "=>" => TokKind::DArrow,
            "->" => TokKind::Arrow,
            ":" => TokKind::Colon,
            "|" => TokKind::Bar,
            _ => TokKind::Ident(Symbol::intern(text)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use til_common::Symbol;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_val() {
        let ks = kinds("val x = 1");
        assert_eq!(
            ks,
            vec![
                TokKind::Val,
                TokKind::Ident(Symbol::intern("x")),
                TokKind::Equals,
                TokKind::Int(1),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn negative_literals() {
        assert_eq!(kinds("~42")[0], TokKind::Int(-42));
        assert_eq!(kinds("~4.5")[0], TokKind::Real(-4.5));
    }

    #[test]
    fn real_with_exponent() {
        assert_eq!(kinds("1.5e2")[0], TokKind::Real(150.0));
        assert_eq!(kinds("2e~1")[0], TokKind::Real(0.2));
    }

    #[test]
    fn word_and_hex_literals() {
        assert_eq!(kinds("0w255")[0], TokKind::Word(255));
        assert_eq!(kinds("0xff")[0], TokKind::Int(255));
    }

    #[test]
    fn nested_comments() {
        let ks = kinds("(* a (* nested *) b *) 7");
        assert_eq!(ks[0], TokKind::Int(7));
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\nb\065""#)[0],
            TokKind::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn char_literal() {
        assert_eq!(kinds("#\"x\"")[0], TokKind::Char('x'));
    }

    #[test]
    fn symbolic_identifiers_munch_maximally() {
        let ks = kinds("a <= b");
        assert_eq!(ks[1], TokKind::Ident(Symbol::intern("<=")));
    }

    #[test]
    fn cons_and_assign() {
        assert_eq!(kinds("::")[0], TokKind::Ident(Symbol::intern("::")));
        assert_eq!(kinds(":=")[0], TokKind::Ident(Symbol::intern(":=")));
        assert_eq!(kinds(":")[0], TokKind::Colon);
    }

    #[test]
    fn tyvars() {
        assert_eq!(kinds("'a")[0], TokKind::TyVar(Symbol::intern("a")));
    }

    #[test]
    fn hash_selector_vs_char() {
        let ks = kinds("#1 #\"c\"");
        assert_eq!(ks[0], TokKind::Hash);
        assert_eq!(ks[1], TokKind::Int(1));
        assert_eq!(ks[2], TokKind::Char('c'));
    }

    #[test]
    fn spans_track_positions() {
        let ts = lex("val x").unwrap();
        assert_eq!(ts[0].span, til_common::Span::new(0, 3));
        assert_eq!(ts[1].span, til_common::Span::new(4, 5));
    }
}
