//! Token definitions for the core-SML lexer.

use til_common::{Span, Symbol};

/// A lexical token paired with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokKind,
    /// Where the token appeared.
    pub span: Span,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// Alphanumeric or symbolic identifier (also covers `*`, `+`, ...).
    Ident(Symbol),
    /// Type variable such as `'a`.
    TyVar(Symbol),
    /// Integer literal (`~` already applied).
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal with escapes resolved.
    Str(String),
    /// Character literal.
    Char(char),
    /// Word literal `0w...` (kept distinct from `Int` for fidelity).
    Word(u64),

    // Keywords.
    And,
    Andalso,
    As,
    Case,
    Datatype,
    Do,
    Else,
    End,
    Exception,
    Fn,
    Fun,
    Handle,
    If,
    In,
    Let,
    Local,
    Of,
    Op,
    Orelse,
    Raise,
    Rec,
    Then,
    Type,
    Val,
    While,

    // Punctuation and reserved symbols.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Underscore,
    Bar,
    Colon,
    Arrow,     // ->
    DArrow,    // =>
    Equals,    // = (also an identifier in expressions; lexed specially)
    Hash,      // #
    Ellipsis,  // ...
    Eof,
}

impl TokKind {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("identifier `{s}`"),
            TokKind::TyVar(s) => format!("type variable `'{s}`"),
            TokKind::Int(n) => format!("integer `{n}`"),
            TokKind::Real(r) => format!("real `{r}`"),
            TokKind::Str(_) => "string literal".into(),
            TokKind::Char(c) => format!("character `#\"{c}\"`"),
            TokKind::Word(w) => format!("word `0w{w}`"),
            TokKind::Eof => "end of input".into(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            TokKind::And => "and",
            TokKind::Andalso => "andalso",
            TokKind::As => "as",
            TokKind::Case => "case",
            TokKind::Datatype => "datatype",
            TokKind::Do => "do",
            TokKind::Else => "else",
            TokKind::End => "end",
            TokKind::Exception => "exception",
            TokKind::Fn => "fn",
            TokKind::Fun => "fun",
            TokKind::Handle => "handle",
            TokKind::If => "if",
            TokKind::In => "in",
            TokKind::Let => "let",
            TokKind::Local => "local",
            TokKind::Of => "of",
            TokKind::Op => "op",
            TokKind::Orelse => "orelse",
            TokKind::Raise => "raise",
            TokKind::Rec => "rec",
            TokKind::Then => "then",
            TokKind::Type => "type",
            TokKind::Val => "val",
            TokKind::While => "while",
            TokKind::LParen => "(",
            TokKind::RParen => ")",
            TokKind::LBracket => "[",
            TokKind::RBracket => "]",
            TokKind::LBrace => "{",
            TokKind::RBrace => "}",
            TokKind::Comma => ",",
            TokKind::Semi => ";",
            TokKind::Underscore => "_",
            TokKind::Bar => "|",
            TokKind::Colon => ":",
            TokKind::Arrow => "->",
            TokKind::DArrow => "=>",
            TokKind::Equals => "=",
            TokKind::Hash => "#",
            TokKind::Ellipsis => "...",
            _ => "?",
        }
    }
}
