//! Abstract syntax for the core-SML subset.
//!
//! Tuples are represented as records with numeric labels `1`, `2`, ...
//! (as in the Definition); `()` is the empty record. List syntax is
//! desugared by the parser into `::`/`nil` constructor applications, so
//! the AST has no list form.

use til_common::{Span, Symbol};

/// A complete compilation unit: a sequence of top-level declarations.
#[derive(Clone, Debug)]
pub struct Program {
    /// Top-level declarations in order.
    pub decs: Vec<Dec>,
}

/// A declaration.
#[derive(Clone, Debug)]
pub enum Dec {
    /// `val pat = exp`.
    Val {
        /// Bound pattern.
        pat: Pat,
        /// Right-hand side.
        exp: Exp,
        /// Source location.
        span: Span,
    },
    /// `fun f p1 ... pn = e | ...` with `and`-joined mutual recursion.
    Fun {
        /// One entry per function in the `and` chain.
        binds: Vec<FunBind>,
        /// Source location.
        span: Span,
    },
    /// `datatype ('a, ...) t = C1 of ty | C2 | ...` with `and` chains.
    Datatype {
        /// One entry per datatype in the `and` chain.
        binds: Vec<DatBind>,
        /// Source location.
        span: Span,
    },
    /// `type ('a, ...) t = ty` abbreviation.
    TypeAbbrev {
        /// Bound type parameters.
        tyvars: Vec<Symbol>,
        /// Abbreviation name.
        name: Symbol,
        /// Expansion.
        ty: Ty,
        /// Source location.
        span: Span,
    },
    /// `exception E` or `exception E of ty`.
    Exception {
        /// Exception constructor name.
        name: Symbol,
        /// Carried type, if any.
        arg: Option<Ty>,
        /// Source location.
        span: Span,
    },
}

/// One function in a `fun ... and ...` chain.
#[derive(Clone, Debug)]
pub struct FunBind {
    /// Function name.
    pub name: Symbol,
    /// Clauses; all must have the same number of curried arguments.
    pub clauses: Vec<Clause>,
    /// Source location.
    pub span: Span,
}

/// One clause of a `fun` binding.
#[derive(Clone, Debug)]
pub struct Clause {
    /// Curried argument patterns.
    pub pats: Vec<Pat>,
    /// Optional result-type annotation.
    pub result_ty: Option<Ty>,
    /// Clause body.
    pub body: Exp,
}

/// One datatype in a `datatype ... and ...` chain.
#[derive(Clone, Debug)]
pub struct DatBind {
    /// Type parameters (`'a`, ...).
    pub tyvars: Vec<Symbol>,
    /// Datatype name.
    pub name: Symbol,
    /// Constructors with optional argument types.
    pub cons: Vec<(Symbol, Option<Ty>)>,
}

/// A type expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Ty {
    /// `'a`.
    Var(Symbol),
    /// `(ty, ...) tycon`, e.g. `int`, `'a list`, `(int, string) pair`.
    Con(Vec<Ty>, Symbol),
    /// `{l1: ty1, ...}`; tuples use numeric labels.
    Record(Vec<(Symbol, Ty)>),
    /// `ty -> ty`.
    Arrow(Box<Ty>, Box<Ty>),
}

impl Ty {
    /// Builds an n-ary tuple type (unit when `tys` is empty).
    pub fn tuple(tys: Vec<Ty>) -> Ty {
        Ty::Record(number_labels(tys))
    }
}

/// A special (literal) constant.
#[derive(Clone, Debug, PartialEq)]
pub enum SCon {
    /// Integer.
    Int(i64),
    /// Floating point.
    Real(f64),
    /// String.
    Str(String),
    /// Character.
    Char(char),
    /// Machine word.
    Word(u64),
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Exp {
    /// Literal constant.
    SCon(SCon, Span),
    /// Variable or constructor occurrence.
    Var(Symbol, Span),
    /// `fn rule | rule | ...`.
    Fn(Vec<Rule>, Span),
    /// Application `e1 e2`.
    App(Box<Exp>, Box<Exp>, Span),
    /// `if e1 then e2 else e3`.
    If(Box<Exp>, Box<Exp>, Box<Exp>, Span),
    /// `case e of rule | ...`.
    Case(Box<Exp>, Vec<Rule>, Span),
    /// `let decs in e end` (body may be a sequence).
    Let(Vec<Dec>, Box<Exp>, Span),
    /// Record (or tuple) construction.
    Record(Vec<(Symbol, Exp)>, Span),
    /// `#label` selector used as a function.
    Selector(Symbol, Span),
    /// `raise e`.
    Raise(Box<Exp>, Span),
    /// `e handle rule | ...`.
    Handle(Box<Exp>, Vec<Rule>, Span),
    /// `(e1; e2; ...; en)` — value of `en`.
    Seq(Vec<Exp>, Span),
    /// `e1 andalso e2`.
    Andalso(Box<Exp>, Box<Exp>, Span),
    /// `e1 orelse e2`.
    Orelse(Box<Exp>, Box<Exp>, Span),
    /// `while e1 do e2`.
    While(Box<Exp>, Box<Exp>, Span),
    /// `e : ty`.
    Constraint(Box<Exp>, Ty, Span),
}

impl Exp {
    /// Builds an n-ary tuple expression (unit when empty).
    pub fn tuple(exps: Vec<Exp>, span: Span) -> Exp {
        Exp::Record(number_labels(exps), span)
    }

    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Exp::SCon(_, s)
            | Exp::Var(_, s)
            | Exp::Fn(_, s)
            | Exp::App(_, _, s)
            | Exp::If(_, _, _, s)
            | Exp::Case(_, _, s)
            | Exp::Let(_, _, s)
            | Exp::Record(_, s)
            | Exp::Selector(_, s)
            | Exp::Raise(_, s)
            | Exp::Handle(_, _, s)
            | Exp::Seq(_, s)
            | Exp::Andalso(_, _, s)
            | Exp::Orelse(_, _, s)
            | Exp::While(_, _, s)
            | Exp::Constraint(_, _, s) => *s,
        }
    }
}

/// A `pat => exp` match rule.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Pattern.
    pub pat: Pat,
    /// Body.
    pub exp: Exp,
}

/// A pattern.
#[derive(Clone, Debug)]
pub enum Pat {
    /// `_`.
    Wild(Span),
    /// Variable binding (or nullary-constructor occurrence; the
    /// elaborator disambiguates against the constructor environment).
    Var(Symbol, Span),
    /// Literal.
    SCon(SCon, Span),
    /// Constructor application `C pat` (arg `None` for bare `C` that is
    /// known to be a constructor at parse time, e.g. inside lists).
    Con(Symbol, Option<Box<Pat>>, Span),
    /// Record/tuple pattern. `flexible` is true when `...` was present.
    Record {
        /// Labelled sub-patterns.
        fields: Vec<(Symbol, Pat)>,
        /// `...` present.
        flexible: bool,
        /// Source location.
        span: Span,
    },
    /// `x as pat`.
    As(Symbol, Box<Pat>, Span),
    /// `pat : ty`.
    Constraint(Box<Pat>, Ty, Span),
}

impl Pat {
    /// Builds an n-ary tuple pattern.
    pub fn tuple(pats: Vec<Pat>, span: Span) -> Pat {
        Pat::Record {
            fields: number_labels(pats),
            flexible: false,
            span,
        }
    }

    /// The pattern's source span.
    pub fn span(&self) -> Span {
        match self {
            Pat::Wild(s)
            | Pat::Var(_, s)
            | Pat::SCon(_, s)
            | Pat::Con(_, _, s)
            | Pat::As(_, _, s)
            | Pat::Constraint(_, _, s) => *s,
            Pat::Record { span, .. } => *span,
        }
    }
}

/// Labels a vector with `1`, `2`, ... as tuple labels.
pub fn number_labels<T>(items: Vec<T>) -> Vec<(Symbol, T)> {
    items
        .into_iter()
        .enumerate()
        .map(|(i, t)| (Symbol::intern(&(i + 1).to_string()), t))
        .collect()
}

/// True if the record fields are exactly the tuple labels `1..n` in order.
pub fn is_tuple_labels<T>(fields: &[(Symbol, T)]) -> bool {
    fields
        .iter()
        .enumerate()
        .all(|(i, (l, _))| l.as_str() == (i + 1).to_string())
}
