//! Front-end syntax for the core-SML subset accepted by the TIL
//! reproduction.
//!
//! The paper reuses the ML Kit front end; this crate is our from-scratch
//! equivalent: a lexer ([`lexer`]), abstract syntax ([`ast`]), and a
//! recursive-descent parser ([`parser`]) covering the language the
//! paper's benchmarks need — datatypes, polymorphic functions, records
//! and tuples, pattern matching, exceptions, references, arrays (via
//! primitives), and the usual literals.
//!
//! # Example
//!
//! ```
//! let prog = til_syntax::parse("val x = 1 + 2").unwrap();
//! assert_eq!(prog.decs.len(), 1);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::Program;

/// Parses a complete program (a sequence of declarations).
pub fn parse(src: &str) -> til_common::Result<Program> {
    let tokens = lexer::lex(src)?;
    parser::Parser::new(src, tokens).program()
}

/// Parses a single expression (used by tests and examples).
pub fn parse_exp(src: &str) -> til_common::Result<ast::Exp> {
    let tokens = lexer::lex(src)?;
    parser::Parser::new(src, tokens).single_exp()
}
