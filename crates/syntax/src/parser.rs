//! Recursive-descent parser for the core-SML subset.
//!
//! Infix operators come from the Definition's fixed initial basis (there
//! are no user `infix` declarations in our subset):
//!
//! | prec | assoc | operators |
//! |------|-------|-----------|
//! | 7 | left  | `*` `/` `div` `mod` |
//! | 6 | left  | `+` `-` `^` |
//! | 5 | right | `::` `@` |
//! | 4 | left  | `=` `<>` `<` `>` `<=` `>=` |
//! | 3 | right | `:=` |
//! | 3 | left  | `o` |
//!
//! List syntax `[a, b]` desugars to `a :: b :: nil` at parse time.

use crate::ast::*;
use crate::token::{TokKind, Token};
use til_common::{Diagnostic, Result, Span, Symbol};

/// The parser state over a token stream.
pub struct Parser<'a> {
    #[allow(dead_code)]
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

fn infix_info(name: &str) -> Option<(u8, bool)> {
    // (precedence, right-associative)
    match name {
        "*" | "/" | "div" | "mod" => Some((7, false)),
        "+" | "-" | "^" => Some((6, false)),
        "::" | "@" => Some((5, true)),
        "=" | "<>" | "<" | ">" | "<=" | ">=" => Some((4, false)),
        ":=" => Some((3, true)),
        "o" => Some((3, false)),
        _ => None,
    }
}

impl<'a> Parser<'a> {
    /// Creates a parser over pre-lexed tokens.
    pub fn new(src: &'a str, tokens: Vec<Token>) -> Parser<'a> {
        Parser {
            src,
            tokens,
            pos: 0,
        }
    }

    fn peek(&self) -> &TokKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error("parse", self.span(), msg)
    }

    fn expect(&mut self, kind: TokKind) -> Result<Span> {
        if *self.peek() == kind {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn eat(&mut self, kind: TokKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<Symbol> {
        match self.peek().clone() {
            TokKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            TokKind::Equals => {
                self.bump();
                Ok(Symbol::intern("="))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ---------------------------------------------------------------- decs

    /// Parses a whole program.
    pub fn program(mut self) -> Result<Program> {
        let mut decs = Vec::new();
        loop {
            while self.eat(TokKind::Semi) {}
            if *self.peek() == TokKind::Eof {
                return Ok(Program { decs });
            }
            decs.push(self.dec()?);
        }
    }

    /// Parses a single expression followed by end-of-input.
    pub fn single_exp(mut self) -> Result<Exp> {
        let e = self.exp()?;
        self.expect(TokKind::Eof)?;
        Ok(e)
    }

    fn dec(&mut self) -> Result<Dec> {
        let start = self.span();
        match self.peek() {
            TokKind::Val => {
                self.bump();
                if self.eat(TokKind::Rec) {
                    // val rec f = fn match (and ...) — normalize to Fun.
                    let mut binds = Vec::new();
                    loop {
                        let bstart = self.span();
                        let name = self.ident()?;
                        self.expect(TokKind::Equals)?;
                        let fnspan = self.span();
                        self.expect(TokKind::Fn)?;
                        let rules = self.match_rules()?;
                        let clauses = rules
                            .into_iter()
                            .map(|r| Clause {
                                pats: vec![r.pat],
                                result_ty: None,
                                body: r.exp,
                            })
                            .collect();
                        binds.push(FunBind {
                            name,
                            clauses,
                            span: bstart.merge(fnspan),
                        });
                        if !self.eat(TokKind::And) {
                            break;
                        }
                        self.expect(TokKind::Rec).ok(); // `and rec` optional
                    }
                    Ok(Dec::Fun {
                        binds,
                        span: start.merge(self.prev_span()),
                    })
                } else {
                    let pat = self.pat()?;
                    self.expect(TokKind::Equals)?;
                    let exp = self.exp()?;
                    Ok(Dec::Val {
                        pat,
                        exp,
                        span: start.merge(self.prev_span()),
                    })
                }
            }
            TokKind::Fun => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    binds.push(self.fun_bind()?);
                    if !self.eat(TokKind::And) {
                        break;
                    }
                }
                Ok(Dec::Fun {
                    binds,
                    span: start.merge(self.prev_span()),
                })
            }
            TokKind::Datatype => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    binds.push(self.dat_bind()?);
                    if !self.eat(TokKind::And) {
                        break;
                    }
                }
                Ok(Dec::Datatype {
                    binds,
                    span: start.merge(self.prev_span()),
                })
            }
            TokKind::Type => {
                self.bump();
                let tyvars = self.tyvar_seq()?;
                let name = self.ident()?;
                self.expect(TokKind::Equals)?;
                let ty = self.ty()?;
                Ok(Dec::TypeAbbrev {
                    tyvars,
                    name,
                    ty,
                    span: start.merge(self.prev_span()),
                })
            }
            TokKind::Exception => {
                self.bump();
                let name = self.ident()?;
                let arg = if self.eat(TokKind::Of) {
                    Some(self.ty()?)
                } else {
                    None
                };
                Ok(Dec::Exception {
                    name,
                    arg,
                    span: start.merge(self.prev_span()),
                })
            }
            other => Err(self.err(format!(
                "expected a declaration, found {}",
                other.describe()
            ))),
        }
    }

    fn fun_bind(&mut self) -> Result<FunBind> {
        let start = self.span();
        let mut clauses = Vec::new();
        let mut name = None;
        loop {
            self.eat(TokKind::Op);
            let n = self.ident()?;
            match name {
                None => name = Some(n),
                Some(prev) if prev == n => {}
                Some(prev) => {
                    return Err(self.err(format!(
                        "clause name `{n}` does not match function name `{prev}`"
                    )))
                }
            }
            let mut pats = Vec::new();
            while self.starts_atpat() {
                pats.push(self.atpat()?);
            }
            if pats.is_empty() {
                return Err(self.err("function clause needs at least one argument pattern"));
            }
            let result_ty = if self.eat(TokKind::Colon) {
                Some(self.ty()?)
            } else {
                None
            };
            self.expect(TokKind::Equals)?;
            let body = self.exp()?;
            clauses.push(Clause {
                pats,
                result_ty,
                body,
            });
            // Another clause of the same function?
            if *self.peek() == TokKind::Bar {
                self.bump();
            } else {
                break;
            }
        }
        Ok(FunBind {
            name: name.unwrap(),
            clauses,
            span: start.merge(self.prev_span()),
        })
    }

    fn tyvar_seq(&mut self) -> Result<Vec<Symbol>> {
        match self.peek().clone() {
            TokKind::TyVar(v) => {
                self.bump();
                Ok(vec![v])
            }
            TokKind::LParen if matches!(self.peek2(), TokKind::TyVar(_)) => {
                self.bump();
                let mut vs = Vec::new();
                loop {
                    match self.peek().clone() {
                        TokKind::TyVar(v) => {
                            self.bump();
                            vs.push(v);
                        }
                        _ => return Err(self.err("expected type variable")),
                    }
                    if !self.eat(TokKind::Comma) {
                        break;
                    }
                }
                self.expect(TokKind::RParen)?;
                Ok(vs)
            }
            _ => Ok(Vec::new()),
        }
    }

    fn dat_bind(&mut self) -> Result<DatBind> {
        let tyvars = self.tyvar_seq()?;
        let name = self.ident()?;
        self.expect(TokKind::Equals)?;
        let mut cons = Vec::new();
        loop {
            let cname = self.ident()?;
            let arg = if self.eat(TokKind::Of) {
                Some(self.ty()?)
            } else {
                None
            };
            cons.push((cname, arg));
            if !self.eat(TokKind::Bar) {
                break;
            }
        }
        Ok(DatBind { tyvars, name, cons })
    }

    // --------------------------------------------------------------- types

    fn ty(&mut self) -> Result<Ty> {
        let lhs = self.ty_tuple()?;
        if self.eat(TokKind::Arrow) {
            let rhs = self.ty()?;
            Ok(Ty::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ty_tuple(&mut self) -> Result<Ty> {
        let first = self.ty_app()?;
        let star = Symbol::intern("*");
        let mut parts = vec![first];
        while matches!(self.peek(), TokKind::Ident(s) if *s == star) {
            self.bump();
            parts.push(self.ty_app()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Ty::tuple(parts))
        }
    }

    fn ty_app(&mut self) -> Result<Ty> {
        let mut args: Vec<Ty>;
        match self.peek().clone() {
            TokKind::LParen => {
                self.bump();
                let mut tys = vec![self.ty()?];
                while self.eat(TokKind::Comma) {
                    tys.push(self.ty()?);
                }
                self.expect(TokKind::RParen)?;
                if tys.len() > 1 {
                    // Must be followed by a type constructor.
                    let name = self.ident()?;
                    args = vec![Ty::Con(tys, name)];
                } else {
                    args = tys;
                }
            }
            TokKind::TyVar(v) => {
                self.bump();
                args = vec![Ty::Var(v)];
            }
            TokKind::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if *self.peek() != TokKind::RBrace {
                    loop {
                        let lab = self.label()?;
                        self.expect(TokKind::Colon)?;
                        let t = self.ty()?;
                        fields.push((lab, t));
                        if !self.eat(TokKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokKind::RBrace)?;
                fields.sort_by_key(|(l, _)| l.as_str());
                args = vec![Ty::Record(fields)];
            }
            TokKind::Ident(name) => {
                self.bump();
                args = vec![Ty::Con(vec![], name)];
            }
            other => {
                return Err(self.err(format!("expected a type, found {}", other.describe())))
            }
        }
        // Postfix constructor applications: `int list`, `'a array`.
        while let TokKind::Ident(name) = self.peek().clone() {
            if infix_info(name.as_str()).is_some() {
                break;
            }
            self.bump();
            args = vec![Ty::Con(args, name)];
        }
        Ok(args.pop().unwrap())
    }

    fn label(&mut self) -> Result<Symbol> {
        match self.peek().clone() {
            TokKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            TokKind::Int(n) if n > 0 => {
                self.bump();
                Ok(Symbol::intern(&n.to_string()))
            }
            other => Err(self.err(format!("expected record label, found {}", other.describe()))),
        }
    }

    // --------------------------------------------------------------- exprs

    fn exp(&mut self) -> Result<Exp> {
        let start = self.span();
        let mut e = match self.peek() {
            TokKind::If => {
                self.bump();
                let c = self.exp()?;
                self.expect(TokKind::Then)?;
                let t = self.exp()?;
                self.expect(TokKind::Else)?;
                let f = self.exp()?;
                Exp::If(
                    Box::new(c),
                    Box::new(t),
                    Box::new(f),
                    start.merge(self.prev_span()),
                )
            }
            TokKind::While => {
                self.bump();
                let c = self.exp()?;
                self.expect(TokKind::Do)?;
                let b = self.exp()?;
                Exp::While(Box::new(c), Box::new(b), start.merge(self.prev_span()))
            }
            TokKind::Case => {
                self.bump();
                let scrut = self.exp()?;
                self.expect(TokKind::Of)?;
                let rules = self.match_rules()?;
                Exp::Case(Box::new(scrut), rules, start.merge(self.prev_span()))
            }
            TokKind::Fn => {
                self.bump();
                let rules = self.match_rules()?;
                Exp::Fn(rules, start.merge(self.prev_span()))
            }
            TokKind::Raise => {
                self.bump();
                let e = self.exp()?;
                Exp::Raise(Box::new(e), start.merge(self.prev_span()))
            }
            _ => self.or_exp()?,
        };
        loop {
            match self.peek() {
                TokKind::Handle => {
                    self.bump();
                    let rules = self.match_rules()?;
                    let sp = start.merge(self.prev_span());
                    e = Exp::Handle(Box::new(e), rules, sp);
                }
                TokKind::Colon => {
                    self.bump();
                    let ty = self.ty()?;
                    let sp = start.merge(self.prev_span());
                    e = Exp::Constraint(Box::new(e), ty, sp);
                }
                _ => return Ok(e),
            }
        }
    }

    fn match_rules(&mut self) -> Result<Vec<Rule>> {
        let mut rules = Vec::new();
        loop {
            let pat = self.pat()?;
            self.expect(TokKind::DArrow)?;
            let exp = self.exp()?;
            rules.push(Rule { pat, exp });
            if !self.eat(TokKind::Bar) {
                return Ok(rules);
            }
        }
    }

    fn or_exp(&mut self) -> Result<Exp> {
        let start = self.span();
        let mut e = self.and_exp()?;
        while self.eat(TokKind::Orelse) {
            let rhs = self.and_exp()?;
            let sp = start.merge(self.prev_span());
            e = Exp::Orelse(Box::new(e), Box::new(rhs), sp);
        }
        Ok(e)
    }

    fn and_exp(&mut self) -> Result<Exp> {
        let start = self.span();
        let mut e = self.inf_exp(0)?;
        while self.eat(TokKind::Andalso) {
            let rhs = self.inf_exp(0)?;
            let sp = start.merge(self.prev_span());
            e = Exp::Andalso(Box::new(e), Box::new(rhs), sp);
        }
        Ok(e)
    }

    /// Precedence-climbing infix parser.
    fn inf_exp(&mut self, min_prec: u8) -> Result<Exp> {
        let start = self.span();
        let mut lhs = self.app_exp()?;
        loop {
            let (name, prec, right) = match self.peek() {
                TokKind::Ident(s) => match infix_info(s.as_str()) {
                    Some((p, r)) if p >= min_prec => (*s, p, r),
                    _ => return Ok(lhs),
                },
                TokKind::Equals => {
                    let (p, r) = infix_info("=").unwrap();
                    if p >= min_prec {
                        (Symbol::intern("="), p, r)
                    } else {
                        return Ok(lhs);
                    }
                }
                _ => return Ok(lhs),
            };
            let opspan = self.span();
            self.bump();
            let next_min = if right { prec } else { prec + 1 };
            let rhs = self.inf_exp(next_min)?;
            let sp = start.merge(self.prev_span());
            // `a + b` parses to `(+) (a, b)`.
            lhs = Exp::App(
                Box::new(Exp::Var(name, opspan)),
                Box::new(Exp::tuple(vec![lhs, rhs], sp)),
                sp,
            );
        }
    }

    fn app_exp(&mut self) -> Result<Exp> {
        let start = self.span();
        let mut e = self.at_exp()?;
        while self.starts_atexp() {
            let arg = self.at_exp()?;
            let sp = start.merge(self.prev_span());
            e = Exp::App(Box::new(e), Box::new(arg), sp);
        }
        Ok(e)
    }

    fn starts_atexp(&self) -> bool {
        matches!(
            self.peek(),
            TokKind::Int(_)
                | TokKind::Real(_)
                | TokKind::Str(_)
                | TokKind::Char(_)
                | TokKind::Word(_)
                | TokKind::LParen
                | TokKind::LBracket
                | TokKind::LBrace
                | TokKind::Let
                | TokKind::Hash
                | TokKind::Op
        ) || matches!(self.peek(), TokKind::Ident(s) if infix_info(s.as_str()).is_none())
    }

    fn at_exp(&mut self) -> Result<Exp> {
        let start = self.span();
        match self.peek().clone() {
            TokKind::Int(n) => {
                self.bump();
                Ok(Exp::SCon(SCon::Int(n), start))
            }
            TokKind::Real(r) => {
                self.bump();
                Ok(Exp::SCon(SCon::Real(r), start))
            }
            TokKind::Str(s) => {
                self.bump();
                Ok(Exp::SCon(SCon::Str(s), start))
            }
            TokKind::Char(c) => {
                self.bump();
                Ok(Exp::SCon(SCon::Char(c), start))
            }
            TokKind::Word(w) => {
                self.bump();
                Ok(Exp::SCon(SCon::Word(w), start))
            }
            TokKind::Op => {
                self.bump();
                let name = self.ident()?;
                Ok(Exp::Var(name, start.merge(self.prev_span())))
            }
            TokKind::Ident(s) => {
                self.bump();
                Ok(Exp::Var(s, start))
            }
            TokKind::Hash => {
                self.bump();
                let lab = self.label()?;
                Ok(Exp::Selector(lab, start.merge(self.prev_span())))
            }
            TokKind::Let => {
                self.bump();
                let mut decs = Vec::new();
                while *self.peek() != TokKind::In {
                    while self.eat(TokKind::Semi) {}
                    if *self.peek() == TokKind::In {
                        break;
                    }
                    decs.push(self.dec()?);
                }
                self.expect(TokKind::In)?;
                let mut body = vec![self.exp()?];
                while self.eat(TokKind::Semi) {
                    body.push(self.exp()?);
                }
                self.expect(TokKind::End)?;
                let sp = start.merge(self.prev_span());
                let body = if body.len() == 1 {
                    body.pop().unwrap()
                } else {
                    Exp::Seq(body, sp)
                };
                Ok(Exp::Let(decs, Box::new(body), sp))
            }
            TokKind::LParen => {
                self.bump();
                if self.eat(TokKind::RParen) {
                    return Ok(Exp::tuple(vec![], start.merge(self.prev_span())));
                }
                let first = self.exp()?;
                match self.peek() {
                    TokKind::Comma => {
                        let mut items = vec![first];
                        while self.eat(TokKind::Comma) {
                            items.push(self.exp()?);
                        }
                        self.expect(TokKind::RParen)?;
                        Ok(Exp::tuple(items, start.merge(self.prev_span())))
                    }
                    TokKind::Semi => {
                        let mut items = vec![first];
                        while self.eat(TokKind::Semi) {
                            items.push(self.exp()?);
                        }
                        self.expect(TokKind::RParen)?;
                        Ok(Exp::Seq(items, start.merge(self.prev_span())))
                    }
                    _ => {
                        self.expect(TokKind::RParen)?;
                        Ok(first)
                    }
                }
            }
            TokKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != TokKind::RBracket {
                    loop {
                        items.push(self.exp()?);
                        if !self.eat(TokKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokKind::RBracket)?;
                let sp = start.merge(self.prev_span());
                // Desugar to cons chain.
                let mut e = Exp::Var(Symbol::intern("nil"), sp);
                for item in items.into_iter().rev() {
                    e = Exp::App(
                        Box::new(Exp::Var(Symbol::intern("::"), sp)),
                        Box::new(Exp::tuple(vec![item, e], sp)),
                        sp,
                    );
                }
                Ok(e)
            }
            TokKind::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if *self.peek() != TokKind::RBrace {
                    loop {
                        let lab = self.label()?;
                        self.expect(TokKind::Equals)?;
                        let e = self.exp()?;
                        fields.push((lab, e));
                        if !self.eat(TokKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokKind::RBrace)?;
                Ok(Exp::Record(fields, start.merge(self.prev_span())))
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    // ------------------------------------------------------------ patterns

    fn pat(&mut self) -> Result<Pat> {
        self.pat_prec()
    }

    fn pat_prec(&mut self) -> Result<Pat> {
        let start = self.span();
        let mut lhs = self.con_pat()?;
        // Only `::` is an infix pattern constructor in our subset.
        let cons = Symbol::intern("::");
        if matches!(self.peek(), TokKind::Ident(s) if *s == cons) {
            self.bump();
            let rhs = self.pat_prec()?; // right associative
            let sp = start.merge(self.prev_span());
            lhs = Pat::Con(
                cons,
                Some(Box::new(Pat::tuple(vec![lhs, rhs], sp))),
                sp,
            );
        }
        // `: ty` constraint.
        while self.eat(TokKind::Colon) {
            let ty = self.ty()?;
            let sp = start.merge(self.prev_span());
            lhs = Pat::Constraint(Box::new(lhs), ty, sp);
        }
        Ok(lhs)
    }

    fn con_pat(&mut self) -> Result<Pat> {
        let start = self.span();
        // `x as pat`.
        if let TokKind::Ident(s) = self.peek().clone() {
            if *self.peek2() == TokKind::As {
                self.bump();
                self.bump();
                let p = self.pat()?;
                return Ok(Pat::As(s, Box::new(p), start.merge(self.prev_span())));
            }
        }
        let first = self.atpat()?;
        // Constructor application: `C atpat`.
        if let Pat::Var(name, _) = &first {
            if self.starts_atpat() {
                let name = *name;
                let arg = self.atpat()?;
                return Ok(Pat::Con(
                    name,
                    Some(Box::new(arg)),
                    start.merge(self.prev_span()),
                ));
            }
        }
        Ok(first)
    }

    fn starts_atpat(&self) -> bool {
        matches!(
            self.peek(),
            TokKind::Int(_)
                | TokKind::Real(_)
                | TokKind::Str(_)
                | TokKind::Char(_)
                | TokKind::Word(_)
                | TokKind::LParen
                | TokKind::LBracket
                | TokKind::LBrace
                | TokKind::Underscore
                | TokKind::Op
        ) || matches!(self.peek(), TokKind::Ident(s) if infix_info(s.as_str()).is_none())
    }

    fn atpat(&mut self) -> Result<Pat> {
        let start = self.span();
        match self.peek().clone() {
            TokKind::Underscore => {
                self.bump();
                Ok(Pat::Wild(start))
            }
            TokKind::Int(n) => {
                self.bump();
                Ok(Pat::SCon(SCon::Int(n), start))
            }
            TokKind::Real(_) => Err(self.err("real literals are not allowed in patterns")),
            TokKind::Str(s) => {
                self.bump();
                Ok(Pat::SCon(SCon::Str(s), start))
            }
            TokKind::Char(c) => {
                self.bump();
                Ok(Pat::SCon(SCon::Char(c), start))
            }
            TokKind::Word(w) => {
                self.bump();
                Ok(Pat::SCon(SCon::Word(w), start))
            }
            TokKind::Op => {
                self.bump();
                let name = self.ident()?;
                Ok(Pat::Var(name, start.merge(self.prev_span())))
            }
            TokKind::Ident(s) => {
                self.bump();
                Ok(Pat::Var(s, start))
            }
            TokKind::LParen => {
                self.bump();
                if self.eat(TokKind::RParen) {
                    return Ok(Pat::tuple(vec![], start.merge(self.prev_span())));
                }
                let mut items = vec![self.pat()?];
                while self.eat(TokKind::Comma) {
                    items.push(self.pat()?);
                }
                self.expect(TokKind::RParen)?;
                if items.len() == 1 {
                    Ok(items.pop().unwrap())
                } else {
                    Ok(Pat::tuple(items, start.merge(self.prev_span())))
                }
            }
            TokKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != TokKind::RBracket {
                    loop {
                        items.push(self.pat()?);
                        if !self.eat(TokKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokKind::RBracket)?;
                let sp = start.merge(self.prev_span());
                let mut p = Pat::Var(Symbol::intern("nil"), sp);
                for item in items.into_iter().rev() {
                    p = Pat::Con(
                        Symbol::intern("::"),
                        Some(Box::new(Pat::tuple(vec![item, p], sp))),
                        sp,
                    );
                }
                Ok(p)
            }
            TokKind::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                let mut flexible = false;
                if *self.peek() != TokKind::RBrace {
                    loop {
                        if self.eat(TokKind::Ellipsis) {
                            flexible = true;
                            break;
                        }
                        let lab = self.label()?;
                        if self.eat(TokKind::Equals) {
                            let p = self.pat()?;
                            fields.push((lab, p));
                        } else if self.eat(TokKind::As) {
                            // `{x as pat}` shorthand with binding.
                            let p = self.pat()?;
                            fields.push((
                                lab,
                                Pat::As(lab, Box::new(p), start.merge(self.prev_span())),
                            ));
                        } else {
                            // `{x, y}` shorthand for `{x = x, y = y}`.
                            fields.push((lab, Pat::Var(lab, self.prev_span())));
                        }
                        if !self.eat(TokKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokKind::RBrace)?;
                Ok(Pat::Record {
                    fields,
                    flexible,
                    span: start.merge(self.prev_span()),
                })
            }
            other => Err(self.err(format!("expected a pattern, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Program {
        let toks = lex(src).unwrap();
        Parser::new(src, toks).program().unwrap()
    }

    fn exp_ok(src: &str) -> Exp {
        let toks = lex(src).unwrap();
        Parser::new(src, toks).single_exp().unwrap()
    }

    #[test]
    fn parses_val_dec() {
        let p = parse_ok("val x = 1 + 2 * 3");
        assert_eq!(p.decs.len(), 1);
    }

    #[test]
    fn precedence_mul_over_add() {
        // 1 + 2 * 3 = (+)(1, (*)(2, 3))
        let e = exp_ok("1 + 2 * 3");
        let Exp::App(f, arg, _) = e else { panic!() };
        let Exp::Var(op, _) = *f else { panic!() };
        assert_eq!(op.as_str(), "+");
        let Exp::Record(fields, _) = *arg else {
            panic!()
        };
        assert!(matches!(fields[0].1, Exp::SCon(SCon::Int(1), _)));
        assert!(matches!(fields[1].1, Exp::App(_, _, _)));
    }

    #[test]
    fn cons_is_right_associative() {
        // 1 :: 2 :: nil = ::(1, ::(2, nil))
        let e = exp_ok("1 :: 2 :: nil");
        let Exp::App(f, arg, _) = e else { panic!() };
        let Exp::Var(op, _) = *f else { panic!() };
        assert_eq!(op.as_str(), "::");
        let Exp::Record(fields, _) = *arg else {
            panic!()
        };
        assert!(matches!(fields[0].1, Exp::SCon(SCon::Int(1), _)));
    }

    #[test]
    fn list_sugar_desugars() {
        let e = exp_ok("[1, 2]");
        assert!(matches!(e, Exp::App(_, _, _)));
    }

    #[test]
    fn fun_with_clauses() {
        let p = parse_ok("fun len nil = 0 | len (x :: xs) = 1 + len xs");
        let Dec::Fun { binds, .. } = &p.decs[0] else {
            panic!()
        };
        assert_eq!(binds[0].clauses.len(), 2);
    }

    #[test]
    fn mutual_recursion_with_and() {
        let p = parse_ok("fun even 0 = true | even n = odd (n - 1) and odd 0 = false | odd n = even (n - 1)");
        let Dec::Fun { binds, .. } = &p.decs[0] else {
            panic!()
        };
        assert_eq!(binds.len(), 2);
    }

    #[test]
    fn datatype_with_params() {
        let p = parse_ok("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree");
        let Dec::Datatype { binds, .. } = &p.decs[0] else {
            panic!()
        };
        assert_eq!(binds[0].cons.len(), 2);
        assert_eq!(binds[0].tyvars.len(), 1);
    }

    #[test]
    fn case_and_fn() {
        exp_ok("case xs of nil => 0 | x :: _ => x");
        exp_ok("fn x => x + 1");
    }

    #[test]
    fn let_with_sequence_body() {
        let e = exp_ok("let val x = 1 in print \"hi\"; x end");
        let Exp::Let(_, body, _) = e else { panic!() };
        assert!(matches!(*body, Exp::Seq(_, _)));
    }

    #[test]
    fn record_exp_and_selector() {
        exp_ok("#name {name = \"a\", age = 3}");
        exp_ok("#2 (1, 2)");
    }

    #[test]
    fn handle_and_raise() {
        exp_ok("(hd nil) handle Empty => 0");
        exp_ok("raise Subscript");
    }

    #[test]
    fn while_and_assign() {
        exp_ok("while !i < 10 do i := !i + 1");
    }

    #[test]
    fn record_pattern_shorthand() {
        let p = parse_ok("fun f {columns, rows, v} = rows");
        let Dec::Fun { binds, .. } = &p.decs[0] else {
            panic!()
        };
        let Pat::Record { fields, .. } = &binds[0].clauses[0].pats[0] else {
            panic!()
        };
        assert_eq!(fields.len(), 3);
    }

    #[test]
    fn as_pattern() {
        parse_ok("fun f (l as x :: xs) = l | f nil = nil");
    }

    #[test]
    fn type_annotations() {
        parse_ok("fun f (x : int) : int = x");
        parse_ok("val g = fn (x : int * int) => #1 x");
    }

    #[test]
    fn arrow_types_right_assoc() {
        let p = parse_ok("val f = g : int -> int -> int");
        let Dec::Val { exp, .. } = &p.decs[0] else {
            panic!()
        };
        let Exp::Constraint(_, Ty::Arrow(_, rhs), _) = exp else {
            panic!()
        };
        assert!(matches!(**rhs, Ty::Arrow(_, _)));
    }

    #[test]
    fn multi_param_tycon() {
        parse_ok("type ('a, 'b) pair = 'a * 'b");
    }

    #[test]
    fn exception_decs() {
        parse_ok("exception Subscript exception Fail of string");
    }

    #[test]
    fn val_rec_normalizes_to_fun() {
        let p = parse_ok("val rec f = fn 0 => 1 | n => n * f (n - 1)");
        assert!(matches!(&p.decs[0], Dec::Fun { .. }));
    }

    #[test]
    fn op_prefix() {
        exp_ok("foldl (op +) 0 xs");
    }

    #[test]
    fn andalso_orelse_precedence() {
        // a orelse b andalso c = a orelse (b andalso c)
        let e = exp_ok("a orelse b andalso c");
        assert!(matches!(e, Exp::Orelse(_, _, _)));
    }

    #[test]
    fn missing_paren_is_error() {
        let toks = lex("(1, 2").unwrap();
        assert!(Parser::new("(1, 2", toks).single_exp().is_err());
    }

    #[test]
    fn clause_name_mismatch_is_error() {
        let src = "fun f 0 = 1 | g n = n";
        let toks = lex(src).unwrap();
        assert!(Parser::new(src, toks).program().is_err());
    }
}
