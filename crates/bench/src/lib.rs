//! The benchmark suite (the paper's Table 1 programs, from-scratch
//! core-SML implementations at scaled-down default sizes) and the
//! measurement harness that regenerates every table and figure of the
//! paper's evaluation (Tables 2–7 / Figures 8–12).

use til::{Compiler, Options};

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Bench {
    /// Name as in Table 1.
    pub name: &'static str,
    /// Source text.
    pub source: &'static str,
    /// Table 1 description.
    pub description: &'static str,
}

/// The eight Table 1 benchmarks.
pub fn suite() -> Vec<Bench> {
    vec![
        Bench {
            name: "Checksum",
            source: include_str!("../sml/checksum.sml"),
            description: "Foxnet checksum fragment over a 4096-byte buffer",
        },
        Bench {
            name: "FFT",
            source: include_str!("../sml/fft.sml"),
            description: "fast Fourier transform on unboxed float arrays",
        },
        Bench {
            name: "Knuth-Bendix",
            source: include_str!("../sml/knuth_bendix.sml"),
            description: "Knuth-Bendix completion of the group axioms",
        },
        Bench {
            name: "Lexgen",
            source: include_str!("../sml/lexgen.sml"),
            description: "lexer generator: regex -> NFA -> DFA -> tokenize",
        },
        Bench {
            name: "Life",
            source: include_str!("../sml/life.sml"),
            description: "game of life on lists (Reade)",
        },
        Bench {
            name: "Matmult",
            source: include_str!("../sml/matmult.sml"),
            description: "integer matrix multiply on 2-d arrays",
        },
        Bench {
            name: "PIA",
            source: include_str!("../sml/pia.sml"),
            description: "perspective inversion over float records",
        },
        Bench {
            name: "Simple",
            source: include_str!("../sml/simple.sml"),
            description: "spherical fluid-dynamics kernel on 2-d float arrays",
        },
    ]
}

/// One measurement of one benchmark under one configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Program output (used to cross-check the modes agree).
    pub output: String,
    /// Execution-time metric (instructions + runtime work).
    pub time: u64,
    /// Total heap allocation in bytes.
    pub alloc_bytes: u64,
    /// Peak physical memory proxy: live heap + stack + statics + code,
    /// in bytes.
    pub memory_bytes: u64,
    /// Executable size (code + GC tables + static data), bytes.
    pub executable_bytes: u64,
    /// Compile time in seconds.
    pub compile_seconds: f64,
    /// Collections run.
    pub gc_count: u64,
}

/// Instruction budget per benchmark run.
pub const FUEL: u64 = 4_000_000_000;

/// Compiles and runs one benchmark under the given options.
pub fn measure(b: &Bench, opts: Options) -> Result<Measurement, String> {
    let exe = Compiler::new(opts)
        .compile(b.source)
        .map_err(|d| format!("{}: compile: {d}", b.name))?;
    let out = exe
        .run(FUEL)
        .map_err(|e| format!("{}: run: {e}", b.name))?;
    let stats = &out.stats;
    let memory = 8 * (stats.max_live_words.max(1) + stats.max_stack_words)
        + exe.info.executable_bytes as u64;
    Ok(Measurement {
        output: out.output,
        time: stats.time(),
        alloc_bytes: stats.allocated_bytes,
        memory_bytes: memory,
        executable_bytes: exe.info.executable_bytes as u64,
        compile_seconds: exe.info.total_seconds(),
        gc_count: stats.gc_count,
    })
}

/// Geometric mean of positive ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Median of a sample.
pub fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if v.is_empty() {
        f64::NAN
    } else if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_eight_table1_programs() {
        let names: Vec<&str> = suite().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "Checksum",
                "FFT",
                "Knuth-Bendix",
                "Lexgen",
                "Life",
                "Matmult",
                "PIA",
                "Simple"
            ]
        );
    }

    #[test]
    fn geomean_and_median() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }
}
