//! The benchmark suite (the paper's Table 1 programs, from-scratch
//! core-SML implementations at scaled-down default sizes) and the
//! measurement harness that regenerates every table and figure of the
//! paper's evaluation (Tables 2–7 / Figures 8–12).

use til::{Compiler, Options};

pub mod gen;
pub mod rng;

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Bench {
    /// Name as in Table 1.
    pub name: &'static str,
    /// Source text.
    pub source: &'static str,
    /// Table 1 description.
    pub description: &'static str,
}

/// The eight Table 1 benchmarks.
pub fn suite() -> Vec<Bench> {
    vec![
        Bench {
            name: "Checksum",
            source: include_str!("../sml/checksum.sml"),
            description: "Foxnet checksum fragment over a 4096-byte buffer",
        },
        Bench {
            name: "FFT",
            source: include_str!("../sml/fft.sml"),
            description: "fast Fourier transform on unboxed float arrays",
        },
        Bench {
            name: "Knuth-Bendix",
            source: include_str!("../sml/knuth_bendix.sml"),
            description: "Knuth-Bendix completion of the group axioms",
        },
        Bench {
            name: "Lexgen",
            source: include_str!("../sml/lexgen.sml"),
            description: "lexer generator: regex -> NFA -> DFA -> tokenize",
        },
        Bench {
            name: "Life",
            source: include_str!("../sml/life.sml"),
            description: "game of life on lists (Reade)",
        },
        Bench {
            name: "Matmult",
            source: include_str!("../sml/matmult.sml"),
            description: "integer matrix multiply on 2-d arrays",
        },
        Bench {
            name: "PIA",
            source: include_str!("../sml/pia.sml"),
            description: "perspective inversion over float records",
        },
        Bench {
            name: "Simple",
            source: include_str!("../sml/simple.sml"),
            description: "spherical fluid-dynamics kernel on 2-d float arrays",
        },
    ]
}

/// One measurement of one benchmark under one configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Program output (used to cross-check the modes agree).
    pub output: String,
    /// Execution-time metric (instructions + runtime work).
    pub time: u64,
    /// Instructions retired (mutator only).
    pub instrs: u64,
    /// Runtime work in instruction-equivalents (strings, collector).
    pub rt_cost: u64,
    /// Total heap allocation in bytes.
    pub alloc_bytes: u64,
    /// Peak physical memory proxy: live heap + stack + statics + code,
    /// in bytes.
    pub memory_bytes: u64,
    /// High-water mark of live heap words.
    pub max_live_words: u64,
    /// Resident heap words at program exit.
    pub final_heap_words: u64,
    /// High-water mark of stack words.
    pub max_stack_words: u64,
    /// Generated code size, bytes.
    pub code_bytes: u64,
    /// Executable size (code + GC tables + static data), bytes.
    pub executable_bytes: u64,
    /// Compile time in seconds.
    pub compile_seconds: f64,
    /// Per-phase compile seconds, in pipeline order.
    pub phase_seconds: Vec<(&'static str, f64)>,
    /// Collections run.
    pub gc_count: u64,
}

/// Instruction budget per benchmark run.
pub const FUEL: u64 = 4_000_000_000;

/// Semispace size for the pressured-heap runtime-observability runs.
/// The default 16 MB semispace never fills on these scaled-down
/// benchmarks, so the runtime export runs the suite under a small heap
/// to exercise the collector (pauses, censuses) while still fitting
/// every benchmark's live set (Knuth-Bendix peaks above a 256 KB
/// semispace).
pub const RUNTIME_SEMI_BYTES: u64 = 1 << 20;

/// One profiled, pressured-heap run of one benchmark (TIL mode).
#[derive(Clone, Debug)]
pub struct RuntimeMeasurement {
    /// Program output.
    pub output: String,
    /// Machine counters — identical to an unprofiled run's.
    pub stats: til::Stats,
    /// Profiler payload: opcode histogram, per-function attribution,
    /// GC pauses, heap censuses.
    pub profile: til::RunProfile,
}

/// Compiles one benchmark in TIL mode with a `semi_bytes` semispace
/// and runs it with profiling on.
pub fn measure_runtime(b: &Bench, semi_bytes: u64) -> Result<RuntimeMeasurement, String> {
    measure_runtime_with(b, semi_bytes, Options::til())
}

/// The tagged-baseline counterpart of [`measure_runtime`]: same
/// pressured heap, fully tagged collector. Its exit census quantifies
/// the per-benchmark representation gap against TIL mode (tag words,
/// boxing, and how much of the heap the census can still classify).
pub fn measure_runtime_baseline(b: &Bench, semi_bytes: u64) -> Result<RuntimeMeasurement, String> {
    measure_runtime_with(b, semi_bytes, Options::baseline())
}

/// The incremental-collection counterpart of [`measure_runtime`]: TIL
/// mode, same pressured heap, collection sliced under `budget`
/// instruction-equivalents per pause. Output and `Stats` are identical
/// to the stop-the-world leg; only the pause records differ.
pub fn measure_runtime_incremental(
    b: &Bench,
    semi_bytes: u64,
    budget: u64,
) -> Result<RuntimeMeasurement, String> {
    let mut opts = Options::til();
    opts.gc_mode = til::CollectMode::Incremental { budget };
    measure_runtime_with(b, semi_bytes, opts)
}

/// One benchmark's row of the runtime-observability export: the two
/// TIL-mode collection-scheduling legs plus the tagged baseline.
#[derive(Clone, Debug)]
pub struct RuntimeRow<'a> {
    /// Benchmark name.
    pub name: &'a str,
    /// TIL mode, stop-the-world collection.
    pub stw: &'a RuntimeMeasurement,
    /// TIL mode, incremental collection (the export's `pause_budget`).
    pub incremental: &'a RuntimeMeasurement,
    /// Tagged baseline (census-gap columns).
    pub baseline: &'a RuntimeMeasurement,
}

fn measure_runtime_with(
    b: &Bench,
    semi_bytes: u64,
    mut opts: Options,
) -> Result<RuntimeMeasurement, String> {
    opts.link.semi_bytes = semi_bytes;
    let exe = Compiler::new(opts)
        .compile(b.source)
        .map_err(|d| format!("{}: compile: {d}", b.name))?;
    let out = exe
        .run_with(FUEL, true)
        .map_err(|e| format!("{}: run: {e}", b.name))?;
    let profile = out
        .profile
        .ok_or_else(|| format!("{}: profiled run returned no profile", b.name))?;
    Ok(RuntimeMeasurement {
        output: out.output,
        stats: out.stats,
        profile,
    })
}

/// Compiles and runs one benchmark under the given options.
pub fn measure(b: &Bench, opts: Options) -> Result<Measurement, String> {
    let exe = Compiler::new(opts)
        .compile(b.source)
        .map_err(|d| format!("{}: compile: {d}", b.name))?;
    let out = exe
        .run(FUEL)
        .map_err(|e| format!("{}: run: {e}", b.name))?;
    let stats = &out.stats;
    let memory = 8 * (stats.max_live_words.max(1) + stats.max_stack_words)
        + exe.info.executable_bytes as u64;
    Ok(Measurement {
        output: out.output,
        time: stats.time(),
        instrs: stats.instrs,
        rt_cost: stats.rt_cost,
        alloc_bytes: stats.allocated_bytes,
        memory_bytes: memory,
        max_live_words: stats.max_live_words,
        final_heap_words: stats.final_heap_words,
        max_stack_words: stats.max_stack_words,
        code_bytes: exe.info.code_bytes as u64,
        executable_bytes: exe.info.executable_bytes as u64,
        compile_seconds: exe.info.total_seconds(),
        phase_seconds: exe
            .info
            .phases
            .iter()
            .map(|p| (p.name, p.seconds))
            .collect(),
        gc_count: stats.gc_count,
    })
}

/// The machine-readable metrics export behind `BENCH_pipeline.json`
/// (hand-rolled JSON via [`til_common::Json`]; see README for the
/// schema).
pub mod export {
    use super::Measurement;
    use til_common::Json;

    /// Schema identifier written into every export.
    pub const SCHEMA: &str = "til-bench-pipeline/v1";

    fn mode_json(m: &Measurement) -> Json {
        Json::obj()
            .set("instructions_retired", m.instrs)
            .set("runtime_cost", m.rt_cost)
            .set("time", m.time)
            .set("allocated_bytes", m.alloc_bytes)
            .set("max_live_words", m.max_live_words)
            .set("final_heap_words", m.final_heap_words)
            .set("max_stack_words", m.max_stack_words)
            .set("memory_bytes", m.memory_bytes)
            .set("gc_count", m.gc_count)
            .set("code_bytes", m.code_bytes)
            .set("executable_bytes", m.executable_bytes)
            .set("compile_seconds", m.compile_seconds)
            .set(
                "phases",
                Json::arr(m.phase_seconds.iter().map(|(name, secs)| {
                    Json::obj().set("name", *name).set("seconds", *secs)
                })),
            )
    }

    /// Builds the full report from per-benchmark (name, TIL, baseline)
    /// measurements.
    pub fn pipeline_json(rows: &[(&str, &Measurement, &Measurement)]) -> Json {
        let ratio = |a: u64, b: u64| a.max(1) as f64 / b.max(1) as f64;
        Json::obj()
            .set("schema", SCHEMA)
            .set("fuel", super::FUEL)
            .set(
                "benchmarks",
                Json::arr(rows.iter().map(|(name, til, base)| {
                    Json::obj()
                        .set("name", *name)
                        .set(
                            "modes",
                            Json::obj()
                                .set("til", mode_json(til))
                                .set("baseline", mode_json(base)),
                        )
                        .set(
                            "ratios",
                            Json::obj()
                                .set("time", ratio(til.time, base.time))
                                .set("alloc", ratio(til.alloc_bytes, base.alloc_bytes))
                                .set("memory", ratio(til.memory_bytes, base.memory_bytes))
                                .set(
                                    "executable",
                                    ratio(til.executable_bytes, base.executable_bytes),
                                ),
                        )
                })),
            )
    }

    /// The default output directory for bench artifacts: the enclosing
    /// workspace root (the nearest ancestor of the current directory
    /// whose `Cargo.toml` declares `[workspace]`), else the current
    /// directory.
    pub fn default_out_dir() -> std::path::PathBuf {
        let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
            if !dir.pop() {
                return ".".into();
            }
        }
    }

    /// Resolves where `BENCH_pipeline.json` goes: `TIL_BENCH_JSON` if
    /// set, else [`default_out_dir`].
    pub fn pipeline_json_path() -> std::path::PathBuf {
        if let Ok(p) = std::env::var("TIL_BENCH_JSON") {
            return p.into();
        }
        default_out_dir().join("BENCH_pipeline.json")
    }

    /// Writes the report, returning the path written.
    pub fn write_pipeline_json(
        rows: &[(&str, &Measurement, &Measurement)],
    ) -> std::io::Result<std::path::PathBuf> {
        write_pipeline_json_at(rows, &pipeline_json_path())
    }

    /// Writes the report to an explicit path.
    pub fn write_pipeline_json_at(
        rows: &[(&str, &Measurement, &Measurement)],
        path: &std::path::Path,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::write(path, pipeline_json(rows).pretty())?;
        Ok(path.to_path_buf())
    }

    // ---- Runtime observability export (`BENCH_runtime.json`).

    /// Schema identifier of the runtime-observability export.
    /// `v4` added per-benchmark `alloc_sites` (allocation-site
    /// survival statistics) and pause-cost percentiles; `v3` added the
    /// incremental-collection leg (per-mode pause distributions, slice
    /// counts, the pause budget) and census provenance marks; `v2`
    /// added the tagged-baseline census columns.
    pub const RUNTIME_SCHEMA: &str = "til-bench-runtime/v4";

    /// Functions reported per benchmark in the execution profile.
    pub const TOP_K: usize = 10;

    /// The deep-survival column: `survived_n_words` counts words that
    /// survived at least this many collections.
    pub const SURVIVAL_N: usize = 8;

    fn census_json(c: &til::CensusClasses, provenance: &str) -> Json {
        Json::obj()
            .set("provenance", provenance)
            .set("record_words", c.record_words)
            .set("array_words", c.array_words)
            .set("string_words", c.string_words)
            .set("closure_words", c.closure_words)
            .set("exn_words", c.exn_words)
            .set("unknown_words", c.unknown_words)
            .set("total_words", c.total_words())
    }

    /// The pause-distribution columns of one run: identical shape for
    /// both collection-scheduling modes, so downstream tooling compares
    /// them field by field. Under incremental collection `count` is the
    /// number of *slices* (`cycles` collections contributed them);
    /// under stop-the-world the two are equal.
    fn pause_dist_json(p: &til::RunProfile) -> Json {
        let count = p.pauses.len() as u64;
        let total_cost: u64 = p.pauses.iter().map(|g| g.pause_cost).sum();
        let slices = p.cycle_slices();
        Json::obj()
            .set("count", count)
            .set("cycles", slices.len() as u64)
            .set("max_slices_per_cycle", slices.iter().copied().max().unwrap_or(0))
            .set("max_cost", p.max_pause())
            .set("p50_cost", p.pause_percentile(50.0))
            .set("p95_cost", p.pause_percentile(95.0))
            .set("p99_cost", p.pause_percentile(99.0))
            .set(
                "mean_cost",
                if count > 0 {
                    total_cost as f64 / count as f64
                } else {
                    0.0
                },
            )
            .set("total_cost", total_cost)
            .set(
                "total_copied_words",
                p.pauses.iter().map(|g| g.copied_words).sum::<u64>(),
            )
            .set(
                "max_live_words",
                p.pauses.iter().map(|g| g.live_words).max().unwrap_or(0),
            )
    }

    /// One allocation site's export row: total words, the 1/2/N
    /// survival columns (words surviving at least that many
    /// collections), the histogram depth, and exit residency. The
    /// `(rt)` and `(unmapped)` pseudo-sites export `pc` −1 / −2.
    fn site_json(s: &til::SiteProfile) -> Json {
        let surv = |k: usize| s.survived_words.get(k - 1).copied().unwrap_or(0);
        let pc = match s.pc {
            u32::MAX => -1i64,
            pc if pc == u32::MAX - 1 => -2,
            pc => pc as i64,
        };
        Json::obj()
            .set("name", s.name.clone())
            .set("pc", pc)
            .set("alloc_words", s.alloc_words)
            .set("survived_1_words", surv(1))
            .set("survived_2_words", surv(2))
            .set("survived_n_words", surv(SURVIVAL_N))
            .set("max_survived_cycles", s.survived_words.len() as u64)
            .set("live_at_exit_words", s.live_at_exit_words)
    }

    /// Builds the runtime-observability report: per benchmark, the GC
    /// pause distribution under *both* collection-scheduling modes
    /// (stop-the-world and incremental under `pause_budget`), the exit
    /// heap census (in TIL mode and in the tagged baseline, with the
    /// census gap between them), the allocation-site survival table,
    /// the hottest functions, and the opcode mix. Everything here is a
    /// pure function of the deterministic instruction stream, so the
    /// file is byte-stable across runs and machines.
    pub fn runtime_json(rows: &[super::RuntimeRow<'_>], semi_bytes: u64, pause_budget: u64) -> Json {
        Json::obj()
            .set("schema", RUNTIME_SCHEMA)
            .set("fuel", super::FUEL)
            .set("semi_bytes", semi_bytes)
            .set("pause_budget", pause_budget)
            .set("survival_n", SURVIVAL_N as u64)
            .set(
                "benchmarks",
                Json::arr(rows.iter().map(|row| {
                    let (m, mi, mb) = (row.stw, row.incremental, row.baseline);
                    let p = &m.profile;
                    let exit = |mm: &super::RuntimeMeasurement| {
                        mm.profile
                            .censuses
                            .iter()
                            .find(|c| c.when == til::CensusWhen::Exit)
                            .map(|c| c.classes.clone())
                    };
                    let exit_til = exit(m);
                    let exit_base = exit(mb);
                    // The representation gap: how much bigger the
                    // tagged heap is, and how much of it the census
                    // cannot classify (`unknown`) relative to the
                    // table-driven TIL census.
                    let gap = match (&exit_til, &exit_base) {
                        (Some(t), Some(b)) => Json::obj()
                            .set(
                                "total_words_ratio",
                                b.total_words().max(1) as f64 / t.total_words().max(1) as f64,
                            )
                            .set(
                                "unknown_words_delta",
                                b.unknown_words as i64 - t.unknown_words as i64,
                            ),
                        _ => Json::obj(),
                    };
                    let exit_census = exit_til
                        .as_ref()
                        .map(|c| census_json(c, "exit"))
                        .unwrap_or_else(Json::obj);
                    let baseline_exit_census = exit_base
                        .as_ref()
                        .map(|c| census_json(c, "exit"))
                        .unwrap_or_else(Json::obj);
                    Json::obj()
                        .set("name", row.name)
                        .set(
                            "stats",
                            Json::obj()
                                .set("instructions_retired", m.stats.instrs)
                                .set("runtime_cost", m.stats.rt_cost)
                                .set("time", m.stats.time())
                                .set("allocated_bytes", m.stats.allocated_bytes)
                                .set("max_live_words", m.stats.max_live_words)
                                .set("final_heap_words", m.stats.final_heap_words)
                                .set("gc_count", m.stats.gc_count),
                        )
                        // The two legs run the same program to the same
                        // `Stats`; the export records that agreement so
                        // a regression is visible in the diff.
                        .set(
                            "modes_agree",
                            m.output == mi.output && m.stats == mi.stats,
                        )
                        // Site statistics are likewise a pure function
                        // of the (mode-independent) instruction and
                        // copy stream, so the two legs must agree.
                        .set("sites_agree", p.sites == mi.profile.sites)
                        .set(
                            "gc_pauses",
                            Json::obj()
                                .set("stop_the_world", pause_dist_json(p))
                                .set("incremental", pause_dist_json(&mi.profile)),
                        )
                        .set("exit_census", exit_census)
                        .set("baseline_exit_census", baseline_exit_census)
                        .set("census_gap", gap)
                        .set(
                            "alloc_sites",
                            Json::arr(p.top_sites(TOP_K).into_iter().map(site_json)),
                        )
                        .set(
                            "top_functions",
                            Json::arr(p.top_functions(TOP_K).into_iter().map(|f| {
                                Json::obj()
                                    .set("name", f.name.clone())
                                    .set("instrs", f.instrs)
                                    .set("alloc_bytes", f.alloc_bytes)
                                    .set("traps", f.traps)
                            })),
                        )
                        .set(
                            "opcodes",
                            Json::arr(p.opcodes.iter().map(|(op, n)| {
                                Json::obj().set("name", *op).set("count", *n)
                            })),
                        )
                })),
            )
    }

    /// Writes the runtime report into `dir`, returning the path.
    pub fn write_runtime_json(
        rows: &[super::RuntimeRow<'_>],
        semi_bytes: u64,
        pause_budget: u64,
        dir: &std::path::Path,
    ) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join("BENCH_runtime.json");
        std::fs::write(&path, runtime_json(rows, semi_bytes, pause_budget).pretty())?;
        Ok(path)
    }
}

/// Minimal bench-harness primitive: runs `f` once to warm up, then
/// `iters` timed iterations, and prints the median per-iteration wall
/// time. Returns the median in seconds (for harnesses that aggregate).
pub fn time_case<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    let med = median(&samples);
    println!("{name:>24}: median {:>12.3} ms over {iters} iters", med * 1e3);
    med
}

/// Geometric mean of positive ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Median of a sample.
pub fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if v.is_empty() {
        f64::NAN
    } else if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_eight_table1_programs() {
        let names: Vec<&str> = suite().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "Checksum",
                "FFT",
                "Knuth-Bendix",
                "Lexgen",
                "Life",
                "Matmult",
                "PIA",
                "Simple"
            ]
        );
    }

    #[test]
    fn geomean_and_median() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }
}
