//! Deterministic PRNG shared by the differential-test generator and
//! any randomized harness code: splitmix64, zero dependencies, stable
//! across platforms. Lives here (rather than per test file) so every
//! consumer draws from the same, bias-free implementation.

/// splitmix64 (Steele, Lea & Flood) — 64 bits of state, full-period,
/// and good enough for program generation.
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)` without modulo bias (rejection sampling).
    /// A degenerate interval (`hi <= lo`) returns `lo` instead of
    /// dividing by zero.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        let span = (hi as i128 - lo as i128) as u64;
        // Accept only draws below the largest multiple of `span`:
        // every residue is then equally likely.
        let cap = u64::MAX - u64::MAX % span;
        loop {
            let x = self.next_u64();
            if x < cap {
                return (lo as i128 + (x % span) as i128) as i64;
            }
        }
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.range(0, den as i64) as u32) < num
    }

    /// A uniformly chosen element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0, xs.len() as i64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_stays_in_bounds_and_hits_both_ends() {
        let mut r = Rng::new(7);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range(-3, 3);
            assert!((-3..3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn degenerate_interval_returns_lo_instead_of_panicking() {
        let mut r = Rng::new(7);
        assert_eq!(r.range(5, 5), 5);
        assert_eq!(r.range(5, 4), 5);
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
