//! CI gate for the runtime-observability layer. Runs the suite under
//! the pressured heap and checks, per benchmark:
//!
//! * **profiling transparency** — output and every `Stats` counter are
//!   identical with profiling on and off;
//! * **exhaustive attribution** — per-function and per-opcode
//!   instruction counts both sum to `Stats::instrs` exactly;
//! * **pause/census invariants** — one pause per collection, pauses
//!   monotone on the instruction timeline, each post-GC census total
//!   equals that pause's surviving live words, the exit census equals
//!   `final_heap_words`, and the census maximum equals
//!   `max_live_words`;
//! * **baseline census** — the tagged-baseline leg agrees on output
//!   and its exit census also accounts for the whole resident heap
//!   (the census-gap columns compare the two modes);
//! * **export freshness** — the committed `BENCH_runtime.json` is
//!   well-formed and byte-identical to a freshly computed export.

use til::{Compiler, Options};
use til_bench::{export, suite, RuntimeMeasurement, FUEL, RUNTIME_SEMI_BYTES};

fn main() {
    let mut any_gc = false;
    let mut rows: Vec<(&'static str, RuntimeMeasurement, RuntimeMeasurement)> = Vec::new();
    for b in suite() {
        let mut opts = Options::til();
        opts.link.semi_bytes = RUNTIME_SEMI_BYTES;
        let exe = Compiler::new(opts)
            .compile(b.source)
            .unwrap_or_else(|d| panic!("{}: compile: {d}", b.name));
        let off = exe
            .run_with(FUEL, false)
            .unwrap_or_else(|e| panic!("{}: unprofiled run: {e}", b.name));
        let on = exe
            .run_with(FUEL, true)
            .unwrap_or_else(|e| panic!("{}: profiled run: {e}", b.name));
        assert_eq!(off.output, on.output, "{}: profiling changed output", b.name);
        assert_eq!(off.stats, on.stats, "{}: profiling changed Stats", b.name);
        assert!(off.profile.is_none(), "{}: unprofiled run has a profile", b.name);
        let p = on
            .profile
            .as_ref()
            .unwrap_or_else(|| panic!("{}: profiled run has no profile", b.name));
        let stats = &on.stats;

        assert_eq!(
            p.pauses.len() as u64,
            stats.gc_count,
            "{}: one pause record per collection",
            b.name
        );
        any_gc |= stats.gc_count > 0;
        for w in p.pauses.windows(2) {
            assert!(
                w[0].at_instr <= w[1].at_instr,
                "{}: pauses out of timeline order",
                b.name
            );
        }

        let fn_instrs: u64 = p.functions.iter().map(|f| f.instrs).sum();
        assert_eq!(fn_instrs, stats.instrs, "{}: function attribution not exhaustive", b.name);
        let op_instrs: u64 = p.opcodes.iter().map(|(_, n)| n).sum();
        assert_eq!(op_instrs, stats.instrs, "{}: opcode histogram not exhaustive", b.name);

        for (i, pause) in p.pauses.iter().enumerate() {
            let c = p
                .censuses
                .iter()
                .find(|c| c.after_gc == Some(i as u64))
                .unwrap_or_else(|| panic!("{}: collection {i} has no census", b.name));
            assert_eq!(
                c.classes.total_words(),
                pause.live_words,
                "{}: census {i} does not sum to surviving live words",
                b.name
            );
        }
        let exit = p
            .censuses
            .iter()
            .find(|c| c.after_gc.is_none())
            .unwrap_or_else(|| panic!("{}: no exit census", b.name));
        assert_eq!(
            exit.classes.total_words(),
            stats.final_heap_words,
            "{}: exit census does not sum to the resident heap",
            b.name
        );
        let census_max = p
            .censuses
            .iter()
            .map(|c| c.classes.total_words())
            .max()
            .unwrap_or(0);
        assert_eq!(
            census_max, stats.max_live_words,
            "{}: census maximum disagrees with max_live_words",
            b.name
        );

        // The tagged-baseline leg of the census-gap columns: same
        // program, same pressured heap, fully tagged collector. The
        // output must agree with TIL mode, and its exit census must
        // account for the whole resident heap too.
        let mb = til_bench::measure_runtime_baseline(&b, RUNTIME_SEMI_BYTES)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            mb.output, on.output,
            "{}: tagged baseline output differs from TIL mode",
            b.name
        );
        let base_exit = mb
            .profile
            .censuses
            .iter()
            .find(|c| c.after_gc.is_none())
            .unwrap_or_else(|| panic!("{}: baseline run has no exit census", b.name));
        assert_eq!(
            base_exit.classes.total_words(),
            mb.stats.final_heap_words,
            "{}: baseline exit census does not sum to the resident heap",
            b.name
        );

        rows.push((
            b.name,
            RuntimeMeasurement {
                output: on.output.clone(),
                stats: on.stats.clone(),
                profile: p.clone(),
            },
            mb,
        ));
    }
    assert!(
        any_gc,
        "pressured heap produced no collections — the smoke test has no GC coverage"
    );

    let row_refs: Vec<(&str, &RuntimeMeasurement, &RuntimeMeasurement)> =
        rows.iter().map(|(n, m, mb)| (*n, m, mb)).collect();
    let fresh = export::runtime_json(&row_refs, RUNTIME_SEMI_BYTES).pretty();
    til_common::json::validate(&fresh)
        .unwrap_or_else(|e| panic!("runtime export is not well-formed JSON: {e}"));
    assert!(
        fresh.contains(export::RUNTIME_SCHEMA),
        "runtime export is missing its schema identifier"
    );
    let path = export::default_out_dir().join("BENCH_runtime.json");
    match std::fs::read_to_string(&path) {
        Ok(disk) => assert_eq!(
            disk,
            fresh,
            "{} is stale — regenerate with `cargo run --release -p til-bench --bin tables -- runtime`",
            path.display()
        ),
        Err(e) => panic!(
            "cannot read {}: {e} (generate it with `cargo run --release -p til-bench --bin tables -- runtime`)",
            path.display()
        ),
    }
    println!(
        "runtime smoke OK: {} benchmarks, schema {}",
        rows.len(),
        export::RUNTIME_SCHEMA
    );
}
