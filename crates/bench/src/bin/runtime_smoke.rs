//! CI gate for the runtime-observability layer. Runs the suite under
//! the pressured heap and checks, per benchmark:
//!
//! * **profiling transparency** — output and every `Stats` counter are
//!   identical with profiling on and off;
//! * **exhaustive attribution** — per-function and per-opcode
//!   instruction counts both sum to `Stats::instrs` exactly;
//! * **pause/census invariants** — one pause per collection under
//!   stop-the-world scheduling, pauses monotone on the instruction
//!   timeline, each post-GC census total equals that cycle's surviving
//!   live words, the exit census equals `final_heap_words`, and the
//!   census maximum equals `max_live_words`;
//! * **allocation sites** — the site survival table is a second
//!   exhaustive view of the same HP deltas (site allocation sums to
//!   function allocation), every census's per-site breakdown sums to
//!   its class totals, site exit residency accounts for the whole
//!   resident heap, and the table is byte-identical across collection
//!   modes;
//! * **incremental scheduling** — the incremental leg produces the
//!   same output and `Stats`, one slice group per collection, every
//!   slice within the pause budget, p50/p95/p99 monotone with p99 ≤
//!   budget, and (suite-wide) a maximum pause strictly below the
//!   stop-the-world maximum;
//! * **baseline census** — the tagged-baseline leg agrees on output
//!   and its exit census also accounts for the whole resident heap
//!   (the census-gap columns compare the two modes);
//! * **export freshness** — the committed `BENCH_runtime.json` is
//!   well-formed and byte-identical to a freshly computed export.

use til::{CensusWhen, Compiler, Options, DEFAULT_PAUSE_BUDGET};
use til_bench::{export, suite, RuntimeMeasurement, RuntimeRow, FUEL, RUNTIME_SEMI_BYTES};

fn main() {
    let budget = DEFAULT_PAUSE_BUDGET;
    let mut any_gc = false;
    let mut any_sliced = false;
    let mut stw_suite_max = 0u64;
    let mut inc_suite_max = 0u64;
    let mut rows: Vec<(
        &'static str,
        RuntimeMeasurement,
        RuntimeMeasurement,
        RuntimeMeasurement,
    )> = Vec::new();
    for b in suite() {
        let mut opts = Options::til();
        opts.link.semi_bytes = RUNTIME_SEMI_BYTES;
        let exe = Compiler::new(opts)
            .compile(b.source)
            .unwrap_or_else(|d| panic!("{}: compile: {d}", b.name));
        let off = exe
            .run_with(FUEL, false)
            .unwrap_or_else(|e| panic!("{}: unprofiled run: {e}", b.name));
        let on = exe
            .run_with(FUEL, true)
            .unwrap_or_else(|e| panic!("{}: profiled run: {e}", b.name));
        assert_eq!(off.output, on.output, "{}: profiling changed output", b.name);
        assert_eq!(off.stats, on.stats, "{}: profiling changed Stats", b.name);
        assert!(off.profile.is_none(), "{}: unprofiled run has a profile", b.name);
        let p = on
            .profile
            .as_ref()
            .unwrap_or_else(|| panic!("{}: profiled run has no profile", b.name));
        let stats = &on.stats;

        assert_eq!(
            p.pauses.len() as u64,
            stats.gc_count,
            "{}: one pause record per collection",
            b.name
        );
        any_gc |= stats.gc_count > 0;
        for w in p.pauses.windows(2) {
            assert!(
                w[0].at_instr <= w[1].at_instr,
                "{}: pauses out of timeline order",
                b.name
            );
        }

        let fn_instrs: u64 = p.functions.iter().map(|f| f.instrs).sum();
        assert_eq!(fn_instrs, stats.instrs, "{}: function attribution not exhaustive", b.name);
        let op_instrs: u64 = p.opcodes.iter().map(|(_, n)| n).sum();
        assert_eq!(op_instrs, stats.instrs, "{}: opcode histogram not exhaustive", b.name);

        for (i, pause) in p.pauses.iter().enumerate() {
            let c = p
                .censuses
                .iter()
                .find(|c| c.after_gc() == Some(i as u64))
                .unwrap_or_else(|| panic!("{}: collection {i} has no census", b.name));
            assert_eq!(
                c.classes.total_words(),
                pause.live_words,
                "{}: census {i} does not sum to surviving live words",
                b.name
            );
        }
        let exit = p
            .censuses
            .iter()
            .find(|c| c.when == CensusWhen::Exit)
            .unwrap_or_else(|| panic!("{}: no exit census", b.name));
        assert_eq!(
            exit.classes.total_words(),
            stats.final_heap_words,
            "{}: exit census does not sum to the resident heap",
            b.name
        );
        let census_max = p
            .censuses
            .iter()
            .map(|c| c.classes.total_words())
            .max()
            .unwrap_or(0);
        assert_eq!(
            census_max, stats.max_live_words,
            "{}: census maximum disagrees with max_live_words",
            b.name
        );

        // Allocation-site invariants: the site table and the
        // per-function attribution are two views of the same HP
        // deltas, every census's site breakdown must sum to its class
        // totals, and the sites' exit residency must account for the
        // whole resident heap.
        let site_alloc: u64 = p.sites.iter().map(|s| s.alloc_words * 8).sum();
        let fn_alloc: u64 = p.functions.iter().map(|f| f.alloc_bytes).sum();
        assert_eq!(
            site_alloc, fn_alloc,
            "{}: site allocation does not sum to function allocation",
            b.name
        );
        for c in &p.censuses {
            let site_total: u64 = c
                .sites
                .iter()
                .map(|s| s.classes.total_words())
                .sum();
            assert_eq!(
                site_total,
                c.classes.total_words(),
                "{}: census site breakdown does not sum to its class totals",
                b.name
            );
        }
        let site_exit: u64 = p.sites.iter().map(|s| s.live_at_exit_words).sum();
        assert_eq!(
            site_exit, stats.final_heap_words,
            "{}: site exit residency does not sum to the resident heap",
            b.name
        );

        // The incremental leg: same program, same heap, collection
        // sliced under the default pause budget. Results and Stats
        // must be identical to stop-the-world scheduling; the pause
        // records must decompose each collection into budget-bounded
        // slices.
        let mi = til_bench::measure_runtime_incremental(&b, RUNTIME_SEMI_BYTES, budget)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            mi.output, on.output,
            "{}: incremental output differs from stop-the-world",
            b.name
        );
        assert_eq!(
            mi.stats, on.stats,
            "{}: incremental Stats differ from stop-the-world",
            b.name
        );
        let pi = &mi.profile;
        let slices = pi.cycle_slices();
        assert_eq!(
            slices.len() as u64,
            mi.stats.gc_count,
            "{}: one slice group per collection cycle",
            b.name
        );
        assert!(
            slices.iter().all(|&n| n >= 1),
            "{}: a collection cycle produced no slices",
            b.name
        );
        for (i, pause) in pi.pauses.iter().enumerate() {
            assert!(
                pause.pause_cost <= budget,
                "{}: incremental slice {i} cost {} exceeds the budget {budget}",
                b.name,
                pause.pause_cost
            );
        }
        // The percentile view of the same distribution: tail latency
        // is the figure that matters, so gate p99 (and the ordering
        // p50 <= p95 <= p99 <= max) explicitly rather than only the
        // maximum.
        let (p50, p95, p99) = (
            pi.pause_percentile(50.0),
            pi.pause_percentile(95.0),
            pi.pause_percentile(99.0),
        );
        assert!(
            p50 <= p95 && p95 <= p99 && p99 <= pi.max_pause(),
            "{}: pause percentiles are not monotone (p50 {p50}, p95 {p95}, p99 {p99}, max {})",
            b.name,
            pi.max_pause()
        );
        assert!(
            p99 <= budget,
            "{}: incremental p99 pause {p99} exceeds the budget {budget}",
            b.name
        );
        // Site statistics are mode-independent: the copy stream is
        // identical under confined slicing, so the survival tables
        // must match byte for byte.
        assert_eq!(
            p.sites, pi.sites,
            "{}: incremental site statistics differ from stop-the-world",
            b.name
        );
        // The two legs must also agree on collection totals, cycle by
        // cycle: the slices of cycle `c` sum to the stop-the-world
        // pause of collection `c`.
        for (c, stw_pause) in p.pauses.iter().enumerate() {
            let cycle_cost: u64 = pi
                .pauses
                .iter()
                .filter(|q| q.cycle == c as u64)
                .map(|q| q.pause_cost)
                .sum();
            assert_eq!(
                cycle_cost, stw_pause.pause_cost,
                "{}: cycle {c} slice costs do not sum to the stop-the-world pause",
                b.name
            );
        }
        any_sliced |= pi.pauses.len() as u64 > mi.stats.gc_count;
        stw_suite_max = stw_suite_max.max(p.max_pause());
        inc_suite_max = inc_suite_max.max(pi.max_pause());

        // The tagged-baseline leg of the census-gap columns: same
        // program, same pressured heap, fully tagged collector. The
        // output must agree with TIL mode, and its exit census must
        // account for the whole resident heap too.
        let mb = til_bench::measure_runtime_baseline(&b, RUNTIME_SEMI_BYTES)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            mb.output, on.output,
            "{}: tagged baseline output differs from TIL mode",
            b.name
        );
        let base_exit = mb
            .profile
            .censuses
            .iter()
            .find(|c| c.when == CensusWhen::Exit)
            .unwrap_or_else(|| panic!("{}: baseline run has no exit census", b.name));
        assert_eq!(
            base_exit.classes.total_words(),
            mb.stats.final_heap_words,
            "{}: baseline exit census does not sum to the resident heap",
            b.name
        );

        rows.push((
            b.name,
            RuntimeMeasurement {
                output: on.output.clone(),
                stats: on.stats.clone(),
                profile: p.clone(),
            },
            mi,
            mb,
        ));
    }
    assert!(
        any_gc,
        "pressured heap produced no collections — the smoke test has no GC coverage"
    );
    assert!(
        any_sliced,
        "no benchmark's collection was actually sliced — the budget gate has no coverage"
    );
    assert!(
        inc_suite_max <= budget,
        "incremental suite max pause {inc_suite_max} exceeds the budget {budget}"
    );
    assert!(
        inc_suite_max < stw_suite_max,
        "incremental suite max pause {inc_suite_max} is not strictly below stop-the-world's {stw_suite_max}"
    );

    let row_refs: Vec<RuntimeRow> = rows
        .iter()
        .map(|(n, m, mi, mb)| RuntimeRow {
            name: n,
            stw: m,
            incremental: mi,
            baseline: mb,
        })
        .collect();
    let fresh = export::runtime_json(&row_refs, RUNTIME_SEMI_BYTES, budget).pretty();
    til_common::json::validate(&fresh)
        .unwrap_or_else(|e| panic!("runtime export is not well-formed JSON: {e}"));
    assert!(
        fresh.contains(export::RUNTIME_SCHEMA),
        "runtime export is missing its schema identifier"
    );
    let path = export::default_out_dir().join("BENCH_runtime.json");
    match std::fs::read_to_string(&path) {
        Ok(disk) => assert_eq!(
            disk,
            fresh,
            "{} is stale — regenerate with `cargo run --release -p til-bench --bin tables -- runtime`",
            path.display()
        ),
        Err(e) => panic!(
            "cannot read {}: {e} (generate it with `cargo run --release -p til-bench --bin tables -- runtime`)",
            path.display()
        ),
    }
    println!(
        "runtime smoke OK: {} benchmarks, schema {}, max pause {} (stw) vs {} (incremental, budget {})",
        rows.len(),
        export::RUNTIME_SCHEMA,
        stw_suite_max,
        inc_suite_max,
        budget
    );
}
