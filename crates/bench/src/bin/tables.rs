//! Regenerates every table and figure of the paper's evaluation
//! (Section 5): Tables 1–7, which are also the data behind Figures
//! 8–12. Run with a table name (`table1` ... `table7`, `polycount`)
//! or `all`.

use til::{Compiler, Options};
use til_bench::{export, geomean, measure, median, suite, Measurement};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = arg == "all";
    if all || arg == "table1" {
        table1();
    }
    let need_main = all
        || matches!(
            arg.as_str(),
            "table2" | "table3" | "table4" | "table5" | "table6"
        );
    if need_main {
        main_comparison(&arg, all);
    }
    if all || arg == "table7" {
        table7();
    }
    if all || arg == "polycount" {
        polycount();
    }
}

fn table1() {
    println!("\n== Table 1: benchmark programs ==");
    for b in suite() {
        let lines = b.source.lines().count();
        println!("{:>12}  {:>4} lines  {}", b.name, lines, b.description);
    }
}

struct Row {
    name: &'static str,
    til: Measurement,
    base: Measurement,
}

fn measure_all() -> Vec<Row> {
    suite()
        .into_iter()
        .map(|b| {
            let til = measure(&b, Options::til()).unwrap_or_else(|e| panic!("{e}"));
            let base = measure(&b, Options::baseline()).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(til.output, base.output, "{}: modes disagree", b.name);
            Row {
                name: b.name,
                til,
                base,
            }
        })
        .collect()
}

/// The paper's per-benchmark TIL/NJ ratios for each table, used to
/// print paper-vs-measured side by side.
const PAPER_TIME: [f64; 8] = [0.16, 0.11, 0.94, 0.44, 0.77, 0.14, 0.25, 0.33];
const PAPER_ALLOC: [f64; 8] = [0.15, 0.042, 0.48, 0.079, 0.56, 0.0013, 0.10, 0.39];
const PAPER_MEM: [f64; 8] = [0.47, 0.15, 0.74, 0.55, 0.65, 0.33, 0.68, 0.54];
const PAPER_EXE: [f64; 8] = [0.43, 0.46, 0.48, 0.61, 0.43, 0.34, 0.63, 0.47];
const PAPER_COMPILE: [f64; 8] = [5.8, 5.4, 9.0, 15.8, 8.6, 3.5, 14.7, 12.9];

fn ratio_table(
    title: &str,
    rows: &[Row],
    paper: &[f64; 8],
    f: impl Fn(&Measurement) -> f64,
    invert: bool,
) {
    println!("\n== {title} ==");
    println!(
        "{:>12} {:>14} {:>14} {:>10} {:>10}",
        "program", "TIL", "baseline", "measured", "paper"
    );
    let mut ratios = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        let (a, b) = (f(&r.til), f(&r.base));
        let ratio = if invert { b / a } else { a / b };
        ratios.push(ratio);
        println!(
            "{:>12} {:>14.0} {:>14.0} {:>10.3} {:>10.3}",
            r.name, a, b, ratio, paper[i]
        );
    }
    println!(
        "{:>12} {:>14} {:>14} {:>10.3} {:>10.3}",
        "geo.mean",
        "",
        "",
        geomean(&ratios),
        geomean(paper)
    );
}

fn main_comparison(arg: &str, all: bool) {
    let rows = measure_all();
    // Machine-readable metrics export: every full-suite run refreshes
    // the perf-trajectory snapshot (see README for the schema).
    let export_rows: Vec<(&str, &Measurement, &Measurement)> =
        rows.iter().map(|r| (r.name, &r.til, &r.base)).collect();
    match export::write_pipeline_json(&export_rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_pipeline.json: {e}"),
    }
    if all || arg == "table2" {
        ratio_table(
            "Table 2 / Figure 8: execution time (TIL/baseline)",
            &rows,
            &PAPER_TIME,
            |m| m.time as f64,
            false,
        );
    }
    if all || arg == "table3" {
        ratio_table(
            "Table 3 / Figure 9: heap allocation (TIL/baseline)",
            &rows,
            &PAPER_ALLOC,
            |m| m.alloc_bytes.max(1) as f64,
            false,
        );
    }
    if all || arg == "table4" {
        ratio_table(
            "Table 4 / Figure 10: max physical memory (TIL/baseline)",
            &rows,
            &PAPER_MEM,
            |m| m.memory_bytes as f64,
            false,
        );
    }
    if all || arg == "table5" {
        // Add the paper's fixed runtime-system sizes (TIL ~100K,
        // SML/NJ ~425K) so the comparison includes what the paper says
        // dominates it.
        println!("\n(Table 5 adds the paper's runtime constants: TIL +100KB, baseline +425KB)");
        ratio_table(
            "Table 5: stand-alone executable size (TIL/baseline)",
            &rows,
            &PAPER_EXE,
            |m| m.executable_bytes as f64,
            false,
        );
        let rows2: Vec<(f64, f64)> = rows
            .iter()
            .map(|r| {
                (
                    r.til.executable_bytes as f64 + 100.0 * 1024.0,
                    r.base.executable_bytes as f64 + 425.0 * 1024.0,
                )
            })
            .collect();
        let ratios: Vec<f64> = rows2.iter().map(|(a, b)| a / b).collect();
        println!(
            "   with runtime constants: geo.mean {:.3} (paper {:.3})",
            geomean(&ratios),
            geomean(&PAPER_EXE)
        );
    }
    if all || arg == "table6" {
        println!("\n== Table 6 / Figure 11: compile time (TIL/baseline; paper: TIL ~8.4x slower) ==");
        let mut ratios = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            let ratio = r.til.compile_seconds / r.base.compile_seconds.max(1e-9);
            ratios.push(ratio);
            println!(
                "{:>12} {:>10.3}s {:>10.3}s {:>10.2} {:>10.1}",
                r.name, r.til.compile_seconds, r.base.compile_seconds, ratio, PAPER_COMPILE[i]
            );
        }
        println!(
            "{:>12} {:>10} {:>11} {:>10.2} {:>10.1}",
            "geo.mean",
            "",
            "",
            geomean(&ratios),
            geomean(&PAPER_COMPILE)
        );
    }
}

fn table7() {
    println!("\n== Table 7 / Figure 12: loop-optimization ablation (with/without) ==");
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>12}",
        "program", "time", "paper", "alloc", "paper"
    );
    const PAPER_T7_TIME: [f64; 8] = [0.41, 0.17, 0.62, 0.89, 1.00, 0.65, 0.87, 0.61];
    const PAPER_T7_ALLOC: [f64; 8] = [0.54, 0.035, 0.66, 1.04, 1.20, 1.00, 0.96, 0.84];
    let mut times = Vec::new();
    let mut allocs = Vec::new();
    for (i, b) in suite().into_iter().enumerate() {
        let with = measure(&b, Options::til()).unwrap_or_else(|e| panic!("{e}"));
        let without = measure(&b, Options::til_no_loop_opts()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(with.output, without.output, "{}: ablation changed output", b.name);
        let t = with.time as f64 / without.time as f64;
        let a = with.alloc_bytes.max(1) as f64 / without.alloc_bytes.max(1) as f64;
        times.push(t);
        allocs.push(a);
        println!(
            "{:>12} {:>10.3} {:>10.2} {:>12.3} {:>12.2}",
            b.name, t, PAPER_T7_TIME[i], a, PAPER_T7_ALLOC[i]
        );
    }
    println!(
        "{:>12} {:>10.3} {:>10.2} {:>12.3} {:>12.2}",
        "median",
        median(&times),
        0.61,
        median(&allocs),
        0.90
    );
    println!(
        "{:>12} {:>10.3} {:>10.2} {:>12.3} {:>12.2}",
        "geo.mean",
        geomean(&times),
        0.58,
        geomean(&allocs),
        0.58
    );
}

fn polycount() {
    println!("\n== Section 5.1 claim: polymorphic functions after optimization ==");
    for b in suite() {
        let exe = Compiler::new(Options::til())
            .compile(b.source)
            .unwrap_or_else(|d| panic!("{d}"));
        let stats = exe.info.opt_stats.clone().unwrap_or_default();
        println!(
            "{:>12}: {} polymorphic functions, {} typecases remain (paper: 0)",
            b.name, stats.remaining_polymorphic, stats.remaining_typecases
        );
    }
}
