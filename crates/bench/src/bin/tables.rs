//! Regenerates every table and figure of the paper's evaluation
//! (Section 5): Tables 1–7, which are also the data behind Figures
//! 8–12, plus the runtime-observability report behind
//! `BENCH_runtime.json`. Run with a section name (`table1` ...
//! `table7`, `polycount`, `runtime`) or `all`.
//!
//! Flags:
//!
//! * `--out-dir DIR` — where all outputs land (the text report
//!   `tables_output.txt`, `BENCH_pipeline.json`, `BENCH_runtime.json`,
//!   Chrome traces). Defaults to the workspace root.
//! * `--chrome-trace BENCH` — additionally compile and run benchmark
//!   `BENCH` (e.g. `Life`) with profiling on and write a combined
//!   compile+runtime Chrome trace to `trace_BENCH.json`; open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! * `--asm BENCH` — compile benchmark `BENCH` through the second
//!   backend target and write its textual x86-64 (with GC stack maps)
//!   to `BENCH_x64.s` in the output directory, after structural
//!   validation and the per-target mcv rules. With no section name,
//!   only the assembly is produced (CI diffs the committed golden).
//! * `--alloc-sites BENCH` — run benchmark `BENCH` profiled under the
//!   pressured heap and print its allocation-site survival table
//!   (words allocated, words surviving 1/2/N collections, words live
//!   at exit, per site). With no section name, only this table is
//!   produced (CI's site-smoke path).

use std::path::PathBuf;
use til::{Compiler, Options};
use til_bench::{
    export, geomean, measure, measure_runtime, median, suite, Measurement, RUNTIME_SEMI_BYTES,
};

/// Mirrors everything printed so the run can leave a `tables_output.txt`
/// snapshot next to the JSON exports.
struct Report {
    text: String,
}

impl Report {
    fn new() -> Report {
        Report {
            text: String::new(),
        }
    }

    fn say(&mut self, line: impl AsRef<str>) {
        let line = line.as_ref();
        println!("{line}");
        self.text.push_str(line);
        self.text.push('\n');
    }
}

fn main() {
    let mut table: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut chrome: Option<String> = None;
    let mut asm: Option<String> = None;
    let mut sites: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out-dir" => {
                out_dir = Some(args.next().expect("--out-dir needs a directory").into());
            }
            "--chrome-trace" => {
                chrome = Some(args.next().expect("--chrome-trace needs a benchmark name"));
            }
            "--asm" => {
                asm = Some(args.next().expect("--asm needs a benchmark name"));
            }
            "--alloc-sites" => {
                sites = Some(args.next().expect("--alloc-sites needs a benchmark name"));
            }
            _ => table = Some(a),
        }
    }
    // `--asm` / `--alloc-sites` alone skip the table sections (CI's
    // smoke paths).
    let arg = table.unwrap_or_else(|| {
        if asm.is_some() || sites.is_some() {
            "none".into()
        } else {
            "all".into()
        }
    });
    let explicit_dir = out_dir.is_some();
    let out_dir = out_dir.unwrap_or_else(export::default_out_dir);

    let mut r = Report::new();
    let all = arg == "all";
    if all || arg == "table1" {
        table1(&mut r);
    }
    let need_main = all
        || matches!(
            arg.as_str(),
            "table2" | "table3" | "table4" | "table5" | "table6"
        );
    if need_main {
        main_comparison(&mut r, &arg, all, &out_dir, explicit_dir);
    }
    if all || arg == "table7" {
        table7(&mut r);
    }
    if all || arg == "polycount" {
        polycount(&mut r);
    }
    if need_main || arg == "runtime" {
        runtime_report(&mut r, &out_dir);
    }
    if let Some(name) = chrome {
        chrome_trace(&mut r, &name, &out_dir);
    }
    if let Some(name) = asm {
        emit_asm_bench(&mut r, &name, &out_dir);
    }
    if let Some(name) = sites {
        alloc_sites_bench(&mut r, &name);
    }
    let report_path = out_dir.join("tables_output.txt");
    match std::fs::write(&report_path, &r.text) {
        Ok(()) => println!("wrote {}", report_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", report_path.display()),
    }
}

fn table1(r: &mut Report) {
    r.say("\n== Table 1: benchmark programs ==");
    for b in suite() {
        let lines = b.source.lines().count();
        r.say(format!(
            "{:>12}  {:>4} lines  {}",
            b.name, lines, b.description
        ));
    }
}

struct Row {
    name: &'static str,
    til: Measurement,
    base: Measurement,
}

fn measure_all() -> Vec<Row> {
    suite()
        .into_iter()
        .map(|b| {
            let til = measure(&b, Options::til()).unwrap_or_else(|e| panic!("{e}"));
            let base = measure(&b, Options::baseline()).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(til.output, base.output, "{}: modes disagree", b.name);
            Row {
                name: b.name,
                til,
                base,
            }
        })
        .collect()
}

/// The paper's per-benchmark TIL/NJ ratios for each table, used to
/// print paper-vs-measured side by side.
const PAPER_TIME: [f64; 8] = [0.16, 0.11, 0.94, 0.44, 0.77, 0.14, 0.25, 0.33];
const PAPER_ALLOC: [f64; 8] = [0.15, 0.042, 0.48, 0.079, 0.56, 0.0013, 0.10, 0.39];
const PAPER_MEM: [f64; 8] = [0.47, 0.15, 0.74, 0.55, 0.65, 0.33, 0.68, 0.54];
const PAPER_EXE: [f64; 8] = [0.43, 0.46, 0.48, 0.61, 0.43, 0.34, 0.63, 0.47];
const PAPER_COMPILE: [f64; 8] = [5.8, 5.4, 9.0, 15.8, 8.6, 3.5, 14.7, 12.9];

fn ratio_table(
    r: &mut Report,
    title: &str,
    rows: &[Row],
    paper: &[f64; 8],
    f: impl Fn(&Measurement) -> f64,
    invert: bool,
) {
    r.say(format!("\n== {title} =="));
    r.say(format!(
        "{:>12} {:>14} {:>14} {:>10} {:>10}",
        "program", "TIL", "baseline", "measured", "paper"
    ));
    let mut ratios = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let (a, b) = (f(&row.til), f(&row.base));
        let ratio = if invert { b / a } else { a / b };
        ratios.push(ratio);
        r.say(format!(
            "{:>12} {:>14.0} {:>14.0} {:>10.3} {:>10.3}",
            row.name, a, b, ratio, paper[i]
        ));
    }
    r.say(format!(
        "{:>12} {:>14} {:>14} {:>10.3} {:>10.3}",
        "geo.mean",
        "",
        "",
        geomean(&ratios),
        geomean(paper)
    ));
}

fn main_comparison(r: &mut Report, arg: &str, all: bool, out_dir: &std::path::Path, explicit_dir: bool) {
    let rows = measure_all();
    // Machine-readable metrics export: every full-suite run refreshes
    // the perf-trajectory snapshot (see README for the schema).
    let export_rows: Vec<(&str, &Measurement, &Measurement)> =
        rows.iter().map(|row| (row.name, &row.til, &row.base)).collect();
    let written = if explicit_dir {
        export::write_pipeline_json_at(&export_rows, &out_dir.join("BENCH_pipeline.json"))
    } else {
        export::write_pipeline_json(&export_rows)
    };
    match written {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_pipeline.json: {e}"),
    }
    if all || arg == "table2" {
        ratio_table(
            r,
            "Table 2 / Figure 8: execution time (TIL/baseline)",
            &rows,
            &PAPER_TIME,
            |m| m.time as f64,
            false,
        );
    }
    if all || arg == "table3" {
        ratio_table(
            r,
            "Table 3 / Figure 9: heap allocation (TIL/baseline)",
            &rows,
            &PAPER_ALLOC,
            |m| m.alloc_bytes.max(1) as f64,
            false,
        );
    }
    if all || arg == "table4" {
        ratio_table(
            r,
            "Table 4 / Figure 10: max physical memory (TIL/baseline)",
            &rows,
            &PAPER_MEM,
            |m| m.memory_bytes as f64,
            false,
        );
    }
    if all || arg == "table5" {
        // Add the paper's fixed runtime-system sizes (TIL ~100K,
        // SML/NJ ~425K) so the comparison includes what the paper says
        // dominates it.
        r.say("\n(Table 5 adds the paper's runtime constants: TIL +100KB, baseline +425KB)");
        ratio_table(
            r,
            "Table 5: stand-alone executable size (TIL/baseline)",
            &rows,
            &PAPER_EXE,
            |m| m.executable_bytes as f64,
            false,
        );
        let rows2: Vec<(f64, f64)> = rows
            .iter()
            .map(|row| {
                (
                    row.til.executable_bytes as f64 + 100.0 * 1024.0,
                    row.base.executable_bytes as f64 + 425.0 * 1024.0,
                )
            })
            .collect();
        let ratios: Vec<f64> = rows2.iter().map(|(a, b)| a / b).collect();
        r.say(format!(
            "   with runtime constants: geo.mean {:.3} (paper {:.3})",
            geomean(&ratios),
            geomean(&PAPER_EXE)
        ));
    }
    if all || arg == "table6" {
        r.say("\n== Table 6 / Figure 11: compile time (TIL/baseline; paper: TIL ~8.4x slower) ==");
        let mut ratios = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let ratio = row.til.compile_seconds / row.base.compile_seconds.max(1e-9);
            ratios.push(ratio);
            r.say(format!(
                "{:>12} {:>10.3}s {:>10.3}s {:>10.2} {:>10.1}",
                row.name, row.til.compile_seconds, row.base.compile_seconds, ratio, PAPER_COMPILE[i]
            ));
        }
        r.say(format!(
            "{:>12} {:>10} {:>11} {:>10.2} {:>10.1}",
            "geo.mean",
            "",
            "",
            geomean(&ratios),
            geomean(&PAPER_COMPILE)
        ));
    }
}

fn table7(r: &mut Report) {
    r.say("\n== Table 7 / Figure 12: loop-optimization ablation (with/without) ==");
    r.say(format!(
        "{:>12} {:>10} {:>10} {:>12} {:>12}",
        "program", "time", "paper", "alloc", "paper"
    ));
    const PAPER_T7_TIME: [f64; 8] = [0.41, 0.17, 0.62, 0.89, 1.00, 0.65, 0.87, 0.61];
    const PAPER_T7_ALLOC: [f64; 8] = [0.54, 0.035, 0.66, 1.04, 1.20, 1.00, 0.96, 0.84];
    let mut times = Vec::new();
    let mut allocs = Vec::new();
    for (i, b) in suite().into_iter().enumerate() {
        let with = measure(&b, Options::til()).unwrap_or_else(|e| panic!("{e}"));
        let without = measure(&b, Options::til_no_loop_opts()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(with.output, without.output, "{}: ablation changed output", b.name);
        let t = with.time as f64 / without.time as f64;
        let a = with.alloc_bytes.max(1) as f64 / without.alloc_bytes.max(1) as f64;
        times.push(t);
        allocs.push(a);
        r.say(format!(
            "{:>12} {:>10.3} {:>10.2} {:>12.3} {:>12.2}",
            b.name, t, PAPER_T7_TIME[i], a, PAPER_T7_ALLOC[i]
        ));
    }
    r.say(format!(
        "{:>12} {:>10.3} {:>10.2} {:>12.3} {:>12.2}",
        "median",
        median(&times),
        0.61,
        median(&allocs),
        0.90
    ));
    r.say(format!(
        "{:>12} {:>10.3} {:>10.2} {:>12.3} {:>12.2}",
        "geo.mean",
        geomean(&times),
        0.58,
        geomean(&allocs),
        0.58
    ));
}

fn polycount(r: &mut Report) {
    r.say("\n== Section 5.1 claim: polymorphic functions after optimization ==");
    for b in suite() {
        let exe = Compiler::new(Options::til())
            .compile(b.source)
            .unwrap_or_else(|d| panic!("{d}"));
        let stats = exe.info.opt_stats.clone().unwrap_or_default();
        r.say(format!(
            "{:>12}: {} polymorphic functions, {} typecases remain (paper: 0)",
            b.name, stats.remaining_polymorphic, stats.remaining_typecases
        ));
    }
}

/// The runtime-observability section: rerun the suite under a
/// pressured heap with profiling on — in TIL mode under both
/// collection-scheduling modes, and in the tagged baseline (for the
/// census-gap columns) — print the pause/census/profile summary, and
/// export `BENCH_runtime.json`.
fn runtime_report(r: &mut Report, out_dir: &std::path::Path) {
    let budget = til::DEFAULT_PAUSE_BUDGET;
    r.say(format!(
        "\n== Runtime observability (semispace {} KB, profiled, pause budget {budget}) ==",
        RUNTIME_SEMI_BYTES >> 10
    ));
    r.say(format!(
        "{:>12} {:>5} {:>10} {:>10} {:>7} {:>10} {:>24}",
        "program", "GCs", "stw max", "inc max", "slices", "live max", "hottest function"
    ));
    let ms: Vec<(
        &'static str,
        til_bench::RuntimeMeasurement,
        til_bench::RuntimeMeasurement,
        til_bench::RuntimeMeasurement,
    )> = suite()
        .into_iter()
        .map(|b| {
            let m = measure_runtime(&b, RUNTIME_SEMI_BYTES).unwrap_or_else(|e| panic!("{e}"));
            let mi = til_bench::measure_runtime_incremental(&b, RUNTIME_SEMI_BYTES, budget)
                .unwrap_or_else(|e| panic!("{e}"));
            let mb = til_bench::measure_runtime_baseline(&b, RUNTIME_SEMI_BYTES)
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(m.output, mi.output, "{}: incremental output differs", b.name);
            assert_eq!(m.stats, mi.stats, "{}: incremental Stats differ", b.name);
            assert_eq!(m.output, mb.output, "{}: baseline output differs", b.name);
            (b.name, m, mi, mb)
        })
        .collect();
    for (name, m, mi, _) in &ms {
        let p = &m.profile;
        let hottest = p
            .top_functions(1)
            .first()
            .map(|f| format!("{} ({})", f.name, f.instrs))
            .unwrap_or_default();
        r.say(format!(
            "{:>12} {:>5} {:>10} {:>10} {:>7} {:>10} {:>24}",
            name,
            m.stats.gc_count,
            p.max_pause(),
            mi.profile.max_pause(),
            mi.profile.pauses.len(),
            m.stats.max_live_words,
            hottest,
        ));
    }
    // The allocation-site survival table (ISSUE: "which sites produce
    // long-lived data"): per benchmark, the top sites by words
    // allocated with their survival and exit-residency columns.
    r.say(format!(
        "\n== Allocation sites (top 3 by words allocated; survival at 1/2/{} collections) ==",
        export::SURVIVAL_N
    ));
    r.say(format!(
        "{:>12} {:>24} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "program", "site", "alloc", "surv1", "surv2", "survN", "at exit"
    ));
    for (name, m, _, _) in &ms {
        for s in m.profile.top_sites(3) {
            let surv = |k: usize| s.survived_words.get(k - 1).copied().unwrap_or(0);
            r.say(format!(
                "{:>12} {:>24} {:>12} {:>10} {:>10} {:>10} {:>10}",
                name,
                s.name,
                s.alloc_words,
                surv(1),
                surv(2),
                surv(export::SURVIVAL_N),
                s.live_at_exit_words,
            ));
        }
    }
    let rows: Vec<til_bench::RuntimeRow> = ms
        .iter()
        .map(|(n, m, mi, mb)| til_bench::RuntimeRow {
            name: n,
            stw: m,
            incremental: mi,
            baseline: mb,
        })
        .collect();
    match export::write_runtime_json(&rows, RUNTIME_SEMI_BYTES, budget, out_dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_runtime.json: {e}"),
    }
}

/// The allocation-site survival table for one named benchmark: a
/// profiled pressured-heap run, top sites by words allocated with the
/// full survival histogram depth. CI runs this as a smoke over one
/// benchmark (`tables --alloc-sites Life`).
fn alloc_sites_bench(r: &mut Report, name: &str) {
    let b = suite()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("no benchmark named {name}"));
    let m = measure_runtime(&b, RUNTIME_SEMI_BYTES).unwrap_or_else(|e| panic!("{e}"));
    r.say(format!(
        "\n== Allocation sites: {} ({} GCs, {} sites) ==",
        b.name,
        m.stats.gc_count,
        m.profile.sites.len()
    ));
    r.say(format!(
        "{:>24} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "site", "pc", "alloc", "surv1", "surv2", "survN", "at exit", "depth"
    ));
    let top = m.profile.top_sites(export::TOP_K);
    assert!(!top.is_empty(), "{}: no allocation sites recorded", b.name);
    for s in &top {
        let surv = |k: usize| s.survived_words.get(k - 1).copied().unwrap_or(0);
        r.say(format!(
            "{:>24} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7}",
            s.name,
            if s.pc == u32::MAX { "-".into() } else { s.pc.to_string() },
            s.alloc_words,
            surv(1),
            surv(2),
            surv(export::SURVIVAL_N),
            s.live_at_exit_words,
            s.survived_words.len(),
        ));
    }
}

/// The second backend target over one named benchmark: emit textual
/// x86-64, structurally validate it (labels resolve, every safe point
/// carries a stack map), run the per-target mcv rules, and write
/// `BENCH_x64.s`. CI regenerates and diffs the committed golden, so a
/// backend change that perturbs the assembly must re-pin it.
fn emit_asm_bench(r: &mut Report, name: &str, out_dir: &std::path::Path) {
    use til_backend::targets::x64::X64Op;
    let b = suite()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("no benchmark named {name}"));
    let mut opts = Options::til();
    opts.emit_asm = true;
    let exe = Compiler::new(opts)
        .compile(b.source)
        .unwrap_or_else(|d| panic!("{d}"));
    let m = exe.asm().expect("emit_asm set but no x64 module");
    // The compile already validated under `verify`; repeat here so the
    // smoke stands alone even if verification is ever toggled off.
    til_backend::targets::x64::validate(m).unwrap_or_else(|e| panic!("x64 validate: {e}"));
    til_backend::mcv::x64::verify(m).unwrap_or_else(|e| panic!("{e}"));
    let calls: usize = m
        .funs
        .iter()
        .map(|f| {
            f.ops
                .iter()
                .filter(|o| matches!(o, X64Op::Call { .. }))
                .count()
        })
        .sum();
    let maps: usize = m.funs.iter().map(|f| f.maps.len()).sum();
    r.say(format!("\n== x64 backend: {} ==", b.name));
    r.say(format!(
        "{} functions, {calls} safe points, {maps} stack maps, {} statics",
        m.funs.len(),
        m.statics.len()
    ));
    let path = out_dir.join("BENCH_x64.s");
    match std::fs::write(&path, m.text()) {
        Ok(()) => r.say(format!("wrote {}", path.display())),
        Err(e) => panic!("could not write {}: {e}", path.display()),
    }
}

/// Compile + profiled run of one named benchmark, exported as a Chrome
/// trace-event file (`trace_<name>.json` in the output directory).
fn chrome_trace(r: &mut Report, name: &str, out_dir: &std::path::Path) {
    let b = suite()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("no benchmark named {name}"));
    let mut opts = Options::til();
    opts.link.semi_bytes = RUNTIME_SEMI_BYTES;
    let exe = Compiler::new(opts)
        .compile(b.source)
        .unwrap_or_else(|d| panic!("{d}"));
    let out = exe
        .run_with(til_bench::FUEL, true)
        .unwrap_or_else(|e| panic!("{}: run: {e}", b.name));
    let profile = out.profile.expect("profiled run returns a profile");
    let json = til::chrome_trace_json(&exe.info, Some((&out.stats, &profile)));
    let path = out_dir.join(format!("trace_{}.json", b.name));
    match std::fs::write(&path, json.pretty()) {
        Ok(()) => r.say(format!("wrote Chrome trace {}", path.display())),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
