//! CI gate for the machine-code verifier's fault-injection suite.
//!
//! Proves `mc-verify` catches real emit/link bug classes, not just
//! that it stays quiet on correct output:
//!
//! 1. A clean compile of the probe program passes verification in both
//!    TIL and tagged-baseline modes (no false positives).
//! 2. Each seeded corruption from [`til_backend::mcv::fault::FAULTS`]
//!    makes the compile fail in the `mc-verify` phase, with the
//!    diagnostic attributed to the function the fault actually
//!    landed in and a pc at (or downstream of, for delayed-observation
//!    faults like a dropped GC-table entry) the corrupted site.
//!
//! The fault registry is process-global, so the cases run strictly
//! serially. Exit code 0 only when every case behaves.

use til::{Compiler, Options};
use til_backend::mcv::fault;

/// A probe with enough structure to give every fault a landing site:
/// recursive calls with traced values (a list and an accumulator
/// string) live across both user calls and runtime-service calls, so
/// frames carry traced spill slots; several multi-instruction
/// functions give the branch retargeter a victim; `pairup` holds the
/// result of one non-inlined call in a frame slot across a second
/// call, so at least one call-site descriptor carries a dead-slot
/// mark for `claim-dead-live` to erase; `shield` keeps a list slotted
/// across a protected call that raises and reads it back in the
/// handler — across a handler-side call, so the slot is listed in
/// tables on both sides of the handler edge and `drop-handler-edge`
/// has its preferred site.
const PROBE: &str = "
    fun build (n, acc) = if n = 0 then acc else build (n - 1, n :: acc)
    fun sum (xs, a) =
        case xs of
            nil => a
          | x :: r => sum (r, a + x)
    fun shout (n, s) =
        if n = 0 then s
        else shout (n - 1, s ^ Int.toString (sum (build (n, nil), 0)))
    fun pairup n =
        let val xs = build (n, nil)
            val ys = build (n + 1, nil)
        in sum (xs, sum (ys, 0)) end
    fun boomy n =
        if n = 0 then raise Fail \"deep\"
        else sum (build (n, nil), 0) + boomy (n - 1)
    fun shield n =
        let val keep = build (n, nil)
            val got = (boomy n) handle Fail _ => sum (keep, 0) + sum (keep, 1)
        in if n = 0 then got else got + shield (n - 1) end
    val _ = print (shout (6, \"\"))
    val _ = print (Int.toString (pairup 4))
    val _ = print \"-\"
    val _ = print (Int.toString (shield 5))
    val _ = print \"\\n\"
";

fn options(mode: &str) -> Options {
    let mut o = match mode {
        "til" => Options::til(),
        _ => Options::baseline(),
    };
    o.verify = true;
    o
}

/// Expects a clean verified compile.
fn check_clean(mode: &str) {
    let c = Compiler::new(options(mode));
    match c.compile(PROBE) {
        Ok(exe) => {
            let out = exe.run(1_000_000_000).expect("probe must run");
            assert!(
                out.output.contains("25-76"),
                "[{mode}] probe output wrong: {:?}",
                out.output
            );
            println!("ok   [{mode}] clean compile passes mc-verify");
        }
        Err(e) => {
            eprintln!("FAIL [{mode}] clean compile rejected: {e:?}");
            std::process::exit(1);
        }
    }
}

/// Arms `name`, recompiles, and expects an `mc-verify` failure
/// attributed to the corrupted function at (or after) the corrupted
/// pc.
fn check_fault(mode: &str, name: &str) {
    let guard = fault::break_emit(name);
    let c = Compiler::new(options(mode));
    let err = match c.compile(PROBE) {
        Ok(_) => {
            eprintln!("FAIL [{mode}] fault `{name}` was not caught by mc-verify");
            std::process::exit(1);
        }
        Err(e) => e,
    };
    drop(guard);
    let report = fault::last_report().unwrap_or_else(|| {
        eprintln!("FAIL [{mode}] fault `{name}` found no site to corrupt in the probe");
        std::process::exit(1);
    });
    assert_eq!(report.fault, name);
    if err.phase != "mc-verify" {
        eprintln!(
            "FAIL [{mode}] fault `{name}` failed in phase `{}`, not mc-verify: {}",
            err.phase, err.message
        );
        std::process::exit(1);
    }
    // Attribution: the diagnostic names the corrupted function...
    let (fun, rest) = err
        .message
        .split_once(": pc ")
        .unwrap_or_else(|| panic!("[{mode}] unparsable mc-verify message: {}", err.message));
    if fun != report.fun {
        eprintln!(
            "FAIL [{mode}] fault `{name}` landed in `{}` (pc {}) but mc-verify blamed `{fun}`: {}",
            report.fun, report.pc, err.message
        );
        std::process::exit(1);
    }
    // ...and flags the corrupted pc itself, or a later point in the
    // same function where the corruption first becomes observable.
    let pc: u32 = rest
        .split_whitespace()
        .next()
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("[{mode}] no pc in mc-verify message: {}", err.message));
    if pc < report.pc {
        eprintln!(
            "FAIL [{mode}] fault `{name}` corrupted pc {} but mc-verify flagged earlier pc {pc}",
            report.pc
        );
        std::process::exit(1);
    }
    println!(
        "ok   [{mode}] fault `{name}` caught in `{}` at pc {pc} (seeded at {})",
        report.fun, report.pc
    );
}

fn main() {
    // Nearly tag-free mode exercises every fault: frame descriptors
    // and GC tables only exist there in full.
    check_clean("til");
    for name in fault::FAULTS {
        check_fault("til", name);
    }
    // Tagged baseline has no call-site descriptors (the collector
    // scans the whole stack by tag), so only the code-level faults
    // apply — `drop-handler-edge` takes its CFI fallback there
    // (retargeting the handler-install Lea out of the function).
    check_clean("baseline");
    for name in ["retarget-branch", "clobber-sp", "drop-handler-edge"] {
        check_fault("baseline", name);
    }
    println!("mcv-fault smoke: all cases pass");
}
