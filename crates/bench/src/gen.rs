//! Typed program generator for differential testing.
//!
//! Generates well-typed core-SML programs by construction: every
//! program contains a randomized instance of each language feature the
//! differential suite must exercise — recursive, mutually recursive
//! (`fun f ... and g ...`), and curried functions,
//! tuples, polymorphic functions instantiated at int/real/tuple types
//! (forcing typecase-specialized array access through the polymorphic
//! `count` helper), bounds-checked array reads including a
//! `Subscript`-handled possibly-out-of-bounds access, datatypes with
//! recursive constructors (a polymorphic search tree and an expression
//! evaluator, putting recursive traced pointers into spill slots), and
//! a list-churn loop that allocates enough short-lived heap to force
//! collections under a small semispace. The program prints a single integer
//! checksum, so any two compilations can be compared by output alone —
//! the O0 compile is the oracle; no Rust-side evaluator is needed.

use crate::rng::Rng;

/// One generated program.
pub struct Generated {
    /// The seed it was generated from (for reproduction).
    pub seed: u64,
    /// Core-SML source text.
    pub source: String,
}

/// An integer literal in SML spelling (`~` for the unary minus).
fn sml_int(n: i64) -> String {
    if n < 0 {
        format!("~{}", -n)
    } else {
        n.to_string()
    }
}

/// A random well-typed integer expression over `vars`, depth-bounded.
fn int_expr(r: &mut Rng, vars: &[&str], depth: u32) -> String {
    let lit = |r: &mut Rng| sml_int(r.range(-64, 65));
    if depth == 0 || r.chance(1, 4) {
        return if !vars.is_empty() && r.chance(1, 2) {
            (*r.pick(vars)).to_string()
        } else {
            lit(r)
        };
    }
    let d = depth - 1;
    match r.range(0, 6) {
        0 => format!("({} + {})", int_expr(r, vars, d), int_expr(r, vars, d)),
        1 => format!("({} - {})", int_expr(r, vars, d), int_expr(r, vars, d)),
        2 => format!("({} * {})", int_expr(r, vars, d), int_expr(r, vars, d)),
        3 => format!(
            "(if {} > {} then {} else {})",
            int_expr(r, vars, d),
            int_expr(r, vars, d),
            int_expr(r, vars, d),
            int_expr(r, vars, d)
        ),
        4 => format!(
            "(let val t = ({}, {}) in #1 t + #2 t end)",
            int_expr(r, vars, d),
            int_expr(r, vars, d)
        ),
        _ => format!("(Int.min ({}, Int.max ({}, {})))",
            int_expr(r, vars, d),
            int_expr(r, vars, d),
            int_expr(r, vars, d)
        ),
    }
}

/// A small random real literal (from a fixed lattice, so the generated
/// program never prints a float — reals are consumed by comparisons).
fn real_lit(r: &mut Rng) -> String {
    let whole = r.range(0, 8);
    let frac = ["0", "25", "5", "75"][r.range(0, 4) as usize];
    if r.chance(1, 3) {
        format!("~{whole}.{frac}")
    } else {
        format!("{whole}.{frac}")
    }
}

/// Generates one program from `seed`.
pub fn generate(seed: u64) -> Generated {
    let r = &mut Rng::new(seed);
    let mut s = String::new();
    let mut push = |line: String| {
        s.push_str(&line);
        s.push('\n');
    };

    // --- Recursive accumulation (tail recursion, linear growth).
    let loop_iters = r.range(8, 40);
    push(format!(
        "fun loop n acc = if n <= 0 then acc else loop (n - 1) (acc + {})",
        int_expr(r, &["n"], 2)
    ));
    push(format!("val loop_chk = loop {loop_iters} {}", r.range(0, 20)));

    // --- Curried function and a partial application.
    push(format!(
        "fun cur a b c = {}",
        int_expr(r, &["a", "b", "c"], 3)
    ));
    push(format!("val part = cur {}", r.range(0, 30)));
    push(format!(
        "val curried_chk = part {} {} + cur {} {} {}",
        r.range(0, 30),
        r.range(0, 30),
        r.range(0, 30),
        r.range(0, 30),
        r.range(0, 30)
    ));

    // --- Mutual recursion (`fun f ... and g ...`): two functions
    // bouncing a decreasing counter between each other, each adding
    // its own randomized contribution. Exercises the elaborator's
    // recursive binding groups and the optimizer's handling of call
    // cycles that single-function recursion cannot reach.
    let mut_iters = r.range(6, 30);
    push(format!(
        "fun ping n acc = if n <= 0 then acc else pong (n - 1) (acc + {})",
        int_expr(r, &["n", "acc"], 2)
    ));
    push(format!(
        "and pong n acc = if n <= 0 then acc else ping (n - 2) (acc - {})",
        int_expr(r, &["n"], 2)
    ));
    push(format!(
        "val mutual_chk = ping {mut_iters} {} + pong {} 0",
        r.range(0, 12),
        r.range(0, 16)
    ));

    // --- Polymorphic helpers, instantiated at int, real, and tuples.
    push("fun dup x = (x, x)".to_string());
    push("fun appf f x = f x".to_string());
    push("fun swap (a, b) = (b, a)".to_string());
    push(format!("val d1 = dup {}", int_expr(r, &[], 2)));
    push(format!("val d2 = dup (dup {})", int_expr(r, &[], 1)));
    push(format!("val dr = dup {}", real_lit(r)));
    push(format!(
        "val sw = swap ({}, {})",
        int_expr(r, &[], 1),
        int_expr(r, &[], 1)
    ));
    push(format!(
        "val poly_chk = #1 d1 + #2 d1 + #1 (#2 d2) \
         + (if #1 dr >= #2 dr then 1 else 0) \
         + appf (fn x => x + {}) {} + #2 sw - #1 sw",
        sml_int(r.range(-20, 20)),
        int_expr(r, &[], 1)
    ));

    // --- Arrays: a polymorphic fill/count pair instantiated at int,
    // real, and tuple element types (typecase-specialized access), a
    // bounds-checked read, and a handled possibly-out-of-bounds read.
    let n_int = r.range(4, 24);
    let n_real = r.range(3, 16);
    let n_tup = r.range(3, 16);
    push(
        "fun fill a f i = if i >= Array.length a then () \
         else (Array.update (a, i, f i); fill a f (i + 1))"
            .to_string(),
    );
    push(
        "fun count p a i acc = if i >= Array.length a then acc \
         else count p a (i + 1) (acc + (if p (Array.sub (a, i)) then 1 else 0))"
            .to_string(),
    );
    push(format!("val ia = Array.array ({n_int}, 0)"));
    push(format!(
        "val _ = fill ia (fn i => {}) 0",
        int_expr(r, &["i"], 2)
    ));
    push(format!("val ra = Array.array ({n_real}, 0.0)"));
    push(format!(
        "val _ = fill ra (fn i => if i > {} then {} else {}) 0",
        r.range(0, n_real),
        real_lit(r),
        real_lit(r)
    ));
    push(format!(
        "val ta = Array.array ({n_tup}, ({}, {}))",
        sml_int(r.range(-9, 10)),
        sml_int(r.range(-9, 10))
    ));
    push(format!(
        "val _ = fill ta (fn i => (i, i + {})) 0",
        sml_int(r.range(-9, 10))
    ));
    let in_bounds = r.range(0, n_int);
    let maybe_oob = r.range(0, n_int + 4); // sometimes past the end
    push(format!(
        "val arr_chk = count (fn x => x > {}) ia 0 0 \
         + count (fn x => x > 0.0) ra 0 0 \
         + count (fn (x, y) => x + y > {}) ta 0 0 \
         + Array.sub (ia, {in_bounds}) \
         + (Array.sub (ia, {maybe_oob}) handle Subscript => ~{})",
        sml_int(r.range(-9, 10)),
        sml_int(r.range(-9, 10)),
        r.range(1, 9)
    ));

    // --- Datatypes with recursive constructors: a polymorphic search
    // tree instantiated at a tuple payload (recursive traced pointers
    // in every node, spilled across the non-tail recursive insert and
    // fold), and a small expression datatype evaluated by a multi-arm
    // case. Exercises recursive-pointer reps in spill slots — exactly
    // the frames the GC tables and the machine-code verifier must
    // describe.
    let key_a = r.range(2, 9);
    let key_b = r.range(1, 7);
    let tree_n = r.range(10, 28);
    push("datatype 'a tree = Lf | Nd of 'a tree * 'a * 'a tree".to_string());
    push(
        "fun tins cmp (t, x) = case t of \
         Lf => Nd (Lf, x, Lf) \
         | Nd (l, y, r) => if cmp (x, y) then Nd (tins cmp (l, x), y, r) \
         else Nd (l, y, tins cmp (r, x))"
            .to_string(),
    );
    push(
        "fun tfold f a t = case t of Lf => a \
         | Nd (l, x, r) => tfold f (f (x, tfold f a l)) r"
            .to_string(),
    );
    // A toggling sign spreads keys to both sides of the root without
    // needing `mod`.
    push(format!(
        "fun tbuild n t flip = if n <= 0 then t \
         else tbuild (n - 1) \
         (tins (fn ((a, _), (b, _)) => a < b) \
         (t, (if flip > 0 then n * {key_a} else 0 - n * {key_b}, n))) (1 - flip)"
    ));
    push(format!(
        "val tree_chk = tfold (fn ((k, v), s) => s + k * {} - v) {} (tbuild {tree_n} Lf 1)",
        r.range(1, 5),
        r.range(0, 10)
    ));
    let lit_vars: [&str; 0] = [];
    push("datatype expr = Lit of int | Neg of expr | Plus of expr * expr".to_string());
    push(format!(
        "fun mke n = if n <= 0 then Lit {} \
         else if n > {} then Plus (mke (n - 1), Neg (mke (n - 2))) \
         else Plus (Neg (mke (n - 2)), mke (n - 1))",
        int_expr(r, &lit_vars, 1),
        r.range(2, 6)
    ));
    push(
        "fun eval e = case e of Lit i => i \
         | Neg a => 0 - eval a \
         | Plus (a, b) => eval a + eval b"
            .to_string(),
    );
    push(format!("val expr_chk = eval (mke {})", r.range(6, 12)));

    // --- Heap churn: short-lived cons cells, tuned to force
    // collections under the differential suite's small semispace.
    let build_len = r.range(24, 80);
    let churn_iters = r.range(24, 80);
    push("fun build n = if n <= 0 then nil else (n, n * 2) :: build (n - 1)".to_string());
    push(
        "fun churn n acc = if n <= 0 then acc \
         else churn (n - 1) (acc + foldl (fn ((a, b), s) => s + (a - b)) 0 \
         (build ".to_string()
            + &build_len.to_string()
            + "))",
    );
    push(format!("val churn_chk = churn {churn_iters} 0"));

    // --- The checksum.
    push(format!(
        "val _ = print (Int.toString (loop_chk + curried_chk + mutual_chk \
         + poly_chk + arr_chk + tree_chk + expr_chk + churn_chk + {}))",
        int_expr(r, &[], 3)
    ));

    Generated { seed, source: s }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(99).source, generate(99).source);
    }

    #[test]
    fn programs_vary_with_the_seed() {
        assert_ne!(generate(1).source, generate(2).source);
    }
}
