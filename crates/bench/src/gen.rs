//! Typed program generator for differential testing.
//!
//! Generates well-typed core-SML programs by construction, in four
//! [`Class`]es. [`Class::Mixed`] (the default, what [`generate`]
//! produces) contains a randomized instance of each broad language
//! feature the differential suite must exercise — recursive, mutually
//! recursive (`fun f ... and g ...`), and curried functions,
//! tuples, polymorphic functions instantiated at int/real/tuple types
//! (forcing typecase-specialized array access through the polymorphic
//! `count` helper), bounds-checked array reads including a
//! `Subscript`-handled possibly-out-of-bounds access, datatypes with
//! recursive constructors (a polymorphic search tree and an expression
//! evaluator, putting recursive traced pointers into spill slots), and
//! a list-churn loop that allocates enough short-lived heap to force
//! collections under a small semispace.
//!
//! [`Class::Exceptions`] stresses handler-crossing control flow: user
//! exceptions with int, string, and tuple payloads, raises unwinding
//! non-tail frames, values live *only* into a handler (the shape that
//! flushed out the handler-edge GC-liveness bug), nested handlers with
//! re-raises, hardware traps (`Div`) and SML-level raises
//! (`Subscript`) recovered in a loop, exceptions flowing out of
//! datatype dispatch, and heap churn inside a protected region so
//! collections run with a handler installed.
//!
//! [`Class::Strings`] keeps the runtime string services busy:
//! concat-builders, `Int.toString` traffic, `implode`/`explode`/
//! `substring` round trips, `String.concat`/`String.compare` over
//! built lists, a `Subscript`-handled out-of-bounds `String.sub`, and
//! long-lived strings held across collections — so the census
//! `string` row and the profiler's `(rt)` allocation bucket carry
//! real traffic.
//!
//! [`Class::Readers`] is the lexer shape: one long input string built
//! once, then scanned by index-driven loops whose inner bodies are
//! `String.sub` reads — a rolling hash, a digit classifier, an
//! integer lexer that accumulates digit runs into token values, a
//! strided backward scan, `Subscript`-guarded lookahead past both
//! ends, a windowed reader allocating a `substring` per step, and
//! list churn that keeps reading the (long-lived) input between
//! collections. Where `Strings` stresses the string *builders*,
//! `Readers` stresses per-character access and the bounds checks in
//! front of it.
//!
//! Every program prints a deterministic checksum (the string class
//! also prints a string slice), so any two compilations can be
//! compared by output alone — the O0 compile is the oracle; no
//! Rust-side evaluator is needed.

use crate::rng::Rng;

/// One generated program.
pub struct Generated {
    /// The seed it was generated from (for reproduction).
    pub seed: u64,
    /// Core-SML source text.
    pub source: String,
}

/// Which feature mix a generated program emphasizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// The broad feature mix (recursion, currying, polymorphism,
    /// arrays, datatypes, heap churn). What [`generate`] produces.
    Mixed,
    /// Raise/handle-heavy programs: payload-carrying user exceptions,
    /// deep raises, handler-crossing liveness, nested handlers,
    /// recovered traps, churn inside protected regions.
    Exceptions,
    /// String-heavy programs: runtime string services, long-lived
    /// strings across collections, string contents in the output.
    Strings,
    /// Reader/lexer programs: index-driven scans over one long input
    /// string with `String.sub`-heavy inner loops — rolling hashes,
    /// digit-run lexing, strided and `Subscript`-guarded reads.
    Readers,
}

impl Class {
    /// Every generator class, in rotation order.
    pub const ALL: [Class; 4] = [
        Class::Mixed,
        Class::Exceptions,
        Class::Strings,
        Class::Readers,
    ];

    /// Short name for test labels and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            Class::Mixed => "mixed",
            Class::Exceptions => "exceptions",
            Class::Strings => "strings",
            Class::Readers => "readers",
        }
    }
}

/// An integer literal in SML spelling (`~` for the unary minus).
fn sml_int(n: i64) -> String {
    if n < 0 {
        format!("~{}", -n)
    } else {
        n.to_string()
    }
}

/// A random well-typed integer expression over `vars`, depth-bounded.
fn int_expr(r: &mut Rng, vars: &[&str], depth: u32) -> String {
    let lit = |r: &mut Rng| sml_int(r.range(-64, 65));
    if depth == 0 || r.chance(1, 4) {
        return if !vars.is_empty() && r.chance(1, 2) {
            (*r.pick(vars)).to_string()
        } else {
            lit(r)
        };
    }
    let d = depth - 1;
    match r.range(0, 6) {
        0 => format!("({} + {})", int_expr(r, vars, d), int_expr(r, vars, d)),
        1 => format!("({} - {})", int_expr(r, vars, d), int_expr(r, vars, d)),
        2 => format!("({} * {})", int_expr(r, vars, d), int_expr(r, vars, d)),
        3 => format!(
            "(if {} > {} then {} else {})",
            int_expr(r, vars, d),
            int_expr(r, vars, d),
            int_expr(r, vars, d),
            int_expr(r, vars, d)
        ),
        4 => format!(
            "(let val t = ({}, {}) in #1 t + #2 t end)",
            int_expr(r, vars, d),
            int_expr(r, vars, d)
        ),
        _ => format!("(Int.min ({}, Int.max ({}, {})))",
            int_expr(r, vars, d),
            int_expr(r, vars, d),
            int_expr(r, vars, d)
        ),
    }
}

/// A small random real literal (from a fixed lattice, so the generated
/// program never prints a float — reals are consumed by comparisons).
fn real_lit(r: &mut Rng) -> String {
    let whole = r.range(0, 8);
    let frac = ["0", "25", "5", "75"][r.range(0, 4) as usize];
    if r.chance(1, 3) {
        format!("~{whole}.{frac}")
    } else {
        format!("{whole}.{frac}")
    }
}

/// Generates one [`Class::Mixed`] program from `seed`.
pub fn generate(seed: u64) -> Generated {
    generate_class(seed, Class::Mixed)
}

/// Generates one program of `class` from `seed`. The classes draw
/// from decorrelated random streams, so `Exceptions` seed `n` shares
/// nothing with `Mixed` seed `n`.
pub fn generate_class(seed: u64, class: Class) -> Generated {
    let salt = match class {
        Class::Mixed => 0,
        Class::Exceptions => 0x5eed_ec5e_0000_0001,
        Class::Strings => 0x5eed_57f2_0000_0002,
        Class::Readers => 0x5eed_4ead_0000_0003,
    };
    let r = &mut Rng::new(seed ^ salt);
    let mut s = String::new();
    {
        let mut push = |line: String| {
            s.push_str(&line);
            s.push('\n');
        };
        match class {
            Class::Mixed => gen_mixed(r, &mut push),
            Class::Exceptions => gen_exceptions(r, &mut push),
            Class::Strings => gen_strings(r, &mut push),
            Class::Readers => gen_readers(r, &mut push),
        }
    }
    Generated { seed, source: s }
}

/// The broad feature mix (see the module doc).
fn gen_mixed(r: &mut Rng, push: &mut dyn FnMut(String)) {
    // --- Recursive accumulation (tail recursion, linear growth).
    let loop_iters = r.range(8, 40);
    push(format!(
        "fun loop n acc = if n <= 0 then acc else loop (n - 1) (acc + {})",
        int_expr(r, &["n"], 2)
    ));
    push(format!("val loop_chk = loop {loop_iters} {}", r.range(0, 20)));

    // --- Curried function and a partial application.
    push(format!(
        "fun cur a b c = {}",
        int_expr(r, &["a", "b", "c"], 3)
    ));
    push(format!("val part = cur {}", r.range(0, 30)));
    push(format!(
        "val curried_chk = part {} {} + cur {} {} {}",
        r.range(0, 30),
        r.range(0, 30),
        r.range(0, 30),
        r.range(0, 30),
        r.range(0, 30)
    ));

    // --- Mutual recursion (`fun f ... and g ...`): two functions
    // bouncing a decreasing counter between each other, each adding
    // its own randomized contribution. Exercises the elaborator's
    // recursive binding groups and the optimizer's handling of call
    // cycles that single-function recursion cannot reach.
    let mut_iters = r.range(6, 30);
    push(format!(
        "fun ping n acc = if n <= 0 then acc else pong (n - 1) (acc + {})",
        int_expr(r, &["n", "acc"], 2)
    ));
    push(format!(
        "and pong n acc = if n <= 0 then acc else ping (n - 2) (acc - {})",
        int_expr(r, &["n"], 2)
    ));
    push(format!(
        "val mutual_chk = ping {mut_iters} {} + pong {} 0",
        r.range(0, 12),
        r.range(0, 16)
    ));

    // --- Polymorphic helpers, instantiated at int, real, and tuples.
    push("fun dup x = (x, x)".to_string());
    push("fun appf f x = f x".to_string());
    push("fun swap (a, b) = (b, a)".to_string());
    push(format!("val d1 = dup {}", int_expr(r, &[], 2)));
    push(format!("val d2 = dup (dup {})", int_expr(r, &[], 1)));
    push(format!("val dr = dup {}", real_lit(r)));
    push(format!(
        "val sw = swap ({}, {})",
        int_expr(r, &[], 1),
        int_expr(r, &[], 1)
    ));
    push(format!(
        "val poly_chk = #1 d1 + #2 d1 + #1 (#2 d2) \
         + (if #1 dr >= #2 dr then 1 else 0) \
         + appf (fn x => x + {}) {} + #2 sw - #1 sw",
        sml_int(r.range(-20, 20)),
        int_expr(r, &[], 1)
    ));

    // --- Arrays: a polymorphic fill/count pair instantiated at int,
    // real, and tuple element types (typecase-specialized access), a
    // bounds-checked read, and a handled possibly-out-of-bounds read.
    let n_int = r.range(4, 24);
    let n_real = r.range(3, 16);
    let n_tup = r.range(3, 16);
    push(
        "fun fill a f i = if i >= Array.length a then () \
         else (Array.update (a, i, f i); fill a f (i + 1))"
            .to_string(),
    );
    push(
        "fun count p a i acc = if i >= Array.length a then acc \
         else count p a (i + 1) (acc + (if p (Array.sub (a, i)) then 1 else 0))"
            .to_string(),
    );
    push(format!("val ia = Array.array ({n_int}, 0)"));
    push(format!(
        "val _ = fill ia (fn i => {}) 0",
        int_expr(r, &["i"], 2)
    ));
    push(format!("val ra = Array.array ({n_real}, 0.0)"));
    push(format!(
        "val _ = fill ra (fn i => if i > {} then {} else {}) 0",
        r.range(0, n_real),
        real_lit(r),
        real_lit(r)
    ));
    push(format!(
        "val ta = Array.array ({n_tup}, ({}, {}))",
        sml_int(r.range(-9, 10)),
        sml_int(r.range(-9, 10))
    ));
    push(format!(
        "val _ = fill ta (fn i => (i, i + {})) 0",
        sml_int(r.range(-9, 10))
    ));
    let in_bounds = r.range(0, n_int);
    let maybe_oob = r.range(0, n_int + 4); // sometimes past the end
    push(format!(
        "val arr_chk = count (fn x => x > {}) ia 0 0 \
         + count (fn x => x > 0.0) ra 0 0 \
         + count (fn (x, y) => x + y > {}) ta 0 0 \
         + Array.sub (ia, {in_bounds}) \
         + (Array.sub (ia, {maybe_oob}) handle Subscript => ~{})",
        sml_int(r.range(-9, 10)),
        sml_int(r.range(-9, 10)),
        r.range(1, 9)
    ));

    // --- Datatypes with recursive constructors: a polymorphic search
    // tree instantiated at a tuple payload (recursive traced pointers
    // in every node, spilled across the non-tail recursive insert and
    // fold), and a small expression datatype evaluated by a multi-arm
    // case. Exercises recursive-pointer reps in spill slots — exactly
    // the frames the GC tables and the machine-code verifier must
    // describe.
    let key_a = r.range(2, 9);
    let key_b = r.range(1, 7);
    let tree_n = r.range(10, 28);
    push("datatype 'a tree = Lf | Nd of 'a tree * 'a * 'a tree".to_string());
    push(
        "fun tins cmp (t, x) = case t of \
         Lf => Nd (Lf, x, Lf) \
         | Nd (l, y, r) => if cmp (x, y) then Nd (tins cmp (l, x), y, r) \
         else Nd (l, y, tins cmp (r, x))"
            .to_string(),
    );
    push(
        "fun tfold f a t = case t of Lf => a \
         | Nd (l, x, r) => tfold f (f (x, tfold f a l)) r"
            .to_string(),
    );
    // A toggling sign spreads keys to both sides of the root without
    // needing `mod`.
    push(format!(
        "fun tbuild n t flip = if n <= 0 then t \
         else tbuild (n - 1) \
         (tins (fn ((a, _), (b, _)) => a < b) \
         (t, (if flip > 0 then n * {key_a} else 0 - n * {key_b}, n))) (1 - flip)"
    ));
    push(format!(
        "val tree_chk = tfold (fn ((k, v), s) => s + k * {} - v) {} (tbuild {tree_n} Lf 1)",
        r.range(1, 5),
        r.range(0, 10)
    ));
    let lit_vars: [&str; 0] = [];
    push("datatype expr = Lit of int | Neg of expr | Plus of expr * expr".to_string());
    push(format!(
        "fun mke n = if n <= 0 then Lit {} \
         else if n > {} then Plus (mke (n - 1), Neg (mke (n - 2))) \
         else Plus (Neg (mke (n - 2)), mke (n - 1))",
        int_expr(r, &lit_vars, 1),
        r.range(2, 6)
    ));
    push(
        "fun eval e = case e of Lit i => i \
         | Neg a => 0 - eval a \
         | Plus (a, b) => eval a + eval b"
            .to_string(),
    );
    push(format!("val expr_chk = eval (mke {})", r.range(6, 12)));

    // --- Heap churn: short-lived cons cells, tuned to force
    // collections under the differential suite's small semispace.
    let build_len = r.range(24, 80);
    let churn_iters = r.range(24, 80);
    push("fun build n = if n <= 0 then nil else (n, n * 2) :: build (n - 1)".to_string());
    push(
        "fun churn n acc = if n <= 0 then acc \
         else churn (n - 1) (acc + foldl (fn ((a, b), s) => s + (a - b)) 0 \
         (build ".to_string()
            + &build_len.to_string()
            + "))",
    );
    push(format!("val churn_chk = churn {churn_iters} 0"));

    // --- The checksum.
    push(format!(
        "val _ = print (Int.toString (loop_chk + curried_chk + mutual_chk \
         + poly_chk + arr_chk + tree_chk + expr_chk + churn_chk + {}))",
        int_expr(r, &[], 3)
    ));
}

/// Raise/handle-heavy programs (see the module doc).
fn gen_exceptions(r: &mut Rng, push: &mut dyn FnMut(String)) {
    // User exceptions with int, string, and tuple payloads — the
    // payloads are first-class values crossing handler edges.
    push("exception Bail of int".to_string());
    push("exception Msg of string".to_string());
    push("exception Pair of int * int".to_string());
    push("fun build (n, acc) = if n <= 0 then acc else build (n - 1, n :: acc)".to_string());
    push(
        "fun sum (xs, a) = case xs of nil => a | x :: rest => sum (rest, a + x)"
            .to_string(),
    );

    // --- A raise unwinding non-tail frames (each level has a pending
    // add), with `keep` live *only* into the handler: the exact
    // handler-crossing GC-liveness shape, under heap pressure from
    // the list it must keep.
    let deep_n = r.range(5, 14);
    push(format!(
        "fun deep n = if n <= 0 then raise Bail {} else deep (n - 1) + {}",
        r.range(2, 30),
        int_expr(r, &["n"], 2)
    ));
    push(format!(
        "fun guard n = \
         let val keep = build (n + {}, nil) \
         in (deep n) handle Bail k => k + sum (keep, 0) | Msg s => size s end",
        r.range(2, 8)
    ));
    push(format!("val guard_chk = guard {deep_n}"));

    // --- A string payload grown across the raising recursion and
    // consumed in the handler (string allocation inside a protected
    // region, a string value across the handler edge).
    let shout_n = r.range(3, 9);
    push(format!(
        "fun shout (n, s) = if n <= 0 then raise Msg s \
         else shout (n - 1, s ^ Int.toString (n * {}))",
        r.range(1, 7)
    ));
    push(format!(
        "val msg_chk = (shout ({shout_n}, \"g\")) \
         handle Msg s => size s + ord (String.sub (s, 0))"
    ));

    // --- Nested handlers with a re-raise: the inner handler catches a
    // tuple payload and conditionally raises a different exception
    // caught by the outer handler.
    let flip_gate = r.range(2, 10);
    let flip_add = r.range(1, 20);
    let flip_cut = r.range(6, 28);
    push(format!(
        "fun flip n = \
         ((if n > {flip_gate} then raise Pair (n, n + {flip_add}) else n * 3) \
         handle Pair (a, b) => if a + b > {flip_cut} then raise Bail (a - b) else a * b) \
         handle Bail k => k + {}",
        r.range(0, 12)
    ));
    push("fun flips (n, acc) = if n <= 0 then acc else flips (n - 1, acc + flip n)".to_string());
    push(format!("val nest_chk = flips ({}, 0)", r.range(5, 16)));

    // --- Recovered traps in a loop: `div 0` is a hardware trap
    // (exactly one iteration hits the zero divisor), and the short
    // array turns the head of the loop into SML-level `Subscript`
    // raises from the prelude's bounds check.
    let trips_n = r.range(6, 14);
    let div_at = r.range(1, trips_n);
    push(format!(
        "val tarr = Array.array ({}, {})",
        r.range(2, 6),
        r.range(1, 9)
    ));
    push(format!(
        "fun trips (n, acc) = if n <= 0 then acc \
         else trips (n - 1, acc + ((100 div (n - {div_at})) handle Div => ~1) \
         + (Array.sub (tarr, n) handle Subscript => 1))"
    ));
    push(format!("val trap_chk = trips ({trips_n}, 0)"));

    // --- Exceptions out of datatype dispatch: a case arm raises, the
    // driver recovers per element.
    let quick_cut = r.range(2, 12);
    push("datatype job = Quick of int | Slow of int * int".to_string());
    push(format!(
        "fun run j = case j of \
         Quick x => if x < {quick_cut} then raise Bail (x + 1) else x \
         | Slow (a, b) => if a = b then raise Pair (a, b) else a * b - {}",
        r.range(0, 9)
    ));
    push(
        "fun sched (js, acc) = case js of nil => acc \
         | j :: rest => sched (rest, acc + (run j handle Bail k => k | Pair (a, b) => a + b))"
            .to_string(),
    );
    let jobs: Vec<String> = (0..r.range(4, 8))
        .map(|_| {
            if r.chance(1, 2) {
                format!("Quick ({})", sml_int(r.range(-6, 18)))
            } else {
                format!("Slow ({}, {})", r.range(0, 9), r.range(0, 9))
            }
        })
        .collect();
    push(format!("val job_chk = sched ([{}], 0)", jobs.join(", ")));

    // --- Heap churn inside a protected region: collections run with
    // a handler installed, and one iteration raises out of the middle
    // of the allocating expression.
    let churn_len = r.range(24, 72);
    let churn_iters = r.range(24, 72);
    let raise_at = r.range(1, churn_iters);
    push(format!(
        "fun churn (n, acc) = if n <= 0 then acc \
         else churn (n - 1, acc + ((sum (build ({churn_len}, nil), 0) \
         + (if n = {raise_at} then raise Msg \"gc\" else 0)) \
         handle Msg s => size s))"
    ));
    push(format!("val churn_chk = churn ({churn_iters}, 0)"));

    // --- The checksum.
    push(format!(
        "val _ = print (Int.toString (guard_chk + msg_chk + nest_chk \
         + trap_chk + job_chk + churn_chk + {}))",
        int_expr(r, &[], 3)
    ));
}

/// String-heavy programs (see the module doc).
fn gen_strings(r: &mut Rng, push: &mut dyn FnMut(String)) {
    push("fun build (n, acc) = if n <= 0 then acc else build (n - 1, n :: acc)".to_string());
    push(
        "fun sum (xs, a) = case xs of nil => a | x :: rest => sum (rest, a + x)"
            .to_string(),
    );
    // Concat-builders: every `^` and `Int.toString` is an `RtCall`
    // into the runtime string services (the `(rt)` profiler bucket).
    push("fun rep (n, s, acc) = if n <= 0 then acc else rep (n - 1, s, acc ^ s)".to_string());
    push(format!(
        "fun spell (n, acc) = if n <= 0 then acc \
         else spell (n - 1, Int.toString (n * {}) ^ \".\" ^ acc)",
        r.range(1, 9)
    ));
    // An order-sensitive rolling checksum over characters, kept small
    // by `mod` so it never overflows.
    push(
        "fun csum (cs, a) = case cs of nil => a \
         | c :: rest => csum (rest, (a * 7 + ord c) mod 9973)"
            .to_string(),
    );
    let keep_n = r.range(6, 20);
    let rep_n = r.range(4, 12);
    let rep_lit = ["ab", "xyz", "q-", "##", "lo"][r.range(0, 5) as usize];
    push(format!(
        "val keeper = spell ({keep_n}, \"{}\")",
        ["", "end", "z"][r.range(0, 3) as usize]
    ));
    push(format!("val reps = rep ({rep_n}, \"{rep_lit}\", \"\")"));
    push("val blend_chk = csum (explode (keeper ^ reps), 0)".to_string());
    // implode/explode round trip and an in-bounds substring slice
    // (`keeper` holds at least two characters per `spell` level, so
    // the slice bounds are always inside it).
    let sub_at = r.range(0, 3);
    let sub_len = r.range(1, keep_n);
    push(format!(
        "val round_chk = size (implode (explode keeper)) \
         + csum (explode (substring (keeper, {sub_at}, {sub_len})), 1)"
    ));
    // Char-level access, including an out-of-bounds read recovered
    // from the runtime's hardware `Subscript` trap.
    push(format!(
        "val pick_chk = ord (String.sub (reps, {})) \
         + ((ord (String.sub (keeper, size keeper + {}))) handle Subscript => {}) \
         + ord (String.sub (str (chr {}), 0))",
        r.range(0, rep_n),
        r.range(1, 6),
        r.range(0, 50),
        r.range(48, 123)
    ));
    // String.concat/String.compare over a mapped list of rendered ints.
    push(format!(
        "val joined = String.concat (map (fn n => Int.toString n ^ \"{}\") \
         (build ({}, nil)))",
        ["/", ";", ","][r.range(0, 3) as usize],
        r.range(4, 16)
    ));
    push(
        "val cat_chk = size joined \
         + (case String.compare (keeper, joined) of LESS => 1 | EQUAL => 2 | GREATER => 3) \
         + (if Char.isDigit (String.sub (joined, 0)) then 1 else 0)"
            .to_string(),
    );
    // Heap churn with per-iteration `Int.toString` allocation: the
    // long-lived `keeper`/`reps`/`joined` strings survive the
    // collections this forces, so every census taken at a pause sees
    // a non-empty `string` class.
    let churn_len = r.range(24, 72);
    let churn_iters = r.range(24, 72);
    push(format!(
        "fun churn (n, acc) = if n <= 0 then acc \
         else churn (n - 1, acc + sum (build ({churn_len}, nil), 0) \
         + size (Int.toString (n * {})))",
        r.range(1, 99)
    ));
    push(format!("val churn_chk = churn ({churn_iters}, 0)"));

    // --- The checksum, plus a string slice printed directly so the
    // differential comparison covers string *contents*, not just
    // numbers derived from them.
    push(format!(
        "val _ = print (Int.toString (blend_chk + round_chk + pick_chk \
         + cat_chk + churn_chk + size keeper + {}))",
        int_expr(r, &[], 2)
    ));
    push("val _ = print \"|\"".to_string());
    push(format!(
        "val _ = print (substring (keeper, 0, {}))",
        r.range(1, 6)
    ));
}

/// Reader/lexer programs (see the module doc).
fn gen_readers(r: &mut Rng, push: &mut dyn FnMut(String)) {
    // --- The input: rendered ints joined by a separator, the whole
    // run repeated a few times. Built once and then only *read* — a
    // single long-lived heap string every scan below indexes into.
    let sep = ["/", ";", ",", ":"][r.range(0, 4) as usize];
    push(format!(
        "fun render (n, acc) = if n <= 0 then acc \
         else render (n - 1, Int.toString (n * {}) ^ \"{sep}\" ^ acc)",
        r.range(1, 13)
    ));
    push("fun rep (n, s, acc) = if n <= 0 then acc else rep (n - 1, s, acc ^ s)".to_string());
    let render_n = r.range(12, 40);
    let rep_n = r.range(2, 6);
    push(format!(
        "val input = rep ({rep_n}, render ({render_n}, \"{}\"), \"\")",
        ["", "end", "!"][r.range(0, 3) as usize]
    ));
    push("val len = size input".to_string());

    // --- A rolling hash over every character, by index. The inner
    // body is exactly one bounds-checked `String.sub`.
    let hash_mul = [31, 33, 131][r.range(0, 3) as usize];
    push(format!(
        "fun hash (i, a) = if i >= len then a \
         else hash (i + 1, (a * {hash_mul} + ord (String.sub (input, i))) mod 65521)"
    ));
    push(format!("val hash_chk = hash (0, {})", r.range(0, 9)));

    // --- A classifier pass: count digit characters (every item in
    // the input contributes a digit run, so the count is never zero).
    push(
        "fun digits (i, a) = if i >= len then a \
         else digits (i + 1, a + (if Char.isDigit (String.sub (input, i)) then 1 else 0))"
            .to_string(),
    );
    push("val digit_chk = digits (0, 0)".to_string());

    // --- The lexer: accumulate each digit run into a token value,
    // skip everything else, sum the tokens. `lexnum` returns the
    // (index, value) pair the driver resumes from — an int pair
    // flowing between the two scan loops.
    push(
        "fun lexnum (i, v) = if i >= len then (i, v) \
         else if Char.isDigit (String.sub (input, i)) \
         then lexnum (i + 1, (v * 10 + (ord (String.sub (input, i)) - 48)) mod 9973) \
         else (i, v)"
            .to_string(),
    );
    push(
        "fun toks (i, a) = if i >= len then a \
         else if Char.isDigit (String.sub (input, i)) \
         then (let val p = lexnum (i, 0) in toks (#1 p, (a + #2 p) mod 65521) end) \
         else toks (i + 1, a)"
            .to_string(),
    );
    push("val tok_chk = toks (0, 0)".to_string());

    // --- A strided backward scan from the last character.
    let stride = r.range(1, 5);
    push(format!(
        "fun back (i, a) = if i < 0 then a \
         else back (i - {stride}, (a * 3 + ord (String.sub (input, i))) mod 65521)"
    ));
    push("val back_chk = back (len - 1, 0)".to_string());

    // --- Guarded lookahead: reads past both ends recover from the
    // runtime's `Subscript` trap, in-bounds peeks at the edges don't.
    push(format!(
        "fun peek i = (ord (String.sub (input, i))) handle Subscript => ~{}",
        r.range(1, 9)
    ));
    push(format!(
        "val peek_chk = peek 0 + peek (len - 1) + peek len + peek (len + {}) + peek (0 - {})",
        r.range(1, 30),
        r.range(1, 6)
    ));

    // --- A windowed reader: each step slices a fresh `substring` (an
    // allocation per window, under the long-lived input) and folds its
    // first and last characters into the sum. `render_n >= 12` items
    // of at least two characters each keep every window in bounds.
    let win = r.range(3, 9);
    let step = r.range(1, 5);
    push(format!(
        "fun windows (i, a) = if i + {win} > len then a \
         else windows (i + {step}, (a + ord (String.sub (substring (input, i, {win}), 0)) \
         + ord (String.sub (substring (input, i, {win}), {})) ) mod 65521)",
        win - 1
    ));
    push("val win_chk = windows (0, 0)".to_string());

    // --- Heap churn that keeps reading: cons-cell garbage per
    // iteration plus one indexed read, so collections interleave with
    // the scans while `input` stays live across every pause.
    push("fun build (n, acc) = if n <= 0 then acc else build (n - 1, n :: acc)".to_string());
    push(
        "fun sum (xs, a) = case xs of nil => a | x :: rest => sum (rest, a + x)"
            .to_string(),
    );
    let churn_len = r.range(24, 72);
    let churn_iters = r.range(24, 72);
    push(format!(
        "fun churn (n, acc) = if n <= 0 then acc \
         else churn (n - 1, acc + sum (build ({churn_len}, nil), 0) \
         + ord (String.sub (input, n mod len)))"
    ));
    push(format!("val churn_chk = churn ({churn_iters}, 0)"));

    // --- The checksum, plus a slice of the input printed directly so
    // the differential comparison covers the scanned *contents* too.
    push(format!(
        "val _ = print (Int.toString (hash_chk + digit_chk + tok_chk \
         + back_chk + peek_chk + win_chk + churn_chk + {}))",
        int_expr(r, &[], 2)
    ));
    push("val _ = print \"|\"".to_string());
    push(format!(
        "val _ = print (substring (input, {}, {}))",
        r.range(0, 4),
        r.range(2, 8)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(99).source, generate(99).source);
        for class in Class::ALL {
            assert_eq!(
                generate_class(7, class).source,
                generate_class(7, class).source
            );
        }
    }

    #[test]
    fn programs_vary_with_the_seed() {
        assert_ne!(generate(1).source, generate(2).source);
    }

    #[test]
    fn classes_produce_distinct_programs() {
        let mixed = generate_class(5, Class::Mixed).source;
        let exns = generate_class(5, Class::Exceptions).source;
        let strs = generate_class(5, Class::Strings).source;
        let reads = generate_class(5, Class::Readers).source;
        assert_ne!(mixed, exns);
        assert_ne!(exns, strs);
        assert_ne!(strs, reads);
        assert_ne!(mixed, reads);
    }

    #[test]
    fn exception_class_raises_and_handles() {
        for seed in 0..8 {
            let src = generate_class(seed, Class::Exceptions).source;
            assert!(src.contains("raise"), "seed {seed}: no raise\n{src}");
            assert!(src.contains("handle"), "seed {seed}: no handle\n{src}");
            assert!(
                src.contains("exception"),
                "seed {seed}: no exception dec\n{src}"
            );
        }
    }

    #[test]
    fn string_class_is_string_heavy() {
        for seed in 0..8 {
            let src = generate_class(seed, Class::Strings).source;
            for needle in ["^", "Int.toString", "explode", "substring", "String.compare"] {
                assert!(src.contains(needle), "seed {seed}: no {needle}\n{src}");
            }
        }
    }

    #[test]
    fn reader_class_is_sub_heavy() {
        for seed in 0..8 {
            let src = generate_class(seed, Class::Readers).source;
            for needle in [
                "String.sub (input",
                "Char.isDigit",
                "substring",
                "handle Subscript",
            ] {
                assert!(src.contains(needle), "seed {seed}: no {needle}\n{src}");
            }
            // The scans index off one shared long-lived input.
            assert!(
                src.matches("String.sub (input").count() >= 8,
                "seed {seed}: not sub-heavy\n{src}"
            );
        }
    }
}
