//! Benchmarks of compiler-phase throughput (the compile-time side of
//! Table 6). Hand-rolled harness (no external crates): each case is
//! warmed once and timed for a fixed number of iterations; the median
//! per-iteration wall time is reported.

use til::{Compiler, Options};
use til_bench::time_case;

const MATMULT: &str = include_str!("../sml/matmult.sml");
const LIFE: &str = include_str!("../sml/life.sml");

fn main() {
    println!("== compile ==");
    time_case("matmult-til", 10, || {
        Compiler::new(Options::til())
            .compile(std::hint::black_box(MATMULT))
            .unwrap()
    });
    time_case("matmult-baseline", 10, || {
        Compiler::new(Options::baseline())
            .compile(std::hint::black_box(MATMULT))
            .unwrap()
    });
    time_case("life-til", 10, || {
        Compiler::new(Options::til())
            .compile(std::hint::black_box(LIFE))
            .unwrap()
    });

    println!("== frontend ==");
    time_case("parse-prelude", 20, || {
        til_syntax::parse(std::hint::black_box(til::PRELUDE)).unwrap()
    });
    time_case("elaborate-matmult", 20, || {
        til_elab::elaborate_source(std::hint::black_box(MATMULT)).unwrap()
    });
}
