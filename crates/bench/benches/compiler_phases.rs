//! Criterion benchmarks of compiler-phase throughput (the compile-time
//! side of Table 6).

use criterion::{criterion_group, criterion_main, Criterion};
use til::{Compiler, Options};

const MATMULT: &str = include_str!("../sml/matmult.sml");
const LIFE: &str = include_str!("../sml/life.sml");

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    g.bench_function("matmult-til", |b| {
        b.iter(|| {
            Compiler::new(Options::til())
                .compile(std::hint::black_box(MATMULT))
                .unwrap()
        })
    });
    g.bench_function("matmult-baseline", |b| {
        b.iter(|| {
            Compiler::new(Options::baseline())
                .compile(std::hint::black_box(MATMULT))
                .unwrap()
        })
    });
    g.bench_function("life-til", |b| {
        b.iter(|| {
            Compiler::new(Options::til())
                .compile(std::hint::black_box(LIFE))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    g.sample_size(20);
    g.bench_function("parse-prelude", |b| {
        b.iter(|| til_syntax::parse(std::hint::black_box(til::PRELUDE)).unwrap())
    });
    g.bench_function("elaborate-matmult", |b| {
        b.iter(|| til_elab::elaborate_source(std::hint::black_box(MATMULT)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_frontend);
criterion_main!(benches);
