//! Criterion benchmarks of generated-code execution (the VM dispatch
//! rate underlying Tables 2-4).

use criterion::{criterion_group, criterion_main, Criterion};
use til::{Compiler, Options};

const LOOP: &str = "fun sum (0, acc) = acc | sum (n, acc) = sum (n - 1, acc + n)
                    val _ = print (Int.toString (sum (20000, 0)))";

fn bench_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("run");
    g.sample_size(20);
    let til = Compiler::new(Options::til()).compile(LOOP).unwrap();
    let base = Compiler::new(Options::baseline()).compile(LOOP).unwrap();
    g.bench_function("counted-loop-til", |b| {
        b.iter(|| til.run(1_000_000_000).unwrap())
    });
    g.bench_function("counted-loop-baseline", |b| {
        b.iter(|| base.run(1_000_000_000).unwrap())
    });
    let alloc = Compiler::new(Options::til())
        .compile(
            "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
             fun spin (0, x) = x | spin (k, x) = spin (k - 1, build (200, nil))
             val _ = print (Int.toString (length (spin (100, nil))))",
        )
        .unwrap();
    g.bench_function("allocation-and-gc-til", |b| {
        b.iter(|| alloc.run(1_000_000_000).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_run);
criterion_main!(benches);
