//! Benchmarks of generated-code execution (the VM dispatch rate
//! underlying Tables 2-4). Hand-rolled harness, no external crates.

use til::{Compiler, Options};
use til_bench::time_case;

const LOOP: &str = "fun sum (0, acc) = acc | sum (n, acc) = sum (n - 1, acc + n)
                    val _ = print (Int.toString (sum (20000, 0)))";

fn main() {
    println!("== run ==");
    let til = Compiler::new(Options::til()).compile(LOOP).unwrap();
    let base = Compiler::new(Options::baseline()).compile(LOOP).unwrap();
    time_case("counted-loop-til", 20, || til.run(1_000_000_000).unwrap());
    time_case("counted-loop-baseline", 20, || {
        base.run(1_000_000_000).unwrap()
    });
    let alloc = Compiler::new(Options::til())
        .compile(
            "fun build (0, acc) = acc | build (n, acc) = build (n - 1, n :: acc)
             fun spin (0, x) = x | spin (k, x) = spin (k - 1, build (200, nil))
             val _ = print (Int.toString (length (spin (100, nil))))",
        )
        .unwrap();
    time_case("allocation-and-gc-til", 20, || {
        alloc.run(1_000_000_000).unwrap()
    });
}
