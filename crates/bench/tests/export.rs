//! The BENCH_pipeline.json export must be well-formed JSON with the
//! documented schema, straight from real measurements.

use til::Options;
use til_bench::{export, measure, suite};

#[test]
fn pipeline_json_is_well_formed() {
    // One real benchmark is enough to exercise every field.
    let b = suite().into_iter().find(|b| b.name == "Matmult").unwrap();
    let til = measure(&b, Options::til()).expect("til");
    let base = measure(&b, Options::baseline()).expect("baseline");
    let json = export::pipeline_json(&[(b.name, &til, &base)]);
    let text = json.pretty();
    til_common::json::validate(&text).expect("well-formed JSON");
    assert!(text.contains("\"schema\": \"til-bench-pipeline/v1\""));
    assert!(text.contains("\"instructions_retired\""));
    assert!(text.contains("\"max_live_words\""));
    assert!(text.contains("\"code_bytes\""));
    assert!(text.contains("\"phases\""));
    assert!(text.contains("\"name\": \"parse\""));
}

#[test]
fn pipeline_json_path_honors_env_override() {
    // Env-var override wins; this avoids touching the workspace root
    // from tests.
    std::env::set_var("TIL_BENCH_JSON", "/tmp/til-test-bench.json");
    let p = export::pipeline_json_path();
    std::env::remove_var("TIL_BENCH_JSON");
    assert_eq!(p, std::path::PathBuf::from("/tmp/til-test-bench.json"));
}
