//! Every benchmark must compile and produce identical output in TIL,
//! baseline, and no-loop-opts modes (a three-way differential test of
//! the whole compiler).

use til::Options;
use til_bench::{measure, suite};

#[test]
fn all_benchmarks_agree_across_modes() {
    for b in suite() {
        let til = measure(&b, Options::til()).unwrap_or_else(|e| panic!("{e}"));
        let base = measure(&b, Options::baseline()).unwrap_or_else(|e| panic!("{e}"));
        let nolo = measure(&b, Options::til_no_loop_opts()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(til.output, base.output, "{}: til vs baseline output", b.name);
        assert_eq!(til.output, nolo.output, "{}: til vs no-loop-opts output", b.name);
        assert!(!til.output.trim().is_empty(), "{}: produced output", b.name);
        println!(
            "{:>12}: til {:>12} base {:>12} ratio {:.2} alloc-ratio {:.3}  out={}",
            b.name,
            til.time,
            base.time,
            til.time as f64 / base.time as f64,
            til.alloc_bytes as f64 / base.alloc_bytes.max(1) as f64,
            til.output.trim()
        );
    }
}
