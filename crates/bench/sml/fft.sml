(* FFT: fast Fourier transform multiplying polynomials (Table 1),
   using specialized (unboxed) float arrays. *)
val ln2 = 10
val n = 1024  (* 2^ln2 *)

val pi = 3.14159265358979

val re = Array.array (n, 0.0)
val im = Array.array (n, 0.0)

fun init i =
  if i >= n then ()
  else (Array.update (re, i, real ((i * 13) mod 31) / 31.0);
        Array.update (im, i, 0.0);
        init (i + 1))
val _ = init 0

(* In-place iterative radix-2 FFT. *)
fun bitrev () =
  let fun go (i, j) =
        if i >= n then ()
        else
          let val _ =
                if i < j then
                  let val tr = Array.sub (re, i)
                      val ti = Array.sub (im, i)
                  in Array.update (re, i, Array.sub (re, j));
                     Array.update (im, i, Array.sub (im, j));
                     Array.update (re, j, tr);
                     Array.update (im, j, ti)
                  end
                else ()
              fun adjust (j, m) = if m >= 1 andalso j >= m then adjust (j - m, m div 2) else j + m
          in go (i + 1, adjust (j, n div 2)) end
  in go (0, 0) end

fun fft inverse =
  let val sign = if inverse then 1.0 else ~1.0
      fun stage len =
        if len > n then ()
        else
          let val half = len div 2
              val ang = sign * 2.0 * pi / real len
              fun block start =
                if start >= n then ()
                else
                  let fun butterfly k =
                        if k >= half then ()
                        else
                          let val w = ang * real k
                              val wr = Math.cos w
                              val wi = Math.sin w
                              val i = start + k
                              val j = i + half
                              val xr = Array.sub (re, j) * wr - Array.sub (im, j) * wi
                              val xi = Array.sub (re, j) * wi + Array.sub (im, j) * wr
                          in Array.update (re, j, Array.sub (re, i) - xr);
                             Array.update (im, j, Array.sub (im, i) - xi);
                             Array.update (re, i, Array.sub (re, i) + xr);
                             Array.update (im, i, Array.sub (im, i) + xi);
                             butterfly (k + 1)
                          end
                  in butterfly 0; block (start + len) end
          in block 0; stage (len * 2) end
  in bitrev (); stage 2 end

val _ = fft false
val _ = fft true

(* After forward+inverse, values are scaled by n. *)
fun energy (i, acc) =
  if i >= n then acc
  else energy (i + 1, acc + Array.sub (re, i) / real n)
val _ = print (Real.toString (energy (0, 0.0)))
val _ = print "\n"
