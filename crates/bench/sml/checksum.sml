(* Checksum: the Foxnet checksum fragment (Table 1) — a 16-bit
   ones-complement checksum over a 4096-byte buffer, iterated. *)
val iterations = 120
val size = 4096
val words = size div 2

val buf = Array.array (words, 0)
fun init i =
  if i >= words then ()
  else (Array.update (buf, i, (i * 7 + 13) mod 65536); init (i + 1))
val _ = init 0

fun fold (i, acc) =
  if i >= words then acc
  else fold (i + 1, acc + Array.sub (buf, i))

fun carry s = if s < 65536 then s else carry ((s mod 65536) + (s div 65536))

fun checksum () = 65535 - carry (fold (0, 0))

fun loop (0, last) = last
  | loop (n, last) = loop (n - 1, checksum ())

val _ = print (Int.toString (loop (iterations, 0)))
val _ = print "\n"
