(* Lexgen: a lexical-analyzer generator (Table 1) — regular expressions
   to an NFA, subset-constructed to a DFA, then driven over input. *)

datatype regex =
    Chr of int
  | Eps
  | Seq of regex * regex
  | Alt of regex * regex
  | Star of regex

(* NFA: states numbered; transitions (from, char option, to). *)
fun build (r, next, start) =
  (* returns (accept, next', transitions) *)
  case r of
    Chr c => (next, next + 1, [(start, SOME c, next)])
  | Eps => (start, next, nil)
  | Seq (a, b) =>
      let val (amid, n1, t1) = build (a, next, start)
          val (bacc, n2, t2) = build (b, n1, amid)
      in (bacc, n2, t1 @ t2) end
  | Alt (a, b) =>
      let val (aacc, n1, t1) = build (a, next, start)
          val (bacc, n2, t2) = build (b, n1, start)
          val join = n2
      in (join, n2 + 1, (aacc, NONE, join) :: (bacc, NONE, join) :: (t1 @ t2)) end
  | Star a =>
      let val (aacc, n1, t1) = build (a, next, start)
      in (start, n1, (aacc, NONE, start) :: t1) end

fun member (x, nil) = false
  | member (x : int, y :: ys) = x = y orelse member (x, ys)

fun insert (x, ys) = if member (x, ys) then ys else x :: ys

fun closure (states, trans) =
  let fun go (nil, acc) = acc
        | go (s :: rest, acc) =
            let fun epsTargets (nil, out) = out
                  | epsTargets ((f, lab, t) :: more, out) =
                      epsTargets (more,
                        (case lab of
                           NONE => if f = s andalso not (member (t, acc)) then insert (t, out) else out
                         | SOME _ => out))
                val new = epsTargets (trans, nil)
            in go (rest @ new, insert (s, acc)) end
  in go (states, nil) end

fun move (states, c, trans) =
  let fun go (nil, out) = out
        | go ((f, lab, t) :: more, out) =
            go (more,
              (case lab of
                 SOME d => if d = c andalso member (f, states) then insert (t, out) else out
               | NONE => out))
  in go (trans, nil) end

fun sortInts l =
  let fun ins (x, nil) = [x]
        | ins (x : int, y :: ys) = if x <= y then x :: y :: ys else y :: ins (x, ys)
      fun go (nil, acc) = acc
        | go (x :: xs, acc) = go (xs, ins (x, acc))
  in go (l, nil) end

fun sameSet (a, b) = sortInts a = sortInts b

(* Subset construction over alphabet 0..3. *)
fun dfa (startset, trans) =
  let fun findState (s, nil, _) = NONE
        | findState (s, d :: ds, i) = if sameSet (s, d) then SOME i else findState (s, ds, i + 1)
      fun go (nil, dstates, edges) = (dstates, edges)
        | go (s :: work, dstates, edges) =
            let fun onchar (c, work', edges') =
                  if c > 3 then (work', edges')
                  else
                    let val t = closure (move (s, c, trans), trans)
                    in if null t then onchar (c + 1, work', edges')
                       else
                         (case findState (t, dstates, 0) of
                            SOME _ => onchar (c + 1, work', (s, c, t) :: edges')
                          | NONE => onchar (c + 1, work' @ [t], (s, c, t) :: edges'))
                    end
                val (work2, edges2) = onchar (0, nil, nil)
                val fresh = List.filter (fn t => not (List.exists (fn d => sameSet (d, t)) dstates)) work2
            in go (work @ fresh, dstates @ fresh, edges @ edges2) end
  in go ([startset], [startset], nil) end

(* Token spec over a 4-letter alphabet:
     ident = 0 (0|1)*          number = 2 2*        op = 3 *)
val ident = Seq (Chr 0, Star (Alt (Chr 0, Chr 1)))
val number = Seq (Chr 2, Star (Chr 2))
val oper = Chr 3
val spec = Alt (ident, Alt (number, oper))

val (acc, nstates, trans) = build (spec, 1, 0)
val start = closure ([0], trans)
val (dstates, dedges) = dfa (start, trans)

(* Drive the DFA over a synthetic input. *)
fun stepState (s, c) =
  let fun go nil = nil
        | go ((f, d, t) :: rest) = if d = c andalso sameSet (f, s) then t else go rest
  in go dedges end

fun input i = (i * 7 + 3) mod 4

fun lex (i, limit, s, count) =
  if i >= limit then count
  else
    let val s' = stepState (s, input i)
    in if null s'
       then lex (i + 1, limit, start, count + 1)   (* token boundary *)
       else lex (i + 1, limit, s', count)
    end

val tokens = lex (0, 6000, start, 0)
val _ = print (Int.toString (length dstates))
val _ = print " "
val _ = print (Int.toString tokens)
val _ = print "\n"
