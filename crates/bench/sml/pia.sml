(* PIA: the Perspective Inversion Algorithm (Table 1) — float-record
   geometry deciding object locations from a perspective image. *)

type vec = {x : real, y : real, z : real}

fun vadd (a : vec, b : vec) : vec =
  {x = #x a + #x b, y = #y a + #y b, z = #z a + #z b}
fun vsub (a : vec, b : vec) : vec =
  {x = #x a - #x b, y = #y a - #y b, z = #z a - #z b}
fun vscale (s, a : vec) : vec = {x = s * #x a, y = s * #y a, z = s * #z a}
fun dot (a : vec, b : vec) = #x a * #x b + #y a * #y b + #z a * #z b
fun cross (a : vec, b : vec) : vec =
  {x = #y a * #z b - #z a * #y b,
   y = #z a * #x b - #x a * #z b,
   z = #x a * #y b - #y a * #x b}
fun norm (a : vec) = Math.sqrt (dot (a, a))

(* Camera at origin looking down +z; focal length f. *)
val focal = 2.5

(* Project a world point to the image plane. *)
fun project (p : vec) = {u = focal * #x p / #z p, v = focal * #y p / #z p}

(* Invert: given image point and a known depth, reconstruct. *)
fun invert (u, v, z) : vec = {x = u * z / focal, y = v * z / focal, z = z}

(* A synthetic object: a ring of points at varying depths. *)
fun point k =
  let val t = real k * 0.17
      val z = 4.0 + 1.5 * Math.sin (t * 0.7)
  in {x = 2.0 * Math.cos t, y = 1.5 * Math.sin t, z = z} end

(* Round-trip error accumulated over many points, plus plane fitting. *)
fun roundtrip (k, limit, acc) =
  if k >= limit then acc
  else
    let val p = point k
        val img = project p
        val q = invert (#u img, #v img, #z p)
        val d = vsub (p, q)
    in roundtrip (k + 1, limit, acc + dot (d, d)) end

(* Fit a normal via accumulated cross products of consecutive points. *)
fun normals (k, limit, acc : vec) =
  if k >= limit then acc
  else
    let val a = point k
        val b = point (k + 1)
    in normals (k + 1, limit, vadd (acc, cross (a, b))) end

fun centroid (k, limit, acc : vec) =
  if k >= limit then vscale (1.0 / real limit, acc)
  else centroid (k + 1, limit, vadd (acc, point k))

val npts = 4000
val err = roundtrip (0, npts, 0.0)
val nrm = normals (0, npts, {x = 0.0, y = 0.0, z = 0.0})
val c = centroid (0, npts, {x = 0.0, y = 0.0, z = 0.0})
val signature = err + norm nrm * 0.001 + dot (c, c)
val _ = print (Real.toString (real (trunc (signature * 1000.0)) / 1000.0))
val _ = print "\n"
