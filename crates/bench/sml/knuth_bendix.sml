(* Knuth-Bendix: completion of the free-group axioms (Table 1) —
   heavy symbolic list/datatype processing. *)

datatype term = V of int | F of string * term list

fun tsize (V _) = 1
  | tsize (F (_, args)) = 1 + sizes args
and sizes nil = 0
  | sizes (t :: ts) = tsize t + sizes ts

fun occurs (v, V w) = v = w
  | occurs (v, F (_, args)) = List.exists (fn t => occurs (v, t)) args

(* Substitutions as association lists. *)
fun lookup (v, nil) = NONE
  | lookup (v, (w, t) :: rest) = if v = w then SOME t else lookup (v, rest)

fun apply (s, V v) =
      (case lookup (v, s) of NONE => V v | SOME t => t)
  | apply (s, F (f, args)) = F (f, map (fn t => apply (s, t)) args)

exception NoMatch

(* Matching: find s with apply(s, pat) = t. *)
fun match1 (V v, t, s) =
      (case lookup (v, s) of
         NONE => (v, t) :: s
       | SOME u => if u = t then s else raise NoMatch)
  | match1 (F (f, fargs), F (g, gargs), s) =
      if f = g then matchList (fargs, gargs, s) else raise NoMatch
  | match1 (F _, V _, s) = raise NoMatch
and matchList (nil, nil, s) = s
  | matchList (p :: ps, t :: ts, s) = matchList (ps, ts, match1 (p, t, s))
  | matchList (_, _, _) = raise NoMatch

(* Unification. *)
fun unify (V v, t, s) = unifyVar (v, t, s)
  | unify (t, V v, s) = unifyVar (v, t, s)
  | unify (F (f, fargs), F (g, gargs), s) =
      if f = g then unifyList (fargs, gargs, s) else raise NoMatch
and unifyVar (v, t, s) =
  let val t' = apply (s, t)
      val vt = apply (s, V v)
  in case vt of
       V w =>
         if t' = V w then s
         else if occurs (w, t') then raise NoMatch
         else (w, t') :: map (fn (x, u) => (x, apply ([(w, t')], u))) s
     | other => unify (other, t', s)
  end
and unifyList (nil, nil, s) = s
  | unifyList (a :: asx, b :: bs, s) = unifyList (asx, bs, unify (a, b, s))
  | unifyList (_, _, _) = raise NoMatch

(* Rewriting with a rule set. *)
fun rewriteTop (t, nil) = NONE
  | rewriteTop (t, (l, r) :: rules) =
      (SOME (apply (match1 (l, t, nil), r)) handle NoMatch => rewriteTop (t, rules))

fun normalize (t, rules) =
  let fun inner (V v) = V v
        | inner (F (f, args)) =
            let val t' = F (f, map inner args)
            in case rewriteTop (t', rules) of
                 NONE => t'
               | SOME u => inner u
            end
  in inner t end

(* Variable renaming to keep rule variables apart. *)
fun rename (off, V v) = V (v + off)
  | rename (off, F (f, args)) = F (f, map (fn t => rename (off, t)) args)

fun maxVar (V v) = v
  | maxVar (F (_, nil)) = 0
  | maxVar (F (_, t :: ts)) = Int.max (maxVar t, maxVar (F ("", ts)))

(* Critical pairs of (l1,r1) into (l2,r2): superpose l1 on non-variable
   subterms of l2. *)
fun subterms (V _) = nil
  | subterms (t as F (_, args)) = t :: List.concat (map subterms args)

fun replace (F (f, args), old, new) =
      if F (f, args) = old then new
      else F (f, map (fn a => replace (a, old, new)) args)
  | replace (t, old, new) = if t = old then new else t

fun criticalPairs ((l1, r1), (l2, r2)) =
  let val off = maxVar l2 + maxVar r2 + 10
      val l1' = rename (off, l1)
      val r1' = rename (off, r1)
      fun pairsAt sub =
        (let val s = unifyList ([l1'], [sub], nil)
         in [(apply (s, replace (l2, sub, r1')), apply (s, r2))] end)
        handle NoMatch => nil
  in List.concat (map pairsAt (subterms l2)) end

(* Term ordering: by size, then lexicographic structure. *)
fun cmp (V a, V b) = Int.compare (a, b)
  | cmp (V _, F _) = LESS
  | cmp (F _, V _) = GREATER
  | cmp (F (f, fargs), F (g, gargs)) =
      (case String.compare (f, g) of
         EQUAL => cmpList (fargs, gargs)
       | other => other)
and cmpList (nil, nil) = EQUAL
  | cmpList (nil, _) = LESS
  | cmpList (_, nil) = GREATER
  | cmpList (a :: asx, b :: bs) =
      (case cmp (a, b) of EQUAL => cmpList (asx, bs) | other => other)

fun greater (a, b) =
  tsize a > tsize b orelse (tsize a = tsize b andalso cmp (a, b) = GREATER)

(* Completion loop (bounded). *)
fun orient (a, b) =
  if greater (a, b) then SOME (a, b)
  else if greater (b, a) then SOME (b, a)
  else NONE

fun addRule (rule, rules) = rule :: rules

fun step (rules, pending, fuel) =
  if fuel = 0 then rules
  else
    (case pending of
       nil => rules
     | (a, b) :: rest =>
         let val a' = normalize (a, rules)
             val b' = normalize (b, rules)
         in if a' = b' then step (rules, rest, fuel - 1)
            else
              (case orient (a', b') of
                 NONE => step (rules, rest, fuel - 1)
               | SOME rule =>
                   let val rules' = addRule (rule, rules)
                       val new =
                         List.concat
                           (map (fn r2 => criticalPairs (rule, r2) @ criticalPairs (r2, rule))
                                rules')
                   in step (rules', rest @ new, fuel - 1) end)
         end)

(* Group axioms: e*x = x, i(x)*x = e, (x*y)*z = x*(y*z). *)
val e = F ("e", nil)
fun i t = F ("i", [t])
fun m (a, b) = F ("*", [a, b])
val x = V 1 val y = V 2 val z = V 3

val axioms =
  [(m (e, x), x),
   (m (i x, x), e),
   (m (m (x, y), z), m (x, m (y, z)))]

val rules = step (nil, axioms, 120)

fun ruleWeight (nil, acc) = acc
  | ruleWeight ((l, r) :: rest, acc) = ruleWeight (rest, acc + tsize l + tsize r)

val _ = print (Int.toString (length rules))
val _ = print " "
val _ = print (Int.toString (ruleWeight (rules, 0)))
val _ = print "\n"
