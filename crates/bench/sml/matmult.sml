(* Matmult: integer matrix multiply on 2-d arrays (Table 1; Section 4's
   dot product is this benchmark's inner loop). *)
val n = 40

val A = Array2.array (n, n, 0)
val B = Array2.array (n, n, 0)
val C = Array2.array (n, n, 0)

fun fill (m, f) =
  let fun go (i, j) =
        if i >= n then ()
        else if j >= n then go (i + 1, 0)
        else (update2 (m, i, j, f (i, j)); go (i, j + 1))
  in go (0, 0) end

val _ = fill (A, fn (i, j) => (i + 2 * j) mod 17)
val _ = fill (B, fn (i, j) => (3 * i + j) mod 23)

fun dot (i, j) =
  let fun go (cnt, sum) =
        if cnt < n then go (cnt + 1, sum + sub2 (A, i, cnt) * sub2 (B, cnt, j))
        else sum
  in go (0, 0) end

fun mult (i, j) =
  if i >= n then ()
  else if j >= n then mult (i + 1, 0)
  else (update2 (C, i, j, dot (i, j)); mult (i, j + 1))
val _ = mult (0, 0)

fun trace (i, acc) = if i >= n then acc else trace (i + 1, acc + sub2 (C, i, i))
val _ = print (Int.toString (trace (0, 0)))
val _ = print "\n"
