(* Life: the game of life implemented with lists, after Reade
   (Table 1). *)
fun member ((x, y), nil) = false
  | member ((x, y), (a, b) :: rest) =
      (x = a andalso y = b) orelse member ((x, y), rest)

fun neighbours (x, y) =
  [(x-1, y-1), (x, y-1), (x+1, y-1),
   (x-1, y),             (x+1, y),
   (x-1, y+1), (x, y+1), (x+1, y+1)]

fun count (cell, board) =
  length (List.filter (fn c => member (c, board)) (neighbours cell))

fun survivors board =
  List.filter (fn c => let val k = count (c, board) in k = 2 orelse k = 3 end) board

fun dedup nil = nil
  | dedup (c :: rest) = if member (c, rest) then dedup rest else c :: dedup rest

fun births board =
  let val candidates = dedup (List.concat (map neighbours board))
      fun isBirth c = not (member (c, board)) andalso count (c, board) = 3
  in List.filter isBirth candidates end

fun step board = survivors board @ births board

fun generations (0, board) = board
  | generations (n, board) = generations (n - 1, step board)

(* An R-pentomino seed. *)
val seed = [(10, 10), (11, 10), (9, 11), (10, 11), (10, 12)]
val final = generations (18, seed)
fun sum (nil, acc) = acc
  | sum ((x, y) :: rest, acc) = sum (rest, acc + x + 2 * y)
val _ = print (Int.toString (length final))
val _ = print " "
val _ = print (Int.toString (sum (final, 0)))
val _ = print "\n"
