(* Simple: a spherical fluid-dynamics kernel (Table 1) — 2-d float
   arrays with neighbour stencils, several state variables, iterated
   sweeps. *)
val gridsize = 24
val iterations = 4

val rho = Array2.array (gridsize, gridsize, 1.0)
val u = Array2.array (gridsize, gridsize, 0.0)
val v = Array2.array (gridsize, gridsize, 0.0)
val p = Array2.array (gridsize, gridsize, 0.0)
val work = Array2.array (gridsize, gridsize, 0.0)

fun initGrid (i, j) =
  if i >= gridsize then ()
  else if j >= gridsize then initGrid (i + 1, 0)
  else
    (update2 (rho, i, j, 1.0 + 0.1 * Math.sin (real (i * j) * 0.05));
     update2 (u, i, j, 0.01 * real (i - j));
     update2 (v, i, j, 0.005 * real (i + j));
     update2 (p, i, j, 1.0);
     initGrid (i, j + 1))
val _ = initGrid (0, 0)

val dt = 0.01
val dx = 1.0

(* One pressure sweep: p <- average of neighbours + divergence term. *)
fun pressureSweep (i, j) =
  if i >= gridsize - 1 then ()
  else if j >= gridsize - 1 then pressureSweep (i + 1, 1)
  else
    let val pn = sub2 (p, i - 1, j) + sub2 (p, i + 1, j)
               + sub2 (p, i, j - 1) + sub2 (p, i, j + 1)
        val div = (sub2 (u, i + 1, j) - sub2 (u, i - 1, j)
                 + sub2 (v, i, j + 1) - sub2 (v, i, j - 1)) / (2.0 * dx)
    in update2 (work, i, j, 0.25 * pn - div * dt * sub2 (rho, i, j));
       pressureSweep (i, j + 1)
    end

fun copyInner (src, dst) =
  let fun go (i, j) =
        if i >= gridsize - 1 then ()
        else if j >= gridsize - 1 then go (i + 1, 1)
        else (update2 (dst, i, j, sub2 (src, i, j)); go (i, j + 1))
  in go (1, 1) end

(* Velocity update from the pressure gradient. *)
fun velocitySweep (i, j) =
  if i >= gridsize - 1 then ()
  else if j >= gridsize - 1 then velocitySweep (i + 1, 1)
  else
    let val gx = (sub2 (p, i + 1, j) - sub2 (p, i - 1, j)) / (2.0 * dx)
        val gy = (sub2 (p, i, j + 1) - sub2 (p, i, j - 1)) / (2.0 * dx)
        val r = sub2 (rho, i, j)
    in update2 (u, i, j, sub2 (u, i, j) - dt * gx / r);
       update2 (v, i, j, sub2 (v, i, j) - dt * gy / r);
       velocitySweep (i, j + 1)
    end

(* Density advection (upwind-ish). *)
fun densitySweep (i, j) =
  if i >= gridsize - 1 then ()
  else if j >= gridsize - 1 then densitySweep (i + 1, 1)
  else
    let val adv = sub2 (u, i, j) * (sub2 (rho, i + 1, j) - sub2 (rho, i - 1, j))
                + sub2 (v, i, j) * (sub2 (rho, i, j + 1) - sub2 (rho, i, j - 1))
    in update2 (work, i, j, sub2 (rho, i, j) - dt * adv / (2.0 * dx));
       densitySweep (i, j + 1)
    end

fun iter 0 = ()
  | iter k =
      (pressureSweep (1, 1); copyInner (work, p);
       velocitySweep (1, 1);
       densitySweep (1, 1); copyInner (work, rho);
       iter (k - 1))
val _ = iter iterations

fun total (i, j, acc) =
  if i >= gridsize then acc
  else if j >= gridsize then total (i + 1, 0, acc)
  else total (i, j + 1, acc + sub2 (rho, i, j) + sub2 (p, i, j))
val sig1 = total (0, 0, 0.0)
val _ = print (Real.toString (real (trunc (sig1 * 100.0)) / 100.0))
val _ = print "\n"
