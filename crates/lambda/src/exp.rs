//! Lambda expressions.

use crate::env::{DataEnv, DataId, ExnEnv, ExnId};
use crate::prim::Prim;
use crate::ty::{LTy, TyVar};
use til_common::{Symbol, Var};

/// A complete Lambda program: the datatype/exception environments plus
/// the whole-program expression (top-level declarations are nested
/// `Let`/`Fix` binders, as the paper compiles whole closed modules).
#[derive(Clone, Debug)]
pub struct LProgram {
    /// Datatypes in scope.
    pub data_env: DataEnv,
    /// Exception constructors in scope.
    pub exn_env: ExnEnv,
    /// The program body; its value is discarded, output happens via
    /// `print`.
    pub body: LExp,
    /// The body's type.
    pub body_ty: LTy,
}

/// One function of a `fix` nest.
#[derive(Clone, Debug)]
pub struct LFun {
    /// The function's name (bound in the whole nest and the body).
    pub var: Var,
    /// Value parameter.
    pub param: Var,
    /// Parameter type.
    pub param_ty: LTy,
    /// Result type.
    pub ret_ty: LTy,
    /// Function body.
    pub body: LExp,
}

/// A Lambda expression.
#[derive(Clone, Debug)]
pub enum LExp {
    /// Variable occurrence instantiated at `tyargs` (empty when the
    /// binding is monomorphic; recursive occurrences inside a `fix` are
    /// written with empty `tyargs` and typecheck at the nest's own
    /// type variables).
    Var {
        /// The variable.
        var: Var,
        /// Instantiating types, one per tyvar of the binding.
        tyargs: Vec<LTy>,
    },
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Character literal.
    Char(char),
    /// String literal.
    Str(String),
    /// Anonymous function.
    Fn {
        /// Parameter.
        param: Var,
        /// Parameter type.
        param_ty: LTy,
        /// Body.
        body: Box<LExp>,
    },
    /// Application.
    App(Box<LExp>, Box<LExp>),
    /// Mutually recursive function nest, generalized over `tyvars`.
    Fix {
        /// Type variables shared by the whole nest.
        tyvars: Vec<TyVar>,
        /// The functions.
        funs: Vec<LFun>,
        /// Scope of the definitions.
        body: Box<LExp>,
    },
    /// Polymorphic let: `var` is bound at `∀tyvars. typeof(rhs)`.
    /// `tyvars` is empty for monomorphic bindings; when non-empty, the
    /// right-hand side must be a syntactic value (value restriction).
    Let {
        /// Bound variable.
        var: Var,
        /// Generalized type variables.
        tyvars: Vec<TyVar>,
        /// Right-hand side.
        rhs: Box<LExp>,
        /// Scope.
        body: Box<LExp>,
    },
    /// Record (or tuple) construction; fields in canonical label order.
    Record(Vec<(Symbol, LExp)>),
    /// Field selection.
    Select {
        /// Field label.
        label: Symbol,
        /// Record expression.
        arg: Box<LExp>,
    },
    /// Datatype constructor application.
    Con {
        /// The datatype.
        data: DataId,
        /// Instantiation of the datatype parameters.
        tyargs: Vec<LTy>,
        /// Constructor index (its tag).
        tag: usize,
        /// Carried value for value-carrying constructors.
        arg: Option<Box<LExp>>,
    },
    /// Exception constructor application (creates an exception packet).
    ExnCon {
        /// The exception.
        exn: ExnId,
        /// Carried value, if the exception carries one.
        arg: Option<Box<LExp>>,
    },
    /// Multi-way branch (a compiled pattern match).
    Switch(Box<LSwitch>),
    /// `raise`.
    Raise {
        /// The packet.
        exn: Box<LExp>,
        /// The type of the whole raise expression.
        ty: LTy,
    },
    /// `handle`: evaluates `body`; on a raise, binds the packet to
    /// `handler_var` and evaluates `handler`.
    Handle {
        /// Protected body.
        body: Box<LExp>,
        /// Bound to the exception packet (type `exn`).
        handler_var: Var,
        /// Handler expression (same type as `body`).
        handler: Box<LExp>,
    },
    /// Primitive application, fully saturated.
    Prim {
        /// The operation.
        prim: Prim,
        /// Type instantiations for polymorphic primitives.
        tyargs: Vec<LTy>,
        /// Arguments, one per signature slot.
        args: Vec<LExp>,
    },
}

/// A multi-way branch. Every switch carries the result type so
/// typechecking needs no inference.
#[derive(Clone, Debug)]
pub enum LSwitch {
    /// Branch on a datatype constructor tag, binding the carried value.
    Data {
        /// Scrutinee.
        scrut: LExp,
        /// The datatype switched on.
        data: DataId,
        /// Instantiation of the datatype parameters.
        tyargs: Vec<LTy>,
        /// `(tag, binder-for-carried-value, arm)` in test order.
        arms: Vec<(usize, Option<Var>, LExp)>,
        /// Fallback when no arm matches (must exist unless arms are
        /// exhaustive).
        default: Option<LExp>,
        /// Result type of the whole switch.
        result_ty: LTy,
    },
    /// Branch on an integer (also used for char and word scrutinees).
    Int {
        /// Scrutinee.
        scrut: LExp,
        /// `(value, arm)` pairs.
        arms: Vec<(i64, LExp)>,
        /// Fallback.
        default: LExp,
        /// Result type.
        result_ty: LTy,
    },
    /// Branch on a string value.
    Str {
        /// Scrutinee.
        scrut: LExp,
        /// `(value, arm)` pairs.
        arms: Vec<(String, LExp)>,
        /// Fallback.
        default: LExp,
        /// Result type.
        result_ty: LTy,
    },
    /// Branch on an exception constructor, binding the carried value.
    Exn {
        /// Scrutinee (type `exn`).
        scrut: LExp,
        /// `(exception, binder, arm)` entries.
        arms: Vec<(ExnId, Option<Var>, LExp)>,
        /// Fallback (typically a re-raise).
        default: LExp,
        /// Result type.
        result_ty: LTy,
    },
}

impl LExp {
    /// The unit value.
    pub fn unit() -> LExp {
        LExp::Record(Vec::new())
    }

    /// The boolean constant `b` as a `bool` datatype constructor.
    pub fn bool(b: bool) -> LExp {
        LExp::Con {
            data: DataId::BOOL,
            tyargs: vec![],
            tag: b as usize,
            arg: None,
        }
    }

    /// A monomorphic variable occurrence.
    pub fn var(v: Var) -> LExp {
        LExp::Var {
            var: v,
            tyargs: vec![],
        }
    }

    /// True for syntactic values (the value restriction's notion):
    /// constants, variables, functions, and records/constructors of
    /// values.
    pub fn is_value(&self) -> bool {
        match self {
            LExp::Var { .. }
            | LExp::Int(_)
            | LExp::Real(_)
            | LExp::Char(_)
            | LExp::Str(_)
            | LExp::Fn { .. } => true,
            LExp::Record(fields) => fields.iter().all(|(_, e)| e.is_value()),
            LExp::Con { arg, .. } => arg.as_ref().is_none_or(|a| a.is_value()),
            LExp::Select { arg, .. } => arg.is_value(),
            _ => false,
        }
    }

    /// Applies `f` to every type embedded in the expression tree,
    /// bottom-up and in place. Used by the front end's zonking pass and
    /// by substitution-based cloning.
    pub fn map_types(&mut self, f: &mut impl FnMut(&LTy) -> LTy) {
        match self {
            LExp::Var { tyargs, .. } => {
                for t in tyargs {
                    *t = f(t);
                }
            }
            LExp::Int(_) | LExp::Real(_) | LExp::Char(_) | LExp::Str(_) => {}
            LExp::Fn {
                param_ty, body, ..
            } => {
                *param_ty = f(param_ty);
                body.map_types(f);
            }
            LExp::App(a, b) => {
                a.map_types(f);
                b.map_types(f);
            }
            LExp::Fix { funs, body, .. } => {
                for fun in funs {
                    fun.param_ty = f(&fun.param_ty);
                    fun.ret_ty = f(&fun.ret_ty);
                    fun.body.map_types(f);
                }
                body.map_types(f);
            }
            LExp::Let { rhs, body, .. } => {
                rhs.map_types(f);
                body.map_types(f);
            }
            LExp::Record(fields) => {
                for (_, e) in fields {
                    e.map_types(f);
                }
            }
            LExp::Select { arg, .. } => arg.map_types(f),
            LExp::Con { tyargs, arg, .. } => {
                for t in tyargs.iter_mut() {
                    *t = f(t);
                }
                if let Some(a) = arg {
                    a.map_types(f);
                }
            }
            LExp::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    a.map_types(f);
                }
            }
            LExp::Switch(sw) => match &mut **sw {
                LSwitch::Data {
                    scrut,
                    tyargs,
                    arms,
                    default,
                    result_ty,
                    ..
                } => {
                    scrut.map_types(f);
                    for t in tyargs.iter_mut() {
                        *t = f(t);
                    }
                    for (_, _, e) in arms {
                        e.map_types(f);
                    }
                    if let Some(d) = default {
                        d.map_types(f);
                    }
                    *result_ty = f(result_ty);
                }
                LSwitch::Int {
                    scrut,
                    arms,
                    default,
                    result_ty,
                } => {
                    scrut.map_types(f);
                    for (_, e) in arms {
                        e.map_types(f);
                    }
                    default.map_types(f);
                    *result_ty = f(result_ty);
                }
                LSwitch::Str {
                    scrut,
                    arms,
                    default,
                    result_ty,
                } => {
                    scrut.map_types(f);
                    for (_, e) in arms {
                        e.map_types(f);
                    }
                    default.map_types(f);
                    *result_ty = f(result_ty);
                }
                LSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    result_ty,
                } => {
                    scrut.map_types(f);
                    for (_, _, e) in arms {
                        e.map_types(f);
                    }
                    default.map_types(f);
                    *result_ty = f(result_ty);
                }
            },
            LExp::Raise { exn, ty } => {
                exn.map_types(f);
                *ty = f(ty);
            }
            LExp::Handle {
                body, handler, ..
            } => {
                body.map_types(f);
                handler.map_types(f);
            }
            LExp::Prim { tyargs, args, .. } => {
                for t in tyargs.iter_mut() {
                    *t = f(t);
                }
                for a in args {
                    a.map_types(f);
                }
            }
        }
    }

    /// Counts expression nodes (used by size-bounded inlining and
    /// compile-time statistics).
    pub fn size(&self) -> usize {
        let mut n = 1;
        self.for_each_child(|c| n += c.size());
        n
    }

    /// Calls `f` on each direct child expression.
    pub fn for_each_child(&self, mut f: impl FnMut(&LExp)) {
        match self {
            LExp::Var { .. }
            | LExp::Int(_)
            | LExp::Real(_)
            | LExp::Char(_)
            | LExp::Str(_) => {}
            LExp::Fn { body, .. } => f(body),
            LExp::App(a, b) => {
                f(a);
                f(b);
            }
            LExp::Fix { funs, body, .. } => {
                for fun in funs {
                    f(&fun.body);
                }
                f(body);
            }
            LExp::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            LExp::Record(fields) => {
                for (_, e) in fields {
                    f(e);
                }
            }
            LExp::Select { arg, .. } => f(arg),
            LExp::Con { arg, .. } | LExp::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            LExp::Switch(sw) => match &**sw {
                LSwitch::Data {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, e) in arms {
                        f(e);
                    }
                    if let Some(d) = default {
                        f(d);
                    }
                }
                LSwitch::Int {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, e) in arms {
                        f(e);
                    }
                    f(default);
                }
                LSwitch::Str {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, e) in arms {
                        f(e);
                    }
                    f(default);
                }
                LSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, e) in arms {
                        f(e);
                    }
                    f(default);
                }
            },
            LExp::Raise { exn, .. } => f(exn),
            LExp::Handle {
                body, handler, ..
            } => {
                f(body);
                f(handler);
            }
            LExp::Prim { args, .. } => {
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// Calls `f` on each direct child expression, mutably.
    pub fn for_each_child_mut(&mut self, mut f: impl FnMut(&mut LExp)) {
        match self {
            LExp::Var { .. }
            | LExp::Int(_)
            | LExp::Real(_)
            | LExp::Char(_)
            | LExp::Str(_) => {}
            LExp::Fn { body, .. } => f(body),
            LExp::App(a, b) => {
                f(a);
                f(b);
            }
            LExp::Fix { funs, body, .. } => {
                for fun in funs {
                    f(&mut fun.body);
                }
                f(body);
            }
            LExp::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            LExp::Record(fields) => {
                for (_, e) in fields {
                    f(e);
                }
            }
            LExp::Select { arg, .. } => f(arg),
            LExp::Con { arg, .. } | LExp::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            LExp::Switch(sw) => match &mut **sw {
                LSwitch::Data {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, e) in arms {
                        f(e);
                    }
                    if let Some(d) = default {
                        f(d);
                    }
                }
                LSwitch::Int {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, e) in arms {
                        f(e);
                    }
                    f(default);
                }
                LSwitch::Str {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, e) in arms {
                        f(e);
                    }
                    f(default);
                }
                LSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    f(scrut);
                    for (_, _, e) in arms {
                        f(e);
                    }
                    f(default);
                }
            },
            LExp::Raise { exn, .. } => f(exn),
            LExp::Handle {
                body, handler, ..
            } => {
                f(body);
                f(handler);
            }
            LExp::Prim { args, .. } => {
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// Replaces every occurrence of `Var(hole)` with `replacement`,
    /// returning the number of occurrences. The prelude cache splices
    /// the user unit into the cached prelude skeleton at a unique hole
    /// variable, so the expected count is exactly 1.
    pub fn splice_var(&mut self, hole: Var, replacement: &LExp) -> usize {
        if let LExp::Var { var, .. } = self {
            if *var == hole {
                *self = replacement.clone();
                return 1;
            }
        }
        let mut n = 0;
        self.for_each_child_mut(|c| n += c.splice_var(hole, replacement));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use til_common::VarSupply;

    #[test]
    fn values_are_recognized() {
        assert!(LExp::Int(3).is_value());
        assert!(LExp::unit().is_value());
        assert!(LExp::bool(true).is_value());
        let mut vs = VarSupply::new();
        let v = vs.fresh();
        assert!(LExp::var(v).is_value());
        let app = LExp::App(Box::new(LExp::var(v)), Box::new(LExp::Int(1)));
        assert!(!app.is_value());
    }

    #[test]
    fn map_types_rewrites_uvars() {
        let mut e = LExp::Prim {
            prim: Prim::PolyEq,
            tyargs: vec![LTy::Uvar(7)],
            args: vec![LExp::Int(1), LExp::Int(2)],
        };
        e.map_types(&mut |t| {
            if matches!(t, LTy::Uvar(7)) {
                LTy::Int
            } else {
                t.clone()
            }
        });
        let LExp::Prim { tyargs, .. } = &e else {
            panic!()
        };
        assert_eq!(tyargs[0], LTy::Int);
    }

    #[test]
    fn size_counts_nodes() {
        let e = LExp::App(Box::new(LExp::Int(1)), Box::new(LExp::Int(2)));
        assert_eq!(e.size(), 3);
    }
}
