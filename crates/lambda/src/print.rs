//! Lambda pretty printer, in the style of the paper's Figure 2.

use crate::env::DataEnv;
use crate::exp::{LExp, LProgram, LSwitch};
use til_common::pretty::Printer;

/// Renders a whole program.
pub fn program(prog: &LProgram) -> String {
    let mut p = Printer::new();
    exp(&mut p, &prog.body, &prog.data_env);
    p.finish()
}

/// Renders one expression.
pub fn exp_to_string(e: &LExp, denv: &DataEnv) -> String {
    let mut p = Printer::new();
    exp(&mut p, e, denv);
    p.finish()
}

fn exp(p: &mut Printer, e: &LExp, denv: &DataEnv) {
    match e {
        LExp::Var { var, tyargs } => {
            p.word(var.to_string());
            if !tyargs.is_empty() {
                let tys = tyargs
                    .iter()
                    .map(|t| t.display(denv))
                    .collect::<Vec<_>>()
                    .join(", ");
                p.word(format!("[{tys}]"));
            }
        }
        LExp::Int(n) => {
            p.word(n.to_string());
        }
        LExp::Real(r) => {
            p.word(format!("{r:?}"));
        }
        LExp::Char(c) => {
            p.word(format!("#\"{c}\""));
        }
        LExp::Str(s) => {
            p.word(format!("{s:?}"));
        }
        LExp::Fn { param, body, .. } => {
            p.word(format!("(\\{param}. "));
            exp(p, body, denv);
            p.word(")");
        }
        LExp::App(f, a) => {
            p.word("(");
            exp(p, f, denv);
            p.word(" ");
            exp(p, a, denv);
            p.word(")");
        }
        LExp::Fix { tyvars, funs, body } => {
            p.word("let fix");
            if !tyvars.is_empty() {
                let tvs = tyvars
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                p.word(format!(" [{tvs}]"));
            }
            p.indent();
            for f in funs {
                p.line(format!("{} = \\{}. ", f.var, f.param));
                p.indent();
                p.line("");
                exp(p, &f.body, denv);
                p.dedent();
            }
            p.dedent();
            p.line("in ");
            exp(p, body, denv);
            p.word(" end");
        }
        LExp::Let {
            var,
            tyvars,
            rhs,
            body,
        } => {
            p.line(format!("let {var}"));
            if !tyvars.is_empty() {
                let tvs = tyvars
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                p.word(format!(" [{tvs}]"));
            }
            p.word(" = ");
            exp(p, rhs, denv);
            p.line("in ");
            exp(p, body, denv);
            p.word(" end");
        }
        LExp::Record(fields) => {
            p.word("{");
            for (i, (l, fe)) in fields.iter().enumerate() {
                if i > 0 {
                    p.word(", ");
                }
                p.word(format!("{l}="));
                exp(p, fe, denv);
            }
            p.word("}");
        }
        LExp::Select { label, arg } => {
            p.word(format!("(#{label} "));
            exp(p, arg, denv);
            p.word(")");
        }
        LExp::Con {
            data, tag, arg, ..
        } => {
            let name = denv.get(*data).cons[*tag].name;
            p.word(name.to_string());
            if let Some(a) = arg {
                p.word("(");
                exp(p, a, denv);
                p.word(")");
            }
        }
        LExp::ExnCon { exn, arg } => {
            p.word(format!("exn#{}", exn.0));
            if let Some(a) = arg {
                p.word("(");
                exp(p, a, denv);
                p.word(")");
            }
        }
        LExp::Switch(sw) => switch(p, sw, denv),
        LExp::Raise { exn, .. } => {
            p.word("raise ");
            exp(p, exn, denv);
        }
        LExp::Handle {
            body,
            handler_var,
            handler,
        } => {
            p.word("(");
            exp(p, body, denv);
            p.word(format!(" handle {handler_var} => "));
            exp(p, handler, denv);
            p.word(")");
        }
        LExp::Prim { prim, args, .. } => {
            p.word(format!("{prim}("));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    p.word(", ");
                }
                exp(p, a, denv);
            }
            p.word(")");
        }
    }
}

fn switch(p: &mut Printer, sw: &LSwitch, denv: &DataEnv) {
    match sw {
        LSwitch::Data {
            scrut,
            data,
            arms,
            default,
            ..
        } => {
            p.word("Switch ");
            exp(p, scrut, denv);
            p.word(" of");
            p.indent();
            for (tag, binder, arm) in arms {
                let name = denv.get(*data).cons[*tag].name;
                match binder {
                    Some(b) => p.line(format!("{name}({b}) => ")),
                    None => p.line(format!("{name} => ")),
                };
                exp(p, arm, denv);
            }
            if let Some(d) = default {
                p.line("_ => ");
                exp(p, d, denv);
            }
            p.dedent();
        }
        LSwitch::Int {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word("Switch_int ");
            exp(p, scrut, denv);
            p.word(" of");
            p.indent();
            for (k, arm) in arms {
                p.line(format!("{k} => "));
                exp(p, arm, denv);
            }
            p.line("_ => ");
            exp(p, default, denv);
            p.dedent();
        }
        LSwitch::Str {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word("Switch_str ");
            exp(p, scrut, denv);
            p.word(" of");
            p.indent();
            for (k, arm) in arms {
                p.line(format!("{k:?} => "));
                exp(p, arm, denv);
            }
            p.line("_ => ");
            exp(p, default, denv);
            p.dedent();
        }
        LSwitch::Exn {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word("Switch_exn ");
            exp(p, scrut, denv);
            p.word(" of");
            p.indent();
            for (id, binder, arm) in arms {
                match binder {
                    Some(b) => p.line(format!("exn#{}({b}) => ", id.0)),
                    None => p.line(format!("exn#{} => ", id.0)),
                };
                exp(p, arm, denv);
            }
            p.line("_ => ");
            exp(p, default, denv);
            p.dedent();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TyVarSupply;

    #[test]
    fn prints_prim_application() {
        let mut tvs = TyVarSupply::new();
        let denv = DataEnv::with_builtins(tvs.fresh());
        let e = LExp::Prim {
            prim: crate::prim::Prim::IAdd,
            tyargs: vec![],
            args: vec![LExp::Int(1), LExp::Int(2)],
        };
        assert_eq!(exp_to_string(&e, &denv).trim(), "iadd(1, 2)");
    }

    #[test]
    fn prints_bool_constructor() {
        let mut tvs = TyVarSupply::new();
        let denv = DataEnv::with_builtins(tvs.fresh());
        assert_eq!(exp_to_string(&LExp::bool(true), &denv).trim(), "true");
    }
}
