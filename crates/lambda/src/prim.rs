//! Primitive operations.
//!
//! Primitives are shared by Lambda, Lmli, Bform, and Ubform; the RTL
//! phase finally expands them into machine operations, runtime calls,
//! and explicit exception raises. Safe array access is *not* primitive:
//! the prelude defines `sub`/`update` with explicit bounds checks around
//! [`Prim::ArraySubU`]/[`Prim::ArrayUpdateU`], exactly the structure the
//! paper's redundant-comparison elimination optimizes (§3.3, §4).

use crate::ty::LTy;
use std::fmt;

/// Overloadable arithmetic operators (resolved during zonking).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

/// Overloadable comparison operators (resolved during zonking).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A primitive operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Prim {
    // ---- integers -------------------------------------------------------
    /// `int + int` (raises `Overflow`).
    IAdd,
    /// `int - int` (raises `Overflow`).
    ISub,
    /// `int * int` (raises `Overflow`).
    IMul,
    /// `int div int` (raises `Div`).
    IDiv,
    /// `int mod int` (raises `Div`).
    IMod,
    /// Integer negation.
    INeg,
    /// Integer absolute value.
    IAbs,
    /// `<` on int.
    ILt,
    /// `<=` on int.
    ILe,
    /// `>` on int.
    IGt,
    /// `>=` on int.
    IGe,
    /// `=` on int.
    IEq,
    /// `<>` on int.
    INe,
    /// Bitwise and.
    AndB,
    /// Bitwise or.
    OrB,
    /// Bitwise xor.
    XorB,
    /// Bitwise not.
    NotB,
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,

    // ---- reals ----------------------------------------------------------
    /// `real + real`.
    RAdd,
    /// `real - real`.
    RSub,
    /// `real * real`.
    RMul,
    /// `real / real`.
    RDiv,
    /// Real negation.
    RNeg,
    /// Real absolute value.
    RAbs,
    /// `<` on real.
    RLt,
    /// `<=` on real.
    RLe,
    /// `>` on real.
    RGt,
    /// `>=` on real.
    RGe,
    /// `=` on real (bitwise IEEE equality of values).
    REq,
    /// `<>` on real.
    RNe,
    /// `real : int -> real`.
    RealFromInt,
    /// `floor : real -> int` (raises `Overflow`).
    Floor,
    /// `trunc : real -> int` (raises `Overflow`).
    Trunc,
    /// Square root (raises `Domain` on negative input).
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Arc tangent.
    Atan,
    /// e^x.
    ExpR,
    /// Natural log (raises `Domain`).
    Ln,

    // ---- chars ----------------------------------------------------------
    /// `ord : char -> int`.
    COrd,
    /// `chr : int -> char` (raises `Chr`).
    CChr,
    /// `<` on char.
    CLt,
    /// `<=` on char.
    CLe,
    /// `>` on char.
    CGt,
    /// `>=` on char.
    CGe,
    /// `=` on char.
    CEq,
    /// `<>` on char.
    CNe,

    // ---- strings --------------------------------------------------------
    /// `size : string -> int`.
    StrSize,
    /// `String.sub : string * int -> char` (raises `Subscript`).
    StrSub,
    /// `^ : string * string -> string`.
    StrConcat,
    /// `str : char -> string`.
    StrFromChar,
    /// Three-way compare, `< 0`, `0`, `> 0`.
    StrCmp,
    /// `Int.toString`.
    IntToString,
    /// `Real.toString`.
    RealToString,
    /// `print : string -> unit`.
    Print,

    // ---- arrays (one type argument) --------------------------------------
    /// `[t] (int, t) -> t array`; raises `Size` on negative length.
    ArrayNew,
    /// `[t] (t array, int) -> t` — **unchecked**.
    ArraySubU,
    /// `[t] (t array, int, t) -> unit` — **unchecked**.
    ArrayUpdateU,
    /// `[t] t array -> int`.
    ArrayLength,

    // ---- references (one type argument) -----------------------------------
    /// `[t] t -> t ref`.
    RefNew,
    /// `[t] t ref -> t`.
    RefGet,
    /// `[t] (t ref, t) -> unit`.
    RefSet,

    // ---- polymorphic equality (one type argument) --------------------------
    /// `[t] (t, t) -> bool` — the paper's tag-free structural equality;
    /// introduced by elaboration, specialized by the optimizer, and
    /// implemented by intensional type analysis when `t` stays unknown.
    PolyEq,

    // ---- elaboration-only placeholders ------------------------------------
    /// Overloaded arithmetic; resolved to int or real ops by zonking.
    OverloadArith(ArithOp),
    /// Overloaded comparison; resolved by zonking.
    OverloadCmp(CmpOp),
    /// Overloaded `~`.
    OverloadNeg,
    /// Overloaded `abs`.
    OverloadAbs,
}

/// The type signature of a primitive.
///
/// `tyvars` is the number of type parameters; within `args`/`ret`, the
/// *local* convention `LTy::Var(TyVar(i))` with `i < tyvars` refers to
/// the i-th parameter (substituted at each use site).
#[derive(Clone, Debug)]
pub struct PrimSig {
    /// Number of type parameters.
    pub tyvars: usize,
    /// Argument types.
    pub args: Vec<LTy>,
    /// Result type.
    pub ret: LTy,
}

impl Prim {
    /// The signature of this primitive, or `None` for the
    /// elaboration-only overload placeholders.
    pub fn sig(&self) -> Option<PrimSig> {
        use crate::ty::TyVar;
        use LTy::*;
        let t0 = || LTy::Var(TyVar(0));
        let b = LTy::bool_ty();
        let u = LTy::unit();
        let s = |args: Vec<LTy>, ret: LTy| {
            Some(PrimSig {
                tyvars: 0,
                args,
                ret,
            })
        };
        let sp = |args: Vec<LTy>, ret: LTy| {
            Some(PrimSig {
                tyvars: 1,
                args,
                ret,
            })
        };
        match self {
            Prim::IAdd | Prim::ISub | Prim::IMul | Prim::IDiv | Prim::IMod | Prim::AndB
            | Prim::OrB | Prim::XorB | Prim::Lsl | Prim::Lsr | Prim::Asr => {
                s(vec![Int, Int], Int)
            }
            Prim::INeg | Prim::IAbs | Prim::NotB => s(vec![Int], Int),
            Prim::ILt | Prim::ILe | Prim::IGt | Prim::IGe | Prim::IEq | Prim::INe => {
                s(vec![Int, Int], b)
            }
            Prim::RAdd | Prim::RSub | Prim::RMul | Prim::RDiv => s(vec![Real, Real], Real),
            Prim::RNeg | Prim::RAbs | Prim::Sqrt | Prim::Sin | Prim::Cos | Prim::Atan
            | Prim::ExpR | Prim::Ln => s(vec![Real], Real),
            Prim::RLt | Prim::RLe | Prim::RGt | Prim::RGe | Prim::REq | Prim::RNe => {
                s(vec![Real, Real], b)
            }
            Prim::RealFromInt => s(vec![Int], Real),
            Prim::Floor | Prim::Trunc => s(vec![Real], Int),
            Prim::COrd => s(vec![Char], Int),
            Prim::CChr => s(vec![Int], Char),
            Prim::CLt | Prim::CLe | Prim::CGt | Prim::CGe | Prim::CEq | Prim::CNe => {
                s(vec![Char, Char], b)
            }
            Prim::StrSize => s(vec![Str], Int),
            Prim::StrSub => s(vec![Str, Int], Char),
            Prim::StrConcat => s(vec![Str, Str], Str),
            Prim::StrFromChar => s(vec![Char], Str),
            Prim::StrCmp => s(vec![Str, Str], Int),
            Prim::IntToString => s(vec![Int], Str),
            Prim::RealToString => s(vec![Real], Str),
            Prim::Print => s(vec![Str], u),
            Prim::ArrayNew => sp(vec![Int, t0()], Array(Box::new(t0()))),
            Prim::ArraySubU => sp(vec![Array(Box::new(t0())), Int], t0()),
            Prim::ArrayUpdateU => sp(vec![Array(Box::new(t0())), Int, t0()], u),
            Prim::ArrayLength => sp(vec![Array(Box::new(t0()))], Int),
            Prim::RefNew => sp(vec![t0()], Ref(Box::new(t0()))),
            Prim::RefGet => sp(vec![Ref(Box::new(t0()))], t0()),
            Prim::RefSet => sp(vec![Ref(Box::new(t0())), t0()], u),
            Prim::PolyEq => sp(vec![t0(), t0()], b),
            Prim::OverloadArith(_)
            | Prim::OverloadCmp(_)
            | Prim::OverloadNeg
            | Prim::OverloadAbs => None,
        }
    }

    /// True when evaluating the primitive can have no observable effect
    /// (no store mutation, no I/O, no exception). Pure primitives are
    /// fair game for dead-code elimination, CSE, and invariant removal.
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            Prim::IAdd
                | Prim::ISub
                | Prim::IMul
                | Prim::IDiv
                | Prim::IMod
                | Prim::IAbs
                | Prim::INeg
                | Prim::Floor
                | Prim::Trunc
                | Prim::Sqrt
                | Prim::Ln
                | Prim::CChr
                | Prim::StrSub
                | Prim::ArrayNew
                | Prim::ArraySubU
                | Prim::ArrayUpdateU
                | Prim::RefNew
                | Prim::RefGet
                | Prim::RefSet
                | Prim::Print
        )
    }

    /// True when the primitive is pure *except* that it may raise an
    /// exception. The paper's CSE explicitly admits these (§3.3:
    /// "if e1 is pure or the only effect it may have is to raise an
    /// exception").
    pub fn only_raises(&self) -> bool {
        matches!(
            self,
            Prim::IAdd
                | Prim::ISub
                | Prim::IMul
                | Prim::IDiv
                | Prim::IMod
                | Prim::IAbs
                | Prim::INeg
                | Prim::Floor
                | Prim::Trunc
                | Prim::Sqrt
                | Prim::Ln
                | Prim::CChr
                | Prim::StrSub
        )
    }

    /// True when the primitive reads or writes the mutable store or
    /// performs I/O (not merely raising): such primitives cannot be
    /// reordered, duplicated, or removed.
    pub fn is_effectful(&self) -> bool {
        matches!(
            self,
            Prim::ArrayNew
                | Prim::ArraySubU
                | Prim::ArrayUpdateU
                | Prim::RefNew
                | Prim::RefGet
                | Prim::RefSet
                | Prim::Print
        )
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Prim::IAdd => "iadd",
            Prim::ISub => "isub",
            Prim::IMul => "imul",
            Prim::IDiv => "idiv",
            Prim::IMod => "imod",
            Prim::INeg => "ineg",
            Prim::IAbs => "iabs",
            Prim::ILt => "plst_i",
            Prim::ILe => "ple_i",
            Prim::IGt => "pgt_i",
            Prim::IGe => "pgte_i",
            Prim::IEq => "peq_i",
            Prim::INe => "pne_i",
            Prim::AndB => "andb",
            Prim::OrB => "orb",
            Prim::XorB => "xorb",
            Prim::NotB => "notb",
            Prim::Lsl => "lsl",
            Prim::Lsr => "lsr",
            Prim::Asr => "asr",
            Prim::RAdd => "radd",
            Prim::RSub => "rsub",
            Prim::RMul => "rmul",
            Prim::RDiv => "rdiv",
            Prim::RNeg => "rneg",
            Prim::RAbs => "rabs",
            Prim::RLt => "plst_r",
            Prim::RLe => "ple_r",
            Prim::RGt => "pgt_r",
            Prim::RGe => "pgte_r",
            Prim::REq => "peq_r",
            Prim::RNe => "pne_r",
            Prim::RealFromInt => "real",
            Prim::Floor => "floor",
            Prim::Trunc => "trunc",
            Prim::Sqrt => "sqrt",
            Prim::Sin => "sin",
            Prim::Cos => "cos",
            Prim::Atan => "atan",
            Prim::ExpR => "exp",
            Prim::Ln => "ln",
            Prim::COrd => "ord",
            Prim::CChr => "chr",
            Prim::CLt => "plst_c",
            Prim::CLe => "ple_c",
            Prim::CGt => "pgt_c",
            Prim::CGe => "pgte_c",
            Prim::CEq => "peq_c",
            Prim::CNe => "pne_c",
            Prim::StrSize => "size",
            Prim::StrSub => "strsub",
            Prim::StrConcat => "concat",
            Prim::StrFromChar => "str",
            Prim::StrCmp => "strcmp",
            Prim::IntToString => "int_to_string",
            Prim::RealToString => "real_to_string",
            Prim::Print => "print",
            Prim::ArrayNew => "parray",
            Prim::ArraySubU => "psub",
            Prim::ArrayUpdateU => "pupdate",
            Prim::ArrayLength => "plength",
            Prim::RefNew => "pref",
            Prim::RefGet => "pget",
            Prim::RefSet => "pset",
            Prim::PolyEq => "polyeq",
            Prim::OverloadArith(ArithOp::Add) => "?add",
            Prim::OverloadArith(ArithOp::Sub) => "?sub",
            Prim::OverloadArith(ArithOp::Mul) => "?mul",
            Prim::OverloadCmp(CmpOp::Lt) => "?lt",
            Prim::OverloadCmp(CmpOp::Le) => "?le",
            Prim::OverloadCmp(CmpOp::Gt) => "?gt",
            Prim::OverloadCmp(CmpOp::Ge) => "?ge",
            Prim::OverloadNeg => "?neg",
            Prim::OverloadAbs => "?abs",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_raises_effect_partition() {
        // A primitive that only raises is not pure and not effectful.
        assert!(!Prim::IAdd.is_pure());
        assert!(Prim::IAdd.only_raises());
        assert!(!Prim::IAdd.is_effectful());
        // A store primitive is effectful and not only-raising.
        assert!(Prim::RefSet.is_effectful());
        assert!(!Prim::RefSet.only_raises());
        // A genuinely pure primitive.
        assert!(Prim::ILt.is_pure());
        assert!(!Prim::ILt.is_effectful());
    }

    #[test]
    fn polymorphic_prims_have_tyvars() {
        assert_eq!(Prim::ArraySubU.sig().unwrap().tyvars, 1);
        assert_eq!(Prim::IAdd.sig().unwrap().tyvars, 0);
    }

    #[test]
    fn overload_placeholders_have_no_sig() {
        assert!(Prim::OverloadArith(ArithOp::Add).sig().is_none());
    }
}
