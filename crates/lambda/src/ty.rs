//! Lambda types.

use crate::env::{DataEnv, DataId};
use til_common::Symbol;
use std::collections::HashMap;
use std::fmt;

/// A bound type variable, unique across a compilation unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TyVar(pub u32);

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'t{}", self.0)
    }
}

/// Source of fresh [`TyVar`]s.
#[derive(Clone, Debug, Default)]
pub struct TyVarSupply {
    next: u32,
}

impl TyVarSupply {
    /// A supply starting at 0.
    pub fn new() -> TyVarSupply {
        TyVarSupply::default()
    }

    /// A fresh type variable.
    pub fn fresh(&mut self) -> TyVar {
        let v = TyVar(self.next);
        self.next += 1;
        v
    }
}

/// A Lambda (mono)type. Polymorphism lives on binders, not in types.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LTy {
    /// A bound type variable.
    Var(TyVar),
    /// A unification placeholder; only present during elaboration and
    /// fully eliminated by the front end's zonking pass.
    Uvar(u32),
    /// Machine integer.
    Int,
    /// Double-precision float.
    Real,
    /// Character (a machine integer at run time).
    Char,
    /// Immutable string.
    Str,
    /// Exception packet.
    Exn,
    /// Function type.
    Arrow(Box<LTy>, Box<LTy>),
    /// Record with canonically ordered labels. The empty record is
    /// `unit`.
    Record(Vec<(Symbol, LTy)>),
    /// Saturated datatype application.
    Data(DataId, Vec<LTy>),
    /// Mutable array.
    Array(Box<LTy>),
    /// Mutable reference cell.
    Ref(Box<LTy>),
}

/// Canonical SML label ordering: numeric labels first (numerically),
/// then alphabetic labels (lexicographically).
pub fn label_cmp(a: &Symbol, b: &Symbol) -> std::cmp::Ordering {
    match (a.as_str().parse::<u64>(), b.as_str().parse::<u64>()) {
        (Ok(x), Ok(y)) => x.cmp(&y),
        (Ok(_), Err(_)) => std::cmp::Ordering::Less,
        (Err(_), Ok(_)) => std::cmp::Ordering::Greater,
        (Err(_), Err(_)) => a.as_str().cmp(b.as_str()),
    }
}

/// Sorts record fields into canonical label order.
pub fn sort_fields<T>(mut fields: Vec<(Symbol, T)>) -> Vec<(Symbol, T)> {
    fields.sort_by(|(a, _), (b, _)| label_cmp(a, b));
    fields
}

impl LTy {
    /// The unit type (empty record).
    pub fn unit() -> LTy {
        LTy::Record(Vec::new())
    }

    /// The builtin `bool` datatype.
    pub fn bool_ty() -> LTy {
        LTy::Data(DataId::BOOL, Vec::new())
    }

    /// The builtin `'a list` datatype at `elem`.
    pub fn list(elem: LTy) -> LTy {
        LTy::Data(DataId::LIST, vec![elem])
    }

    /// An n-ary tuple type.
    pub fn tuple(tys: Vec<LTy>) -> LTy {
        LTy::Record(
            tys.into_iter()
                .enumerate()
                .map(|(i, t)| (Symbol::intern(&(i + 1).to_string()), t))
                .collect(),
        )
    }

    /// True when this is the unit type.
    pub fn is_unit(&self) -> bool {
        matches!(self, LTy::Record(fs) if fs.is_empty())
    }

    /// Capture-free substitution of types for type variables.
    pub fn subst(&self, map: &HashMap<TyVar, LTy>) -> LTy {
        if map.is_empty() {
            return self.clone();
        }
        match self {
            LTy::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            LTy::Uvar(_) | LTy::Int | LTy::Real | LTy::Char | LTy::Str | LTy::Exn => self.clone(),
            LTy::Arrow(a, b) => LTy::Arrow(Box::new(a.subst(map)), Box::new(b.subst(map))),
            LTy::Record(fs) => LTy::Record(
                fs.iter()
                    .map(|(l, t)| (*l, t.subst(map)))
                    .collect(),
            ),
            LTy::Data(id, args) => {
                LTy::Data(*id, args.iter().map(|t| t.subst(map)).collect())
            }
            LTy::Array(t) => LTy::Array(Box::new(t.subst(map))),
            LTy::Ref(t) => LTy::Ref(Box::new(t.subst(map))),
        }
    }

    /// Collects the free type variables into `out`.
    pub fn free_tyvars(&self, out: &mut Vec<TyVar>) {
        match self {
            LTy::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            LTy::Uvar(_) | LTy::Int | LTy::Real | LTy::Char | LTy::Str | LTy::Exn => {}
            LTy::Arrow(a, b) => {
                a.free_tyvars(out);
                b.free_tyvars(out);
            }
            LTy::Record(fs) => {
                for (_, t) in fs {
                    t.free_tyvars(out);
                }
            }
            LTy::Data(_, args) => {
                for t in args {
                    t.free_tyvars(out);
                }
            }
            LTy::Array(t) | LTy::Ref(t) => t.free_tyvars(out),
        }
    }

    /// Renders the type for dumps, resolving datatype names via `denv`.
    pub fn display(&self, denv: &DataEnv) -> String {
        match self {
            LTy::Var(v) => v.to_string(),
            LTy::Uvar(u) => format!("?u{u}"),
            LTy::Int => "int".into(),
            LTy::Real => "real".into(),
            LTy::Char => "char".into(),
            LTy::Str => "string".into(),
            LTy::Exn => "exn".into(),
            LTy::Arrow(a, b) => format!("({} -> {})", a.display(denv), b.display(denv)),
            LTy::Record(fs) if fs.is_empty() => "unit".into(),
            LTy::Record(fs) => {
                let inner = fs
                    .iter()
                    .map(|(l, t)| format!("{l}: {}", t.display(denv)))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{{{inner}}}")
            }
            LTy::Data(id, args) => {
                let name = denv.get(*id).name;
                if args.is_empty() {
                    name.to_string()
                } else {
                    let inner = args
                        .iter()
                        .map(|t| t.display(denv))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("({inner}) {name}")
                }
            }
            LTy::Array(t) => format!("({}) array", t.display(denv)),
            LTy::Ref(t) => format!("({}) ref", t.display(denv)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_replaces_vars() {
        let v = TyVar(0);
        let ty = LTy::Arrow(Box::new(LTy::Var(v)), Box::new(LTy::Int));
        let mut map = HashMap::new();
        map.insert(v, LTy::Real);
        assert_eq!(
            ty.subst(&map),
            LTy::Arrow(Box::new(LTy::Real), Box::new(LTy::Int))
        );
    }

    #[test]
    fn tuple_labels_are_numeric() {
        let t = LTy::tuple(vec![LTy::Int, LTy::Real]);
        let LTy::Record(fs) = t else { panic!() };
        assert_eq!(fs[0].0.as_str(), "1");
        assert_eq!(fs[1].0.as_str(), "2");
    }

    #[test]
    fn label_order_numeric_before_alpha() {
        use std::cmp::Ordering;
        let one = Symbol::intern("1");
        let ten = Symbol::intern("10");
        let two = Symbol::intern("2");
        let abc = Symbol::intern("abc");
        assert_eq!(label_cmp(&two, &ten), Ordering::Less);
        assert_eq!(label_cmp(&one, &abc), Ordering::Less);
        assert_eq!(label_cmp(&abc, &one), Ordering::Greater);
    }

    #[test]
    fn free_tyvars_collects_each_once() {
        let v = TyVar(3);
        let ty = LTy::tuple(vec![LTy::Var(v), LTy::Var(v)]);
        let mut out = Vec::new();
        ty.free_tyvars(&mut out);
        assert_eq!(out, vec![v]);
    }
}
