//! **Lambda** — the explicitly-typed core language produced by the front
//! end (the paper's §3.1).
//!
//! Lambda is a System-F-style calculus with ML-style (prenex)
//! polymorphism: `let` and `fix` binders carry the type variables they
//! generalize, and every variable occurrence carries the types it is
//! instantiated at. Pattern matching has already been compiled away into
//! [`exp::LSwitch`] decision trees, and all primitives are explicit
//! [`prim::Prim`] applications.
//!
//! The crate also provides the Lambda typechecker ([`typecheck`]), the
//! first of the per-phase checkers that reproduce the paper's "verify
//! the type integrity of the code at any stage" discipline.

pub mod env;
pub mod exp;
pub mod prim;
pub mod print;
pub mod ty;
pub mod typecheck;

pub use env::{ConInfo, DataEnv, DataId, DataInfo, ExnEnv, ExnId, ExnInfo};
pub use exp::{LExp, LFun, LProgram, LSwitch};
pub use prim::Prim;
pub use ty::{LTy, TyVar, TyVarSupply};
pub use typecheck::typecheck;
