//! The Lambda typechecker.
//!
//! Runs after elaboration (and again after any transformation that
//! claims to preserve Lambda typing). All failures are internal
//! compiler errors: user-level type errors were already rejected by
//! type inference.

use crate::env::{DataEnv, ExnEnv};
use crate::exp::{LExp, LProgram, LSwitch};
use crate::ty::{label_cmp, LTy, TyVar};
use std::collections::HashMap;
use til_common::{Diagnostic, Result, Var};

const PHASE: &str = "lambda-typecheck";

/// Typechecks a whole program, returning the body type.
pub fn typecheck(prog: &LProgram) -> Result<LTy> {
    let mut cx = Cx {
        denv: &prog.data_env,
        eenv: &prog.exn_env,
        vars: HashMap::new(),
        hole: None,
        captured: None,
    };
    let ty = cx.check(&prog.body)?;
    if ty != prog.body_ty {
        return Err(err(format!(
            "program body type mismatch: computed {}, recorded {}",
            ty.display(cx.denv),
            prog.body_ty.display(cx.denv)
        )));
    }
    Ok(ty)
}

/// The typing environment in scope at the prelude's splice hole:
/// every prelude binding a user unit may reference. Produced by
/// [`typecheck_prelude`], consumed by [`typecheck_fragment`] — together
/// they give the Lmli-level prelude cache the same coverage as
/// typechecking the spliced whole program, without re-walking the
/// prelude on every compile.
pub struct FragmentEnv {
    vars: HashMap<Var, Scheme>,
}

/// Typechecks the prelude skeleton (a program whose innermost body is
/// the free unit-typed variable `hole`) and captures the environment
/// in scope at the hole.
pub fn typecheck_prelude(prog: &LProgram, hole: Var) -> Result<FragmentEnv> {
    let mut cx = Cx {
        denv: &prog.data_env,
        eenv: &prog.exn_env,
        vars: HashMap::new(),
        hole: Some(hole),
        captured: None,
    };
    let ty = cx.check(&prog.body)?;
    if ty != prog.body_ty {
        return Err(err(format!(
            "prelude skeleton type mismatch: computed {}, recorded {}",
            ty.display(cx.denv),
            prog.body_ty.display(cx.denv)
        )));
    }
    let vars = cx
        .captured
        .ok_or_else(|| err(format!("prelude skeleton never reached its hole {hole}")))?;
    Ok(FragmentEnv { vars })
}

/// Typechecks a user fragment under the prelude environment captured
/// at the splice hole. `prog` carries the *joined* datatype/exception
/// environments (prelude ids are a stable prefix) and the fragment as
/// its body.
pub fn typecheck_fragment(prog: &LProgram, env: &FragmentEnv) -> Result<LTy> {
    let mut cx = Cx {
        denv: &prog.data_env,
        eenv: &prog.exn_env,
        vars: env.vars.clone(),
        hole: None,
        captured: None,
    };
    let ty = cx.check(&prog.body)?;
    if ty != prog.body_ty {
        return Err(err(format!(
            "fragment body type mismatch: computed {}, recorded {}",
            ty.display(cx.denv),
            prog.body_ty.display(cx.denv)
        )));
    }
    Ok(ty)
}

fn err(msg: String) -> Diagnostic {
    Diagnostic::ice(PHASE, msg)
}

#[derive(Clone)]
struct Scheme {
    tyvars: Vec<TyVar>,
    body: LTy,
}

struct Cx<'a> {
    denv: &'a DataEnv,
    eenv: &'a ExnEnv,
    vars: HashMap<Var, Scheme>,
    /// The prelude skeleton's splice hole: a free unit-typed variable.
    hole: Option<Var>,
    /// The environment in scope when the hole was reached.
    captured: Option<HashMap<Var, Scheme>>,
}

impl<'a> Cx<'a> {
    fn bind(&mut self, v: Var, tyvars: Vec<TyVar>, ty: LTy) -> Option<Scheme> {
        self.vars.insert(v, Scheme { tyvars, body: ty })
    }

    fn unbind(&mut self, v: Var, old: Option<Scheme>) {
        match old {
            Some(s) => {
                self.vars.insert(v, s);
            }
            None => {
                self.vars.remove(&v);
            }
        }
    }

    fn expect(&self, what: &str, got: &LTy, want: &LTy) -> Result<()> {
        if got == want {
            Ok(())
        } else {
            Err(err(format!(
                "{what}: expected {}, got {}",
                want.display(self.denv),
                got.display(self.denv)
            )))
        }
    }

    fn check(&mut self, e: &LExp) -> Result<LTy> {
        match e {
            LExp::Var { var, tyargs } => {
                if self.hole == Some(*var) {
                    // The prelude skeleton's splice hole: unit-typed,
                    // and the point where the user unit's environment
                    // is captured.
                    if self.captured.is_none() {
                        self.captured = Some(self.vars.clone());
                    }
                    return Ok(LTy::unit());
                }
                let scheme = self
                    .vars
                    .get(var)
                    .cloned()
                    .ok_or_else(|| err(format!("unbound variable {var}")))?;
                if tyargs.is_empty() {
                    // Identity instantiation (covers monomorphic vars
                    // and recursive occurrences inside a fix nest).
                    Ok(scheme.body)
                } else if tyargs.len() == scheme.tyvars.len() {
                    let map = scheme
                        .tyvars
                        .iter()
                        .copied()
                        .zip(tyargs.iter().cloned())
                        .collect();
                    Ok(scheme.body.subst(&map))
                } else {
                    Err(err(format!(
                        "variable {var} instantiated with {} types, scheme has {}",
                        tyargs.len(),
                        scheme.tyvars.len()
                    )))
                }
            }
            LExp::Int(_) => Ok(LTy::Int),
            LExp::Real(_) => Ok(LTy::Real),
            LExp::Char(_) => Ok(LTy::Char),
            LExp::Str(_) => Ok(LTy::Str),
            LExp::Fn {
                param,
                param_ty,
                body,
            } => {
                self.no_uvar(param_ty)?;
                let old = self.bind(*param, vec![], param_ty.clone());
                let ret = self.check(body)?;
                self.unbind(*param, old);
                Ok(LTy::Arrow(Box::new(param_ty.clone()), Box::new(ret)))
            }
            LExp::App(f, a) => {
                let fty = self.check(f)?;
                let aty = self.check(a)?;
                match fty {
                    LTy::Arrow(dom, cod) => {
                        self.expect("application argument", &aty, &dom)?;
                        Ok(*cod)
                    }
                    other => Err(err(format!(
                        "application of non-function type {}",
                        other.display(self.denv)
                    ))),
                }
            }
            LExp::Fix { tyvars, funs, body } => {
                // Bind all functions monomorphically for the bodies.
                let mut saved = Vec::new();
                for f in funs {
                    let fty = LTy::Arrow(
                        Box::new(f.param_ty.clone()),
                        Box::new(f.ret_ty.clone()),
                    );
                    saved.push((f.var, self.bind(f.var, vec![], fty)));
                }
                for f in funs {
                    let old = self.bind(f.param, vec![], f.param_ty.clone());
                    let got = self.check(&f.body)?;
                    self.unbind(f.param, old);
                    self.expect(&format!("fix body of {}", f.var), &got, &f.ret_ty)?;
                }
                // Rebind polymorphically for the scope.
                for (v, old) in saved.into_iter().rev() {
                    self.unbind(v, old);
                }
                let mut saved = Vec::new();
                for f in funs {
                    let fty = LTy::Arrow(
                        Box::new(f.param_ty.clone()),
                        Box::new(f.ret_ty.clone()),
                    );
                    saved.push((f.var, self.bind(f.var, tyvars.clone(), fty)));
                }
                let ty = self.check(body)?;
                for (v, old) in saved.into_iter().rev() {
                    self.unbind(v, old);
                }
                Ok(ty)
            }
            LExp::Let {
                var,
                tyvars,
                rhs,
                body,
            } => {
                if !tyvars.is_empty() && !rhs.is_value() {
                    return Err(err(format!(
                        "polymorphic let of {var} violates the value restriction"
                    )));
                }
                let rty = self.check(rhs)?;
                let old = self.bind(*var, tyvars.clone(), rty);
                let ty = self.check(body)?;
                self.unbind(*var, old);
                Ok(ty)
            }
            LExp::Record(fields) => {
                for w in fields.windows(2) {
                    if label_cmp(&w[0].0, &w[1].0) != std::cmp::Ordering::Less {
                        return Err(err(format!(
                            "record labels not in canonical order: {} then {}",
                            w[0].0, w[1].0
                        )));
                    }
                }
                let mut tys = Vec::new();
                for (l, fe) in fields {
                    tys.push((*l, self.check(fe)?));
                }
                Ok(LTy::Record(tys))
            }
            LExp::Select { label, arg } => {
                let aty = self.check(arg)?;
                match &aty {
                    LTy::Record(fs) => fs
                        .iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, t)| t.clone())
                        .ok_or_else(|| {
                            err(format!(
                                "selection of missing label {label} from {}",
                                aty.display(self.denv)
                            ))
                        }),
                    other => Err(err(format!(
                        "selection from non-record type {}",
                        other.display(self.denv)
                    ))),
                }
            }
            LExp::Con {
                data,
                tyargs,
                tag,
                arg,
            } => {
                let info = self.denv.get(*data);
                if tyargs.len() != info.params.len() {
                    return Err(err(format!(
                        "datatype {} applied to {} type arguments, expects {}",
                        info.name,
                        tyargs.len(),
                        info.params.len()
                    )));
                }
                if *tag >= info.cons.len() {
                    return Err(err(format!("constructor tag {tag} out of range")));
                }
                let want_arg = info.con_arg_ty(*tag, tyargs);
                match (want_arg, arg) {
                    (None, None) => {}
                    (Some(want), Some(a)) => {
                        let got = self.check(a)?;
                        self.expect("constructor argument", &got, &want)?;
                    }
                    (None, Some(_)) => {
                        return Err(err(format!(
                            "nullary constructor {} given an argument",
                            info.cons[*tag].name
                        )))
                    }
                    (Some(_), None) => {
                        return Err(err(format!(
                            "constructor {} missing its argument",
                            info.cons[*tag].name
                        )))
                    }
                }
                Ok(LTy::Data(*data, tyargs.clone()))
            }
            LExp::ExnCon { exn, arg } => {
                let info = self.eenv.get(*exn);
                match (&info.arg, arg) {
                    (None, None) => {}
                    (Some(want), Some(a)) => {
                        let got = self.check(a)?;
                        self.expect("exception argument", &got, want)?;
                    }
                    _ => {
                        return Err(err(format!(
                            "exception {} argument arity mismatch",
                            info.name
                        )))
                    }
                }
                Ok(LTy::Exn)
            }
            LExp::Switch(sw) => self.check_switch(sw),
            LExp::Raise { exn, ty } => {
                let got = self.check(exn)?;
                self.expect("raise operand", &got, &LTy::Exn)?;
                self.no_uvar(ty)?;
                Ok(ty.clone())
            }
            LExp::Handle {
                body,
                handler_var,
                handler,
            } => {
                let bty = self.check(body)?;
                let old = self.bind(*handler_var, vec![], LTy::Exn);
                let hty = self.check(handler)?;
                self.unbind(*handler_var, old);
                self.expect("handler result", &hty, &bty)?;
                Ok(bty)
            }
            LExp::Prim { prim, tyargs, args } => {
                let sig = prim
                    .sig()
                    .ok_or_else(|| err(format!("unresolved overloaded primitive {prim}")))?;
                if tyargs.len() != sig.tyvars {
                    return Err(err(format!(
                        "primitive {prim} expects {} type arguments, got {}",
                        sig.tyvars,
                        tyargs.len()
                    )));
                }
                if args.len() != sig.args.len() {
                    return Err(err(format!(
                        "primitive {prim} expects {} arguments, got {}",
                        sig.args.len(),
                        args.len()
                    )));
                }
                let map: HashMap<TyVar, LTy> = (0..sig.tyvars)
                    .map(|i| (TyVar(i as u32), tyargs[i].clone()))
                    .collect();
                for (a, want) in args.iter().zip(sig.args.iter()) {
                    let got = self.check(a)?;
                    let want = want.subst(&map);
                    self.expect(&format!("argument of {prim}"), &got, &want)?;
                }
                Ok(sig.ret.subst(&map))
            }
        }
    }

    fn check_switch(&mut self, sw: &LSwitch) -> Result<LTy> {
        match sw {
            LSwitch::Data {
                scrut,
                data,
                tyargs,
                arms,
                default,
                result_ty,
            } => {
                let sty = self.check(scrut)?;
                self.expect("data switch scrutinee", &sty, &LTy::Data(*data, tyargs.clone()))?;
                let info = self.denv.get(*data).clone();
                let mut covered = vec![false; info.cons.len()];
                for (tag, binder, arm) in arms {
                    if *tag >= info.cons.len() {
                        return Err(err(format!("switch arm tag {tag} out of range")));
                    }
                    covered[*tag] = true;
                    let carried = info.con_arg_ty(*tag, tyargs);
                    let old = match (binder, carried) {
                        (Some(v), Some(t)) => Some((*v, self.bind(*v, vec![], t))),
                        (None, _) => None,
                        (Some(v), None) => {
                            return Err(err(format!(
                                "arm for nullary constructor binds {v}"
                            )))
                        }
                    };
                    let aty = self.check(arm)?;
                    if let Some((v, o)) = old {
                        self.unbind(v, o);
                    }
                    self.expect("switch arm", &aty, result_ty)?;
                }
                match default {
                    Some(d) => {
                        let dty = self.check(d)?;
                        self.expect("switch default", &dty, result_ty)?;
                    }
                    None => {
                        if covered.iter().any(|c| !c) {
                            return Err(err(
                                "non-exhaustive data switch without default".to_string(),
                            ));
                        }
                    }
                }
                Ok(result_ty.clone())
            }
            LSwitch::Int {
                scrut,
                arms,
                default,
                result_ty,
            } => {
                let sty = self.check(scrut)?;
                if !matches!(sty, LTy::Int | LTy::Char) {
                    return Err(err(format!(
                        "int switch scrutinee has type {}",
                        sty.display(self.denv)
                    )));
                }
                for (_, arm) in arms {
                    let aty = self.check(arm)?;
                    self.expect("int switch arm", &aty, result_ty)?;
                }
                let dty = self.check(default)?;
                self.expect("int switch default", &dty, result_ty)?;
                Ok(result_ty.clone())
            }
            LSwitch::Str {
                scrut,
                arms,
                default,
                result_ty,
            } => {
                let sty = self.check(scrut)?;
                self.expect("string switch scrutinee", &sty, &LTy::Str)?;
                for (_, arm) in arms {
                    let aty = self.check(arm)?;
                    self.expect("string switch arm", &aty, result_ty)?;
                }
                let dty = self.check(default)?;
                self.expect("string switch default", &dty, result_ty)?;
                Ok(result_ty.clone())
            }
            LSwitch::Exn {
                scrut,
                arms,
                default,
                result_ty,
            } => {
                let sty = self.check(scrut)?;
                self.expect("exn switch scrutinee", &sty, &LTy::Exn)?;
                for (exn, binder, arm) in arms {
                    let info = self.eenv.get(*exn).clone();
                    let old = match (binder, &info.arg) {
                        (Some(v), Some(t)) => Some((*v, self.bind(*v, vec![], t.clone()))),
                        (None, _) => None,
                        (Some(v), None) => {
                            return Err(err(format!(
                                "arm for constant exception binds {v}"
                            )))
                        }
                    };
                    let aty = self.check(arm)?;
                    if let Some((v, o)) = old {
                        self.unbind(v, o);
                    }
                    self.expect("exn switch arm", &aty, result_ty)?;
                }
                let dty = self.check(default)?;
                self.expect("exn switch default", &dty, result_ty)?;
                Ok(result_ty.clone())
            }
        }
    }

    fn no_uvar(&self, t: &LTy) -> Result<()> {
        let mut ok = true;
        fn walk(t: &LTy, ok: &mut bool) {
            match t {
                LTy::Uvar(_) => *ok = false,
                LTy::Arrow(a, b) => {
                    walk(a, ok);
                    walk(b, ok);
                }
                LTy::Record(fs) => fs.iter().for_each(|(_, t)| walk(t, ok)),
                LTy::Data(_, args) => args.iter().for_each(|t| walk(t, ok)),
                LTy::Array(t) | LTy::Ref(t) => walk(t, ok),
                _ => {}
            }
        }
        walk(t, &mut ok);
        if ok {
            Ok(())
        } else {
            Err(err(format!(
                "unification variable survived zonking in {}",
                t.display(self.denv)
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{DataEnv, ExnEnv};
    use crate::prim::Prim;
    use crate::ty::TyVarSupply;
    use til_common::VarSupply;

    fn prog(body: LExp, ty: LTy) -> LProgram {
        let mut tvs = TyVarSupply::new();
        LProgram {
            data_env: DataEnv::with_builtins(tvs.fresh()),
            exn_env: ExnEnv::with_builtins(),
            body,
            body_ty: ty,
        }
    }

    #[test]
    fn literal_types() {
        assert!(typecheck(&prog(LExp::Int(3), LTy::Int)).is_ok());
        assert!(typecheck(&prog(LExp::Real(1.5), LTy::Real)).is_ok());
        assert!(typecheck(&prog(LExp::Int(3), LTy::Real)).is_err());
    }

    #[test]
    fn prim_application_checks() {
        let e = LExp::Prim {
            prim: Prim::IAdd,
            tyargs: vec![],
            args: vec![LExp::Int(1), LExp::Int(2)],
        };
        assert!(typecheck(&prog(e, LTy::Int)).is_ok());
        let bad = LExp::Prim {
            prim: Prim::IAdd,
            tyargs: vec![],
            args: vec![LExp::Int(1), LExp::Real(2.0)],
        };
        assert!(typecheck(&prog(bad, LTy::Int)).is_err());
    }

    #[test]
    fn polymorphic_let_and_instantiation() {
        let mut vs = VarSupply::new();
        let mut tvs = TyVarSupply::new();
        let denv = DataEnv::with_builtins(tvs.fresh());
        let a = tvs.fresh();
        let id = vs.fresh_named("id");
        let x = vs.fresh_named("x");
        // let id : ∀a. a -> a = fn x => x in id [int] 5
        let body = LExp::Let {
            var: id,
            tyvars: vec![a],
            rhs: Box::new(LExp::Fn {
                param: x,
                param_ty: LTy::Var(a),
                body: Box::new(LExp::var(x)),
            }),
            body: Box::new(LExp::App(
                Box::new(LExp::Var {
                    var: id,
                    tyargs: vec![LTy::Int],
                }),
                Box::new(LExp::Int(5)),
            )),
        };
        let p = LProgram {
            data_env: denv,
            exn_env: ExnEnv::with_builtins(),
            body,
            body_ty: LTy::Int,
        };
        assert!(typecheck(&p).is_ok());
    }

    #[test]
    fn value_restriction_enforced() {
        let mut vs = VarSupply::new();
        let mut tvs = TyVarSupply::new();
        let a = tvs.fresh();
        let v = vs.fresh();
        // let v : ∀a = (non-value) in 0  — must be rejected.
        let body = LExp::Let {
            var: v,
            tyvars: vec![a],
            rhs: Box::new(LExp::Prim {
                prim: Prim::IAdd,
                tyargs: vec![],
                args: vec![LExp::Int(1), LExp::Int(1)],
            }),
            body: Box::new(LExp::Int(0)),
        };
        assert!(typecheck(&prog(body, LTy::Int)).is_err());
    }

    #[test]
    fn data_switch_exhaustiveness() {
        use crate::env::DataId;
        let mk = |default: Option<LExp>, arms: Vec<(usize, Option<Var>, LExp)>| {
            LExp::Switch(Box::new(LSwitch::Data {
                scrut: LExp::bool(true),
                data: DataId::BOOL,
                tyargs: vec![],
                arms,
                default,
                result_ty: LTy::Int,
            }))
        };
        let full = mk(None, vec![(0, None, LExp::Int(0)), (1, None, LExp::Int(1))]);
        assert!(typecheck(&prog(full, LTy::Int)).is_ok());
        let partial = mk(None, vec![(0, None, LExp::Int(0))]);
        assert!(typecheck(&prog(partial, LTy::Int)).is_err());
        let defaulted = mk(Some(LExp::Int(9)), vec![(0, None, LExp::Int(0))]);
        assert!(typecheck(&prog(defaulted, LTy::Int)).is_ok());
    }

    #[test]
    fn raise_and_handle() {
        let mut vs = VarSupply::new();
        let hv = vs.fresh();
        let e = LExp::Handle {
            body: Box::new(LExp::Raise {
                exn: Box::new(LExp::ExnCon {
                    exn: crate::env::ExnId::DIV,
                    arg: None,
                }),
                ty: LTy::Int,
            }),
            handler_var: hv,
            handler: Box::new(LExp::Int(0)),
        };
        assert!(typecheck(&prog(e, LTy::Int)).is_ok());
    }

    #[test]
    fn unbound_variable_rejected() {
        let mut vs = VarSupply::new();
        let v = vs.fresh();
        assert!(typecheck(&prog(LExp::var(v), LTy::Int)).is_err());
    }
}
