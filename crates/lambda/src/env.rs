//! Datatype and exception environments, shared by every phase that still
//! reasons about source-level data (Lambda through Lmli).

use crate::ty::{LTy, TyVar};
use til_common::Symbol;

/// Identifies a datatype in the [`DataEnv`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DataId(pub u32);

impl DataId {
    /// The builtin `bool` datatype (`false` = tag 0, `true` = tag 1).
    pub const BOOL: DataId = DataId(0);
    /// The builtin `'a list` datatype (`nil` = tag 0, `::` = tag 1).
    pub const LIST: DataId = DataId(1);
}

/// One constructor of a datatype.
#[derive(Clone, Debug)]
pub struct ConInfo {
    /// Constructor name (e.g. `::`).
    pub name: Symbol,
    /// Carried type, mentioning the datatype's parameters; `None` for
    /// nullary constructors.
    pub arg: Option<LTy>,
}

/// One datatype definition.
#[derive(Clone, Debug)]
pub struct DataInfo {
    /// Datatype name.
    pub name: Symbol,
    /// Bound type parameters, referenced by constructor argument types.
    pub params: Vec<TyVar>,
    /// Constructors in declaration order; the index is the tag.
    pub cons: Vec<ConInfo>,
}

impl DataInfo {
    /// Number of nullary constructors.
    pub fn num_nullary(&self) -> usize {
        self.cons.iter().filter(|c| c.arg.is_none()).count()
    }

    /// Number of value-carrying constructors.
    pub fn num_carrying(&self) -> usize {
        self.cons.iter().filter(|c| c.arg.is_some()).count()
    }

    /// The carried type of constructor `tag` instantiated at `args`.
    pub fn con_arg_ty(&self, tag: usize, args: &[LTy]) -> Option<LTy> {
        let arg = self.cons[tag].arg.as_ref()?;
        let map = self
            .params
            .iter()
            .copied()
            .zip(args.iter().cloned())
            .collect();
        Some(arg.subst(&map))
    }
}

/// All datatypes of a compilation unit. Ids `BOOL` and `LIST` are
/// always present.
#[derive(Clone, Debug)]
pub struct DataEnv {
    datas: Vec<DataInfo>,
}

impl DataEnv {
    /// An environment pre-populated with the builtin `bool` and `list`
    /// datatypes. `list_param` must be a fresh type variable for the
    /// list element parameter.
    pub fn with_builtins(list_param: TyVar) -> DataEnv {
        let bool_info = DataInfo {
            name: Symbol::intern("bool"),
            params: vec![],
            cons: vec![
                ConInfo {
                    name: Symbol::intern("false"),
                    arg: None,
                },
                ConInfo {
                    name: Symbol::intern("true"),
                    arg: None,
                },
            ],
        };
        let a = LTy::Var(list_param);
        let list_info = DataInfo {
            name: Symbol::intern("list"),
            params: vec![list_param],
            cons: vec![
                ConInfo {
                    name: Symbol::intern("nil"),
                    arg: None,
                },
                ConInfo {
                    name: Symbol::intern("::"),
                    arg: Some(LTy::tuple(vec![
                        a.clone(),
                        LTy::Data(DataId::LIST, vec![a]),
                    ])),
                },
            ],
        };
        DataEnv {
            datas: vec![bool_info, list_info],
        }
    }

    /// Registers a new datatype and returns its id.
    pub fn define(&mut self, info: DataInfo) -> DataId {
        let id = DataId(self.datas.len() as u32);
        self.datas.push(info);
        id
    }

    /// Reserves an id with a stub definition (for mutually recursive
    /// `datatype ... and ...`); fill it later with [`DataEnv::set`].
    pub fn reserve(&mut self, name: Symbol) -> DataId {
        self.define(DataInfo {
            name,
            params: vec![],
            cons: vec![],
        })
    }

    /// Replaces the definition of `id`.
    pub fn set(&mut self, id: DataId, info: DataInfo) {
        self.datas[id.0 as usize] = info;
    }

    /// Looks up a datatype.
    pub fn get(&self, id: DataId) -> &DataInfo {
        &self.datas[id.0 as usize]
    }

    /// Iterates over all `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DataId, &DataInfo)> {
        self.datas
            .iter()
            .enumerate()
            .map(|(i, d)| (DataId(i as u32), d))
    }

    /// Number of datatypes defined.
    pub fn len(&self) -> usize {
        self.datas.len()
    }

    /// True when only builtins are present.
    pub fn is_empty(&self) -> bool {
        self.datas.len() <= 2
    }
}

/// Identifies an exception constructor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ExnId(pub u32);

impl ExnId {
    /// Pattern-match failure.
    pub const MATCH: ExnId = ExnId(0);
    /// `val` binding failure.
    pub const BIND: ExnId = ExnId(1);
    /// Integer division by zero.
    pub const DIV: ExnId = ExnId(2);
    /// Integer overflow.
    pub const OVERFLOW: ExnId = ExnId(3);
    /// Array/string index out of bounds.
    pub const SUBSCRIPT: ExnId = ExnId(4);
    /// Bad aggregate size.
    pub const SIZE: ExnId = ExnId(5);
    /// `chr` out of range.
    pub const CHR: ExnId = ExnId(6);
    /// Math domain error.
    pub const DOMAIN: ExnId = ExnId(7);
    /// Generic failure with a message.
    pub const FAIL: ExnId = ExnId(8);
    /// Empty-list errors from the basis.
    pub const EMPTY: ExnId = ExnId(9);
    /// `Option.valOf` failure.
    pub const OPTION: ExnId = ExnId(10);
}

/// One exception constructor.
#[derive(Clone, Debug)]
pub struct ExnInfo {
    /// Exception name.
    pub name: Symbol,
    /// Carried type, if any.
    pub arg: Option<LTy>,
}

/// All exception constructors of a compilation unit, pre-populated with
/// the standard basis exceptions at fixed ids.
#[derive(Clone, Debug)]
pub struct ExnEnv {
    exns: Vec<ExnInfo>,
}

impl Default for ExnEnv {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ExnEnv {
    /// The builtin exception environment.
    pub fn with_builtins() -> ExnEnv {
        let n = |s: &str| Symbol::intern(s);
        ExnEnv {
            exns: vec![
                ExnInfo { name: n("Match"), arg: None },
                ExnInfo { name: n("Bind"), arg: None },
                ExnInfo { name: n("Div"), arg: None },
                ExnInfo { name: n("Overflow"), arg: None },
                ExnInfo { name: n("Subscript"), arg: None },
                ExnInfo { name: n("Size"), arg: None },
                ExnInfo { name: n("Chr"), arg: None },
                ExnInfo { name: n("Domain"), arg: None },
                ExnInfo { name: n("Fail"), arg: Some(LTy::Str) },
                ExnInfo { name: n("Empty"), arg: None },
                ExnInfo { name: n("Option"), arg: None },
            ],
        }
    }

    /// Registers a new exception and returns its id.
    pub fn define(&mut self, info: ExnInfo) -> ExnId {
        let id = ExnId(self.exns.len() as u32);
        self.exns.push(info);
        id
    }

    /// Looks up an exception.
    pub fn get(&self, id: ExnId) -> &ExnInfo {
        &self.exns[id.0 as usize]
    }

    /// Number of exceptions defined.
    pub fn len(&self) -> usize {
        self.exns.len()
    }

    /// Always false; the builtins are pre-registered.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TyVarSupply;

    #[test]
    fn builtins_have_fixed_ids() {
        let mut tvs = TyVarSupply::new();
        let denv = DataEnv::with_builtins(tvs.fresh());
        assert_eq!(denv.get(DataId::BOOL).name.as_str(), "bool");
        assert_eq!(denv.get(DataId::LIST).name.as_str(), "list");
        assert_eq!(denv.get(DataId::BOOL).cons[1].name.as_str(), "true");
    }

    #[test]
    fn cons_cell_type_instantiates() {
        let mut tvs = TyVarSupply::new();
        let denv = DataEnv::with_builtins(tvs.fresh());
        let list = denv.get(DataId::LIST);
        let arg = list.con_arg_ty(1, &[LTy::Int]).unwrap();
        assert_eq!(
            arg,
            LTy::tuple(vec![LTy::Int, LTy::Data(DataId::LIST, vec![LTy::Int])])
        );
    }

    #[test]
    fn exn_builtin_ids_match() {
        let env = ExnEnv::with_builtins();
        assert_eq!(env.get(ExnId::DIV).name.as_str(), "Div");
        assert_eq!(env.get(ExnId::FAIL).arg, Some(LTy::Str));
    }
}
