//! **Bform** — TIL's A-normal-form intermediate language (paper §3.3).
//!
//! Bform is the restricted subset of Lmli on which every optimization
//! pass runs: all intermediate computations and heap values are named,
//! atoms are variables or integer constants, and nested expressions
//! occur only inside switch/typecase/handler arms. The conversion from
//! Lmli ([`from_lmli`]) also alpha-converts, establishing the
//! globally-unique-binders invariant that [`typecheck_bform`] verifies
//! after every pass.

pub mod from_lmli;
pub mod ir;
pub mod print;
pub mod typecheck;

pub use from_lmli::from_lmli;
pub use ir::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
pub use typecheck::{infer_var_cons, typecheck_bform};
