//! Lmli→Bform linearization (the paper's §3.3 conversion): names every
//! intermediate computation and heap value, and alpha-converts so every
//! binder in the program is globally unique — the precondition all the
//! optimizer passes rely on.

use crate::ir::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
use std::collections::HashMap;
use til_common::{Diagnostic, Result, Var, VarSupply};
use til_lmli::{MExp, MFun, MProgram, MSwitch};

/// Linearizes a whole program.
pub fn from_lmli(m: &MProgram, vs: &mut VarSupply) -> Result<BProgram> {
    let mut lin = Lin {
        vs,
        rename: HashMap::new(),
    };
    let body = lin.tail(&m.body)?;
    Ok(BProgram {
        data: m.data.clone(),
        exns: m.exns.clone(),
        body,
        con: m.con.clone(),
    })
}

enum Bind {
    Let(Var, BRhs),
    Fix(Vec<BFun>),
}

struct Lin<'a> {
    vs: &'a mut VarSupply,
    rename: HashMap<Var, Var>,
}

impl<'a> Lin<'a> {
    fn fresh_for(&mut self, v: Var) -> Var {
        let nv = self.vs.rename(v);
        self.rename.insert(v, nv);
        nv
    }

    fn lookup(&self, v: Var) -> Result<Var> {
        self.rename
            .get(&v)
            .copied()
            .ok_or_else(|| Diagnostic::ice("to-bform", format!("unbound variable {v}")))
    }

    fn wrap(binds: Vec<Bind>, tail: BExp) -> BExp {
        let mut e = tail;
        for b in binds.into_iter().rev() {
            e = match b {
                Bind::Let(var, rhs) => BExp::Let {
                    var,
                    rhs,
                    body: Box::new(e),
                },
                Bind::Fix(funs) => BExp::Fix {
                    funs,
                    body: Box::new(e),
                },
            };
        }
        e
    }

    /// Converts `e` in tail position.
    fn tail(&mut self, e: &MExp) -> Result<BExp> {
        let mut binds = Vec::new();
        let a = self.atom(e, &mut binds)?;
        Ok(Self::wrap(binds, BExp::Ret(a)))
    }

    /// Converts `e` to an atom, accumulating bindings.
    fn atom(&mut self, e: &MExp, binds: &mut Vec<Bind>) -> Result<Atom> {
        match e {
            MExp::Var(v) => Ok(Atom::Var(self.lookup(*v)?)),
            MExp::Int(n) => Ok(Atom::Int(*n)),
            MExp::Fix { funs, body } => {
                let bfuns = self.fix(funs)?;
                binds.push(Bind::Fix(bfuns));
                self.atom(body, binds)
            }
            MExp::Let { var, rhs, body } => {
                let r = self.rhs(rhs, binds)?;
                let nv = self.fresh_for(*var);
                binds.push(Bind::Let(nv, r));
                self.atom(body, binds)
            }
            other => {
                let r = self.rhs(other, binds)?;
                let nv = self.vs.fresh();
                binds.push(Bind::Let(nv, r));
                Ok(Atom::Var(nv))
            }
        }
    }

    fn fix(&mut self, funs: &[MFun]) -> Result<Vec<BFun>> {
        // Names first (mutual recursion), then bodies.
        let names: Vec<Var> = funs.iter().map(|f| self.fresh_for(f.var)).collect();
        let mut out = Vec::with_capacity(funs.len());
        for (f, nv) in funs.iter().zip(names) {
            let params: Vec<(Var, til_lmli::Con)> = f
                .params
                .iter()
                .map(|(v, c)| (self.fresh_for(*v), c.clone()))
                .collect();
            let body = self.tail(&f.body)?;
            out.push(BFun {
                var: nv,
                cparams: f.cparams.clone(),
                params,
                ret: f.ret.clone(),
                body,
            });
        }
        Ok(out)
    }

    /// Converts `e` to a right-hand side, accumulating bindings for its
    /// subcomputations.
    fn rhs(&mut self, e: &MExp, binds: &mut Vec<Bind>) -> Result<BRhs> {
        match e {
            MExp::Var(v) => Ok(BRhs::Atom(Atom::Var(self.lookup(*v)?))),
            MExp::Int(n) => Ok(BRhs::Atom(Atom::Int(*n))),
            MExp::Float(r) => Ok(BRhs::Float(*r)),
            MExp::Str(s) => Ok(BRhs::Str(s.clone())),
            MExp::Fix { funs, body } => {
                let bfuns = self.fix(funs)?;
                binds.push(Bind::Fix(bfuns));
                self.rhs(body, binds)
            }
            MExp::Let { var, rhs, body } => {
                let r = self.rhs(rhs, binds)?;
                let nv = self.fresh_for(*var);
                binds.push(Bind::Let(nv, r));
                self.rhs(body, binds)
            }
            MExp::Record(fs) => {
                let mut atoms = Vec::with_capacity(fs.len());
                for f in fs {
                    atoms.push(self.atom(f, binds)?);
                }
                Ok(BRhs::Record(atoms))
            }
            MExp::Select(i, e2) => {
                let a = self.atom(e2, binds)?;
                Ok(BRhs::Select(*i, a))
            }
            MExp::Con {
                data,
                cargs,
                tag,
                args,
            } => {
                let mut atoms = Vec::with_capacity(args.len());
                for a in args {
                    atoms.push(self.atom(a, binds)?);
                }
                Ok(BRhs::Con {
                    data: *data,
                    cargs: cargs.clone(),
                    tag: *tag,
                    args: atoms,
                })
            }
            MExp::ExnCon { exn, arg } => {
                let a = match arg {
                    Some(a) => Some(self.atom(a, binds)?),
                    None => None,
                };
                Ok(BRhs::ExnCon { exn: *exn, arg: a })
            }
            MExp::Prim { prim, cargs, args } => {
                let mut atoms = Vec::with_capacity(args.len());
                for a in args {
                    atoms.push(self.atom(a, binds)?);
                }
                Ok(BRhs::Prim {
                    prim: *prim,
                    cargs: cargs.clone(),
                    args: atoms,
                })
            }
            MExp::App { f, cargs, args } => {
                let fa = self.atom(f, binds)?;
                let mut atoms = Vec::with_capacity(args.len());
                for a in args {
                    atoms.push(self.atom(a, binds)?);
                }
                Ok(BRhs::App {
                    f: fa,
                    cargs: cargs.clone(),
                    args: atoms,
                })
            }
            MExp::Raise { exn, con } => {
                let a = self.atom(exn, binds)?;
                Ok(BRhs::Raise {
                    exn: a,
                    con: con.clone(),
                })
            }
            MExp::Handle { body, var, handler } => {
                let b = self.tail(body)?;
                let nv = self.fresh_for(*var);
                let h = self.tail(handler)?;
                Ok(BRhs::Handle {
                    body: Box::new(b),
                    var: nv,
                    handler: Box::new(h),
                })
            }
            MExp::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => Ok(BRhs::Typecase {
                scrut: scrut.clone(),
                int: Box::new(self.tail(int)?),
                float: Box::new(self.tail(float)?),
                ptr: Box::new(self.tail(ptr)?),
                con: con.clone(),
            }),
            MExp::Switch(sw) => Ok(BRhs::Switch(self.switch(sw, binds)?)),
        }
    }

    fn switch(&mut self, sw: &MSwitch, binds: &mut Vec<Bind>) -> Result<BSwitch> {
        match sw {
            MSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => {
                let s = self.atom(scrut, binds)?;
                let mut out = Vec::with_capacity(arms.len());
                for (k, a) in arms {
                    out.push((*k, self.tail(a)?));
                }
                Ok(BSwitch::Int {
                    scrut: s,
                    arms: out,
                    default: Box::new(self.tail(default)?),
                    con: con.clone(),
                })
            }
            MSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => {
                let s = self.atom(scrut, binds)?;
                let mut out = Vec::with_capacity(arms.len());
                for (tag, vars, a) in arms {
                    let nvars: Vec<Var> = vars.iter().map(|v| self.fresh_for(*v)).collect();
                    out.push((*tag, nvars, self.tail(a)?));
                }
                let d = match default {
                    Some(d) => Some(Box::new(self.tail(d)?)),
                    None => None,
                };
                Ok(BSwitch::Data {
                    scrut: s,
                    data: *data,
                    cargs: cargs.clone(),
                    arms: out,
                    default: d,
                    con: con.clone(),
                })
            }
            MSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => {
                let s = self.atom(scrut, binds)?;
                let mut out = Vec::with_capacity(arms.len());
                for (k, a) in arms {
                    out.push((k.clone(), self.tail(a)?));
                }
                Ok(BSwitch::Str {
                    scrut: s,
                    arms: out,
                    default: Box::new(self.tail(default)?),
                    con: con.clone(),
                })
            }
            MSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => {
                let s = self.atom(scrut, binds)?;
                let mut out = Vec::with_capacity(arms.len());
                for (id, binder, a) in arms {
                    let nb = binder.map(|v| self.fresh_for(v));
                    out.push((*id, nb, self.tail(a)?));
                }
                Ok(BSwitch::Exn {
                    scrut: s,
                    arms: out,
                    default: Box::new(self.tail(default)?),
                    con: con.clone(),
                })
            }
        }
    }
}
