//! The Bform IR.
//!
//! Bform is the paper's A-normal-form subset of Lmli (§3.3, after
//! Flanagan et al.): every intermediate computation is named by a
//! `let`, every potentially heap-allocated value (strings, records,
//! functions) is named, atoms are variables or integer constants, and
//! nested expressions appear only inside the arms of switches,
//! typecases, and handlers. There is no explicit tail-call form — the
//! paper's Figure 4 binds even the recursive `dot(h,g)` call to a
//! variable and returns it; tail positions are recovered during RTL
//! conversion.

use til_common::Var;
use til_lambda::env::{DataId, ExnId};
pub use til_lmli::con::{CVar, Con};
pub use til_lmli::data::{MDataEnv, MExnEnv};
pub use til_lmli::prim::MPrim;

/// A complete Bform program.
#[derive(Clone, Debug)]
pub struct BProgram {
    /// Datatype representations.
    pub data: MDataEnv,
    /// Exception argument representations.
    pub exns: MExnEnv,
    /// Whole-program body.
    pub body: BExp,
    /// Its constructor.
    pub con: Con,
}

/// An atom: a value that needs no computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A variable.
    Var(Var),
    /// An integer constant (also bools, chars, enum constructors).
    Int(i64),
}

impl Atom {
    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Atom::Var(v) => Some(*v),
            Atom::Int(_) => None,
        }
    }
}

/// One function of a Bform `fix` nest.
#[derive(Clone, Debug)]
pub struct BFun {
    /// Name.
    pub var: Var,
    /// Run-time type parameters.
    pub cparams: Vec<CVar>,
    /// Value parameters.
    pub params: Vec<(Var, Con)>,
    /// Result constructor.
    pub ret: Con,
    /// Body.
    pub body: BExp,
}

impl BFun {
    /// The function's constructor.
    pub fn con(&self) -> Con {
        Con::Arrow {
            cparams: self.cparams.clone(),
            params: self.params.iter().map(|(_, c)| c.clone()).collect(),
            ret: Box::new(self.ret.clone()),
        }
    }
}

/// A Bform expression: a linear sequence of bindings ending in a
/// return or a raise.
#[derive(Clone, Debug)]
pub enum BExp {
    /// `let var = rhs in body`.
    Let {
        /// Bound variable.
        var: Var,
        /// Right-hand side.
        rhs: BRhs,
        /// Continuation.
        body: Box<BExp>,
    },
    /// Named mutually recursive functions.
    Fix {
        /// The nest.
        funs: Vec<BFun>,
        /// Scope.
        body: Box<BExp>,
    },
    /// Return an atom (to the enclosing function *or* to the `let`
    /// binding of an enclosing switch/typecase/handle arm).
    Ret(Atom),
}

/// A right-hand side.
#[derive(Clone, Debug)]
pub enum BRhs {
    /// Copy an atom.
    Atom(Atom),
    /// Unboxed float constant.
    Float(f64),
    /// String constant (heap-allocated, hence named).
    Str(String),
    /// Record allocation.
    Record(Vec<Atom>),
    /// Positional selection.
    Select(usize, Atom),
    /// Datatype constructor (flattened fields).
    Con {
        /// Datatype.
        data: DataId,
        /// Instantiation.
        cargs: Vec<Con>,
        /// Tag.
        tag: usize,
        /// Fields.
        args: Vec<Atom>,
    },
    /// Exception packet.
    ExnCon {
        /// Exception.
        exn: ExnId,
        /// Carried value.
        arg: Option<Atom>,
    },
    /// Primitive application.
    Prim {
        /// Operation.
        prim: MPrim,
        /// Type arguments.
        cargs: Vec<Con>,
        /// Arguments.
        args: Vec<Atom>,
    },
    /// Function call (tail-ness recovered later).
    App {
        /// Callee.
        f: Atom,
        /// Run-time type arguments.
        cargs: Vec<Con>,
        /// Value arguments.
        args: Vec<Atom>,
    },
    /// Multi-way branch; the arms' `Ret`s deliver the bound value.
    Switch(BSwitch),
    /// Intensional type analysis; arm `Ret`s deliver the bound value.
    Typecase {
        /// Analyzed constructor.
        scrut: Con,
        /// Int arm.
        int: Box<BExp>,
        /// Float arm (scrutinee refines to `Boxed`).
        float: Box<BExp>,
        /// Pointer arm.
        ptr: Box<BExp>,
        /// Result constructor.
        con: Con,
    },
    /// Exception handler; `body`'s `Ret` or `handler`'s `Ret` delivers
    /// the bound value.
    Handle {
        /// Protected body.
        body: Box<BExp>,
        /// Bound to the packet in the handler.
        var: Var,
        /// Handler.
        handler: Box<BExp>,
    },
    /// Raise (the binding never actually receives a value; the
    /// continuation is unreachable).
    Raise {
        /// Packet.
        exn: Atom,
        /// The type the context expects.
        con: Con,
    },
}

/// A multi-way branch over atoms.
#[derive(Clone, Debug)]
pub enum BSwitch {
    /// On an integer.
    Int {
        /// Scrutinee.
        scrut: Atom,
        /// `(value, arm)`.
        arms: Vec<(i64, BExp)>,
        /// Fallback.
        default: Box<BExp>,
        /// Result constructor.
        con: Con,
    },
    /// On a non-enum datatype constructor, binding flattened fields.
    Data {
        /// Scrutinee.
        scrut: Atom,
        /// Datatype.
        data: DataId,
        /// Instantiation.
        cargs: Vec<Con>,
        /// `(tag, field binders, arm)`.
        arms: Vec<(usize, Vec<Var>, BExp)>,
        /// Fallback (`None` when exhaustive).
        default: Option<Box<BExp>>,
        /// Result constructor.
        con: Con,
    },
    /// On a string.
    Str {
        /// Scrutinee.
        scrut: Atom,
        /// `(value, arm)`.
        arms: Vec<(String, BExp)>,
        /// Fallback.
        default: Box<BExp>,
        /// Result constructor.
        con: Con,
    },
    /// On an exception constructor.
    Exn {
        /// Scrutinee.
        scrut: Atom,
        /// `(exception, binder, arm)`.
        arms: Vec<(ExnId, Option<Var>, BExp)>,
        /// Fallback.
        default: Box<BExp>,
        /// Result constructor.
        con: Con,
    },
}

impl BExp {
    /// Counts nodes (bindings + tails), for inliner size budgets.
    pub fn size(&self) -> usize {
        match self {
            BExp::Let { rhs, body, .. } => 1 + rhs.size() + body.size(),
            BExp::Fix { funs, body } => {
                1 + funs.iter().map(|f| f.body.size()).sum::<usize>() + body.size()
            }
            BExp::Ret(_) => 1,
        }
    }
}

impl BRhs {
    /// Counts nodes.
    pub fn size(&self) -> usize {
        match self {
            BRhs::Switch(sw) => match sw {
                BSwitch::Int { arms, default, .. } => {
                    1 + arms.iter().map(|(_, a)| a.size()).sum::<usize>() + default.size()
                }
                BSwitch::Data { arms, default, .. } => {
                    1 + arms.iter().map(|(_, _, a)| a.size()).sum::<usize>()
                        + default.as_ref().map_or(0, |d| d.size())
                }
                BSwitch::Str { arms, default, .. } => {
                    1 + arms.iter().map(|(_, a)| a.size()).sum::<usize>() + default.size()
                }
                BSwitch::Exn { arms, default, .. } => {
                    1 + arms.iter().map(|(_, _, a)| a.size()).sum::<usize>() + default.size()
                }
            },
            BRhs::Typecase {
                int, float, ptr, ..
            } => 1 + int.size() + float.size() + ptr.size(),
            BRhs::Handle { body, handler, .. } => 1 + body.size() + handler.size(),
            _ => 1,
        }
    }

    /// True when evaluating this RHS can have no observable effect
    /// (used by dead-code elimination). Switches and similar are
    /// conservatively judged by their sub-expressions' RHSs.
    pub fn is_pure(&self, pure_fun: &impl Fn(Var) -> bool) -> bool {
        match self {
            BRhs::Atom(_)
            | BRhs::Float(_)
            | BRhs::Str(_)
            | BRhs::Record(_)
            | BRhs::Select(..)
            | BRhs::Con { .. }
            | BRhs::ExnCon { .. } => true,
            BRhs::Prim { prim, .. } => prim.is_pure(),
            BRhs::App { f, .. } => f.as_var().is_some_and(pure_fun),
            BRhs::Raise { .. } => false,
            BRhs::Switch(sw) => {
                let arms_pure = |exps: Vec<&BExp>| exps.iter().all(|e| e.is_pure(pure_fun));
                match sw {
                    BSwitch::Int { arms, default, .. } => arms_pure(
                        arms.iter()
                            .map(|(_, a)| a)
                            .chain(std::iter::once(&**default))
                            .collect(),
                    ),
                    BSwitch::Data { arms, default, .. } => arms_pure(
                        arms.iter()
                            .map(|(_, _, a)| a)
                            .chain(default.iter().map(|d| &**d))
                            .collect(),
                    ),
                    BSwitch::Str { arms, default, .. } => arms_pure(
                        arms.iter()
                            .map(|(_, a)| a)
                            .chain(std::iter::once(&**default))
                            .collect(),
                    ),
                    BSwitch::Exn { arms, default, .. } => arms_pure(
                        arms.iter()
                            .map(|(_, _, a)| a)
                            .chain(std::iter::once(&**default))
                            .collect(),
                    ),
                }
            }
            BRhs::Typecase {
                int, float, ptr, ..
            } => int.is_pure(pure_fun) && float.is_pure(pure_fun) && ptr.is_pure(pure_fun),
            // A handler that is reached discards an effect (the raise),
            // so treat handles conservatively.
            BRhs::Handle { .. } => false,
        }
    }
}

impl BExp {
    /// True when the expression performs no observable effects.
    pub fn is_pure(&self, pure_fun: &impl Fn(Var) -> bool) -> bool {
        match self {
            BExp::Ret(_) => true,
            BExp::Let { rhs, body, .. } => rhs.is_pure(pure_fun) && body.is_pure(pure_fun),
            BExp::Fix { body, .. } => body.is_pure(pure_fun),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_accumulate() {
        let mut vs = til_common::VarSupply::new();
        let v = vs.fresh();
        let e = BExp::Let {
            var: v,
            rhs: BRhs::Record(vec![Atom::Int(1), Atom::Int(2)]),
            body: Box::new(BExp::Ret(Atom::Var(v))),
        };
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn purity_judgement() {
        let never = |_v: til_common::Var| false;
        assert!(BRhs::Record(vec![Atom::Int(1)]).is_pure(&never));
        assert!(!BRhs::Prim {
            prim: MPrim::Print,
            cargs: vec![],
            args: vec![Atom::Int(0)]
        }
        .is_pure(&never));
        assert!(!BRhs::Prim {
            prim: MPrim::IAdd,
            cargs: vec![],
            args: vec![Atom::Int(1), Atom::Int(2)]
        }
        .is_pure(&never));
        assert!(BRhs::Prim {
            prim: MPrim::ILt,
            cargs: vec![],
            args: vec![Atom::Int(1), Atom::Int(2)]
        }
        .is_pure(&never));
    }
}
