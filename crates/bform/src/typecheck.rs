//! The Bform typechecker: the Lmli rules restricted to A-normal form,
//! plus the Bform structural invariant that every binder is globally
//! unique (the optimizer depends on it).

use crate::ir::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
use std::collections::{HashMap, HashSet};
use til_common::{Diagnostic, Result, Var};
use til_lmli::con::{CVar, Con, RepClass};
use til_lmli::data::{DataRep, MDataEnv, MExnEnv};
use til_lmli::prim::MPrim;
use til_lmli::typecheck::{ConCtx, Refinement};

const PHASE: &str = "bform-typecheck";

fn err(msg: String) -> Diagnostic {
    Diagnostic::ice(PHASE, msg)
}

/// Typechecks a Bform program and returns the constructor of every
/// bound variable (used by closure conversion to type captures).
pub fn infer_var_cons(p: &BProgram) -> Result<HashMap<Var, Con>> {
    let mut tc = Tc {
        exns: &p.exns,
        vars: HashMap::new(),
        cscope: Vec::new(),
        seen: HashSet::new(),
        cx: ConCtx::new(&p.data),
    };
    tc.exp(&p.body)?;
    Ok(tc.vars)
}

/// Typechecks a Bform program, returning its constructor.
pub fn typecheck_bform(p: &BProgram) -> Result<Con> {
    let mut tc = Tc {
        exns: &p.exns,
        vars: HashMap::new(),
        cscope: Vec::new(),
        seen: HashSet::new(),
        cx: ConCtx::new(&p.data),
    };
    let con = tc.exp(&p.body)?;
    if !tc.cx.eq(&con, &p.con) {
        return Err(err(format!(
            "program body constructor mismatch: computed {con:?}, recorded {:?}",
            p.con
        )));
    }
    Ok(con)
}

struct Tc<'a> {
    exns: &'a MExnEnv,
    vars: HashMap<Var, Con>,
    cscope: Vec<CVar>,
    seen: HashSet<Var>,
    cx: ConCtx<'a>,
}

impl<'a> Tc<'a> {
    fn data(&self) -> &MDataEnv {
        self.cx.data
    }

    fn bind(&mut self, v: Var, c: Con) -> Result<()> {
        if !self.seen.insert(v) {
            return Err(err(format!("binder {v} is not globally unique")));
        }
        self.vars.insert(v, c);
        Ok(())
    }

    fn atom(&self, a: &Atom) -> Result<Con> {
        match a {
            Atom::Int(_) => Ok(Con::Int),
            Atom::Var(v) => self
                .vars
                .get(v)
                .cloned()
                .ok_or_else(|| err(format!("unbound variable {v}"))),
        }
    }

    fn scope_check(&self, c: &Con) -> Result<()> {
        let mut free = Vec::new();
        c.free_cvars(&mut free);
        for v in free {
            if !self.cscope.contains(&v) {
                return Err(err(format!("constructor variable {v} out of scope")));
            }
        }
        Ok(())
    }

    fn exp(&mut self, e: &BExp) -> Result<Con> {
        match e {
            BExp::Ret(a) => self.atom(a),
            BExp::Let { var, rhs, body } => {
                let c = self.rhs(rhs, *var)?;
                self.bind(*var, c)?;
                self.exp(body)
            }
            BExp::Fix { funs, body } => {
                for f in funs {
                    let c = f.con();
                    self.bind(f.var, c)?;
                }
                for f in funs {
                    self.fun(f)?;
                }
                self.exp(body)
            }
        }
    }

    fn fun(&mut self, f: &BFun) -> Result<()> {
        let n = self.cscope.len();
        self.cscope.extend_from_slice(&f.cparams);
        for (v, c) in &f.params {
            self.scope_check(c)?;
            self.bind(*v, c.clone())?;
        }
        let got = self.exp(&f.body)?;
        self.cx
            .expect(&format!("body of {}", f.var), &got, &f.ret)?;
        self.cscope.truncate(n);
        Ok(())
    }

    fn rhs(&mut self, r: &BRhs, bound: Var) -> Result<Con> {
        let _ = bound;
        match r {
            BRhs::Atom(a) => self.atom(a),
            BRhs::Float(_) => Ok(Con::Float),
            BRhs::Str(_) => Ok(Con::Str),
            BRhs::Record(atoms) => {
                let mut cons = Vec::with_capacity(atoms.len());
                for a in atoms {
                    cons.push(self.atom(a)?);
                }
                Ok(Con::Record(cons))
            }
            BRhs::Select(i, a) => {
                let c = self.atom(a)?;
                match self.cx.norm(&c) {
                    Con::Record(fs) if *i < fs.len() => Ok(fs[*i].clone()),
                    other => Err(err(format!("selection #{i} from {other:?}"))),
                }
            }
            BRhs::Con {
                data,
                cargs,
                tag,
                args,
            } => {
                let md = self.data().get(*data);
                if md.is_enum() {
                    return Err(err("constructor node for enum datatype".into()));
                }
                match md.fields_at(*tag, cargs) {
                    None => {
                        if !args.is_empty() {
                            return Err(err("nullary constructor with fields".into()));
                        }
                    }
                    Some(fields) => {
                        if fields.len() != args.len() {
                            return Err(err("constructor field arity".into()));
                        }
                        for (a, want) in args.iter().zip(&fields) {
                            let got = self.atom(a)?;
                            self.cx.expect("constructor field", &got, want)?;
                        }
                    }
                }
                Ok(Con::Data(*data, cargs.clone()))
            }
            BRhs::ExnCon { exn, arg } => {
                match (self.exns.arg(*exn).cloned(), arg) {
                    (None, None) => {}
                    (Some(want), Some(a)) => {
                        let got = self.atom(a)?;
                        self.cx.expect("exception argument", &got, &want)?;
                    }
                    _ => return Err(err("exception argument arity".into())),
                }
                Ok(Con::Exn)
            }
            BRhs::Prim { prim, cargs, args } => {
                if matches!(prim, MPrim::ALen) {
                    let got = self.atom(&args[0])?;
                    return match self.cx.norm(&got) {
                        Con::Array(_) | Con::SpecArray(_) => Ok(Con::Int),
                        other => Err(err(format!("length of {other:?}"))),
                    };
                }
                let sig = prim.sig();
                if sig.cparams != cargs.len() || sig.args.len() != args.len() {
                    return Err(err(format!("primitive {prim} arity mismatch")));
                }
                let map: HashMap<CVar, Con> = (0..sig.cparams)
                    .map(|i| (CVar(i as u32), cargs[i].clone()))
                    .collect();
                for (a, want) in args.iter().zip(&sig.args) {
                    let got = self.atom(a)?;
                    let want = want.subst(&map);
                    self.cx
                        .expect(&format!("argument of {prim}"), &got, &want)?;
                }
                Ok(sig.ret.subst(&map))
            }
            BRhs::App { f, cargs, args } => {
                let fcon = self.atom(f)?;
                let Con::Arrow {
                    cparams,
                    params,
                    ret,
                } = self.cx.norm(&fcon)
                else {
                    return Err(err(format!(
                        "application of non-function {:?}",
                        self.cx.norm(&fcon)
                    )));
                };
                if cparams.len() != cargs.len() || params.len() != args.len() {
                    return Err(err("application arity mismatch".into()));
                }
                for c in cargs {
                    self.scope_check(c)?;
                }
                let map: HashMap<CVar, Con> = cparams
                    .iter()
                    .copied()
                    .zip(cargs.iter().cloned())
                    .collect();
                for (a, p) in args.iter().zip(&params) {
                    let got = self.atom(a)?;
                    let want = p.subst(&map);
                    self.cx.expect("application argument", &got, &want)?;
                }
                Ok(ret.subst(&map))
            }
            BRhs::Raise { exn, con } => {
                let got = self.atom(exn)?;
                self.cx.expect("raise operand", &got, &Con::Exn)?;
                Ok(con.clone())
            }
            BRhs::Handle { body, var, handler } => {
                let bcon = self.exp(body)?;
                self.bind(*var, Con::Exn)?;
                let hcon = self.exp(handler)?;
                self.cx.expect("handler", &hcon, &bcon)?;
                Ok(bcon)
            }
            BRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => {
                let s = self.cx.norm(scrut);
                match self.cx.tag_of(&s) {
                    RepClass::Int => {
                        let got = self.exp(int)?;
                        self.cx.expect("typecase int arm", &got, con)?;
                        Ok(con.clone())
                    }
                    RepClass::Float => {
                        let got = self.exp(float)?;
                        self.cx.expect("typecase float arm", &got, con)?;
                        Ok(con.clone())
                    }
                    RepClass::Ptr => {
                        let got = self.exp(ptr)?;
                        self.cx.expect("typecase ptr arm", &got, con)?;
                        Ok(con.clone())
                    }
                    RepClass::Unknown => {
                        let Con::Var(v) = s else {
                            return Err(err(format!("typecase on irreducible {s:?}")));
                        };
                        let old = self.cx.refine.insert(v, Refinement::Exact(Con::Int));
                        let got = self.exp(int)?;
                        self.cx.expect("typecase int arm", &got, con)?;
                        self.cx.refine.insert(v, Refinement::Exact(Con::Boxed));
                        let got = self.exp(float)?;
                        self.cx.expect("typecase float arm", &got, con)?;
                        self.cx.refine.insert(v, Refinement::PtrClass);
                        let got = self.exp(ptr)?;
                        self.cx.expect("typecase ptr arm", &got, con)?;
                        match old {
                            Some(o) => {
                                self.cx.refine.insert(v, o);
                            }
                            None => {
                                self.cx.refine.remove(&v);
                            }
                        }
                        Ok(con.clone())
                    }
                }
            }
            BRhs::Switch(sw) => self.switch(sw),
        }
    }

    fn switch(&mut self, sw: &BSwitch) -> Result<Con> {
        match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => {
                let got = self.atom(scrut)?;
                self.cx.expect("int switch scrutinee", &got, &Con::Int)?;
                for (_, a) in arms {
                    let ac = self.exp(a)?;
                    self.cx.expect("int switch arm", &ac, con)?;
                }
                let dc = self.exp(default)?;
                self.cx.expect("int switch default", &dc, con)?;
                Ok(con.clone())
            }
            BSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => {
                let got = self.atom(scrut)?;
                self.cx
                    .expect("data switch scrutinee", &got, &Con::Data(*data, cargs.clone()))?;
                let md = self.data().get(*data).clone();
                if matches!(md.rep, DataRep::Enum) {
                    return Err(err("data switch on enum".into()));
                }
                let mut covered = vec![false; md.cons.len()];
                for (tag, binders, arm) in arms {
                    covered[*tag] = true;
                    match md.fields_at(*tag, cargs) {
                        None => {
                            if !binders.is_empty() {
                                return Err(err("binders on nullary arm".into()));
                            }
                        }
                        Some(fs) => {
                            if fs.len() != binders.len() {
                                return Err(err("arm binder arity".into()));
                            }
                            for (v, c) in binders.iter().zip(fs) {
                                self.bind(*v, c)?;
                            }
                        }
                    }
                    let ac = self.exp(arm)?;
                    self.cx.expect("data switch arm", &ac, con)?;
                }
                match default {
                    Some(d) => {
                        let dc = self.exp(d)?;
                        self.cx.expect("data switch default", &dc, con)?;
                    }
                    None => {
                        if covered.iter().any(|c| !c) {
                            return Err(err("non-exhaustive data switch".into()));
                        }
                    }
                }
                Ok(con.clone())
            }
            BSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => {
                let got = self.atom(scrut)?;
                self.cx.expect("string switch scrutinee", &got, &Con::Str)?;
                for (_, a) in arms {
                    let ac = self.exp(a)?;
                    self.cx.expect("string switch arm", &ac, con)?;
                }
                let dc = self.exp(default)?;
                self.cx.expect("string switch default", &dc, con)?;
                Ok(con.clone())
            }
            BSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => {
                let got = self.atom(scrut)?;
                self.cx.expect("exn switch scrutinee", &got, &Con::Exn)?;
                for (id, binder, a) in arms {
                    match (binder, self.exns.arg(*id).cloned()) {
                        (Some(v), Some(c)) => self.bind(*v, c)?,
                        (None, _) => {}
                        (Some(_), None) => {
                            return Err(err("binder on constant exception".into()))
                        }
                    }
                    let ac = self.exp(a)?;
                    self.cx.expect("exn switch arm", &ac, con)?;
                }
                let dc = self.exp(default)?;
                self.cx.expect("exn switch default", &dc, con)?;
                Ok(con.clone())
            }
        }
    }
}
