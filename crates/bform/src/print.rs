//! Bform pretty printer, in the style of the paper's Figures 3–4.

use crate::ir::{Atom, BExp, BProgram, BRhs, BSwitch};
use til_common::pretty::Printer;
use til_lmli::data::MDataEnv;

/// Renders a whole program.
pub fn program(p: &BProgram) -> String {
    let mut pr = Printer::new();
    exp(&mut pr, &p.body, &p.data);
    pr.finish()
}

/// Renders one expression.
pub fn exp_to_string(e: &BExp, data: &MDataEnv) -> String {
    let mut pr = Printer::new();
    exp(&mut pr, e, data);
    pr.finish()
}

fn atom(a: &Atom) -> String {
    match a {
        Atom::Var(v) => v.to_string(),
        Atom::Int(n) => n.to_string(),
    }
}

fn atoms(asl: &[Atom]) -> String {
    asl.iter().map(atom).collect::<Vec<_>>().join(", ")
}

fn exp(p: &mut Printer, e: &BExp, data: &MDataEnv) {
    match e {
        BExp::Ret(a) => {
            p.line(format!("ret {}", atom(a)));
        }
        BExp::Let { var, rhs, body } => {
            p.line(format!("let {var} = "));
            rhs_str(p, rhs, data);
            exp(p, body, data);
        }
        BExp::Fix { funs, body } => {
            p.line("fix");
            p.indent();
            for f in funs {
                let cps = if f.cparams.is_empty() {
                    String::new()
                } else {
                    format!(
                        "[{}]",
                        f.cparams
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                };
                let ps = f
                    .params
                    .iter()
                    .map(|(v, _)| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                p.line(format!("{}{cps} = \u{03bb}({ps})ized.", f.var));
                p.indent();
                exp(p, &f.body, data);
                p.dedent();
            }
            p.dedent();
            exp(p, body, data);
        }
    }
}

fn rhs_str(p: &mut Printer, r: &BRhs, data: &MDataEnv) {
    match r {
        BRhs::Atom(a) => {
            p.word(atom(a));
        }
        BRhs::Float(f) => {
            p.word(format!("{f:?}"));
        }
        BRhs::Str(s) => {
            p.word(format!("{s:?}"));
        }
        BRhs::Record(fs) => {
            p.word(format!("{{{}}}", atoms(fs)));
        }
        BRhs::Select(i, a) => {
            p.word(format!("#{i} {}", atom(a)));
        }
        BRhs::Con {
            data: id,
            tag,
            args,
            ..
        } => {
            let name = data.get(*id).name;
            p.word(format!("{name}#{tag}({})", atoms(args)));
        }
        BRhs::ExnCon { exn, arg } => {
            let a = arg.as_ref().map(atom).unwrap_or_default();
            p.word(format!("exn#{}({a})", exn.0));
        }
        BRhs::Prim { prim, args, .. } => {
            p.word(format!("{prim}({})", atoms(args)));
        }
        BRhs::App { f, args, .. } => {
            p.word(format!("{}({})", atom(f), atoms(args)));
        }
        BRhs::Raise { exn, .. } => {
            p.word(format!("raise {}", atom(exn)));
        }
        BRhs::Handle { body, var, handler } => {
            p.word("handle");
            p.indent();
            exp(p, body, data);
            p.line(format!("with {var} =>"));
            p.indent();
            exp(p, handler, data);
            p.dedent();
            p.dedent();
        }
        BRhs::Typecase {
            scrut,
            int,
            float,
            ptr,
            ..
        } => {
            let n = data.len();
            let s = scrut.display(&move |id| {
                if (id.0 as usize) < n {
                    til_common::Symbol::intern("data")
                } else {
                    til_common::Symbol::intern("?")
                }
            });
            p.word(format!("typecase {s} of"));
            p.indent();
            p.line("int =>");
            p.indent();
            exp(p, int, data);
            p.dedent();
            p.line("float =>");
            p.indent();
            exp(p, float, data);
            p.dedent();
            p.line("ptr =>");
            p.indent();
            exp(p, ptr, data);
            p.dedent();
            p.dedent();
        }
        BRhs::Switch(sw) => switch(p, sw, data),
    }
}

fn switch(p: &mut Printer, sw: &BSwitch, data: &MDataEnv) {
    match sw {
        BSwitch::Int {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_int {} of", atom(scrut)));
            p.indent();
            for (k, a) in arms {
                p.line(format!("{k} =>"));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            p.line("_ =>");
            p.indent();
            exp(p, default, data);
            p.dedent();
            p.dedent();
        }
        BSwitch::Data {
            scrut,
            data: id,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_data {} of", atom(scrut)));
            p.indent();
            for (tag, binders, a) in arms {
                let name = data.get(*id).name;
                let bs = binders
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                p.line(format!("{name}#{tag}({bs}) =>"));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            if let Some(d) = default {
                p.line("_ =>");
                p.indent();
                exp(p, d, data);
                p.dedent();
            }
            p.dedent();
        }
        BSwitch::Str {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_str {} of", atom(scrut)));
            p.indent();
            for (k, a) in arms {
                p.line(format!("{k:?} =>"));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            p.line("_ =>");
            p.indent();
            exp(p, default, data);
            p.dedent();
            p.dedent();
        }
        BSwitch::Exn {
            scrut,
            arms,
            default,
            ..
        } => {
            p.word(format!("Switch_exn {} of", atom(scrut)));
            p.indent();
            for (id, binder, a) in arms {
                let b = binder.map(|v| format!("({v})")).unwrap_or_default();
                p.line(format!("exn#{}{b} =>", id.0));
                p.indent();
                exp(p, a, data);
                p.dedent();
            }
            p.line("_ =>");
            p.indent();
            exp(p, default, data);
            p.dedent();
            p.dedent();
        }
    }
}
